#pragma once
// Content-addressed verdict/embedding cache (the serve-side answer to
// duplicated scan traffic).
//
// VerdictCache maps a canonical ACFG content hash (cache/acfg_hash.hpp) to
// the verdict the model produced for that content — the winning family and
// the full probability distribution, plus an optional graph embedding for
// explain-style consumers. The serving layer consults it *ahead of* the
// micro-batcher: a hit resolves the request immediately without ever
// touching the queue, a replica lease, or a forward pass; a miss proceeds
// to packed inference and inserts on completion.
//
// Concurrency: the key space is split across `shards` independent shards
// (key.hi selects the shard), each a mutex-protected LRU list + index, so
// concurrent get/insert on different shards never contend. Within a shard
// the mutex is held for O(1) list splicing; values are copied out under the
// lock (entries can be evicted the instant the lock drops, so handing out
// references would dangle).
//
// Memory: the cache is bounded by bytes, not entries — a verdict for a
// 13-family model costs a few hundred bytes, one with a stored embedding
// can cost kilobytes. Each shard owns max_bytes / shards; inserting past
// the bound evicts least-recently-used entries until the new entry fits.
// An entry larger than a whole shard budget is not cached at all
// (oversized counter). There is no TTL: content hashes never go stale —
// the same bytes always classify the same way for a fixed model — so
// recency is the only eviction signal. Model hot-swaps must drop the cache
// (verdicts are per-model); servers own their cache instance, so a new
// server over new weights starts cold by construction.
//
// Observability: hit/miss/insert/eviction/oversized counters are kept
// per-cache (exact snapshot()) and mirrored into the process-wide
// magic::obs registry under "cache.*" while obs::enabled(), following the
// serve::StatsCollector discipline.

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/acfg_hash.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::cache {

/// Tuning knobs of one VerdictCache.
struct CacheConfig {
  /// Total byte budget across all shards (approximate deep size of the
  /// stored values plus per-entry bookkeeping).
  std::size_t max_bytes = 64ull << 20;
  /// Number of independent LRU shards; clamped to >= 1. More shards =
  /// less lock contention, slightly coarser LRU.
  std::size_t shards = 8;
};

/// The cached outcome of classifying one content hash. Mirrors
/// core::Prediction (the cache layer sits below magic_core in the link
/// graph, so it carries the fields rather than the type).
struct CachedVerdict {
  std::size_t family_index = 0;
  std::string family_name;
  std::vector<double> probabilities;
  /// Optional graph embedding for explain-style reuse (empty when the
  /// producer did not compute one).
  std::vector<double> embedding;

  /// Approximate deep size in bytes (the unit of the cache byte bound).
  std::size_t bytes() const noexcept;
};

/// Point-in-time counters of one VerdictCache.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t oversized = 0;  ///< inserts skipped: entry > shard budget
  std::uint64_t entries = 0;    ///< resident entries right now
  std::uint64_t bytes = 0;      ///< resident bytes right now
  std::uint64_t max_bytes = 0;  ///< configured bound
  /// Set by VerdictCache::stats(); a default-constructed (all-zero)
  /// CacheStats therefore reads as "no cache configured", which is exactly
  /// what the serve layer embeds when it runs cache-less.
  bool enabled = false;

  double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
  /// Single-line JSON object (embedded in the serve `stats` wire reply).
  std::string to_json() const;
};

/// Sharded, byte-bounded, TTL-free LRU cache from content hash to verdict.
/// All public methods are thread-safe.
class VerdictCache {
 public:
  explicit VerdictCache(CacheConfig config = {});

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  /// Returns a copy of the cached verdict and marks it most-recently-used;
  /// std::nullopt on miss. Counts a hit or a miss.
  std::optional<CachedVerdict> get(const CacheKey& key);

  /// Inserts (or refreshes) `value` under `key`, evicting LRU entries of
  /// the shard until it fits. An entry larger than the per-shard budget is
  /// dropped (counted as oversized, not inserted).
  void insert(const CacheKey& key, CachedVerdict value);

  /// Drops every entry (counters keep accumulating).
  void clear();

  /// Exact counter snapshot plus current entry/byte residency.
  CacheStats stats() const;

  std::size_t max_bytes() const noexcept { return config_.max_bytes; }
  std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    CacheKey key;
    CachedVerdict value;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  /// One independent LRU domain. The shard mutex is a leaf lock: nothing
  /// else is ever acquired while it is held.
  struct Shard {
    mutable util::Mutex mutex;
    /// front = most recently used, back = eviction candidate.
    LruList lru MAGIC_GUARDED_BY(mutex);
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index
        MAGIC_GUARDED_BY(mutex);
    std::size_t bytes MAGIC_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const CacheKey& key) noexcept {
    return shards_[static_cast<std::size_t>(key.hi) % shards_.size()];
  }
  const Shard& shard_at(std::size_t i) const noexcept { return shards_[i]; }

  static void bump(obs::Counter& local, obs::Counter* mirror) noexcept {
    local.add();
    if (obs::enabled()) mirror->add();
  }

  CacheConfig config_;
  std::size_t shard_budget_ = 0;
  std::vector<Shard> shards_;

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter oversized_;

  /// Cached handles into the process-wide registry ("cache.*" names);
  /// only written while obs::enabled().
  struct GlobalMirror {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* insertions;
    obs::Counter* evictions;
    obs::Counter* oversized;
    obs::Gauge* bytes;
    obs::Gauge* entries;
  };
  GlobalMirror global_;
};

}  // namespace magic::cache
