#pragma once
// Canonical content hashing for ACFGs: the key of the verdict cache and the
// integrity stamp of the packed corpus format.
//
// Real scanning traffic is massively duplicated — the same binary is
// submitted by millions of endpoints — so the serving layer content-
// addresses requests: two structurally identical ACFGs must map to the same
// 128-bit key no matter how their vertices happened to be numbered or their
// edge lists ordered by the frontend. The hash is therefore *canonical*:
//
//   1. Every vertex gets an initial signature from data that survives
//      relabeling: the exact bit patterns of its attribute row plus its
//      out- and in-degree. Vertex ids never enter the hash.
//   2. Three rounds of Weisfeiler-Lehman-style refinement mix each vertex's
//      signature with the *sorted multisets* of its out- and in-neighbour
//      signatures, so topology beyond the 1-hop degree profile
//      discriminates.
//   3. The graph hash folds the sorted multiset of final vertex signatures,
//      the sorted multiset of directed edge signatures (sig(u) combined
//      asymmetrically with sig(v), duplicates kept), the label and the
//      global counts (n, m, channels) into two independently seeded 64-bit
//      lanes.
//
// Properties (pinned by tests/cache/acfg_hash_test.cpp):
//   * permutation-invariant: relabeling vertices and/or shuffling adjacency
//     list order never changes the key;
//   * content-sensitive: flipping a single bit of one attribute double, or
//     adding/removing one edge, changes the key;
//   * deterministic across platforms: integer-only mixing over exact double
//     bit patterns (golden values in the tests).
//
// Like any WL-bounded scheme, graphs that are WL-equivalent *and* carry
// identical attribute rows collide by design; for CFGs with Table I
// attribute rows this means "the classifier cannot tell them apart either",
// which is exactly the equivalence a verdict cache wants.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "acfg/acfg.hpp"

namespace magic::cache {

/// 128-bit content address of one ACFG (two independent 64-bit lanes).
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const CacheKey& a, const CacheKey& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const CacheKey& a, const CacheKey& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits (hi then lo), e.g. for logs and goldens.
  std::string to_hex() const;
};

/// Shard/bucket hash over a CacheKey (the key is already uniform; this just
/// folds the lanes).
struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    return static_cast<std::size_t>(key.hi ^ (key.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// Canonical content hash of `sample` (attributes + topology + label).
/// The sample id is deliberately excluded: two submissions of the same
/// binary under different names must collide.
CacheKey acfg_content_hash(const acfg::Acfg& sample);

/// Raw-bytes hash with the same mixing core (the packed corpus format uses
/// it as its payload integrity stamp). Not canonical — byte order matters.
CacheKey bytes_content_hash(const void* data, std::size_t size);

}  // namespace magic::cache
