#include "cache/verdict_cache.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace magic::cache {

std::size_t CachedVerdict::bytes() const noexcept {
  // Approximate deep size: the struct, heap storage of the two double
  // vectors and the family name, plus the LRU/index bookkeeping an entry
  // costs (list node pointers + hash bucket). Close enough for a budget;
  // exactness is not the point, monotonicity is.
  constexpr std::size_t kPerEntryOverhead = 96;
  return sizeof(CachedVerdict) + family_name.capacity() +
         probabilities.capacity() * sizeof(double) +
         embedding.capacity() * sizeof(double) + kPerEntryOverhead;
}

std::string CacheStats::to_json() const {
  std::ostringstream os;
  os << "{\"enabled\":" << (enabled ? "true" : "false") << ",\"hits\":" << hits
     << ",\"misses\":" << misses << ",\"hit_rate\":" << hit_rate()
     << ",\"insertions\":" << insertions << ",\"evictions\":" << evictions
     << ",\"oversized\":" << oversized << ",\"entries\":" << entries
     << ",\"bytes\":" << bytes << ",\"max_bytes\":" << max_bytes << "}";
  return os.str();
}

VerdictCache::VerdictCache(CacheConfig config)
    : config_(config), shards_(std::max<std::size_t>(1, config.shards)) {
  config_.shards = shards_.size();
  shard_budget_ = std::max<std::size_t>(1, config_.max_bytes / shards_.size());
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  global_.hits = &registry.counter("cache.hits");
  global_.misses = &registry.counter("cache.misses");
  global_.insertions = &registry.counter("cache.insertions");
  global_.evictions = &registry.counter("cache.evictions");
  global_.oversized = &registry.counter("cache.oversized");
  global_.bytes = &registry.gauge("cache.bytes");
  global_.entries = &registry.gauge("cache.entries");
}

std::optional<CachedVerdict> VerdictCache::get(const CacheKey& key) {
  Shard& shard = shard_for(key);
  {
    util::MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Touch: move to the MRU end while the lock pins the iterator.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      CachedVerdict copy = it->second->value;
      bump(hits_, global_.hits);
      return copy;
    }
  }
  bump(misses_, global_.misses);
  return std::nullopt;
}

void VerdictCache::insert(const CacheKey& key, CachedVerdict value) {
  const std::size_t cost = value.bytes();
  if (cost > shard_budget_) {
    // Would evict the whole shard and still not amortize: refuse rather
    // than letting one pathological entry wipe the working set.
    bump(oversized_, global_.oversized);
    return;
  }
  Shard& shard = shard_for(key);
  std::uint64_t evicted = 0;
  std::uint64_t entries = 0;
  std::size_t bytes = 0;
  {
    util::MutexLock lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: replace the value in place and touch.
      shard.bytes -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = cost;
      shard.bytes += cost;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      while (shard.bytes + cost > shard_budget_ && !shard.lru.empty()) {
        const Entry& victim = shard.lru.back();
        shard.bytes -= victim.bytes;
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++evicted;
      }
      shard.lru.push_front(Entry{key, std::move(value), cost});
      shard.index.emplace(key, shard.lru.begin());
      shard.bytes += cost;
    }
    entries = shard.lru.size();
    bytes = shard.bytes;
  }
  bump(insertions_, global_.insertions);
  for (std::uint64_t e = 0; e < evicted; ++e) bump(evictions_, global_.evictions);
  if (obs::enabled()) {
    // Per-shard residency is a fine proxy gauge; exact totals come from
    // stats(). (entries/bytes of the *touched* shard, cheap and monotone
    // enough for dashboards.)
    global_.bytes->set(static_cast<double>(bytes));
    global_.entries->set(static_cast<double>(entries));
  }
}

void VerdictCache::clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

CacheStats VerdictCache::stats() const {
  CacheStats out;
  out.enabled = true;
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.insertions = insertions_.value();
  out.evictions = evictions_.value();
  out.oversized = oversized_.value();
  out.max_bytes = config_.max_bytes;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shard_at(i);
    util::MutexLock lock(shard.mutex);
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace magic::cache
