#include "cache/acfg_hash.hpp"

#include <algorithm>
#include <bit>
#include <vector>

namespace magic::cache {
namespace {

// Distinct seeds per hashing context so structurally different inputs can
// never alias across contexts (a vertex signature is not an edge signature
// is not a lane fold).
constexpr std::uint64_t kSeedVertex = 0x5BD1E995C6B36A21ULL;
constexpr std::uint64_t kSeedRound = 0xA0761D6478BD642FULL;
constexpr std::uint64_t kSeedEdge = 0xE7037ED1A0B428DBULL;
constexpr std::uint64_t kSeedLaneHi = 0x8EBC6AF09C88C6E3ULL;
constexpr std::uint64_t kSeedLaneLo = 0x589965CC75374CC3ULL;
constexpr std::uint64_t kSeedBytes = 0x1D8E4E27C47D124FULL;

/// Murmur3 64-bit finalizer: full avalanche over one word.
constexpr std::uint64_t fmix64(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

/// Order-sensitive chaining step (the building block; unordered collections
/// are sorted before being folded through it).
constexpr std::uint64_t chain(std::uint64_t h, std::uint64_t v) noexcept {
  return fmix64((h + 0x9E3779B97F4A7C15ULL) ^ (v * 0xBF58476D1CE4E5B9ULL));
}

/// Folds an already-sorted run of signatures into one word.
std::uint64_t fold_sorted(std::uint64_t seed, const std::vector<std::uint64_t>& sorted) {
  std::uint64_t h = chain(seed, sorted.size());
  for (const std::uint64_t sig : sorted) h = chain(h, sig);
  return h;
}

}  // namespace

std::string CacheKey::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

CacheKey acfg_content_hash(const acfg::Acfg& sample) {
  const std::size_t n = sample.num_vertices();
  const std::size_t c = sample.num_channels();

  // In-adjacency (multiset semantics: parallel edges contribute twice).
  std::vector<std::vector<std::size_t>> in_edges(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const std::size_t v : sample.out_edges[u]) in_edges[v].push_back(u);
  }

  // 1. Initial signatures: attribute row bit patterns + degree profile.
  //    Vertex ids never enter, so any relabeling yields the same multiset.
  std::vector<std::uint64_t> sig(n);
  const double* attributes = sample.attributes.data();
  for (std::size_t v = 0; v < n; ++v) {
    std::uint64_t h = chain(kSeedVertex, c);
    for (std::size_t j = 0; j < c; ++j) {
      h = chain(h, std::bit_cast<std::uint64_t>(attributes[v * c + j]));
    }
    h = chain(h, sample.out_edges[v].size());
    h = chain(h, in_edges[v].size());
    sig[v] = h;
  }

  // 2. WL refinement: mix each signature with the sorted multisets of its
  //    out- and in-neighbour signatures. Three rounds discriminate well
  //    beyond the degree profile while staying O(rounds * (n + m) log d).
  constexpr int kRounds = 3;
  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> neighbour_sigs;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      neighbour_sigs.clear();
      for (const std::size_t w : sample.out_edges[v]) neighbour_sigs.push_back(sig[w]);
      std::sort(neighbour_sigs.begin(), neighbour_sigs.end());
      const std::uint64_t out_fold = fold_sorted(kSeedRound, neighbour_sigs);
      neighbour_sigs.clear();
      for (const std::size_t w : in_edges[v]) neighbour_sigs.push_back(sig[w]);
      std::sort(neighbour_sigs.begin(), neighbour_sigs.end());
      const std::uint64_t in_fold = fold_sorted(kSeedRound, neighbour_sigs);
      next[v] = chain(chain(chain(kSeedRound, sig[v]), out_fold), in_fold);
    }
    sig.swap(next);
  }

  // 3. Canonical fold: sorted vertex-signature multiset + sorted directed
  //    edge-signature multiset (asymmetric in u -> v) + global counts, into
  //    two independently seeded lanes.
  std::size_t m = 0;
  std::vector<std::uint64_t> edge_sigs;
  edge_sigs.reserve(sample.num_edges());
  for (std::size_t u = 0; u < n; ++u) {
    for (const std::size_t v : sample.out_edges[u]) {
      edge_sigs.push_back(chain(chain(kSeedEdge, sig[u]), sig[v]));
      ++m;
    }
  }
  std::sort(sig.begin(), sig.end());
  std::sort(edge_sigs.begin(), edge_sigs.end());

  auto lane = [&](std::uint64_t seed) {
    std::uint64_t h = chain(seed, n);
    h = chain(h, m);
    h = chain(h, c);
    h = chain(h, fold_sorted(seed, sig));
    h = chain(h, fold_sorted(seed, edge_sigs));
    return fmix64(h);
  };
  // The label and id are deliberately excluded: at serve time a submitted
  // sample is unlabeled, and the cache must address it by *content* only.
  return CacheKey{lane(kSeedLaneHi), lane(kSeedLaneLo)};
}

CacheKey bytes_content_hash(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hi = chain(kSeedBytes ^ kSeedLaneHi, size);
  std::uint64_t lo = chain(kSeedBytes ^ kSeedLaneLo, size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(bytes[i + b]) << (8 * b);
    }
    hi = chain(hi, word);
    lo = chain(lo, word ^ 0xA5A5A5A5A5A5A5A5ULL);
  }
  std::uint64_t tail = 0;
  for (int b = 0; i < size; ++i, ++b) {
    tail |= static_cast<std::uint64_t>(bytes[i]) << (8 * b);
  }
  hi = fmix64(chain(hi, tail));
  lo = fmix64(chain(lo, tail ^ 0xA5A5A5A5A5A5A5A5ULL));
  return CacheKey{hi, lo};
}

}  // namespace magic::cache
