#pragma once
// Linear SVMs trained with Pegasos (primal stochastic sub-gradient), and
// the ensemble one-vs-rest classifier standing in for ESVC — the paper's
// Fig. 11 comparator [8], which "sequentially integrates SVM-based malware
// classifiers trained from heterogeneous features". Our stand-in chains
// one-vs-rest linear SVMs over the aggregate feature vector and converts
// margins to probabilities with a softmax over class scores.

#include "baselines/classifier.hpp"
#include "baselines/scaler.hpp"

namespace magic::baselines {

struct SvmOptions {
  double lambda = 1e-4;        // Pegasos regularization
  std::size_t epochs = 20;     // passes over the data
  std::uint64_t seed = 1;
};

/// Binary linear SVM: sign(w.x + b). Labels are +1 / -1.
class LinearSvm {
 public:
  explicit LinearSvm(SvmOptions options = {});

  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<int>& labels);

  /// Signed margin w.x + b.
  double decision(const std::vector<double>& x) const;

 private:
  SvmOptions options_;
  std::vector<double> w_;
  double b_ = 0.0;
};

/// One-vs-rest ensemble of linear SVMs with internal standardization.
class EnsembleSvc : public Classifier {
 public:
  explicit EnsembleSvc(SvmOptions options = {});

  void fit(const ml::FeatureMatrix& data, std::size_t num_classes) override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;

 private:
  SvmOptions options_;
  StandardScaler scaler_;
  std::vector<LinearSvm> machines_;  // one per class
};

}  // namespace magic::baselines
