#pragma once
// CART decision trees: a gini-impurity classification tree (building block
// of the random-forest baselines [11][14]) and a squared-error regression
// tree with Newton leaf values (building block of the XGBoost-style
// gradient-boosting baseline [13]).

#include <cstddef>
#include <vector>

#include "ml/features.hpp"
#include "util/rng.hpp"

namespace magic::baselines {

/// Shared growth limits.
struct TreeOptions {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  /// Fraction of features considered at each split (1.0 = all; random
  /// forests use sqrt-ish fractions for decorrelation).
  double feature_fraction = 1.0;
};

/// Axis-aligned binary classification tree.
class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {});

  /// Fits on the rows selected by `indices` (bootstrap support).
  void fit(const ml::FeatureMatrix& data, std::size_t num_classes,
           const std::vector<std::size_t>& indices, util::Rng& rng);

  /// Leaf class distribution for x.
  std::vector<double> predict_proba(const std::vector<double>& x) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;          // -1 = leaf
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    std::vector<double> distribution;  // leaves only
  };

  std::size_t grow(const ml::FeatureMatrix& data, std::vector<std::size_t>& idx,
                   std::size_t depth, util::Rng& rng);

  TreeOptions options_;
  std::size_t num_classes_ = 0;
  std::vector<Node> nodes_;
};

/// Regression tree minimizing squared error, with optional Newton-style
/// leaf values sum(grad) / (sum(hess) + lambda) when hessians are provided.
class RegressionTree {
 public:
  explicit RegressionTree(TreeOptions options = {}, double lambda = 1.0);

  /// `targets` are per-row gradients; `hessians` may be empty (plain mean
  /// leaves) or per-row curvature values.
  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<double>& targets, const std::vector<double>& hessians,
           const std::vector<std::size_t>& indices, util::Rng& rng);

  double predict(const std::vector<double>& x) const;

 private:
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    std::size_t left = 0;
    std::size_t right = 0;
    double value = 0.0;  // leaves only
  };

  std::size_t grow(const std::vector<std::vector<double>>& rows,
                   const std::vector<double>& targets,
                   const std::vector<double>& hessians,
                   std::vector<std::size_t>& idx, std::size_t depth, util::Rng& rng);

  TreeOptions options_;
  double lambda_;
  std::vector<Node> nodes_;
};

}  // namespace magic::baselines
