#pragma once
// Feature standardization (z-score) for scale-sensitive models (SVM,
// autoencoder). Tree models are scale-invariant and skip it.

#include <vector>

#include "ml/features.hpp"

namespace magic::baselines {

/// Per-feature mean/stddev learned from training rows.
class StandardScaler {
 public:
  /// Learns statistics; constant features get stddev 1 (pass-through).
  void fit(const std::vector<std::vector<double>>& rows);

  std::vector<double> transform(const std::vector<double>& x) const;
  std::vector<std::vector<double>> transform_all(
      const std::vector<std::vector<double>>& rows) const;

  bool fitted() const noexcept { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace magic::baselines
