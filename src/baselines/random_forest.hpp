#pragma once
// Random forest baseline (the paper compares against [11] "Ensemble
// Multiple Random Forest Classifiers" and [14] "Random Forest with Feature
// Engineering", Table IV). Bagged gini trees with per-split feature
// subsampling; probabilities are averaged across trees.

#include <memory>

#include "baselines/classifier.hpp"
#include "baselines/tree.hpp"

namespace magic::baselines {

struct RandomForestOptions {
  std::size_t num_trees = 100;
  TreeOptions tree;
  /// Bootstrap sample fraction per tree.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 1;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  void fit(const ml::FeatureMatrix& data, std::size_t num_classes) override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;

  std::size_t num_trees() const noexcept { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::size_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace magic::baselines
