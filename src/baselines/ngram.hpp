#pragma once
// Opcode-sequence n-gram baseline — the stand-in for Table IV's "Strand
// gene sequence classifier" [15] (Drew et al., polymorphic malware detection
// via sequence classification) and for the classic n-gram malware features
// of [4].
//
// The model hashes overlapping n-grams of opcode-class sequences (basic
// blocks concatenated in address order) into a fixed-size feature space and
// classifies with multinomial naive Bayes. It sees *order* but no graph
// structure, which is exactly why the paper expects it to trail the
// CFG-structural approaches.

#include <cstdint>
#include <string>
#include <vector>

#include "asmx/instruction.hpp"

namespace magic::baselines {

/// Extracts hashed n-gram counts from a program's opcode sequence.
class OpcodeNgramHasher {
 public:
  /// `n` = gram length, `buckets` = hashed feature dimension.
  OpcodeNgramHasher(std::size_t n, std::size_t buckets);

  /// Counts n-grams of inst.opclass over the address-ordered program.
  std::vector<double> extract(const asmx::Program& program) const;

  /// Convenience: parse a listing then extract.
  std::vector<double> extract_listing(std::string_view listing) const;

  std::size_t buckets() const noexcept { return buckets_; }

 private:
  std::size_t n_;
  std::size_t buckets_;
};

/// Multinomial naive Bayes over count vectors with Laplace smoothing.
class MultinomialNaiveBayes {
 public:
  explicit MultinomialNaiveBayes(double alpha = 1.0);

  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<std::size_t>& labels, std::size_t num_classes);

  /// Posterior distribution (softmax of log joint).
  std::vector<double> predict_proba(const std::vector<double>& x) const;
  std::size_t predict(const std::vector<double>& x) const;

 private:
  double alpha_;
  std::vector<double> log_prior_;                 // per class
  std::vector<std::vector<double>> log_likelihood_;  // class x feature
};

/// End-to-end sequence classifier: listing -> hashed n-grams -> naive Bayes.
class NgramSequenceClassifier {
 public:
  NgramSequenceClassifier(std::size_t n = 3, std::size_t buckets = 512,
                          double alpha = 1.0);

  void fit(const std::vector<std::string>& listings,
           const std::vector<std::size_t>& labels, std::size_t num_classes);

  std::vector<double> predict_proba(const std::string& listing) const;
  std::size_t predict(const std::string& listing) const;

 private:
  OpcodeNgramHasher hasher_;
  MultinomialNaiveBayes bayes_;
};

}  // namespace magic::baselines
