#include "baselines/autoencoder.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace magic::baselines {

AutoencoderGbt::AutoencoderGbt(AutoencoderOptions options)
    : options_(options), gbdt_(options.gbdt) {}

void AutoencoderGbt::fit(const ml::FeatureMatrix& data, std::size_t num_classes) {
  if (data.rows.empty()) throw std::invalid_argument("AutoencoderGbt::fit: empty data");
  scaler_.fit(data.rows);
  const auto scaled = scaler_.transform_all(data.rows);
  const std::size_t d = scaled.front().size();
  const std::size_t h = options_.latent_dim;

  // Train a d -> h -> d autoencoder with the nn substrate.
  util::Rng rng(options_.seed);
  nn::Linear encoder(d, h, rng);
  nn::Tanh enc_act;
  nn::Linear decoder(h, d, rng);
  std::vector<nn::Parameter*> params = encoder.parameters();
  for (auto* p : decoder.parameters()) params.push_back(p);
  nn::Adam adam(params, options_.learning_rate);

  std::vector<std::size_t> order(scaled.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double last_mse = 0.0;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    double total = 0.0;
    for (std::size_t i : order) {
      nn::Tensor x({d}, scaled[i]);
      nn::Tensor latent = enc_act.forward(encoder.forward(x));
      nn::Tensor recon = decoder.forward(latent);
      // MSE loss: L = mean((recon - x)^2); dL/drecon = 2 (recon - x) / d.
      nn::Tensor grad({d});
      double loss = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = recon[j] - x[j];
        loss += diff * diff;
        grad[j] = 2.0 * diff / static_cast<double>(d);
      }
      total += loss / static_cast<double>(d);
      adam.zero_grad();
      encoder.backward(enc_act.backward(decoder.backward(grad)));
      adam.step();
    }
    last_mse = total / static_cast<double>(order.size());
  }
  reconstruction_mse_ = last_mse;

  // Freeze the encoder weights into plain matrices.
  enc_w_.assign(h, std::vector<double>(d, 0.0));
  enc_b_.assign(h, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t k = 0; k < h; ++k) {
      enc_w_[k][j] = encoder.weight().value[j * h + k];
    }
  }
  for (std::size_t k = 0; k < h; ++k) enc_b_[k] = encoder.bias().value[k];

  // Train the boosted classifier on latent codes.
  ml::FeatureMatrix latent_data;
  latent_data.labels = data.labels;
  latent_data.rows.reserve(scaled.size());
  for (const auto& row : scaled) latent_data.rows.push_back(encode_from_scaled(row));
  gbdt_.fit(latent_data, num_classes);
}

std::vector<double> AutoencoderGbt::encode_from_scaled(
    const std::vector<double>& scaled) const {
  std::vector<double> latent(enc_w_.size());
  for (std::size_t k = 0; k < enc_w_.size(); ++k) {
    double acc = enc_b_[k];
    for (std::size_t j = 0; j < scaled.size(); ++j) acc += enc_w_[k][j] * scaled[j];
    latent[k] = std::tanh(acc);
  }
  return latent;
}

std::vector<double> AutoencoderGbt::encode(const std::vector<double>& x) const {
  return encode_from_scaled(scaler_.transform(x));
}

std::vector<double> AutoencoderGbt::predict_proba(const std::vector<double>& x) const {
  if (enc_w_.empty()) throw std::logic_error("AutoencoderGbt: not fitted");
  return gbdt_.predict_proba(encode(x));
}

}  // namespace magic::baselines
