#include "baselines/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace magic::baselines {

void StandardScaler::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("StandardScaler::fit: empty data");
  const std::size_t d = rows.front().size();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  std::vector<double> var(d, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < d; ++j) {
      const double delta = row[j] - mean_[j];
      var[j] += delta * delta;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(rows.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> StandardScaler::transform(const std::vector<double>& x) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    out[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

std::vector<std::vector<double>> StandardScaler::transform_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(transform(row));
  return out;
}

}  // namespace magic::baselines
