#include "baselines/gbdt.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace magic::baselines {
namespace {

void softmax_inplace(std::vector<double>& scores) {
  double m = scores.front();
  for (double s : scores) m = std::max(m, s);
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - m);
    z += s;
  }
  for (double& s : scores) s /= z;
}

}  // namespace

Gbdt::Gbdt(GbdtOptions options) : options_(options) {}

void Gbdt::fit(const ml::FeatureMatrix& data, std::size_t num_classes) {
  if (data.rows.empty()) throw std::invalid_argument("Gbdt::fit: empty data");
  num_classes_ = num_classes;
  trees_.clear();
  trees_.reserve(options_.num_rounds * num_classes);
  util::Rng rng(options_.seed);
  const std::size_t n = data.rows.size();

  // Current raw score per (sample, class); starts at zero (uniform softmax).
  std::vector<std::vector<double>> raw(n, std::vector<double>(num_classes, 0.0));
  std::vector<double> grads(n), hess(n);

  for (std::size_t round = 0; round < options_.num_rounds; ++round) {
    // Softmax probabilities from current raw scores.
    std::vector<std::vector<double>> probs = raw;
    for (auto& row : probs) softmax_inplace(row);

    // Row subsample shared across this round's K trees.
    std::vector<std::size_t> indices;
    indices.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.uniform() < options_.subsample) indices.push_back(i);
    }
    if (indices.empty()) indices.push_back(0);

    for (std::size_t c = 0; c < num_classes; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        const double y = data.labels[i] == c ? 1.0 : 0.0;
        grads[i] = y - probs[i][c];              // negative gradient
        hess[i] = probs[i][c] * (1.0 - probs[i][c]);
      }
      RegressionTree tree(options_.tree, options_.lambda);
      util::Rng tree_rng = rng.split();
      tree.fit(data.rows, grads, hess, indices, tree_rng);
      for (std::size_t i = 0; i < n; ++i) {
        raw[i][c] += options_.learning_rate * tree.predict(data.rows[i]);
      }
      trees_.push_back(std::move(tree));
    }
  }
}

std::vector<double> Gbdt::scores(const std::vector<double>& x) const {
  std::vector<double> s(num_classes_, 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    s[t % num_classes_] += options_.learning_rate * trees_[t].predict(x);
  }
  return s;
}

std::vector<double> Gbdt::predict_proba(const std::vector<double>& x) const {
  if (trees_.empty()) throw std::logic_error("Gbdt: not fitted");
  std::vector<double> s = scores(x);
  softmax_inplace(s);
  return s;
}

}  // namespace magic::baselines
