#pragma once
// Common interface for the handcrafted-feature baseline classifiers the
// paper compares against in Table IV and Fig. 11.

#include <cstddef>
#include <vector>

#include "ml/features.hpp"

namespace magic::baselines {

/// Multi-class probabilistic classifier over flat feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the given matrix; labels must lie in [0, num_classes).
  virtual void fit(const ml::FeatureMatrix& data, std::size_t num_classes) = 0;

  /// Predicted class distribution (sums to 1).
  virtual std::vector<double> predict_proba(const std::vector<double>& x) const = 0;

  /// Arg-max prediction.
  std::size_t predict(const std::vector<double>& x) const {
    const auto p = predict_proba(x);
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.size(); ++c) {
      if (p[c] > p[best]) best = c;
    }
    return best;
  }
};

}  // namespace magic::baselines
