#pragma once
// Gradient-boosted decision trees with the multi-class softmax objective —
// the XGBoost-style baseline of [13] ("XGBoost with Heavy Feature
// Engineering", the best log-loss in Table IV). Each boosting round fits
// one Newton regression tree per class on the softmax residuals
// (y_ic - p_ic) with hessians p_ic (1 - p_ic).

#include "baselines/classifier.hpp"
#include "baselines/tree.hpp"

namespace magic::baselines {

struct GbdtOptions {
  std::size_t num_rounds = 60;
  double learning_rate = 0.2;
  double lambda = 1.0;       // L2 on leaf values
  double subsample = 0.9;    // row subsample per round
  TreeOptions tree{.max_depth = 5, .min_samples_leaf = 2, .feature_fraction = 0.9};
  std::uint64_t seed = 1;
};

class Gbdt : public Classifier {
 public:
  explicit Gbdt(GbdtOptions options = {});

  void fit(const ml::FeatureMatrix& data, std::size_t num_classes) override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;

  std::size_t rounds_fitted() const noexcept {
    return num_classes_ == 0 ? 0 : trees_.size() / num_classes_;
  }

 private:
  /// Raw scores for all classes.
  std::vector<double> scores(const std::vector<double>& x) const;

  GbdtOptions options_;
  std::size_t num_classes_ = 0;
  std::vector<RegressionTree> trees_;  // round-major: [round * K + class]
};

}  // namespace magic::baselines
