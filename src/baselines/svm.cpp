#include "baselines/svm.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace magic::baselines {

LinearSvm::LinearSvm(SvmOptions options) : options_(options) {}

void LinearSvm::fit(const std::vector<std::vector<double>>& rows,
                    const std::vector<int>& labels) {
  if (rows.empty() || rows.size() != labels.size()) {
    throw std::invalid_argument("LinearSvm::fit: bad inputs");
  }
  const std::size_t d = rows.front().size();
  const std::size_t n = rows.size();
  w_.assign(d, 0.0);
  b_ = 0.0;
  util::Rng rng(options_.seed);
  std::size_t t = 0;
  // Pegasos: eta_t = 1 / (lambda t); hinge sub-gradient step + shrink.
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (std::size_t step = 0; step < n; ++step) {
      ++t;
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      const double y = static_cast<double>(labels[i]);
      double margin = b_;
      for (std::size_t j = 0; j < d; ++j) margin += w_[j] * rows[i][j];
      const double shrink = 1.0 - eta * options_.lambda;
      for (double& wj : w_) wj *= shrink;
      if (y * margin < 1.0) {
        for (std::size_t j = 0; j < d; ++j) w_[j] += eta * y * rows[i][j];
        b_ += eta * y * 0.1;  // lightly regularized bias
      }
    }
  }
}

double LinearSvm::decision(const std::vector<double>& x) const {
  if (w_.empty()) throw std::logic_error("LinearSvm: not fitted");
  double margin = b_;
  for (std::size_t j = 0; j < x.size(); ++j) margin += w_[j] * x[j];
  return margin;
}

EnsembleSvc::EnsembleSvc(SvmOptions options) : options_(options) {}

void EnsembleSvc::fit(const ml::FeatureMatrix& data, std::size_t num_classes) {
  if (data.rows.empty()) throw std::invalid_argument("EnsembleSvc::fit: empty data");
  scaler_.fit(data.rows);
  const auto scaled = scaler_.transform_all(data.rows);
  machines_.clear();
  machines_.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::vector<int> labels(scaled.size());
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      labels[i] = data.labels[i] == c ? 1 : -1;
    }
    SvmOptions per_class = options_;
    per_class.seed = options_.seed + c * 7919;
    LinearSvm svm(per_class);
    svm.fit(scaled, labels);
    machines_.push_back(std::move(svm));
  }
}

std::vector<double> EnsembleSvc::predict_proba(const std::vector<double>& x) const {
  if (machines_.empty()) throw std::logic_error("EnsembleSvc: not fitted");
  const auto scaled = scaler_.transform(x);
  std::vector<double> scores(machines_.size());
  for (std::size_t c = 0; c < machines_.size(); ++c) {
    scores[c] = machines_[c].decision(scaled);
  }
  // Softmax over margins: a calibrated-enough probability proxy.
  double m = scores.front();
  for (double s : scores) m = std::max(m, s);
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - m);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

}  // namespace magic::baselines
