#include "baselines/random_forest.hpp"

#include <cmath>
#include <stdexcept>

namespace magic::baselines {

RandomForest::RandomForest(RandomForestOptions options) : options_(options) {}

void RandomForest::fit(const ml::FeatureMatrix& data, std::size_t num_classes) {
  if (data.rows.empty()) throw std::invalid_argument("RandomForest::fit: empty data");
  num_classes_ = num_classes;
  trees_.clear();
  trees_.reserve(options_.num_trees);
  util::Rng rng(options_.seed);
  const auto n = data.rows.size();
  const auto sample_n = static_cast<std::size_t>(
      std::max(1.0, options_.bootstrap_fraction * static_cast<double>(n)));
  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    std::vector<std::size_t> bootstrap(sample_n);
    for (auto& i : bootstrap) {
      i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    DecisionTree tree(options_.tree);
    util::Rng tree_rng = rng.split();
    tree.fit(data, num_classes, bootstrap, tree_rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::predict_proba(const std::vector<double>& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<double> probs(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree.predict_proba(x);
    for (std::size_t c = 0; c < num_classes_; ++c) probs[c] += p[c];
  }
  for (double& p : probs) p /= static_cast<double>(trees_.size());
  return probs;
}

}  // namespace magic::baselines
