#pragma once
// Autoencoder-based feature learning + gradient boosting: the baseline of
// [9] ("Deep Autoencoder based XGBoost", Table IV). A one-hidden-layer
// autoencoder is trained with MSE on standardized aggregate features; the
// encoder's latent representation then feeds the Gbdt classifier.

#include <memory>

#include "baselines/classifier.hpp"
#include "baselines/gbdt.hpp"
#include "baselines/scaler.hpp"
#include "nn/linear.hpp"
#include "nn/activations.hpp"
#include "nn/optimizer.hpp"

namespace magic::baselines {

struct AutoencoderOptions {
  std::size_t latent_dim = 16;
  std::size_t epochs = 30;
  double learning_rate = 1e-3;
  GbdtOptions gbdt;
  std::uint64_t seed = 1;
};

class AutoencoderGbt : public Classifier {
 public:
  explicit AutoencoderGbt(AutoencoderOptions options = {});

  void fit(const ml::FeatureMatrix& data, std::size_t num_classes) override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;

  /// Mean squared reconstruction error on the training set after fitting.
  double reconstruction_mse() const noexcept { return reconstruction_mse_; }

 private:
  std::vector<double> encode(const std::vector<double>& x) const;
  /// Latent code tanh(W x + b) of an already-standardized row.
  std::vector<double> encode_from_scaled(const std::vector<double>& scaled) const;

  AutoencoderOptions options_;
  StandardScaler scaler_;
  // Encoder/decoder weights are captured as plain matrices after training
  // (the nn modules are training-time scaffolding only).
  std::vector<std::vector<double>> enc_w_;  // (latent x input)
  std::vector<double> enc_b_;
  Gbdt gbdt_;
  double reconstruction_mse_ = 0.0;
};

}  // namespace magic::baselines
