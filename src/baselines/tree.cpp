#include "baselines/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace magic::baselines {
namespace {

/// Picks the feature subset considered at a split.
std::vector<std::size_t> sample_features(std::size_t total, double fraction,
                                         util::Rng& rng) {
  std::vector<std::size_t> features(total);
  std::iota(features.begin(), features.end(), 0u);
  const auto want = static_cast<std::size_t>(
      std::max(1.0, std::ceil(fraction * static_cast<double>(total))));
  if (want >= total) return features;
  rng.shuffle(features);
  features.resize(want);
  return features;
}

/// Candidate thresholds: midpoints between distinct consecutive sorted values.
struct SplitResult {
  bool found = false;
  int feature = -1;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  // lower is better
};

}  // namespace

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {}

void DecisionTree::fit(const ml::FeatureMatrix& data, std::size_t num_classes,
                       const std::vector<std::size_t>& indices, util::Rng& rng) {
  if (indices.empty()) throw std::invalid_argument("DecisionTree::fit: no samples");
  num_classes_ = num_classes;
  nodes_.clear();
  std::vector<std::size_t> idx = indices;
  grow(data, idx, 0, rng);
}

std::size_t DecisionTree::grow(const ml::FeatureMatrix& data,
                               std::vector<std::size_t>& idx, std::size_t depth,
                               util::Rng& rng) {
  // Class histogram of this node.
  std::vector<double> hist(num_classes_, 0.0);
  for (std::size_t i : idx) hist[data.labels[i]] += 1.0;
  const double total = static_cast<double>(idx.size());
  bool pure = false;
  for (double h : hist) {
    if (h == total) {
      pure = true;
      break;
    }
  }

  auto make_leaf = [&]() {
    Node leaf;
    leaf.distribution = hist;
    for (double& v : leaf.distribution) v /= total;
    nodes_.push_back(std::move(leaf));
    return nodes_.size() - 1;
  };

  if (pure || depth >= options_.max_depth ||
      idx.size() < 2 * options_.min_samples_leaf) {
    return make_leaf();
  }

  // Search the best gini split over a feature subset.
  SplitResult best;
  const std::size_t dims = data.rows.front().size();
  for (std::size_t f : sample_features(dims, options_.feature_fraction, rng)) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return data.rows[a][f] < data.rows[b][f];
    });
    std::vector<double> left_hist(num_classes_, 0.0);
    std::vector<double> right_hist = hist;
    for (std::size_t pos = 0; pos + 1 < idx.size(); ++pos) {
      const std::size_t lbl = data.labels[idx[pos]];
      left_hist[lbl] += 1.0;
      right_hist[lbl] -= 1.0;
      const double lv = data.rows[idx[pos]][f];
      const double rv = data.rows[idx[pos + 1]][f];
      if (lv == rv) continue;
      const std::size_t nl = pos + 1, nr = idx.size() - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) continue;
      auto gini = [](const std::vector<double>& h, double n) {
        double g = 1.0;
        for (double v : h) g -= (v / n) * (v / n);
        return g;
      };
      const double score =
          (static_cast<double>(nl) * gini(left_hist, static_cast<double>(nl)) +
           static_cast<double>(nr) * gini(right_hist, static_cast<double>(nr))) /
          total;
      if (score < best.score) {
        best = {true, static_cast<int>(f), 0.5 * (lv + rv), score};
      }
    }
  }
  if (!best.found) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (data.rows[i][static_cast<std::size_t>(best.feature)] <= best.threshold
         ? left_idx
         : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  const std::size_t me = nodes_.size();
  nodes_.emplace_back();
  nodes_[me].feature = best.feature;
  nodes_[me].threshold = best.threshold;
  const std::size_t left = grow(data, left_idx, depth + 1, rng);
  const std::size_t right = grow(data, right_idx, depth + 1, rng);
  nodes_[me].left = left;
  nodes_[me].right = right;
  return me;
}

std::vector<double> DecisionTree::predict_proba(const std::vector<double>& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    node = x[f] <= nodes_[node].threshold ? nodes_[node].left : nodes_[node].right;
  }
  return nodes_[node].distribution;
}

RegressionTree::RegressionTree(TreeOptions options, double lambda)
    : options_(options), lambda_(lambda) {}

void RegressionTree::fit(const std::vector<std::vector<double>>& rows,
                         const std::vector<double>& targets,
                         const std::vector<double>& hessians,
                         const std::vector<std::size_t>& indices, util::Rng& rng) {
  if (indices.empty()) throw std::invalid_argument("RegressionTree::fit: no samples");
  nodes_.clear();
  std::vector<std::size_t> idx = indices;
  grow(rows, targets, hessians, idx, 0, rng);
}

std::size_t RegressionTree::grow(const std::vector<std::vector<double>>& rows,
                                 const std::vector<double>& targets,
                                 const std::vector<double>& hessians,
                                 std::vector<std::size_t>& idx, std::size_t depth,
                                 util::Rng& rng) {
  double sum_g = 0.0, sum_h = 0.0;
  for (std::size_t i : idx) {
    sum_g += targets[i];
    sum_h += hessians.empty() ? 1.0 : hessians[i];
  }

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value = sum_g / (sum_h + lambda_);
    nodes_.push_back(leaf);
    return nodes_.size() - 1;
  };

  if (depth >= options_.max_depth || idx.size() < 2 * options_.min_samples_leaf) {
    return make_leaf();
  }

  // Best split by maximum gain of the Newton objective:
  //   gain = GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l).
  SplitResult best;
  best.score = 0.0;  // require strictly positive gain (stored negated below)
  bool found = false;
  const std::size_t dims = rows.front().size();
  const double parent_obj = sum_g * sum_g / (sum_h + lambda_);
  for (std::size_t f : sample_features(dims, options_.feature_fraction, rng)) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return rows[a][f] < rows[b][f];
    });
    double gl = 0.0, hl = 0.0;
    for (std::size_t pos = 0; pos + 1 < idx.size(); ++pos) {
      gl += targets[idx[pos]];
      hl += hessians.empty() ? 1.0 : hessians[idx[pos]];
      const double lv = rows[idx[pos]][f];
      const double rv = rows[idx[pos + 1]][f];
      if (lv == rv) continue;
      const std::size_t nl = pos + 1, nr = idx.size() - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) continue;
      const double gr = sum_g - gl, hr = sum_h - hl;
      const double gain = gl * gl / (hl + lambda_) + gr * gr / (hr + lambda_) - parent_obj;
      if (gain > best.score + 1e-12) {
        best = {true, static_cast<int>(f), 0.5 * (lv + rv), gain};
        found = true;
      }
    }
  }
  if (!found) return make_leaf();

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (rows[i][static_cast<std::size_t>(best.feature)] <= best.threshold ? left_idx
                                                                       : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return make_leaf();

  const std::size_t me = nodes_.size();
  nodes_.emplace_back();
  nodes_[me].feature = best.feature;
  nodes_[me].threshold = best.threshold;
  const std::size_t left = grow(rows, targets, hessians, left_idx, depth + 1, rng);
  const std::size_t right = grow(rows, targets, hessians, right_idx, depth + 1, rng);
  nodes_[me].left = left;
  nodes_[me].right = right;
  return me;
}

double RegressionTree::predict(const std::vector<double>& x) const {
  if (nodes_.empty()) throw std::logic_error("RegressionTree: not fitted");
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[node].feature);
    node = x[f] <= nodes_[node].threshold ? nodes_[node].left : nodes_[node].right;
  }
  return nodes_[node].value;
}

}  // namespace magic::baselines
