#include "baselines/ngram.hpp"

#include <cmath>
#include <stdexcept>

#include "asmx/parser.hpp"

namespace magic::baselines {

OpcodeNgramHasher::OpcodeNgramHasher(std::size_t n, std::size_t buckets)
    : n_(n), buckets_(buckets) {
  if (n == 0 || buckets == 0) {
    throw std::invalid_argument("OpcodeNgramHasher: n and buckets must be positive");
  }
}

std::vector<double> OpcodeNgramHasher::extract(const asmx::Program& program) const {
  std::vector<double> counts(buckets_, 0.0);
  const auto& insts = program.instructions;
  if (insts.size() < n_) return counts;
  for (std::size_t i = 0; i + n_ <= insts.size(); ++i) {
    // FNV-1a over the opcode-class codes of the window.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t k = 0; k < n_; ++k) {
      h ^= static_cast<std::uint64_t>(insts[i + k].opclass) + 1;
      h *= 0x100000001b3ULL;
    }
    counts[h % buckets_] += 1.0;
  }
  return counts;
}

std::vector<double> OpcodeNgramHasher::extract_listing(std::string_view listing) const {
  return extract(asmx::parse_listing(listing).program);
}

MultinomialNaiveBayes::MultinomialNaiveBayes(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0) throw std::invalid_argument("MultinomialNaiveBayes: alpha > 0 required");
}

void MultinomialNaiveBayes::fit(const std::vector<std::vector<double>>& rows,
                                const std::vector<std::size_t>& labels,
                                std::size_t num_classes) {
  if (rows.empty() || rows.size() != labels.size()) {
    throw std::invalid_argument("MultinomialNaiveBayes::fit: bad inputs");
  }
  const std::size_t d = rows.front().size();
  std::vector<double> class_count(num_classes, 0.0);
  std::vector<std::vector<double>> feature_sum(num_classes, std::vector<double>(d, 0.0));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (labels[i] >= num_classes) {
      throw std::out_of_range("MultinomialNaiveBayes::fit: label out of range");
    }
    class_count[labels[i]] += 1.0;
    for (std::size_t j = 0; j < d; ++j) feature_sum[labels[i]][j] += rows[i][j];
  }
  log_prior_.assign(num_classes, 0.0);
  log_likelihood_.assign(num_classes, std::vector<double>(d, 0.0));
  const double total = static_cast<double>(rows.size());
  for (std::size_t c = 0; c < num_classes; ++c) {
    log_prior_[c] = std::log((class_count[c] + 1.0) / (total + num_classes));
    double denom = alpha_ * static_cast<double>(d);
    for (std::size_t j = 0; j < d; ++j) denom += feature_sum[c][j];
    for (std::size_t j = 0; j < d; ++j) {
      log_likelihood_[c][j] = std::log((feature_sum[c][j] + alpha_) / denom);
    }
  }
}

std::vector<double> MultinomialNaiveBayes::predict_proba(
    const std::vector<double>& x) const {
  if (log_prior_.empty()) throw std::logic_error("MultinomialNaiveBayes: not fitted");
  std::vector<double> scores(log_prior_.size());
  for (std::size_t c = 0; c < scores.size(); ++c) {
    double s = log_prior_[c];
    for (std::size_t j = 0; j < x.size(); ++j) s += x[j] * log_likelihood_[c][j];
    scores[c] = s;
  }
  double m = scores.front();
  for (double s : scores) m = std::max(m, s);
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - m);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

std::size_t MultinomialNaiveBayes::predict(const std::vector<double>& x) const {
  const auto p = predict_proba(x);
  std::size_t best = 0;
  for (std::size_t c = 1; c < p.size(); ++c) {
    if (p[c] > p[best]) best = c;
  }
  return best;
}

NgramSequenceClassifier::NgramSequenceClassifier(std::size_t n, std::size_t buckets,
                                                 double alpha)
    : hasher_(n, buckets), bayes_(alpha) {}

void NgramSequenceClassifier::fit(const std::vector<std::string>& listings,
                                  const std::vector<std::size_t>& labels,
                                  std::size_t num_classes) {
  std::vector<std::vector<double>> rows;
  rows.reserve(listings.size());
  for (const auto& text : listings) rows.push_back(hasher_.extract_listing(text));
  bayes_.fit(rows, labels, num_classes);
}

std::vector<double> NgramSequenceClassifier::predict_proba(
    const std::string& listing) const {
  return bayes_.predict_proba(hasher_.extract_listing(listing));
}

std::size_t NgramSequenceClassifier::predict(const std::string& listing) const {
  return bayes_.predict(hasher_.extract_listing(listing));
}

}  // namespace magic::baselines
