#include "acfg/acfg.hpp"

#include <stdexcept>

namespace magic::acfg {

std::size_t Acfg::num_edges() const noexcept {
  std::size_t m = 0;
  for (const auto& out : out_edges) m += out.size();
  return m;
}

void Acfg::validate() const {
  const std::size_t n = out_edges.size();
  if (attributes.rank() != 2 || attributes.dim(0) != n) {
    throw std::invalid_argument("Acfg: attribute rows != vertex count");
  }
  for (const auto& out : out_edges) {
    for (std::size_t v : out) {
      if (v >= n) throw std::invalid_argument("Acfg: edge target out of range");
    }
  }
}

tensor::SparseMatrix Acfg::propagation_operator() const {
  return tensor::SparseMatrix::propagation_operator(out_edges);
}

}  // namespace magic::acfg
