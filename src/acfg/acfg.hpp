#pragma once
// Attributed control flow graph (ACFG): the ML-ready representation.
//
// An ACFG is the CFG topology (out-edge adjacency) plus a per-vertex
// attribute matrix X in R^{n x c} (Table I channels). It is the unit of
// input to DGCNN and what the MSKCFG/YANCFG corpora store on disk.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace magic::acfg {

/// ACFG sample: attributes + topology + (optional) family label.
struct Acfg {
  tensor::Tensor attributes;                       // (n x channels)
  std::vector<std::vector<std::size_t>> out_edges; // adjacency by vertex id
  int label = -1;                                  // family index; -1 = unlabeled
  std::string id;                                  // sample identifier

  std::size_t num_vertices() const noexcept { return out_edges.size(); }
  std::size_t num_edges() const noexcept;
  std::size_t num_channels() const {
    return attributes.rank() == 2 ? attributes.dim(1) : 0;
  }

  /// Validates internal consistency (attribute rows == vertices, edge
  /// targets in range). Throws std::invalid_argument on violation.
  void validate() const;

  /// DGCNN propagation operator D^-1 (A + I) of this graph.
  tensor::SparseMatrix propagation_operator() const;
};

}  // namespace magic::acfg
