#include "acfg/serialization.hpp"

#include <fstream>
#include <limits>
#include <stdexcept>

namespace magic::acfg {
namespace {

void expect_token(std::istream& is, const std::string& expected) {
  std::string tok;
  if (!(is >> tok) || tok != expected) {
    throw std::runtime_error("read_acfg: expected '" + expected + "', got '" + tok + "'");
  }
}

}  // namespace

void write_acfg(std::ostream& os, const Acfg& acfg) {
  acfg.validate();
  const std::size_t n = acfg.num_vertices();
  const std::size_t c = acfg.num_channels();
  os << "ACFG v1\n";
  os << "id " << (acfg.id.empty() ? "-" : acfg.id) << "\n";
  os << "label " << acfg.label << "\n";
  os << "vertices " << n << " channels " << c << "\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (j) os << ' ';
      os << acfg.attributes[i * c + j];
    }
    os << '\n';
  }
  os << "edges " << acfg.num_edges() << "\n";
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : acfg.out_edges[u]) os << u << ' ' << v << '\n';
  }
}

Acfg read_acfg(std::istream& is) {
  expect_token(is, "ACFG");
  expect_token(is, "v1");
  Acfg out;
  expect_token(is, "id");
  is >> out.id;
  if (out.id == "-") out.id.clear();
  expect_token(is, "label");
  is >> out.label;
  std::size_t n = 0, c = 0;
  expect_token(is, "vertices");
  is >> n;
  expect_token(is, "channels");
  is >> c;
  if (!is) throw std::runtime_error("read_acfg: bad header");
  out.attributes = tensor::Tensor({n, c});
  for (std::size_t i = 0; i < n * c; ++i) {
    if (!(is >> out.attributes[i])) throw std::runtime_error("read_acfg: bad attribute");
  }
  std::size_t m = 0;
  expect_token(is, "edges");
  is >> m;
  out.out_edges.assign(n, {});
  for (std::size_t e = 0; e < m; ++e) {
    std::size_t u = 0, v = 0;
    if (!(is >> u >> v) || u >= n || v >= n) {
      throw std::runtime_error("read_acfg: bad edge");
    }
    out.out_edges[u].push_back(v);
  }
  out.validate();
  return out;
}

void write_corpus(std::ostream& os, const std::vector<Acfg>& corpus) {
  os << "ACFG-CORPUS v1 count " << corpus.size() << "\n";
  for (const auto& a : corpus) write_acfg(os, a);
}

std::vector<Acfg> read_corpus(std::istream& is) {
  expect_token(is, "ACFG-CORPUS");
  expect_token(is, "v1");
  expect_token(is, "count");
  std::size_t count = 0;
  if (!(is >> count)) throw std::runtime_error("read_corpus: bad count");
  std::vector<Acfg> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) corpus.push_back(read_acfg(is));
  return corpus;
}

void save_corpus(const std::string& path, const std::vector<Acfg>& corpus) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_corpus: cannot open " + path);
  write_corpus(out, corpus);
  if (!out) throw std::runtime_error("save_corpus: write failed for " + path);
}

std::vector<Acfg> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_corpus: cannot open " + path);
  return read_corpus(in);
}

}  // namespace magic::acfg
