#pragma once
// Block-level attributes of Table I.
//
// Each CFG vertex (basic block) is summarized by numeric attributes that
// "initially ... do not contain any structural information" (§II-B): nine
// code-sequence counters plus two vertex-structure values. DGCNN then
// aggregates them through the graph structure.

#include <array>
#include <cstddef>
#include <string_view>

#include "cfg/cfg.hpp"

namespace magic::acfg {

/// Indices of the attribute channels, in Table I order.
enum AttributeChannel : std::size_t {
  kNumericConstants = 0,
  kTransferInsts = 1,
  kCallInsts = 2,
  kArithmeticInsts = 3,
  kCompareInsts = 4,
  kMovInsts = 5,
  kTerminationInsts = 6,
  kDataDeclInsts = 7,
  kTotalInsts = 8,
  kOffspring = 9,        // out-degree of the vertex
  kVertexInsts = 10,     // instructions in the vertex
  kNumChannels = 11,
};

/// Human-readable channel names (Table I rows).
std::string_view channel_name(std::size_t channel) noexcept;

/// Computes the Table I attribute vector of one basic block.
/// `out_degree` is the vertex's offspring count in the CFG.
std::array<double, kNumChannels> block_attributes(const cfg::BasicBlock& block,
                                                  std::size_t out_degree) noexcept;

}  // namespace magic::acfg
