#include "acfg/extractor.hpp"

#include "acfg/attributes.hpp"
#include "cfg/cfg_builder.hpp"
#include "obs/trace.hpp"

namespace magic::acfg {

Acfg extract_acfg(const cfg::ControlFlowGraph& graph) {
  // The attribute loop is the paper's "tensorize" stage: Table I features
  // per basic block into the n x kNumChannels matrix.
  MAGIC_OBS_SPAN(attrs, "extract.attributes");
  const std::size_t n = graph.num_blocks();
  Acfg out;
  out.out_edges = graph.adjacency();
  out.attributes = tensor::Tensor({n, static_cast<std::size_t>(kNumChannels)});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& block = graph.block(i);
    const auto attrs = block_attributes(block, out.out_edges[i].size());
    for (std::size_t c = 0; c < kNumChannels; ++c) {
      out.attributes[i * kNumChannels + c] = attrs[c];
    }
  }
  out.validate();
  return out;
}

Acfg extract_acfg_from_listing(std::string_view listing) {
  MAGIC_OBS_SPAN(total, "extract.pipeline");
  Acfg out = extract_acfg(cfg::CfgBuilder::build_from_listing(listing));
#ifdef MAGIC_OBS_BUILD
  if (obs::enabled()) {
    obs::MetricsRegistry::global().counter("extract.graphs").add();
  }
#endif
  return out;
}

std::vector<Acfg> extract_batch(const std::vector<std::string>& listings,
                                util::ThreadPool& pool) {
  std::vector<Acfg> results(listings.size());
  pool.parallel_for(listings.size(), [&](std::size_t i) {
    results[i] = extract_acfg_from_listing(listings[i]);
  });
  return results;
}

}  // namespace magic::acfg
