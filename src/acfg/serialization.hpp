#pragma once
// Plain-text ACFG serialization.
//
// Format (versioned, line-oriented, whitespace-separated):
//
//   ACFG v1
//   id <string-without-spaces>
//   label <int>
//   vertices <n> channels <c>
//   <c doubles>            x n lines (attribute rows)
//   edges <m>
//   <u> <v>                x m lines
//
// YANCFG-style corpora of pre-extracted CFGs are stored/loaded in this
// format; it round-trips exactly for the integer-valued Table I attributes.

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"

namespace magic::acfg {

/// Writes one ACFG.
void write_acfg(std::ostream& os, const Acfg& acfg);

/// Reads one ACFG; throws std::runtime_error on malformed input.
Acfg read_acfg(std::istream& is);

/// Writes a whole corpus (count header + concatenated records).
void write_corpus(std::ostream& os, const std::vector<Acfg>& corpus);

/// Reads a whole corpus.
std::vector<Acfg> read_corpus(std::istream& is);

/// File helpers.
void save_corpus(const std::string& path, const std::vector<Acfg>& corpus);
std::vector<Acfg> load_corpus(const std::string& path);

}  // namespace magic::acfg
