#pragma once
// CFG -> ACFG extraction, single and batched (the paper extracts ACFGs for
// 10,868 + 16,351 samples; batch extraction is parallelized over a thread
// pool as in the prototype's multi-threaded generator, §IV-C).

#include <functional>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"
#include "cfg/cfg.hpp"
#include "util/thread_pool.hpp"

namespace magic::acfg {

/// Computes the Table I attribute matrix for every block of `graph`.
/// Vertex i of the ACFG is block id i of the CFG.
Acfg extract_acfg(const cfg::ControlFlowGraph& graph);

/// End-to-end: textual assembly listing -> tagged program -> CFG -> ACFG.
Acfg extract_acfg_from_listing(std::string_view listing);

/// Parallel batch extraction of listings. Order of results matches inputs.
std::vector<Acfg> extract_batch(const std::vector<std::string>& listings,
                                util::ThreadPool& pool);

}  // namespace magic::acfg
