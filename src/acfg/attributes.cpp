#include "acfg/attributes.hpp"

#include "asmx/opcode_table.hpp"

namespace magic::acfg {

std::string_view channel_name(std::size_t channel) noexcept {
  switch (channel) {
    case kNumericConstants: return "# Numeric Constants";
    case kTransferInsts: return "# Transfer Instructions";
    case kCallInsts: return "# Call Instructions";
    case kArithmeticInsts: return "# Arithmetic Instructions";
    case kCompareInsts: return "# Compare Instructions";
    case kMovInsts: return "# Mov Instructions";
    case kTerminationInsts: return "# Termination Instructions";
    case kDataDeclInsts: return "# Data Declaration Instructions";
    case kTotalInsts: return "# Total Instructions";
    case kOffspring: return "# Offspring (Degree)";
    case kVertexInsts: return "# Instructions in the Vertex";
    default: return "?";
  }
}

std::array<double, kNumChannels> block_attributes(const cfg::BasicBlock& block,
                                                  std::size_t out_degree) noexcept {
  std::array<double, kNumChannels> a{};
  for (const auto& inst : block.instructions) {
    a[kNumericConstants] += static_cast<double>(inst.numeric_constant_count());
    const asmx::OpcodeClass c = inst.opclass;
    if (asmx::counts_as_transfer(c)) a[kTransferInsts] += 1.0;
    if (asmx::counts_as_call(c)) a[kCallInsts] += 1.0;
    if (asmx::counts_as_arithmetic(c)) a[kArithmeticInsts] += 1.0;
    if (asmx::counts_as_compare(c)) a[kCompareInsts] += 1.0;
    if (asmx::counts_as_mov(c)) a[kMovInsts] += 1.0;
    if (asmx::counts_as_termination(c)) a[kTerminationInsts] += 1.0;
    if (asmx::counts_as_data_decl(c)) a[kDataDeclInsts] += 1.0;
    a[kTotalInsts] += 1.0;
  }
  a[kOffspring] = static_cast<double>(out_degree);
  a[kVertexInsts] = static_cast<double>(block.instructions.size());
  return a;
}

}  // namespace magic::acfg
