#include "cfg/cfg.hpp"

#include <algorithm>
#include <sstream>

namespace magic::cfg {

void BasicBlock::add_successor(BlockId target) {
  if (std::find(successors.begin(), successors.end(), target) == successors.end()) {
    successors.push_back(target);
  }
}

BlockId ControlFlowGraph::add_block(std::uint64_t addr) {
  BasicBlock b;
  b.id = blocks_.size();
  b.start_addr = addr;
  blocks_.push_back(std::move(b));
  by_addr_.emplace(addr, blocks_.back().id);
  return blocks_.back().id;
}

std::size_t ControlFlowGraph::num_edges() const noexcept {
  std::size_t m = 0;
  for (const auto& b : blocks_) m += b.successors.size();
  return m;
}

BlockId ControlFlowGraph::block_at(std::uint64_t addr) const noexcept {
  const auto it = by_addr_.find(addr);
  return it == by_addr_.end() ? kInvalidBlock : it->second;
}

BlockId ControlFlowGraph::entry() const noexcept {
  if (blocks_.empty()) return kInvalidBlock;
  BlockId best = 0;
  for (BlockId i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].start_addr < blocks_[best].start_addr) best = i;
  }
  return best;
}

std::vector<std::vector<std::size_t>> ControlFlowGraph::adjacency() const {
  std::vector<std::vector<std::size_t>> adj(blocks_.size());
  for (const auto& b : blocks_) {
    adj[b.id].assign(b.successors.begin(), b.successors.end());
  }
  return adj;
}

std::size_t ControlFlowGraph::num_instructions() const noexcept {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b.instructions.size();
  return n;
}

std::string ControlFlowGraph::to_dot() const {
  std::ostringstream oss;
  oss << "digraph cfg {\n  node [shape=box];\n";
  for (const auto& b : blocks_) {
    oss << "  b" << b.id << " [label=\"0x" << std::hex << b.start_addr << std::dec
        << "\\n" << b.instructions.size() << " insts\"];\n";
  }
  for (const auto& b : blocks_) {
    for (BlockId s : b.successors) {
      oss << "  b" << b.id << " -> b" << s << ";\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace magic::cfg
