#include "cfg/graph_algo.hpp"

#include <algorithm>
#include <stack>

namespace magic::cfg {

std::vector<bool> reachable_from(const AdjacencyList& adj, std::size_t source) {
  std::vector<bool> seen(adj.size(), false);
  if (source >= adj.size()) return seen;
  std::stack<std::size_t> st;
  st.push(source);
  seen[source] = true;
  while (!st.empty()) {
    const std::size_t u = st.top();
    st.pop();
    for (std::size_t v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        st.push(v);
      }
    }
  }
  return seen;
}

std::size_t weakly_connected_components(const AdjacencyList& adj) {
  const std::size_t n = adj.size();
  AdjacencyList undirected(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : adj[u]) {
      undirected[u].push_back(v);
      undirected[v].push_back(u);
    }
  }
  std::vector<bool> seen(n, false);
  std::size_t components = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (seen[s]) continue;
    ++components;
    std::stack<std::size_t> st;
    st.push(s);
    seen[s] = true;
    while (!st.empty()) {
      const std::size_t u = st.top();
      st.pop();
      for (std::size_t v : undirected[u]) {
        if (!seen[v]) {
          seen[v] = true;
          st.push(v);
        }
      }
    }
  }
  return components;
}

std::size_t strongly_connected_components(const AdjacencyList& adj) {
  const std::size_t n = adj.size();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
  std::vector<std::size_t> index(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;
  std::size_t scc_count = 0;

  // Iterative Tarjan with an explicit DFS frame stack.
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.edge++];
        if (index[w] == kUnvisited) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          ++scc_count;
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            if (w == f.v) break;
          }
        }
        const std::size_t child = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[child]);
        }
      }
    }
  }
  return scc_count;
}

DegreeStats degree_stats(const AdjacencyList& adj) {
  DegreeStats s;
  for (const auto& out : adj) {
    s.edges += out.size();
    s.max = std::max(s.max, out.size());
  }
  s.mean = adj.empty() ? 0.0 : static_cast<double>(s.edges) / static_cast<double>(adj.size());
  return s;
}

std::vector<std::pair<std::size_t, std::size_t>> back_edges(const AdjacencyList& adj) {
  const std::size_t n = adj.size();
  std::vector<int> state(n, 0);  // 0 = white, 1 = on path, 2 = done
  std::vector<std::pair<std::size_t, std::size_t>> result;
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    state[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.edge++];
        if (state[w] == 1) {
          result.emplace_back(f.v, w);
        } else if (state[w] == 0) {
          state[w] = 1;
          frames.push_back({w, 0});
        }
      } else {
        state[f.v] = 2;
        frames.pop_back();
      }
    }
  }
  return result;
}

std::size_t dag_depth_from(const AdjacencyList& adj, std::size_t source) {
  const std::size_t n = adj.size();
  if (source >= n) return 0;
  // Memoized longest path with cycle guarding: vertices on the current path
  // contribute no further depth (each SCC is effectively traversed once).
  std::vector<int> state(n, 0);
  std::vector<std::size_t> depth(n, 0);
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  std::vector<Frame> frames{{source, 0}};
  state[source] = 1;
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.edge < adj[f.v].size()) {
      const std::size_t w = adj[f.v][f.edge++];
      if (state[w] == 0) {
        state[w] = 1;
        frames.push_back({w, 0});
      } else if (state[w] == 2) {
        depth[f.v] = std::max(depth[f.v], depth[w] + 1);
      }
      // state == 1 (on path): back edge, ignore.
    } else {
      state[f.v] = 2;
      const std::size_t child = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t parent = frames.back().v;
        depth[parent] = std::max(depth[parent], depth[child] + 1);
      }
    }
  }
  return depth[source];
}

bool has_cycle(const AdjacencyList& adj) {
  const std::size_t n = adj.size();
  std::vector<int> state(n, 0);  // 0 = white, 1 = on path, 2 = done
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    state[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj[f.v].size()) {
        const std::size_t w = adj[f.v][f.edge++];
        if (state[w] == 1) return true;
        if (state[w] == 0) {
          state[w] = 1;
          frames.push_back({w, 0});
        }
      } else {
        state[f.v] = 2;
        frames.pop_back();
      }
    }
  }
  return false;
}

}  // namespace magic::cfg
