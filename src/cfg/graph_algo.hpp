#pragma once
// Graph utilities over adjacency lists: reachability, components, degree
// statistics. Used for dataset validation, tests and CFG diagnostics.

#include <cstddef>
#include <vector>

namespace magic::cfg {

using AdjacencyList = std::vector<std::vector<std::size_t>>;

/// Vertices reachable from `source` (including it) via directed edges.
std::vector<bool> reachable_from(const AdjacencyList& adj, std::size_t source);

/// Number of weakly connected components.
std::size_t weakly_connected_components(const AdjacencyList& adj);

/// Number of strongly connected components (Tarjan, iterative).
std::size_t strongly_connected_components(const AdjacencyList& adj);

/// Out-degree histogram statistics.
struct DegreeStats {
  double mean = 0.0;
  std::size_t max = 0;
  std::size_t edges = 0;
};
DegreeStats degree_stats(const AdjacencyList& adj);

/// True if the directed graph contains a cycle.
bool has_cycle(const AdjacencyList& adj);

/// DFS back edges (u -> v with v on the current DFS path), a proxy for
/// loop count in CFG statistics. Deterministic for a given adjacency list
/// (DFS roots in index order, edges in list order).
std::vector<std::pair<std::size_t, std::size_t>> back_edges(const AdjacencyList& adj);

/// Longest path length (in edges) from `source` over the DAG of SCCs —
/// an upper-bound "depth" metric; cycles within an SCC count once.
std::size_t dag_depth_from(const AdjacencyList& adj, std::size_t source);

}  // namespace magic::cfg
