#pragma once
// Second pass of CFG construction (§IV-A, Algorithm 2): creates code blocks
// and connects them on the fly, consuming the tags written by the first
// pass (asmx::TaggingPass).

#include "asmx/instruction.hpp"
#include "cfg/cfg.hpp"

namespace magic::cfg {

/// Builds a ControlFlowGraph from a tagged program.
class CfgBuilder {
 public:
  /// Runs Algorithm 2 over `program`. The program must already be tagged
  /// (its first instruction marked `start`); build_from_listing() wraps
  /// parse + tag + build for convenience.
  ControlFlowGraph connect_blocks(const asmx::Program& program);

  /// One-shot pipeline: parse a textual listing, run the tagging pass and
  /// Algorithm 2. Diagnostics from parsing are dropped; use the staged API
  /// when they matter.
  static ControlFlowGraph build_from_listing(std::string_view listing);

 private:
  /// getBlockAtAddr of Algorithm 2: returns the block starting at addr,
  /// creating it first if needed.
  BlockId get_block_at_addr(ControlFlowGraph& g, std::uint64_t addr);
};

}  // namespace magic::cfg
