#pragma once
// Control flow graph: vertices are basic blocks ("a straight sequence of
// code or assembly instructions without any control flow transition except
// at its exit"), edges are fall-through or branch transitions (§II-A).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "asmx/instruction.hpp"

namespace magic::cfg {

using BlockId = std::size_t;
inline constexpr BlockId kInvalidBlock = static_cast<BlockId>(-1);

/// A basic block: contiguous instructions plus out-edges to successor blocks.
struct BasicBlock {
  BlockId id = kInvalidBlock;
  std::uint64_t start_addr = 0;
  std::vector<asmx::Instruction> instructions;
  std::vector<BlockId> successors;  // in insertion order; duplicates removed

  /// Appends a successor edge if not already present.
  void add_successor(BlockId target);
};

/// Directed control flow graph over basic blocks.
class ControlFlowGraph {
 public:
  /// Creates a new empty block starting at `addr` and returns its id.
  BlockId add_block(std::uint64_t addr);

  BasicBlock& block(BlockId id) { return blocks_.at(id); }
  const BasicBlock& block(BlockId id) const { return blocks_.at(id); }

  std::size_t num_blocks() const noexcept { return blocks_.size(); }
  std::size_t num_edges() const noexcept;
  const std::vector<BasicBlock>& blocks() const noexcept { return blocks_; }

  /// Block whose start address equals `addr`, or kInvalidBlock.
  BlockId block_at(std::uint64_t addr) const noexcept;

  /// Entry block (lowest start address), or kInvalidBlock when empty.
  BlockId entry() const noexcept;

  /// Out-edge adjacency list indexed by block id (successor block ids).
  std::vector<std::vector<std::size_t>> adjacency() const;

  /// Total instruction count across all blocks.
  std::size_t num_instructions() const noexcept;

  /// Graphviz DOT rendering (block address + instruction count per node).
  std::string to_dot() const;

 private:
  std::vector<BasicBlock> blocks_;
  std::unordered_map<std::uint64_t, BlockId> by_addr_;
};

}  // namespace magic::cfg
