#include "cfg/cfg_builder.hpp"

#include "asmx/parser.hpp"
#include "asmx/tagging.hpp"
#include "obs/trace.hpp"

namespace magic::cfg {

BlockId CfgBuilder::get_block_at_addr(ControlFlowGraph& g, std::uint64_t addr) {
  const BlockId existing = g.block_at(addr);
  if (existing != kInvalidBlock) return existing;
  return g.add_block(addr);
}

// Algorithm 2 (CfgBuilder::connectBlocks) of the paper. For each instruction
// in address order:
//   1. if it was tagged `start`, switch the current block to the block at
//      its address;
//   2. if it falls through and the next instruction starts a block, connect
//      current -> next;
//   3. if it branches, connect current -> block(branchTo) (creating the
//      target block if it does not exist yet);
//   4. append it to the current block and advance.
ControlFlowGraph CfgBuilder::connect_blocks(const asmx::Program& program) {
  ControlFlowGraph g;
  const auto& insts = program.instructions;
  BlockId curr_block = kInvalidBlock;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const asmx::Instruction& inst = insts[i];
    if (inst.start || curr_block == kInvalidBlock) {
      curr_block = get_block_at_addr(g, inst.addr);
    }
    BlockId next_block = curr_block;

    const asmx::Instruction* next_inst = i + 1 < insts.size() ? &insts[i + 1] : nullptr;
    if (next_inst != nullptr && inst.fall_through && next_inst->start) {
      next_block = get_block_at_addr(g, next_inst->addr);
      g.block(curr_block).add_successor(next_block);
    }

    if (inst.branch_to.has_value()) {
      const BlockId target = get_block_at_addr(g, *inst.branch_to);
      g.block(curr_block).add_successor(target);
    }

    g.block(curr_block).instructions.push_back(inst);
    curr_block = next_block;
  }
  return g;
}

ControlFlowGraph CfgBuilder::build_from_listing(std::string_view listing) {
  asmx::ParseResult parsed = asmx::parse_listing(listing);
  // Tagging (Alg. 1) and block connection (Alg. 2) share the cfg-build
  // span; parse has its own inside parse_listing.
  MAGIC_OBS_SPAN(cfg, "extract.cfg_build");
  asmx::TaggingPass tagger;
  tagger.run(parsed.program);
  CfgBuilder builder;
  return builder.connect_blocks(parsed.program);
}

}  // namespace magic::cfg
