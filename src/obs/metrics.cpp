#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>

namespace magic::obs {
namespace {

std::atomic<bool> g_enabled{false};

/// Renders a double as JSON: finite values verbatim (max_digits10 is
/// overkill for metrics; 12 significant digits keep snapshots readable),
/// non-finite values as 0 so the snapshot always parses.
void put_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  os.precision(12);
  os << v;
}

void put_key(std::ostream& os, const std::string& name) {
  // Metric names are code-chosen dotted identifiers; escape the two
  // characters that could break the JSON string just in case.
  os << '"';
  for (char c : name) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\":";
}

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

HistogramCell& MetricsRegistry::histogram(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

std::string MetricsRegistry::snapshot_json() const {
  // The registry mutex is held across the walk; cell mutexes are leaf
  // locks (never held while acquiring the registry mutex), so recording
  // threads block at most for one cell copy.
  util::MutexLock lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) os << ',';
    first = false;
    put_key(os, name);
    os << cell.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    if (!first) os << ',';
    first = false;
    put_key(os, name);
    put_number(os, cell.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cell] : histograms_) {
    if (!first) os << ',';
    first = false;
    put_key(os, name);
    const util::Histogram h = cell.snapshot();
    os << "{\"count\":" << h.count() << ",\"sum\":";
    put_number(os, h.sum());
    os << ",\"mean\":";
    put_number(os, h.mean());
    os << ",\"min\":";
    put_number(os, h.min());
    os << ",\"max\":";
    put_number(os, h.max());
    os << ",\"p50\":";
    put_number(os, h.quantile(0.50));
    os << ",\"p95\":";
    put_number(os, h.quantile(0.95));
    os << ",\"p99\":";
    put_number(os, h.quantile(0.99));
    os << '}';
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::reset_values() {
  util::MutexLock lock(mutex_);
  for (auto& [name, cell] : counters_) cell.reset();
  for (auto& [name, cell] : gauges_) cell.reset();
  for (auto& [name, cell] : histograms_) cell.reset();
}

}  // namespace magic::obs
