#pragma once
// RAII tracing for magic::obs: Span records a stage's wall time into the
// global MetricsRegistry (histogram "<stage>.ms" + counter "<stage>.calls"),
// ScopedTimer records into a caller-cached HistogramCell.
//
// Both are no-ops — no clock read, no registry lookup — while
// obs::enabled() is false, and the MAGIC_OBS_SPAN macro compiles away
// entirely when MAGIC_OBS_BUILD is not defined (CMake option MAGIC_OBS).
// At LogLevel::Debug a finishing Span additionally emits one structured
// log line (component "trace"), so `magicd --log-json` + debug level
// yields a machine-readable per-stage trace.

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace magic::obs {

/// Records elapsed milliseconds into `cell` on destruction (or stop()).
/// Constructed with nullptr it is inert. The cell reference must be cached
/// by the caller (see MetricsRegistry cost model).
class ScopedTimer {
 public:
  explicit ScopedTimer(HistogramCell* cell) noexcept
      : cell_(cell),
        start_(cell ? Clock::now() : Clock::time_point{}) {}
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records once and deactivates; returns the elapsed milliseconds
  /// (0 when inert or already stopped).
  double stop();

 private:
  using Clock = std::chrono::steady_clock;
  HistogramCell* cell_;
  Clock::time_point start_;
};

/// Per-stage trace span. Active only while obs::enabled(); an active span
/// bumps "<stage>.calls" and records "<stage>.ms" when it ends, and emits a
/// Debug-level structured log line.
class Span {
 public:
  explicit Span(std::string_view stage);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return cell_ != nullptr; }

 private:
  using Clock = std::chrono::steady_clock;
  std::string stage_;           // empty when inactive
  HistogramCell* cell_ = nullptr;
  Clock::time_point start_;
};

}  // namespace magic::obs

// Compile-away span macro for hot paths: MAGIC_OBS_SPAN(extract_parse,
// "extract.parse") declares a local span named after the first token.
#ifdef MAGIC_OBS_BUILD
#define MAGIC_OBS_SPAN(var, stage) ::magic::obs::Span magic_obs_span_##var { stage }
#else
#define MAGIC_OBS_SPAN(var, stage) \
  do {                             \
  } while (false)
#endif
