#include "obs/trace.hpp"

#include "util/logging.hpp"

namespace magic::obs {

double ScopedTimer::stop() {
  if (cell_ == nullptr) return 0.0;
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  cell_->record(ms);
  cell_ = nullptr;
  return ms;
}

Span::Span(std::string_view stage) {
  if (!enabled()) return;  // one relaxed load; no clock, no allocation
  stage_ = std::string(stage);
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter(stage_ + ".calls").add();
  cell_ = &registry.histogram(stage_ + ".ms");
  start_ = Clock::now();
}

Span::~Span() {
  if (cell_ == nullptr) return;
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  cell_->record(ms);
  MAGIC_CLOG(::magic::util::LogLevel::Debug, "trace",
             "stage=" << stage_ << " ms=" << ms);
}

}  // namespace magic::obs
