#pragma once
// magic::obs — process-wide observability: a registry of named counters,
// gauges and histograms that every pipeline stage (asm parse -> CFG -> ACFG
// -> DGCNN train/serve) records into, exported as one JSON snapshot.
//
// Cost model (the "no sink attached" contract):
//   * Handles are lock-cheap: Counter::add / Gauge::set are one relaxed
//     atomic op; HistogramCell::record takes a per-cell mutex (events that
//     reach a histogram are per-batch / per-verdict / per-epoch, never
//     per-element of a hot loop).
//   * Registry lookups (counter()/gauge()/histogram()) take the registry
//     mutex and should be done once and cached; the returned references
//     stay valid for the registry's lifetime (reset() zeroes values but
//     never invalidates handles).
//   * Tracing (obs::Span, trainer phase timers) is additionally gated on a
//     process-wide enabled() flag — one relaxed atomic load, no clock read,
//     no allocation when disabled — and compiles away entirely when
//     MAGIC_OBS_BUILD is not defined (same discipline as
//     MAGIC_CHECKED_BUILD; CMake option MAGIC_OBS, default ON).
//
// Numeric output: snapshot_json() renders non-finite doubles as 0 so the
// snapshot is always valid JSON.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/histogram.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::obs {

/// Process-wide switch for the *tracing* layer (spans, phase timers and the
/// serve-side global mirror). Metric handles themselves always work; this
/// flag only gates the instrumentation that would otherwise read clocks on
/// hot paths. Default: disabled.
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

/// Monotonically increasing event count (relaxed atomic).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (relaxed atomic double).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Thread-safe wrapper over util::Histogram (log-bucketed quantiles).
/// The cell mutex is a leaf lock: record()/snapshot() never acquire any
/// other capability while holding it.
class HistogramCell {
 public:
  void record(double value) MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    histogram_.record(value);
  }
  /// Consistent copy of the underlying histogram.
  util::Histogram snapshot() const MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return histogram_;
  }
  void reset() MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    histogram_.reset();
  }

 private:
  mutable util::Mutex mutex_;
  util::Histogram histogram_ MAGIC_GUARDED_BY(mutex_);
};

/// Named metric registry. Lookup creates on first use; names are free-form
/// dotted paths ("train.epoch.forward_ms"). Thread-safe; handle references
/// remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name) MAGIC_EXCLUDES(mutex_);
  Gauge& gauge(std::string_view name) MAGIC_EXCLUDES(mutex_);
  HistogramCell& histogram(std::string_view name) MAGIC_EXCLUDES(mutex_);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {"count","sum","mean","min","max","p50","p95","p99"}}}. Keys sorted.
  std::string snapshot_json() const MAGIC_EXCLUDES(mutex_);

  /// Zeroes every registered metric. Handles stay valid (tests and
  /// long-lived daemons rely on this; nothing is deallocated).
  void reset_values() MAGIC_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  // std::map: node-based, so mapped references are stable across inserts.
  // The registry mutex orders map mutation only; the *cells* handed out are
  // internally synchronized, which is why returning plain references out of
  // the locked scope is sound.
  std::map<std::string, Counter, std::less<>> counters_ MAGIC_GUARDED_BY(mutex_);
  std::map<std::string, Gauge, std::less<>> gauges_ MAGIC_GUARDED_BY(mutex_);
  std::map<std::string, HistogramCell, std::less<>> histograms_ MAGIC_GUARDED_BY(mutex_);
};

}  // namespace magic::obs
