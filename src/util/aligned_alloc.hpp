#pragma once
// Minimal C++17 allocator handing out over-aligned storage. Tensor keeps its
// doubles in a std::vector using this allocator at 64 bytes, so every buffer
// the SIMD kernels see starts on a cache line / full AVX-512 vector boundary
// (the kernels still use unaligned loads — row starts inside a matrix are
// only 8-byte aligned — but base alignment keeps the first rows and every
// whole-buffer pass on even vector boundaries and off split cache lines).

#include <cstddef>
#include <new>

namespace magic::util {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "AlignedAllocator: alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "AlignedAllocator: alignment below the type's natural one");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>& /*other*/) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t /*n*/) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }
};

// All instances of the same (T, Alignment) are interchangeable.
template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return false;
}

}  // namespace magic::util
