#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace magic::util {

Histogram::Histogram() : buckets_(kBuckets, 0) {}

std::size_t Histogram::bucket_of(double value) {
  if (!(value >= 1.0)) return 0;  // [0, 1) and NaN land in bucket 0
  const double idx = std::floor(4.0 * std::log2(value));
  const auto b = static_cast<std::size_t>(idx) + 1;
  return b >= kBuckets ? kBuckets - 1 : b;
}

double Histogram::bucket_low(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::exp2(static_cast<double>(bucket - 1) / 4.0);
}

double Histogram::bucket_high(std::size_t bucket) {
  return std::exp2(static_cast<double>(bucket) / 4.0);
}

void Histogram::record(double value) {
  if (!(value > 0.0)) value = 0.0;  // clamp negatives and NaN
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

double Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const noexcept { return min_; }
double Histogram::max() const noexcept { return max_; }

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]: the q-quantile is the value at ceil(q * count).
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (seen + buckets_[b] < rank) {
      seen += buckets_[b];
      continue;
    }
    // Interpolate inside the bucket, clamped to the observed range so the
    // estimate never exceeds max() or undercuts min().
    const double lo = std::max(bucket_low(b), min_);
    const double hi = std::min(bucket_high(b), max_);
    const double within =
        static_cast<double>(rank - seen) / static_cast<double>(buckets_[b]);
    return lo + (hi - lo) * within;
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace magic::util
