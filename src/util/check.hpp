#pragma once
// Checked-mode contract macros.
//
// MAGIC_CHECK(cond, streamed message)   -- contract assertion, active when
//                                          MAGIC_CHECKED_BUILD is defined.
// MAGIC_DCHECK(cond, streamed message)  -- debug-tier assertion for hot inner
//                                          loops; same gating, but documented
//                                          as removable first if checked-mode
//                                          overhead ever matters.
//
// Both macros compile to `((void)0)` when MAGIC_CHECKED_BUILD is not defined,
// so an unchecked Release build pays nothing (no branch, no argument
// evaluation). CMake defines MAGIC_CHECKED_BUILD for every target when the
// MAGIC_CHECKED_BUILD option is ON, and forces it ON whenever tests are
// built, so the test suite always runs with contracts live.
//
// Failures throw CheckError (a std::logic_error): a violated contract is a
// programming error in the caller, not recoverable input. The message is
// assembled with ostream operator<< only on the failing path:
//
//   MAGIC_CHECK(i < n, "index " << i << " out of range [0, " << n << ")");

#include <sstream>
#include <stdexcept>
#include <string>

namespace magic::util {

/// Thrown by MAGIC_CHECK / MAGIC_DCHECK on contract violation.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::ostringstream oss;
  oss << "MAGIC_CHECK failed: " << message << " [" << expr << " at " << file << ':'
      << line << ']';
  throw CheckError(oss.str());
}

}  // namespace detail
}  // namespace magic::util

#ifdef MAGIC_CHECKED_BUILD

#define MAGIC_CHECK(cond, msg)                                                    \
  do {                                                                            \
    if (!(cond)) {                                                                \
      std::ostringstream magic_check_oss_;                                        \
      magic_check_oss_ << msg; /* NOLINT(bugprone-macro-parentheses) */           \
      ::magic::util::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                          magic_check_oss_.str());                \
    }                                                                             \
  } while (false)

#define MAGIC_DCHECK(cond, msg) MAGIC_CHECK(cond, msg)

#else

#define MAGIC_CHECK(cond, msg) ((void)0)
#define MAGIC_DCHECK(cond, msg) ((void)0)

#endif  // MAGIC_CHECKED_BUILD
