#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "util/mutex.hpp"

namespace magic::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::atomic<int> g_format{static_cast<int>(LogFormat::Text)};
// Serializes the final stderr write of log_line (the capability guards the
// stream interleaving, not any data member).
Mutex g_mutex;  // magic-lint: guards(stderr interleaving)

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

/// Minimal JSON string-body escaping (logging cannot depend on serve::wire).
void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) noexcept {
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

std::string log_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(millis));
  return buf;
}

std::string render_log_line(LogFormat format, LogLevel level,
                            std::string_view component,
                            std::string_view message,
                            std::string_view timestamp) {
  std::string out;
  out.reserve(timestamp.size() + component.size() + message.size() + 48);
  if (format == LogFormat::Json) {
    out += "{\"ts\":\"";
    append_json_escaped(out, timestamp);
    out += "\",\"level\":\"";
    out += level_name_lower(level);
    out += '"';
    if (!component.empty()) {
      out += ",\"component\":\"";
      append_json_escaped(out, component);
      out += '"';
    }
    out += ",\"msg\":\"";
    append_json_escaped(out, message);
    out += "\"}";
    return out;
  }
  out += timestamp;
  out += " [";
  out += level_name(level);
  out += ']';
  if (!component.empty()) {
    out += ' ';
    out += component;
    out += ':';
  }
  out += ' ';
  out += message;
  return out;
}

void log_line(LogLevel level, std::string_view component,
              const std::string& message) {
  const std::string line =
      render_log_line(log_format(), level, component, message, log_timestamp());
  MutexLock lock(g_mutex);
  std::cerr << line << "\n";
}

void log_line(LogLevel level, const std::string& message) {
  log_line(level, std::string_view{}, message);
}

}  // namespace magic::util
