#include "util/rng.hpp"

#include <cmath>

namespace magic::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // xoshiro must not be seeded with the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::int64_t Rng::positive_count(double mean) noexcept {
  if (mean <= 1.0) return 1;
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return 1 + static_cast<std::int64_t>(-std::log(u) * (mean - 1.0));
}

std::int64_t Rng::concentrated_count(double mean, double rel_sd) noexcept {
  const double draw = normal(mean, rel_sd * mean);
  const auto rounded = static_cast<std::int64_t>(draw + 0.5);
  return rounded < 1 ? 1 : rounded;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace magic::util
