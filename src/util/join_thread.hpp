#pragma once
// JoinThread: RAII thread that joins on destruction.
//
// A detached or forgotten std::thread turns shutdown into a race; every
// thread in src/ therefore runs inside either util::ThreadPool or this
// wrapper (enforced by scripts/magic_lint.py — raw std::thread construction
// is allowed only here and in thread_pool.cpp). Unlike std::jthread there
// is no stop token: MAGIC's loops are stopped by closing the queue / flag
// they block on, after which the join is prompt by construction.

#include <thread>
#include <utility>

namespace magic::util {

/// Move-only thread handle; joins in the destructor if still joinable.
class JoinThread {
 public:
  JoinThread() noexcept = default;

  template <typename F, typename... Args>
  explicit JoinThread(F&& f, Args&&... args)
      : thread_(std::forward<F>(f), std::forward<Args>(args)...) {}

  JoinThread(JoinThread&&) noexcept = default;
  JoinThread& operator=(JoinThread&& other) noexcept {
    if (this != &other) {
      if (thread_.joinable()) thread_.join();  // never abandon a running thread
      thread_ = std::move(other.thread_);
    }
    return *this;
  }

  JoinThread(const JoinThread&) = delete;
  JoinThread& operator=(const JoinThread&) = delete;

  ~JoinThread() {
    if (thread_.joinable()) thread_.join();
  }

  bool joinable() const noexcept { return thread_.joinable(); }
  void join() { thread_.join(); }

 private:
  std::thread thread_;
};

}  // namespace magic::util
