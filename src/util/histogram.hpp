#pragma once
// Log-bucketed scalar histogram.
//
// Fixed-size geometric buckets (ratio 2^(1/4), ~19% wide) over [0, +inf),
// so record() is O(1), memory is constant, and quantile() is accurate to
// within one bucket width — plenty for latency percentiles (p50/p95/p99 in
// serve::ServerStats) where a few percent of relative error is noise.
// Not thread-safe; callers that share one histogram must lock around it.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace magic::util {

/// O(1)-record histogram of non-negative doubles with quantile queries.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to 0.
  void record(double value);

  /// Number of recorded observations.
  std::uint64_t count() const noexcept { return count_; }
  /// Sum of recorded observations (exact, not bucketed).
  double sum() const noexcept { return sum_; }
  /// Mean of recorded observations; 0 when empty.
  double mean() const noexcept;
  /// Smallest / largest recorded value (exact); 0 when empty.
  double min() const noexcept;
  double max() const noexcept;

  /// The q-quantile (q in [0, 1]) estimated from the bucket boundaries:
  /// linear interpolation inside the target bucket, exact min/max at the
  /// ends. Returns 0 when empty.
  double quantile(double q) const;

  /// Adds another histogram's observations into this one.
  void merge(const Histogram& other);

  void reset();

 private:
  static constexpr std::size_t kBuckets = 280;  // covers up to ~2^69
  static std::size_t bucket_of(double value);
  static double bucket_low(std::size_t bucket);
  static double bucket_high(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace magic::util
