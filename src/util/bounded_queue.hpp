#pragma once
// Bounded multi-producer multi-consumer FIFO queue.
//
// The admission-control primitive of the serving layer (src/serve): pushes
// never block — a full queue rejects immediately (try_push returns false),
// which the InferenceServer turns into a RejectedQueueFull verdict so heavy
// traffic degrades with fast, explicit backpressure instead of unbounded
// latency. Consumers block (with optional deadline) and drain remaining
// items after close(), which is what makes graceful SIGTERM drain work.
//
// Locking protocol (machine-checked via -Wthread-safety, see
// util/thread_annotations.hpp): items_ and closed_ are only touched under
// mutex_; every public method acquires it internally, so callers must not
// hold it across calls (MAGIC_EXCLUDES).

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::util {

/// Bounded MPMC FIFO with non-blocking producers and blocking consumers.
template <typename T>
class BoundedQueue {
 public:
  /// A capacity of 0 is clamped to 1.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push. Returns false when the queue is full or closed;
  /// the item is left in a moved-from state only on success.
  bool try_push(T& item) MAGIC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }
  bool try_push(T&& item) MAGIC_EXCLUDES(mutex_) { return try_push(item); }

  /// Blocking pop. Returns false only when the queue is closed and fully
  /// drained (the consumer-shutdown signal).
  bool pop(T& out) MAGIC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) cv_.wait(lock);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Pop with a deadline. Returns false on timeout *or* when closed and
  /// drained; callers that need to distinguish check closed() afterwards.
  /// (The serve batcher treats both as "flush what you have".)
  template <typename Clock, typename Duration>
  bool pop_until(T& out, const std::chrono::time_point<Clock, Duration>& deadline)
      MAGIC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        // One final look: the condition may have become true while waking.
        if (items_.empty()) return false;
        break;
      }
    }
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Closes the queue: subsequent pushes fail, queued items remain poppable
  /// (graceful drain). Idempotent.
  void close() MAGIC_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Closes the queue and removes every queued item, returning them so the
  /// caller can fail them explicitly (abort/fast-shutdown path).
  std::deque<T> close_and_drain() MAGIC_EXCLUDES(mutex_) {
    std::deque<T> drained;
    {
      MutexLock lock(mutex_);
      closed_ = true;
      drained.swap(items_);
    }
    cv_.notify_all();
    return drained;
  }

  std::size_t size() const MAGIC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }
  bool closed() const MAGIC_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> items_ MAGIC_GUARDED_BY(mutex_);
  bool closed_ MAGIC_GUARDED_BY(mutex_) = false;
};

}  // namespace magic::util
