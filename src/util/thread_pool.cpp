#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace magic::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

// State shared between the parallel_for caller and its helper tasks. Helpers
// hold a shared_ptr plus their own copy of fn's wrapper, so they stay valid
// even if they only get scheduled after the caller has already returned.
struct ParallelForState {
  ParallelForState(std::size_t n, std::function<void(std::size_t)> f)
      : total(n), fn(std::move(f)) {}

  const std::size_t total;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};

  Mutex m;
  CondVar cv;
  // Indices whose fn(i) returned or threw / first (in claim order) task
  // exception.
  std::size_t completed MAGIC_GUARDED_BY(m) = 0;
  std::exception_ptr first_error MAGIC_GUARDED_BY(m);

  // Claims indices until exhausted. Never lets an exception escape: a throw
  // is recorded and the loop continues, so completion is always signalled.
  void drain() MAGIC_EXCLUDES(m) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      MutexLock lock(m);
      if (err && !first_error) first_error = err;
      if (++completed == total) cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<ParallelForState>(n, fn);
  // The caller is one runner; spawn at most enough helpers to keep every
  // worker busy with one chunk-claiming loop each.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    try {
      submit([state] { state->drain(); });
    } catch (...) {
      break;  // pool shutting down: the caller drains everything itself
    }
  }
  state->drain();
  ParallelForState& shared = *state;
  std::exception_ptr first_error;
  {
    MutexLock lock(shared.m);
    while (shared.completed != shared.total) shared.cv.wait(lock);
    first_error = shared.first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace magic::util
