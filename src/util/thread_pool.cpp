#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace magic::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

// State shared between the parallel_for caller and its helper tasks. Helpers
// hold a shared_ptr plus their own copy of fn's wrapper, so they stay valid
// even if they only get scheduled after the caller has already returned.
struct ParallelForState {
  ParallelForState(std::size_t n, std::function<void(std::size_t)> f)
      : total(n), fn(std::move(f)) {}

  const std::size_t total;
  const std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};

  std::mutex m;
  std::condition_variable cv;
  std::size_t completed = 0;        // indices whose fn(i) returned or threw
  std::exception_ptr first_error;   // first (in claim order) task exception

  // Claims indices until exhausted. Never lets an exception escape: a throw
  // is recorded and the loop continues, so completion is always signalled.
  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(m);
      if (err && !first_error) first_error = err;
      if (++completed == total) cv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<ParallelForState>(n, fn);
  // The caller is one runner; spawn at most enough helpers to keep every
  // worker busy with one chunk-claiming loop each.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    try {
      submit([state] { state->drain(); });
    } catch (...) {
      break;  // pool shutting down: the caller drains everything itself
    }
  }
  state->drain();
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->completed == state->total; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace magic::util
