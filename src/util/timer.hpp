#pragma once
// Wall-clock stopwatch used by the §V-E overhead measurements
// (ACFG build time, training ms/instance, prediction ms/instance).

#include <chrono>

namespace magic::util {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/reset.
  double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace magic::util
