#pragma once
// Small string helpers shared by the assembly lexer, CSV writer and benches.

#include <string>
#include <string_view>
#include <vector>

namespace magic::util {

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; no empty fields are produced.
std::vector<std::string> split_whitespace(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Formats a double with fixed precision (e.g. for table cells).
std::string format_fixed(double value, int precision);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace magic::util
