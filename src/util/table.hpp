#pragma once
// ASCII table printer used by the benchmark harnesses to emit the same
// rows the paper's tables/figures report.

#include <string>
#include <vector>
#include <ostream>

namespace magic::util {

/// Accumulates rows and renders an aligned ASCII table with a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment; numeric-looking cells are right-aligned.
  void print(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace magic::util
