#pragma once
// Tiny CSV writer for exporting experiment results (EXPERIMENTS.md sources).

#include <string>
#include <vector>

namespace magic::util {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Writes header + rows to `path`. Throws std::runtime_error on IO failure.
  void write(const std::string& path) const;

  /// Renders to a string (used by tests).
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace magic::util
