#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace magic::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = align_numeric && looks_numeric(row[c]);
      const std::size_t pad = width[c] - row[c].size();
      os << ' ';
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
      os << " |";
    }
    os << "\n";
  };
  print_row(header_, false);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row, true);
}

}  // namespace magic::util
