#pragma once
// Fixed-size thread pool. The paper's prototype "can generate multiple ACFGs
// in parallel using Python's multi-threading library" (§IV-C); we use this
// pool for parallel ACFG extraction, parallel cross-validation folds, and
// parallel hyper-parameter evaluation.
//
// Locking protocol (machine-checked via -Wthread-safety): queue_ and
// stopping_ are only touched under mutex_; submit() and the worker loop
// acquire it internally.

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/join_thread.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::util {

/// Join-on-destruction thread pool with a simple FIFO task queue.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task and returns a future for its result. Tasks may not
  /// block on futures of tasks submitted to the same pool (no work stealing).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  ///
  /// Guarantees:
  ///  - The calling thread participates in the work, so parallel_for never
  ///    deadlocks even when invoked from inside a pool task (nested use) or
  ///    while every worker is busy with unrelated tasks.
  ///  - A throwing fn(i) cannot deadlock the call or drop the completion
  ///    signal: every remaining index still runs, completion of all n
  ///    indices is always awaited, and the *first* exception (in claim
  ///    order) is rethrown to the caller afterwards.
  ///  - fn is copied into state shared with the worker helpers, so the call
  ///    returns as soon as all n indices completed even if a helper task is
  ///    still queued behind unrelated work (it exits immediately once run).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<JoinThread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ MAGIC_GUARDED_BY(mutex_);
  bool stopping_ MAGIC_GUARDED_BY(mutex_) = false;
};

}  // namespace magic::util
