#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace magic::util {
namespace {

std::string escape(const std::string& field) {
  const bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) oss << ',';
      oss << escape(row[i]);
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace magic::util
