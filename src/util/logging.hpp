#pragma once
// Structured leveled logging used across MAGIC. Thread-safe; writes to
// stderr.
//
// Every line carries a UTC timestamp, the level, and an optional component
// tag, in one of two process-wide formats:
//
//   Text:  2026-08-06T12:34:56.789Z [INFO] serve: drained 3 requests
//   Json:  {"ts":"2026-08-06T12:34:56.789Z","level":"info",
//           "component":"serve","msg":"drained 3 requests"}
//
// Usage:
//   MAGIC_LOG_INFO("trained fold " << fold << " loss=" << loss);
//   MAGIC_CLOG(LogLevel::Debug, "trace", "stage=" << s << " ms=" << ms);
//
// Level is a process-wide setting (default Info); benches lower it to Warn
// so that table output stays clean. Format defaults to Text; `magicd
// --log-json` switches to Json for log-pipeline consumers.

#include <sstream>
#include <string>
#include <string_view>

namespace magic::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };
enum class LogFormat { Text = 0, Json = 1 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Process-wide output format (Text default).
void set_log_format(LogFormat format) noexcept;
LogFormat log_format() noexcept;

/// Renders one log line in `format` without emitting it (exposed so the
/// formatting is unit-testable; `timestamp` is an ISO-8601 UTC string).
std::string render_log_line(LogFormat format, LogLevel level,
                            std::string_view component,
                            std::string_view message,
                            std::string_view timestamp);

/// Current wall-clock time as "YYYY-MM-DDTHH:MM:SS.mmmZ" (UTC).
std::string log_timestamp();

/// Emits one formatted line to stderr under a mutex.
void log_line(LogLevel level, std::string_view component,
              const std::string& message);
/// Back-compat overload: no component tag.
void log_line(LogLevel level, const std::string& message);

}  // namespace magic::util

#define MAGIC_CLOG(level, component, expr)                          \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::magic::util::log_level())) {             \
      std::ostringstream magic_log_oss_;                            \
      magic_log_oss_ << expr;                                       \
      ::magic::util::log_line(level, component, magic_log_oss_.str()); \
    }                                                               \
  } while (0)

#define MAGIC_LOG_AT(level, expr) MAGIC_CLOG(level, "", expr)

#define MAGIC_LOG_DEBUG(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Debug, expr)
#define MAGIC_LOG_INFO(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Info, expr)
#define MAGIC_LOG_WARN(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Warn, expr)
#define MAGIC_LOG_ERROR(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Error, expr)
