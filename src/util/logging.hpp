#pragma once
// Minimal leveled logging used across MAGIC. Thread-safe; writes to stderr.
//
// Usage:
//   MAGIC_LOG_INFO("trained fold " << fold << " loss=" << loss);
// Level is a process-wide setting (default Info); benches lower it to Warn
// so that table output stays clean.

#include <sstream>
#include <string>

namespace magic::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one formatted line ("[LEVEL] message") to stderr under a mutex.
void log_line(LogLevel level, const std::string& message);

}  // namespace magic::util

#define MAGIC_LOG_AT(level, expr)                                   \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::magic::util::log_level())) {             \
      std::ostringstream magic_log_oss_;                            \
      magic_log_oss_ << expr;                                       \
      ::magic::util::log_line(level, magic_log_oss_.str());         \
    }                                                               \
  } while (0)

#define MAGIC_LOG_DEBUG(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Debug, expr)
#define MAGIC_LOG_INFO(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Info, expr)
#define MAGIC_LOG_WARN(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Warn, expr)
#define MAGIC_LOG_ERROR(expr) MAGIC_LOG_AT(::magic::util::LogLevel::Error, expr)
