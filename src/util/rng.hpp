#pragma once
// Deterministic pseudo-random number generation for the whole project.
//
// All stochastic components (weight init, dropout, dataset synthesis, fold
// shuffling, tree/feature subsampling) draw from a magic::util::Rng so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64.

#include <cstdint>
#include <vector>
#include <algorithm>
#include <cstddef>

namespace magic::util {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be handed
/// to <algorithm>/<random> facilities when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via splitmix64 so that nearby seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;
  /// Geometric-ish positive count: 1 + floor of exponential with given mean.
  /// Heavy-tailed; use for quantities where bursts are realistic.
  std::int64_t positive_count(double mean) noexcept;

  /// Concentrated positive count: round(Normal(mean, rel_sd * mean)),
  /// clamped to >= 1. Use where samples should stay near their profile.
  std::int64_t concentrated_count(double mean, double rel_sd = 0.2) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero/negative weights are treated as zero; if all are zero, returns 0.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element reference. Requires non-empty v.
  template <typename T>
  const T& choice(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  /// Derives an independent child generator; used to give each worker
  /// thread / fold / sample its own deterministic stream.
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace magic::util
