#pragma once
// Clang Thread Safety Analysis annotations (MAGIC_* spelling).
//
// These macros attach compile-time locking contracts to mutexes, guarded
// data and lock-discipline-sensitive functions. Under Clang with
// -Wthread-safety the compiler then proves, per translation unit, that
// every access to a MAGIC_GUARDED_BY field happens while its capability is
// held, that MAGIC_REQUIRES preconditions hold at every call site, and that
// scoped locks release what they acquired on every path. The CMake option
// MAGIC_THREAD_SAFETY turns the analysis into a hard gate
// (-Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis);
// see DESIGN.md "Static concurrency analysis".
//
// On non-Clang compilers (and on Clang builds without the attributes) every
// macro expands to nothing, so annotations are always safe to write.
//
// Annotate against the util::Mutex / util::MutexLock / util::CondVar
// wrappers (src/util/mutex.hpp): std::mutex carries no capability attribute
// in libstdc++, so raw std::mutex members are invisible to the analysis —
// and banned in src/ by scripts/magic_lint.py.

#if defined(__clang__) && (!defined(SWIG))
#define MAGIC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MAGIC_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a capability (lockable) type, e.g.
/// `class MAGIC_CAPABILITY("mutex") Mutex`.
#define MAGIC_CAPABILITY(x) MAGIC_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (util::MutexLock).
#define MAGIC_SCOPED_CAPABILITY MAGIC_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define MAGIC_GUARDED_BY(x) MAGIC_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define MAGIC_PT_GUARDED_BY(x) MAGIC_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that acquires the capability and holds it past return.
#define MAGIC_ACQUIRE(...) \
  MAGIC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability before returning.
#define MAGIC_RELEASE(...) \
  MAGIC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns `ret`.
#define MAGIC_TRY_ACQUIRE(ret, ...) \
  MAGIC_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must hold the capability (exclusively) across the call.
#define MAGIC_REQUIRES(...) \
  MAGIC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability: the function acquires it itself
/// (self-deadlock guard for public methods of self-locking classes).
#define MAGIC_EXCLUDES(...) MAGIC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the given capability
/// (accessor methods exposing a mutex).
#define MAGIC_RETURN_CAPABILITY(x) MAGIC_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function intentionally breaks the declared discipline
/// (e.g. a constructor-adjacent path the analysis cannot model). Every use
/// must carry a comment justifying it.
#define MAGIC_NO_THREAD_SAFETY_ANALYSIS \
  MAGIC_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Run-time assertion that the calling thread holds the capability (tells
/// the analysis to trust it from here on).
#define MAGIC_ASSERT_CAPABILITY(x) \
  MAGIC_THREAD_ANNOTATION_(assert_capability(x))
