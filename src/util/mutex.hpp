#pragma once
// Capability-annotated mutex primitives.
//
// util::Mutex / util::MutexLock / util::CondVar are thin wrappers over
// std::mutex / std::unique_lock / std::condition_variable whose only job is
// to carry the Clang Thread Safety attributes (src/util/thread_annotations
// .hpp). libstdc++'s std::mutex has no capability annotation, so locking it
// is invisible to -Wthread-safety; locking a util::Mutex is not. Every
// mutex member in src/ must be a util::Mutex with at least one
// MAGIC_GUARDED_BY field naming it (enforced by scripts/magic_lint.py).
//
// Idiom:
//
//   class Account {
//    public:
//     void deposit(int amount) MAGIC_EXCLUDES(mutex_) {
//       MutexLock lock(mutex_);
//       balance_ += amount;                  // OK: capability held
//     }
//    private:
//     Mutex mutex_;
//     int balance_ MAGIC_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition waits: the analysis is intra-procedural, so a wait *predicate
// lambda* would be analyzed as a separate, lock-free function and flagged.
// CondVar therefore exposes only predicate-free wait/wait_until and callers
// write the standard while-loop, which keeps every guarded read lexically
// inside the locked scope:
//
//   MutexLock lock(mutex_);
//   while (!done_) cv_.wait(lock);

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace magic::util {

/// Standard mutex carrying the "mutex" capability for -Wthread-safety.
class MAGIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MAGIC_ACQUIRE() { mutex_.lock(); }
  void unlock() MAGIC_RELEASE() { mutex_.unlock(); }
  bool try_lock() MAGIC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII lock over a util::Mutex (scoped capability). Non-movable: a lock's
/// lifetime IS the critical section. Backed by std::unique_lock so CondVar
/// can wait on it.
class MAGIC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MAGIC_ACQUIRE(mutex) : lock_(mutex.mutex_) {}
  ~MutexLock() MAGIC_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waitable under a MutexLock. Deliberately predicate-
/// free (see the header comment); callers loop on the guarded condition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `lock`, waits, and reacquires before returning.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace magic::util
