#include "asmx/instruction.hpp"

#include <algorithm>

namespace magic::asmx {

std::size_t Program::index_of(std::uint64_t addr) const noexcept {
  auto it = std::lower_bound(
      instructions.begin(), instructions.end(), addr,
      [](const Instruction& inst, std::uint64_t a) { return inst.addr < a; });
  if (it == instructions.end() || it->addr != addr) return npos;
  return static_cast<std::size_t>(it - instructions.begin());
}

}  // namespace magic::asmx
