#pragma once
// Instruction model for the assembly front end.
//
// MAGIC consumes disassembled listings (the paper uses IDA Pro .asm output;
// we parse an equivalent plain-text listing format). A parsed program is
// "a one-to-one mapping from sorted addresses to assembly instructions,
// P : Z+ -> I" (§IV-A). Instructions carry the tag set
// {start, branchTo, fallThrough, return} that the first pass computes and
// the second pass (CfgBuilder) consumes.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace magic::asmx {

/// Coarse operand classification; enough for attribute extraction.
enum class OperandKind {
  Register,   // eax, rbx, ...
  Immediate,  // numeric constant
  Memory,     // [...] effective address
  Target,     // code address / label reference (jump & call destinations)
  Other,
};

/// One operand with its raw text and (when numeric) decoded value.
struct Operand {
  OperandKind kind = OperandKind::Other;
  std::string text;
  std::uint64_t value = 0;  // immediates and targets

  bool is_numeric() const noexcept {
    return kind == OperandKind::Immediate || kind == OperandKind::Target;
  }
};

/// Semantic groups used both by CFG construction (jump/call/return) and by
/// the Table I block attributes (transfer/call/arith/compare/mov/termination/
/// data declaration).
enum class OpcodeClass {
  ConditionalJump,
  UnconditionalJump,
  Call,
  Return,
  Arithmetic,
  Compare,
  Mov,
  Termination,   // non-return terminators (hlt, int3, ud2, ...)
  DataDecl,      // db/dw/dd/dq/align pseudo-instructions
  Other,
};

/// A single disassembled instruction plus the CFG-construction tags
/// (Algorithm 1 of the paper).
struct Instruction {
  std::uint64_t addr = 0;
  std::uint32_t size = 1;  // bytes; fall-through target is addr + size
  std::string mnemonic;
  std::vector<Operand> operands;
  OpcodeClass opclass = OpcodeClass::Other;

  // --- tags written by the first (tagging) pass --------------------------
  bool start = false;                        // begins a basic block
  std::optional<std::uint64_t> branch_to;    // jump/call destination
  bool fall_through = false;                 // control may reach addr + size
  bool is_return = false;

  /// Number of numeric-constant operands (Table I attribute).
  std::size_t numeric_constant_count() const noexcept {
    std::size_t n = 0;
    for (const auto& op : operands) {
      if (op.kind == OperandKind::Immediate) ++n;
    }
    return n;
  }
};

/// A program: instructions sorted by strictly increasing address.
struct Program {
  std::vector<Instruction> instructions;

  /// Index of the instruction at `addr`, or npos.
  std::size_t index_of(std::uint64_t addr) const noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace magic::asmx
