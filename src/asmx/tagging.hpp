#pragma once
// First pass of CFG construction: instruction tagging (§IV-A, Algorithm 1).
//
// "To adapt to (potentially) hundreds of types of instructions, the first
// pass applies the visitor pattern to implement if-else free instruction
// tagging." Each instruction kind has its own visit method; the tagging
// visitor marks {start, branchTo, fallThrough, return} on the program.

#include "asmx/instruction.hpp"

namespace magic::asmx {

/// Visitor over instructions, dispatched on OpcodeClass. Override the
/// kinds you care about; defaults do nothing.
class InstructionVisitor {
 public:
  virtual ~InstructionVisitor() = default;

  virtual void visit_conditional_jump(Program&, std::size_t) {}
  virtual void visit_unconditional_jump(Program&, std::size_t) {}
  virtual void visit_call(Program&, std::size_t) {}
  virtual void visit_return(Program&, std::size_t) {}
  virtual void visit_termination(Program&, std::size_t) {}
  virtual void visit_default(Program&, std::size_t) {}
};

/// Dispatches `visitor` over every instruction of `program` in order.
void apply_visitor(Program& program, InstructionVisitor& visitor);

/// The tagging pass itself. After run():
///  - the first instruction and every branch target are marked `start`;
///  - conditional jumps carry branchTo and fallThrough, and both their
///    target and successor are marked `start` (Algorithm 1);
///  - unconditional jumps carry branchTo only; their successor starts a
///    new block;
///  - calls carry branchTo (the paper connects call edges in Algorithm 2)
///    and fall through;
///  - returns / terminators end their block; successors are marked `start`.
class TaggingPass : public InstructionVisitor {
 public:
  /// Runs the full first pass over the program.
  void run(Program& program);

  void visit_conditional_jump(Program& p, std::size_t i) override;
  void visit_unconditional_jump(Program& p, std::size_t i) override;
  void visit_call(Program& p, std::size_t i) override;
  void visit_return(Program& p, std::size_t i) override;
  void visit_termination(Program& p, std::size_t i) override;
  void visit_default(Program& p, std::size_t i) override;

  /// Branch targets that did not resolve to an instruction address
  /// (tail calls into imports, data, packer tricks); counted for telemetry.
  std::size_t unresolved_targets() const noexcept { return unresolved_targets_; }

 private:
  /// findDstAddr helper of Algorithm 1: first Target operand, if any.
  static std::optional<std::uint64_t> find_dst_addr(const Instruction& inst) noexcept;

  /// Marks P[addr].start when addr maps to an instruction; otherwise counts
  /// it as unresolved and returns false.
  bool mark_start_at(Program& p, std::uint64_t addr) noexcept;

  std::size_t unresolved_targets_ = 0;
};

}  // namespace magic::asmx
