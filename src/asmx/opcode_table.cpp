#include "asmx/opcode_table.hpp"

#include <array>
#include <unordered_map>

namespace magic::asmx {
namespace {

const std::unordered_map<std::string_view, OpcodeClass>& table() {
  static const std::unordered_map<std::string_view, OpcodeClass> t = {
      // Conditional jumps.
      {"jz", OpcodeClass::ConditionalJump},   {"jnz", OpcodeClass::ConditionalJump},
      {"je", OpcodeClass::ConditionalJump},   {"jne", OpcodeClass::ConditionalJump},
      {"ja", OpcodeClass::ConditionalJump},   {"jae", OpcodeClass::ConditionalJump},
      {"jb", OpcodeClass::ConditionalJump},   {"jbe", OpcodeClass::ConditionalJump},
      {"jg", OpcodeClass::ConditionalJump},   {"jge", OpcodeClass::ConditionalJump},
      {"jl", OpcodeClass::ConditionalJump},   {"jle", OpcodeClass::ConditionalJump},
      {"jo", OpcodeClass::ConditionalJump},   {"jno", OpcodeClass::ConditionalJump},
      {"js", OpcodeClass::ConditionalJump},   {"jns", OpcodeClass::ConditionalJump},
      {"jc", OpcodeClass::ConditionalJump},   {"jnc", OpcodeClass::ConditionalJump},
      {"jp", OpcodeClass::ConditionalJump},   {"jnp", OpcodeClass::ConditionalJump},
      {"jcxz", OpcodeClass::ConditionalJump}, {"jecxz", OpcodeClass::ConditionalJump},
      {"loop", OpcodeClass::ConditionalJump}, {"loope", OpcodeClass::ConditionalJump},
      {"loopne", OpcodeClass::ConditionalJump},
      // Unconditional jumps.
      {"jmp", OpcodeClass::UnconditionalJump},
      // Calls.
      {"call", OpcodeClass::Call},
      // Returns.
      {"ret", OpcodeClass::Return}, {"retn", OpcodeClass::Return},
      {"retf", OpcodeClass::Return}, {"iret", OpcodeClass::Return},
      // Arithmetic / logic.
      {"add", OpcodeClass::Arithmetic},  {"sub", OpcodeClass::Arithmetic},
      {"mul", OpcodeClass::Arithmetic},  {"imul", OpcodeClass::Arithmetic},
      {"div", OpcodeClass::Arithmetic},  {"idiv", OpcodeClass::Arithmetic},
      {"inc", OpcodeClass::Arithmetic},  {"dec", OpcodeClass::Arithmetic},
      {"neg", OpcodeClass::Arithmetic},  {"adc", OpcodeClass::Arithmetic},
      {"sbb", OpcodeClass::Arithmetic},  {"shl", OpcodeClass::Arithmetic},
      {"shr", OpcodeClass::Arithmetic},  {"sal", OpcodeClass::Arithmetic},
      {"sar", OpcodeClass::Arithmetic},  {"rol", OpcodeClass::Arithmetic},
      {"ror", OpcodeClass::Arithmetic},  {"rcl", OpcodeClass::Arithmetic},
      {"rcr", OpcodeClass::Arithmetic},  {"and", OpcodeClass::Arithmetic},
      {"or", OpcodeClass::Arithmetic},   {"xor", OpcodeClass::Arithmetic},
      {"not", OpcodeClass::Arithmetic},  {"lea", OpcodeClass::Arithmetic},
      {"bt", OpcodeClass::Arithmetic},   {"bts", OpcodeClass::Arithmetic},
      {"btr", OpcodeClass::Arithmetic},  {"bswap", OpcodeClass::Arithmetic},
      // Compare.
      {"cmp", OpcodeClass::Compare}, {"test", OpcodeClass::Compare},
      {"cmps", OpcodeClass::Compare}, {"cmpsb", OpcodeClass::Compare},
      {"cmpxchg", OpcodeClass::Compare},
      // Data movement.
      {"mov", OpcodeClass::Mov},    {"movzx", OpcodeClass::Mov},
      {"movsx", OpcodeClass::Mov},  {"movs", OpcodeClass::Mov},
      {"movsb", OpcodeClass::Mov},  {"movsd", OpcodeClass::Mov},
      {"xchg", OpcodeClass::Mov},   {"push", OpcodeClass::Mov},
      {"pop", OpcodeClass::Mov},    {"pusha", OpcodeClass::Mov},
      {"popa", OpcodeClass::Mov},   {"pushf", OpcodeClass::Mov},
      {"popf", OpcodeClass::Mov},   {"lods", OpcodeClass::Mov},
      {"lodsb", OpcodeClass::Mov},  {"stos", OpcodeClass::Mov},
      {"stosb", OpcodeClass::Mov},  {"leave", OpcodeClass::Mov},
      {"cdq", OpcodeClass::Mov},    {"cbw", OpcodeClass::Mov},
      {"cwde", OpcodeClass::Mov},   {"setz", OpcodeClass::Mov},
      {"setnz", OpcodeClass::Mov},  {"cmovz", OpcodeClass::Mov},
      {"cmovnz", OpcodeClass::Mov},
      // Non-return terminators.
      {"hlt", OpcodeClass::Termination}, {"ud2", OpcodeClass::Termination},
      {"int3", OpcodeClass::Termination},
      // Data declaration pseudo-instructions (IDA-style listings).
      {"db", OpcodeClass::DataDecl}, {"dw", OpcodeClass::DataDecl},
      {"dd", OpcodeClass::DataDecl}, {"dq", OpcodeClass::DataDecl},
      {"dt", OpcodeClass::DataDecl}, {"align", OpcodeClass::DataDecl},
  };
  return t;
}

}  // namespace

OpcodeClass classify_mnemonic(std::string_view mnemonic) noexcept {
  const auto& t = table();
  auto it = t.find(mnemonic);
  return it == t.end() ? OpcodeClass::Other : it->second;
}

bool is_control_transfer(OpcodeClass c) noexcept {
  return c == OpcodeClass::ConditionalJump || c == OpcodeClass::UnconditionalJump ||
         c == OpcodeClass::Call || c == OpcodeClass::Return ||
         c == OpcodeClass::Termination;
}

bool falls_through(OpcodeClass c) noexcept {
  return c != OpcodeClass::UnconditionalJump && c != OpcodeClass::Return &&
         c != OpcodeClass::Termination;
}

bool counts_as_transfer(OpcodeClass c) noexcept {
  return c == OpcodeClass::ConditionalJump || c == OpcodeClass::UnconditionalJump;
}
bool counts_as_call(OpcodeClass c) noexcept { return c == OpcodeClass::Call; }
bool counts_as_arithmetic(OpcodeClass c) noexcept { return c == OpcodeClass::Arithmetic; }
bool counts_as_compare(OpcodeClass c) noexcept { return c == OpcodeClass::Compare; }
bool counts_as_mov(OpcodeClass c) noexcept { return c == OpcodeClass::Mov; }
bool counts_as_termination(OpcodeClass c) noexcept {
  return c == OpcodeClass::Return || c == OpcodeClass::Termination;
}
bool counts_as_data_decl(OpcodeClass c) noexcept { return c == OpcodeClass::DataDecl; }

}  // namespace magic::asmx
