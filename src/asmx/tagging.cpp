#include "asmx/tagging.hpp"

namespace magic::asmx {

void apply_visitor(Program& program, InstructionVisitor& visitor) {
  for (std::size_t i = 0; i < program.instructions.size(); ++i) {
    switch (program.instructions[i].opclass) {
      case OpcodeClass::ConditionalJump: visitor.visit_conditional_jump(program, i); break;
      case OpcodeClass::UnconditionalJump: visitor.visit_unconditional_jump(program, i); break;
      case OpcodeClass::Call: visitor.visit_call(program, i); break;
      case OpcodeClass::Return: visitor.visit_return(program, i); break;
      case OpcodeClass::Termination: visitor.visit_termination(program, i); break;
      default: visitor.visit_default(program, i); break;
    }
  }
}

std::optional<std::uint64_t> TaggingPass::find_dst_addr(const Instruction& inst) noexcept {
  for (const auto& op : inst.operands) {
    if (op.kind == OperandKind::Target) return op.value;
  }
  return std::nullopt;
}

bool TaggingPass::mark_start_at(Program& p, std::uint64_t addr) noexcept {
  const std::size_t idx = p.index_of(addr);
  if (idx == Program::npos) {
    ++unresolved_targets_;
    return false;
  }
  p.instructions[idx].start = true;
  return true;
}

void TaggingPass::run(Program& program) {
  unresolved_targets_ = 0;
  if (!program.instructions.empty()) {
    program.instructions.front().start = true;  // entry block leader
  }
  apply_visitor(program, *this);
}

// Algorithm 1 of the paper, verbatim: the conditional jump branches to its
// target (marking it a leader) and falls through to the next instruction
// (also a leader).
void TaggingPass::visit_conditional_jump(Program& p, std::size_t i) {
  Instruction& cj = p.instructions[i];
  if (auto dst = find_dst_addr(cj)) {
    if (mark_start_at(p, *dst)) cj.branch_to = *dst;
  }
  cj.fall_through = true;
  mark_start_at(p, cj.addr + cj.size);
}

void TaggingPass::visit_unconditional_jump(Program& p, std::size_t i) {
  Instruction& j = p.instructions[i];
  if (auto dst = find_dst_addr(j)) {
    if (mark_start_at(p, *dst)) j.branch_to = *dst;
  }
  j.fall_through = false;
  // The instruction after an unconditional jump (if any) begins a new block.
  const std::size_t next = p.index_of(j.addr + j.size);
  if (next != Program::npos) p.instructions[next].start = true;
}

// Calls both branch to the callee (Algorithm 2 "creates an edge ... for any
// branching operations, e.g., jump or call") and fall through to the return
// site. External callees (no instruction at the target) produce no edge.
void TaggingPass::visit_call(Program& p, std::size_t i) {
  Instruction& c = p.instructions[i];
  if (auto dst = find_dst_addr(c)) {
    if (mark_start_at(p, *dst)) c.branch_to = *dst;
  }
  c.fall_through = true;
}

void TaggingPass::visit_return(Program& p, std::size_t i) {
  Instruction& r = p.instructions[i];
  r.is_return = true;
  r.fall_through = false;
  const std::size_t next = p.index_of(r.addr + r.size);
  if (next != Program::npos) p.instructions[next].start = true;
}

void TaggingPass::visit_termination(Program& p, std::size_t i) {
  Instruction& t = p.instructions[i];
  t.fall_through = false;
  const std::size_t next = p.index_of(t.addr + t.size);
  if (next != Program::npos) p.instructions[next].start = true;
}

void TaggingPass::visit_default(Program& p, std::size_t i) {
  p.instructions[i].fall_through = true;
}

}  // namespace magic::asmx
