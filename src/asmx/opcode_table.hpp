#pragma once
// Mnemonic -> OpcodeClass classification table (x86 family).
//
// The classes drive both CFG construction (which mnemonics branch, fall
// through, or terminate) and the Table I block attributes. Unknown
// mnemonics classify as Other, so the front end degrades gracefully on
// exotic listings — the paper notes the same tolerance for IDA output whose
// "correctness ... is not guaranteed".

#include <string_view>

#include "asmx/instruction.hpp"

namespace magic::asmx {

/// Classifies a lower-case mnemonic.
OpcodeClass classify_mnemonic(std::string_view mnemonic) noexcept;

/// True for classes that may transfer control away from the next address.
bool is_control_transfer(OpcodeClass c) noexcept;

/// True if instructions of this class continue to the next address
/// (conditional jumps and calls do; unconditional jumps/returns do not).
bool falls_through(OpcodeClass c) noexcept;

/// Table I attribute bucket membership.
bool counts_as_transfer(OpcodeClass c) noexcept;      // jmp/jcc
bool counts_as_call(OpcodeClass c) noexcept;          // call
bool counts_as_arithmetic(OpcodeClass c) noexcept;    // add/sub/...
bool counts_as_compare(OpcodeClass c) noexcept;       // cmp/test
bool counts_as_mov(OpcodeClass c) noexcept;           // mov family, push/pop
bool counts_as_termination(OpcodeClass c) noexcept;   // ret/hlt/...
bool counts_as_data_decl(OpcodeClass c) noexcept;     // db/dw/dd/...

}  // namespace magic::asmx
