#include "asmx/parser.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "asmx/opcode_table.hpp"
#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace magic::asmx {
namespace {

using util::split;
using util::to_lower;
using util::trim;

const std::unordered_set<std::string_view>& register_names() {
  static const std::unordered_set<std::string_view> regs = {
      "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
      "eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp",
      "ax",  "bx",  "cx",  "dx",  "si",  "di",  "bp",  "sp",
      "al",  "bl",  "cl",  "dl",  "ah",  "bh",  "ch",  "dh",
      "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
  };
  return regs;
}

bool is_target_label(std::string_view s) noexcept {
  return util::starts_with(s, "loc_") || util::starts_with(s, "sub_") ||
         util::starts_with(s, "locret_");
}

struct PendingTarget {
  std::size_t instruction_index;
  std::size_t operand_index;
  std::string label;
  std::size_t line;
};

// Address fields of a listing are hexadecimal by convention (IDA prints
// them without any prefix), so parse them in base 16 regardless of prefix.
bool parse_hex_address(std::string_view text, std::uint64_t& out) noexcept {
  text = trim(text);
  if (util::starts_with(text, "0x") || util::starts_with(text, "0X")) {
    text.remove_prefix(2);
  } else if (!text.empty() && (text.back() == 'h' || text.back() == 'H')) {
    text.remove_suffix(1);
  }
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = value * 16 + static_cast<std::uint64_t>(digit);
  }
  out = value;
  return true;
}

}  // namespace

bool parse_number(std::string_view text, std::uint64_t& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  int base = 10;
  if (util::starts_with(text, "0x") || util::starts_with(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
  } else if (text.back() == 'h' || text.back() == 'H') {
    base = 16;
    text.remove_suffix(1);
  }
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
  }
  out = value;
  return true;
}

bool is_register_name(std::string_view name) noexcept {
  return register_names().count(name) > 0;
}

Operand parse_operand(std::string_view text) {
  Operand op;
  std::string lower = to_lower(trim(text));
  // Strip assembler size/kind keywords ("jmp short loc_X", "mov eax,
  // dword ptr [ebx]", "push offset aString"). Repeat until stable so
  // stacked keywords ("dword ptr [x]") fully peel off.
  bool stripped = true;
  while (stripped) {
    stripped = false;
    for (const char* prefix :
         {"short ", "near ", "far ", "dword ", "qword ", "word ", "byte ",
          "ptr ", "offset "}) {
      if (util::starts_with(lower, prefix)) {
        lower = std::string(trim(std::string_view(lower).substr(
            std::string_view(prefix).size())));
        stripped = true;
      }
    }
  }
  // Canonical (lower-case, keyword-free) text: label resolution and tests
  // key off this form.
  op.text = lower;
  std::uint64_t value = 0;
  if (lower.empty()) {
    op.kind = OperandKind::Other;
  } else if (lower.front() == '[' && lower.back() == ']') {
    op.kind = OperandKind::Memory;
  } else if (is_register_name(lower)) {
    op.kind = OperandKind::Register;
  } else if (is_target_label(lower)) {
    op.kind = OperandKind::Target;  // value resolved later from the label map
  } else if (parse_number(lower, value)) {
    op.kind = OperandKind::Immediate;
    op.value = value;
  } else {
    op.kind = OperandKind::Other;
  }
  return op;
}

ParseResult parse_listing(std::string_view text) {
  MAGIC_OBS_SPAN(parse, "extract.parse");
  ParseResult result;
  std::unordered_map<std::string, std::uint64_t> labels;
  std::vector<PendingTarget> pending;
  std::vector<std::string> queued_labels;  // labels awaiting the next address

  std::size_t line_no = 0;
  std::size_t cursor = 0;
  while (cursor <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', cursor), text.size());
    std::string_view line = text.substr(cursor, eol - cursor);
    cursor = eol + 1;
    ++line_no;
    if (eol == text.size() && line.empty()) break;

    // Strip comments and whitespace.
    const std::size_t semi = line.find(';');
    if (semi != std::string_view::npos) line = line.substr(0, semi);
    line = trim(line);
    if (line.empty()) continue;

    // Pure label line: "name:".
    if (line.back() == ':' && line.find(' ') == std::string_view::npos) {
      queued_labels.emplace_back(line.substr(0, line.size() - 1));
      continue;
    }

    // Address + mnemonic [+ operands]. IDA exports prefix the address with
    // a segment name (".text:00401000"); accept both forms.
    const std::size_t sp = line.find_first_of(" \t");
    std::string_view addr_text = sp == std::string_view::npos ? line : line.substr(0, sp);
    const std::size_t seg_colon = addr_text.rfind(':');
    if (seg_colon != std::string_view::npos && seg_colon + 1 < addr_text.size()) {
      addr_text = addr_text.substr(seg_colon + 1);
    }
    std::uint64_t addr = 0;
    if (!parse_hex_address(addr_text, addr)) {
      throw std::runtime_error("parse_listing: line " + std::to_string(line_no) +
                               ": expected hex address, got '" +
                               std::string(addr_text) + "'");
    }
    for (auto& lbl : queued_labels) labels[to_lower(lbl)] = addr;
    queued_labels.clear();

    Instruction inst;
    inst.addr = addr;
    std::string_view rest = sp == std::string_view::npos ? std::string_view{} : trim(line.substr(sp));
    // IDA puts labels on the code line ("loc_401010:"); register and strip.
    while (!rest.empty()) {
      const std::size_t tok_end = std::min(rest.find_first_of(" \t"), rest.size());
      const std::string_view tok = rest.substr(0, tok_end);
      if (tok.size() < 2 || tok.back() != ':') break;
      labels[to_lower(tok.substr(0, tok.size() - 1))] = addr;
      rest = tok_end == rest.size() ? std::string_view{} : trim(rest.substr(tok_end));
    }
    if (rest.empty()) {
      // A bare address or a label-only line marks a location, not code.
      continue;
    }
    const std::size_t msp = rest.find_first_of(" \t");
    inst.mnemonic = to_lower(msp == std::string_view::npos ? rest : rest.substr(0, msp));
    inst.opclass = classify_mnemonic(inst.mnemonic);
    if (msp != std::string_view::npos) {
      for (const auto& piece : split(rest.substr(msp), ',')) {
        Operand op = parse_operand(piece);
        if (op.kind == OperandKind::Target) {
          pending.push_back({result.program.instructions.size(),
                             inst.operands.size(), to_lower(op.text), line_no});
        }
        inst.operands.push_back(std::move(op));
      }
    }
    // Branch/call targets written as raw addresses classify as Immediate
    // above; promote them to Target for control-transfer instructions and
    // re-read them as hex (address convention) in case they lacked a 0x.
    if (is_control_transfer(inst.opclass)) {
      for (auto& op : inst.operands) {
        if (op.kind == OperandKind::Immediate) {
          op.kind = OperandKind::Target;
          std::uint64_t target = 0;
          if (parse_hex_address(op.text, target)) op.value = target;
        }
      }
    }
    result.program.instructions.push_back(std::move(inst));
  }

  // Resolve label targets now that all labels are known.
  for (const auto& p : pending) {
    auto it = labels.find(p.label);
    auto& op = result.program.instructions[p.instruction_index].operands[p.operand_index];
    if (it == labels.end()) {
      result.diagnostics.push_back({p.line, "unresolved target label '" + p.label + "'"});
      op.kind = OperandKind::Other;
    } else {
      op.value = it->second;
    }
  }

  // Sort by address, flag duplicates, and infer sizes from address gaps.
  auto& insts = result.program.instructions;
  std::stable_sort(insts.begin(), insts.end(),
                   [](const Instruction& a, const Instruction& b) { return a.addr < b.addr; });
  for (std::size_t i = 0; i + 1 < insts.size();) {
    if (insts[i].addr == insts[i + 1].addr) {
      result.diagnostics.push_back(
          {0, "duplicate address 0x" + std::to_string(insts[i].addr) + "; keeping first"});
      insts.erase(insts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
  for (std::size_t i = 0; i < insts.size(); ++i) {
    if (i + 1 < insts.size()) {
      const std::uint64_t gap = insts[i + 1].addr - insts[i].addr;
      insts[i].size = gap > 15 ? 1u : static_cast<std::uint32_t>(gap);
      // A >15-byte gap cannot be one x86 instruction; treat as a section
      // break (size 1 so the fall-through address stays inside the gap and
      // resolves to nothing).
    } else {
      insts[i].size = 1;
    }
  }
  return result;
}

}  // namespace magic::asmx
