#pragma once
// Parser for plain-text disassembly listings.
//
// Accepted line forms (comments start with ';' and run to end of line):
//
//   some_label:                      ; symbolic label for the next address
//   401000 push ebp                  ; hex address + mnemonic + operands
//   0x401004 mov ebp, esp            ; 0x-prefixed addresses also accepted
//   401008 jz loc_401020             ; targets may be labels or addresses
//
// This mirrors the information content of an IDA Pro .asm export: a sorted
// address -> instruction mapping (the paper's P : Z+ -> I). Instruction
// sizes are inferred from the gap to the next address (the last instruction
// gets size 1), which is exactly what the fall-through rule addr + size
// needs.

#include <string>
#include <string_view>
#include <vector>

#include "asmx/instruction.hpp"

namespace magic::asmx {

/// Non-fatal parse issues (unknown target labels, duplicate addresses, ...).
struct ParseDiagnostic {
  std::size_t line = 0;
  std::string message;
};

/// Result of parsing a listing.
struct ParseResult {
  Program program;
  std::vector<ParseDiagnostic> diagnostics;
};

/// Parses a whole listing. Throws std::runtime_error only on malformed
/// structure (unparseable address with non-empty code field); recoverable
/// issues are reported as diagnostics, matching the tolerance needed for
/// real-world disassembly.
ParseResult parse_listing(std::string_view text);

/// Parses a single operand string into its classification.
Operand parse_operand(std::string_view text);

/// Parses "401000", "0x401000" or "401000h"; returns false if not numeric.
bool parse_number(std::string_view text, std::uint64_t& out) noexcept;

/// True if `name` names an x86 register (any common 8/16/32/64-bit one).
bool is_register_name(std::string_view name) noexcept;

}  // namespace magic::asmx
