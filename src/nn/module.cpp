#include "nn/module.hpp"

#include <stdexcept>
#include <string>

namespace magic::nn {

void Module::require_batch_inference(const char* who) const {
  if (grad_enabled_) {
    throw std::logic_error(std::string(who) +
                           ": forward_batch is inference-only; disable grad "
                           "caching first (set_grad_enabled(false))");
  }
}

Shape batch_item_shape(const Tensor& input, const char* who) {
  if (input.rank() < 2) {
    throw std::invalid_argument(std::string(who) +
                                ": batched input needs a leading batch "
                                "dimension, got " + input.describe());
  }
  if (input.dim(0) == 0) {
    throw std::invalid_argument(std::string(who) + ": empty batch");
  }
  return Shape(input.shape().begin() + 1, input.shape().end());
}

Tensor Module::forward_batch(const Tensor& input) {
  const std::string who = name() + "::forward_batch";
  require_batch_inference(who.c_str());
  const Shape item_shape = batch_item_shape(input, who.c_str());
  const std::size_t batch = input.dim(0);
  const std::size_t item_size = input.size() / batch;

  Tensor out;
  std::size_t out_item = 0;
  for (std::size_t s = 0; s < batch; ++s) {
    Tensor item(item_shape);
    for (std::size_t i = 0; i < item_size; ++i) {
      item[i] = input[s * item_size + i];
    }
    const Tensor y = forward(item);
    if (s == 0) {
      Shape out_shape{batch};
      for (std::size_t d : y.shape()) out_shape.push_back(d);
      out_item = y.size();
      out = Tensor(std::move(out_shape));
    } else if (y.size() != out_item) {
      throw std::logic_error(who + ": per-sample output shape changed "
                                   "within one batch");
    }
    for (std::size_t i = 0; i < out_item; ++i) out[s * out_item + i] = y[i];
  }
  return out;
}

}  // namespace magic::nn
