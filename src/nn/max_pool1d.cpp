#include "nn/max_pool1d.hpp"

#include <stdexcept>

#include "nn/shape_contract.hpp"

namespace magic::nn {

MaxPool1D::MaxPool1D(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("MaxPool1D: kernel and stride must be positive");
  }
}

Tensor MaxPool1D::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("MaxPool1D::forward", input, shape::any("C"),
                       shape::at_least("L", kernel_));
  if (input.rank() != 2) throw std::invalid_argument("MaxPool1D: rank-2 input");
  const std::size_t C = input.dim(0);
  const std::size_t L = input.dim(1);
  if (L < kernel_) throw std::invalid_argument("MaxPool1D: input shorter than kernel");
  const std::size_t Lo = (L - kernel_) / stride_ + 1;
  input_shape_ = input.shape();
  argmax_.assign(C * Lo, 0);
  Tensor out({C, Lo});
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t t = 0; t < Lo; ++t) {
      std::size_t best = c * L + t * stride_;
      for (std::size_t k = 1; k < kernel_; ++k) {
        const std::size_t idx = c * L + t * stride_ + k;
        if (input[idx] > input[best]) best = idx;
      }
      argmax_[c * Lo + t] = best;
      out[c * Lo + t] = input[best];
    }
  }
  return out;
}

Tensor MaxPool1D::forward_batch(const Tensor& input) {
  require_batch_inference("MaxPool1D::forward_batch");
  (void)batch_item_shape(input, "MaxPool1D::forward_batch");
  if (input.rank() != 3) {
    throw std::invalid_argument("MaxPool1D::forward_batch: rank-3 input required, got " +
                                input.describe());
  }
  const std::size_t batch = input.dim(0);
  const std::size_t C = input.dim(1);
  const std::size_t L = input.dim(2);
  if (L < kernel_) {
    throw std::invalid_argument("MaxPool1D::forward_batch: input shorter than kernel");
  }
  const std::size_t Lo = (L - kernel_) / stride_ + 1;
  Tensor out({batch, C, Lo});
  for (std::size_t s = 0; s < batch; ++s) {
    const double* in = input.data() + s * C * L;
    double* po = out.data() + s * C * Lo;
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t t = 0; t < Lo; ++t) {
        double best = in[c * L + t * stride_];
        for (std::size_t k = 1; k < kernel_; ++k) {
          const double v = in[c * L + t * stride_ + k];
          if (v > best) best = v;
        }
        po[c * Lo + t] = best;
      }
    }
  }
  return out;
}

Tensor MaxPool1D::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool1D::backward: grad shape mismatch");
  }
  Tensor grad_in = Tensor::zeros(input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_in[argmax_[i]] += grad_output[i];
  }
  return grad_in;
}

}  // namespace magic::nn
