#pragma once
// Fully connected layer: Y = X W + b.

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace magic::nn {

/// Affine layer. Accepts rank-1 input (treated as 1 x in) or rank-2 input
/// (batch x in); the output mirrors the input rank.
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// One (batch x in) x (in x out) GEMM — forward() already accepts rank-2
  /// input, so the batch runs fused with no per-sample slicing.
  Tensor forward_batch(const Tensor& input) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Linear"; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  bool has_bias_;
  Parameter weight_;  // (in x out)
  Parameter bias_;    // (out)
  Tensor cached_input_;  // as 2-D; only stored while grad caching is enabled
  Tensor dw_scratch_;    // reused (in x out) buffer for X^T dY
  bool input_was_rank1_ = false;
  bool cache_valid_ = false;
};

}  // namespace magic::nn
