#include "nn/sequential.hpp"

#include "nn/shape_contract.hpp"

namespace magic::nn {

Tensor Sequential::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Sequential::forward", input);  // children check
  Tensor x = input;
  for (auto& m : modules_) x = m->forward(x);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& m : modules_) {
    for (Parameter* p : m->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

}  // namespace magic::nn
