#include "nn/sequential.hpp"

#include "nn/shape_contract.hpp"

namespace magic::nn {

Tensor Sequential::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Sequential::forward", input);  // children check
  Tensor x = input;
  for (auto& m : modules_) x = m->forward(x);
  return x;
}

Tensor Sequential::forward_batch(const Tensor& input) {
  require_batch_inference("Sequential::forward_batch");
  if (modules_.empty()) return input;
  // The first child reads the caller's tensor; every intermediate is owned
  // by this loop, so reshape/elementwise children recycle its storage
  // instead of copying (see Module::forward_batch_owned).
  Tensor x = modules_.front()->forward_batch(input);
  for (std::size_t i = 1; i < modules_.size(); ++i) {
    x = modules_[i]->forward_batch_owned(std::move(x));
  }
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& m : modules_) {
    for (Parameter* p : m->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) m->set_training(training);
}

void Sequential::set_grad_enabled(bool enabled) {
  Module::set_grad_enabled(enabled);
  for (auto& m : modules_) m->set_grad_enabled(enabled);
}

void Sequential::reseed_rng(std::uint64_t seed) {
  // splitmix64 finalizer mixes the child index into the seed so each module
  // gets an uncorrelated stream.
  std::size_t index = 0;
  for (auto& m : modules_) {
    std::uint64_t s = seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(++index);
    s ^= s >> 30;
    s *= 0xBF58476D1CE4E5B9ULL;
    s ^= s >> 27;
    s *= 0x94D049BB133111EBULL;
    s ^= s >> 31;
    m->reseed_rng(s);
  }
}

}  // namespace magic::nn
