#pragma once
// Max pooling over the length axis of a (channels x length) tensor; used
// between the two Conv1D layers of the original DGCNN head.

#include "nn/module.hpp"

#include <vector>

namespace magic::nn {

/// MaxPool1D with kernel/stride; output length floor((L - kernel)/stride)+1.
class MaxPool1D : public Module {
 public:
  MaxPool1D(std::size_t kernel, std::size_t stride);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (batch x C x L) -> (batch x C x L_out); no argmax bookkeeping.
  Tensor forward_batch(const Tensor& input) override;
  std::string name() const override { return "MaxPool1D"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

}  // namespace magic::nn
