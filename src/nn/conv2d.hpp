#pragma once
// 2-D convolution over (channels x height x width) tensors.
//
// Used by the AdaptiveMaxPooling head (§III-C): a Conv2D runs over the
// concatenated graph-convolution output Z^{1:h} (viewed as a one-channel
// image) before adaptive max pooling, and a small VGG-inspired Conv2D stack
// follows the pooling.

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace magic::nn {

/// Conv2D with stride 1 and symmetric zero padding.
/// Input (C_in x H x W); output (C_out x H + 2p - kh + 1 x W + 2p - kw + 1).
class Conv2D : public Module {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_h,
         std::size_t kernel_w, std::size_t padding, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (batch x C_in x H x W) -> (batch x C_out x Ho x Wo); each sample runs
  /// the same kernel as forward(), so results match per sample exactly.
  Tensor forward_batch(const Tensor& input) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Conv2D"; }

 private:
  /// Shared convolution core: one (C_in x H x W) image into (C_out x Ho x Wo).
  void convolve_into(const double* pin, double* pout, std::size_t H,
                     std::size_t W) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kh_;
  std::size_t kw_;
  std::size_t pad_;
  Parameter weight_;  // (C_out x C_in x kh x kw)
  Parameter bias_;    // (C_out)
  Tensor cached_input_;
  bool cache_valid_ = false;
};

}  // namespace magic::nn
