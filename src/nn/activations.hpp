#pragma once
// Elementwise activation modules: ReLU (paper's worked example, Fig. 3/5),
// Tanh (original DGCNN's graph-conv nonlinearity) and Sigmoid.

#include <cstddef>

#include "nn/module.hpp"

namespace magic::nn {

/// f(x) = max(x, 0).
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Elementwise, so the batch is just a bigger tensor (no slicing).
  Tensor forward_batch(const Tensor& input) override;
  /// Owned input: clamps in place, reusing the caller's storage.
  Tensor forward_batch_owned(Tensor&& input) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
  bool cache_valid_ = false;
};

/// f(x) = tanh(x).
class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
  bool cache_valid_ = false;
};

/// f(x) = 1 / (1 + exp(-x)).
class Sigmoid : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
  bool cache_valid_ = false;
};

/// Which nonlinearity a graph-convolution layer applies (Eq. 1's f).
enum class Activation { ReLU, Tanh, Identity };

/// Functional forms used by layers that fuse the activation.
double activate(Activation a, double x) noexcept;
/// Derivative expressed via the *pre-activation* input x.
double activate_grad(Activation a, double x) noexcept;

/// Bulk forms dispatching through the SIMD kernel table; layers that touch
/// whole rows/buffers use these instead of per-element activate() calls.
/// Applies the nonlinearity to x[0..n) in place.
void apply_activation(Activation a, double* x, std::size_t n);
/// grad[i] *= f'(preact[i]) for i in [0, n).
void apply_activation_grad(Activation a, double* grad, const double* preact,
                           std::size_t n);

}  // namespace magic::nn
