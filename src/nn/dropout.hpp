#pragma once
// Inverted dropout. The paper tunes "Dropout Rate" in {0.1, 0.5} (Table II).

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace magic::nn {

/// Inverted dropout: during training each element is zeroed with probability
/// `rate` and survivors are scaled by 1/(1-rate); evaluation is identity.
class Dropout : public Module {
 public:
  /// Derives an independent owned stream from `rng` (the module may outlive
  /// the constructor argument).
  Dropout(double rate, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Identity in eval mode; throws std::logic_error while training (batched
  /// inference never draws masks).
  Tensor forward_batch(const Tensor& input) override;
  /// Owned input: the eval-mode identity passes the storage straight through.
  Tensor forward_batch_owned(Tensor&& input) override;
  /// Replaces the owned mask stream; the parallel trainer reseeds per
  /// (epoch, sample) so masks are independent of worker assignment.
  void reseed_rng(std::uint64_t seed) override;
  std::string name() const override { return "Dropout"; }

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
  util::Rng rng_;
  Tensor mask_;  // scale factors applied in the last training forward
  bool mask_valid_ = false;
};

}  // namespace magic::nn
