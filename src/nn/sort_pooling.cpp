#include "nn/sort_pooling.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/shape_contract.hpp"

namespace magic::nn {

SortPooling::SortPooling(std::size_t k) : k_(k) {
  if (k == 0) throw std::invalid_argument("SortPooling: k must be positive");
}

Tensor SortPooling::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("SortPooling::forward", input, shape::any("n"),
                       shape::any("C"));
  if (input.rank() != 2) throw std::invalid_argument("SortPooling: rank-2 input");
  const std::size_t n = input.dim(0), c = input.dim(1);
  input_shape_ = input.shape();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0u);
  // Decreasing by the last channel; ties broken by the previous channel,
  // continuing leftward until all ties are broken (§III-A3). A final
  // comparison on the original index keeps the sort total and deterministic.
  std::stable_sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    for (std::size_t col = c; col-- > 0;) {
      const double va = input[a * c + col];
      const double vb = input[b * c + col];
      if (va != vb) return va > vb;
    }
    return a < b;
  });
  Tensor out({k_, c});
  const std::size_t keep = std::min(n, k_);
  for (std::size_t p = 0; p < keep; ++p) {
    const std::size_t src = order_[p];
    for (std::size_t j = 0; j < c; ++j) out[p * c + j] = input[src * c + j];
  }
  // Rows beyond n stay zero (padding for small graphs).
  return out;
}

Tensor SortPooling::forward_packed(const Tensor& packed,
                                   const std::vector<std::size_t>& offsets) {
  require_batch_inference("SortPooling::forward_packed");
  if (packed.rank() != 2) {
    throw std::invalid_argument("SortPooling::forward_packed: rank-2 input");
  }
  if (offsets.size() < 2 || offsets.front() != 0 ||
      offsets.back() != packed.dim(0)) {
    throw std::invalid_argument(
        "SortPooling::forward_packed: offsets must run 0..total_vertices");
  }
  const std::size_t batch = offsets.size() - 1;
  const std::size_t c = packed.dim(1);
  Tensor out = Tensor::zeros({batch, k_, c});
  std::vector<std::size_t> local;
  for (std::size_t g = 0; g < batch; ++g) {
    const std::size_t base = offsets[g];
    if (offsets[g + 1] < base) {
      throw std::invalid_argument("SortPooling::forward_packed: offsets must be non-decreasing");
    }
    const std::size_t n = offsets[g + 1] - base;
    local.resize(n);
    std::iota(local.begin(), local.end(), 0u);
    const std::size_t keep = std::min(n, k_);
    // Same comparator as forward(), applied within the segment. The index
    // fallback makes it a strict total order, so sorting just the leading
    // `keep` positions (all that pooling reads) reproduces the fully
    // stable-sorted prefix exactly.
    std::partial_sort(local.begin(),
                      local.begin() + static_cast<std::ptrdiff_t>(keep),
                      local.end(), [&](std::size_t a, std::size_t b) {
      for (std::size_t col = c; col-- > 0;) {
        const double va = packed[(base + a) * c + col];
        const double vb = packed[(base + b) * c + col];
        if (va != vb) return va > vb;
      }
      return a < b;
    });
    double* gout = out.data() + g * k_ * c;
    for (std::size_t p = 0; p < keep; ++p) {
      const double* src = packed.data() + (base + local[p]) * c;
      for (std::size_t j = 0; j < c; ++j) gout[p * c + j] = src[j];
    }
    // Rows beyond n stay zero (padding for small graphs).
  }
  return out;
}

Tensor SortPooling::backward(const Tensor& grad_output) {
  const std::size_t n = input_shape_.at(0), c = input_shape_.at(1);
  if (grad_output.rank() != 2 || grad_output.dim(0) != k_ || grad_output.dim(1) != c) {
    throw std::invalid_argument("SortPooling::backward: grad shape mismatch");
  }
  Tensor grad_in = Tensor::zeros(input_shape_);
  const std::size_t keep = std::min(n, k_);
  for (std::size_t p = 0; p < keep; ++p) {
    const std::size_t src = order_[p];
    for (std::size_t j = 0; j < c; ++j) {
      grad_in[src * c + j] = grad_output[p * c + j];
    }
  }
  return grad_in;
}

}  // namespace magic::nn
