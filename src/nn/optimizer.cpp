#include "nn/optimizer.hpp"

#include <cmath>

namespace magic::nn {

Optimizer::Optimizer(std::vector<Parameter*> params, double lr, double weight_decay)
    : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params), lr, weight_decay), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double g = p.grad[j] + weight_decay_ * p.value[j];
      if (momentum_ != 0.0) {
        velocity_[i][j] = momentum_ * velocity_[i][j] + g;
        p.value[j] -= lr_ * velocity_[i][j];
      } else {
        p.value[j] -= lr_ * g;
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params), lr, weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const double g = p.grad[j] + weight_decay_ * p.value[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * g * g;
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

ReduceLrOnPlateau::ReduceLrOnPlateau(Optimizer& opt, std::size_t patience,
                                     double factor, double min_lr)
    : opt_(&opt), patience_(patience), factor_(factor), min_lr_(min_lr) {}

bool ReduceLrOnPlateau::observe(double validation_loss) {
  bool reduced = false;
  if (has_last_ && validation_loss > last_loss_) {
    if (++consecutive_increases_ >= patience_) {
      const double new_lr = opt_->lr() * factor_;
      if (new_lr >= min_lr_) {
        opt_->set_lr(new_lr);
        reduced = true;
      }
      consecutive_increases_ = 0;
    }
  } else {
    consecutive_increases_ = 0;
  }
  last_loss_ = validation_loss;
  has_last_ = true;
  return reduced;
}

}  // namespace magic::nn
