#pragma once
// Optimizers: SGD (with momentum) and Adam (Kingma & Ba [33]), plus the
// reduce-on-plateau learning-rate policy the paper uses in §V-B ("once the
// validation loss increases for two continuous epochs, we decrease the
// learning rate by a factor of ten").

#include <vector>

#include "nn/module.hpp"

namespace magic::nn {

/// Base optimizer over a fixed parameter list. L2 regularization
/// ("Weight L2 Regularization Factor" in Table II) is applied as decoupled
/// gradient augmentation: g += weight_decay * value.
class Optimizer {
 public:
  Optimizer(std::vector<Parameter*> params, double lr, double weight_decay);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients (does not zero them).
  virtual void step() = 0;

  void zero_grad();

  double lr() const noexcept { return lr_; }
  void set_lr(double lr) noexcept { lr_ = lr; }

 protected:
  std::vector<Parameter*> params_;
  double lr_;
  double weight_decay_;
};

/// Plain SGD with optional classical momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void step() override;

 private:
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void step() override;

 private:
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Learning-rate policy: after `patience` consecutive epochs of increasing
/// validation loss, multiplies the lr by `factor` (paper: patience=2,
/// factor=0.1).
class ReduceLrOnPlateau {
 public:
  ReduceLrOnPlateau(Optimizer& opt, std::size_t patience = 2, double factor = 0.1,
                    double min_lr = 1e-7);

  /// Reports one epoch's validation loss; returns true if the lr was reduced.
  bool observe(double validation_loss);

 private:
  Optimizer* opt_;
  std::size_t patience_;
  double factor_;
  double min_lr_;
  double last_loss_ = 0.0;
  bool has_last_ = false;
  std::size_t consecutive_increases_ = 0;
};

}  // namespace magic::nn
