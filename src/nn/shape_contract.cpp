#include "nn/shape_contract.hpp"

#include <sstream>

namespace magic::nn {
namespace {

[[noreturn]] void throw_violation(const char* layer, const tensor::Tensor& actual,
                                  const std::string& expected) {
  std::ostringstream oss;
  oss << layer << ": shape contract violated: expected " << expected << ", got "
      << actual.describe();
  throw ShapeContractError(oss.str());
}

}  // namespace

std::string format_contract(const std::vector<shape::Dim>& dims) {
  if (dims.empty()) return "scalar";
  std::ostringstream oss;
  oss << '(';
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (d) oss << " x ";
    const shape::Dim& dim = dims[d];
    if (dim.symbol == nullptr) {
      oss << dim.extent;
    } else {
      oss << dim.symbol;
      if (dim.min_extent > 0) oss << ">=" << dim.min_extent;
    }
  }
  oss << ')';
  return oss.str();
}

void check_shape_contract(const char* layer, const tensor::Tensor& t,
                          const std::vector<shape::Dim>& expected) {
  if (t.rank() != expected.size()) {
    throw_violation(layer, t, format_contract(expected));
  }
  const tensor::Shape& actual = t.shape();
  for (std::size_t d = 0; d < expected.size(); ++d) {
    const shape::Dim& dim = expected[d];
    const bool ok = dim.symbol == nullptr ? actual[d] == dim.extent
                                          : actual[d] >= dim.min_extent;
    if (!ok) throw_violation(layer, t, format_contract(expected));
  }
}

void check_size_contract(const char* layer, const tensor::Tensor& t,
                         std::size_t expected_size) {
  if (t.size() != expected_size) {
    std::ostringstream oss;
    oss << expected_size << " total elements";
    throw_violation(layer, t, oss.str());
  }
}

}  // namespace magic::nn
