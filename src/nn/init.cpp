#include "nn/init.hpp"

#include <cmath>

namespace magic::nn {

tensor::Tensor xavier_uniform(tensor::Shape shape, std::size_t fan_in,
                              std::size_t fan_out, util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return tensor::Tensor::uniform(std::move(shape), rng, -a, a);
}

tensor::Tensor he_normal(tensor::Shape shape, std::size_t fan_in, util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return tensor::Tensor::normal(std::move(shape), rng, 0.0, stddev);
}

}  // namespace magic::nn
