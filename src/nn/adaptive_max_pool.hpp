#pragma once
// Adaptive max pooling (§III-C of the paper, Fig. 6).
//
// Inputs of any (H x W) spatial size are reduced to a fixed (OH x OW) grid:
// the layer partitions each input into OH x OW sub-windows whose sizes are
// derived from the input dimensions, and keeps the maximum per sub-window
// and channel. This unifies variable-size graph-convolution outputs Z^{1:h}
// without sorting, and is the paper's best-performing pooling on both
// datasets (Table II).

#include <vector>

#include "nn/module.hpp"

namespace magic::nn {

/// AdaptiveMaxPool2D over (C x H x W) -> (C x OH x OW). Requires H >= 1,
/// W >= 1; windows follow the standard adaptive rule
/// rows(i) = [floor(i*H/OH), ceil((i+1)*H/OH)).
class AdaptiveMaxPool2D : public Module {
 public:
  AdaptiveMaxPool2D(std::size_t out_h, std::size_t out_w);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "AdaptiveMaxPool2D"; }

  std::size_t out_h() const noexcept { return oh_; }
  std::size_t out_w() const noexcept { return ow_; }

 private:
  std::size_t oh_;
  std::size_t ow_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

}  // namespace magic::nn
