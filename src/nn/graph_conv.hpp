#pragma once
// Graph convolution (Eq. 1 of the paper):
//
//   Z_{t+1} = f( D^-1 * A_hat * Z_t * W_t )
//
// where A_hat = A + I is the augmented adjacency matrix of the (directed)
// CFG and D its augmented diagonal degree matrix. The product D^-1 * A_hat
// is precomputed once per graph as a sparse "propagation operator" P
// (tensor::SparseMatrix::propagation_operator); each layer then computes
// f(P Z W). Stacking h layers aggregates multi-scale substructure, and the
// concatenation Z^{1:h} = [Z_1, ..., Z_h] feeds the pooling stage.

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/module.hpp"
#include "tensor/sparse.hpp"
#include "util/rng.hpp"

namespace magic::nn {

using tensor::SparseMatrix;

/// One graph-convolution layer with fused nonlinearity.
///
/// Unlike plain Module, forward takes the per-graph propagation operator P;
/// backward reuses the P from the last forward (the caller keeps it alive).
class GraphConvLayer {
 public:
  GraphConvLayer(std::size_t in_channels, std::size_t out_channels,
                 Activation activation, util::Rng& rng);

  /// Z_out = f(P Z W); caches Z, P and the pre-activation for backward.
  Tensor forward(const SparseMatrix& prop, const Tensor& z);

  /// Accumulates dW into the parameter grad and returns dZ (w.r.t. input).
  Tensor backward(const Tensor& grad_output);

  /// Inference-only fused forward: computes f(P Z W) and writes the
  /// activated rows directly into `out` (row stride `out_stride`, rows
  /// zero-initialized by the caller) — typically a column slice of the
  /// stack's concatenated Z^{1:h}, which skips the per-layer output
  /// tensor and the final concat copy entirely. When `next_input` is
  /// non-null the activated values are mirrored into it contiguously for
  /// the next layer (it may alias `z`; `z` is fully consumed first).
  /// `f_scratch` holds Z W and is reused across calls. Results are
  /// bit-identical to forward(); throws std::logic_error while grad
  /// caching is enabled.
  void forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                              Tensor& f_scratch, double* out,
                              std::size_t out_stride, Tensor* next_input);

  /// When disabled, forward skips the backward caches (inference mode);
  /// a subsequent backward throws std::logic_error.
  void set_grad_enabled(bool enabled) noexcept { grad_enabled_ = enabled; }
  bool grad_enabled() const noexcept { return grad_enabled_; }

  Parameter& weight() noexcept { return weight_; }
  std::size_t in_channels() const noexcept { return in_; }
  std::size_t out_channels() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Activation activation_;
  bool grad_enabled_ = true;
  Parameter weight_;  // (in x out)
  const SparseMatrix* cached_prop_ = nullptr;
  Tensor cached_input_;
  Tensor cached_preact_;  // S = P Z W before f
  Tensor dw_scratch_;     // reused (in x out) buffer for Z^T dF
};

/// Stack of h graph-convolution layers producing Z^{1:h}.
class GraphConvStack {
 public:
  /// `channels` = {c_1, ..., c_h}: output width of each layer; the input
  /// width of layer 1 is `in_channels` (the ACFG attribute count).
  GraphConvStack(std::size_t in_channels, const std::vector<std::size_t>& channels,
                 Activation activation, util::Rng& rng);

  /// Returns the column-concatenated Z^{1:h} of shape (n x total_channels()).
  Tensor forward(const SparseMatrix& prop, const Tensor& x);

  /// Takes d(loss)/d(Z^{1:h}) and returns d(loss)/d(X).
  Tensor backward(const Tensor& grad_concat);

  /// Propagates to every layer (see GraphConvLayer::set_grad_enabled).
  void set_grad_enabled(bool enabled) noexcept;

  std::vector<Parameter*> parameters();

  std::size_t depth() const noexcept { return layers_.size(); }
  std::size_t total_channels() const noexcept { return total_channels_; }
  /// Output width of layer t (0-based).
  std::size_t layer_channels(std::size_t t) const { return layers_.at(t).out_channels(); }

 private:
  std::vector<GraphConvLayer> layers_;
  std::vector<Tensor> layer_outputs_;  // Z_1..Z_h from the last forward
  std::size_t total_channels_ = 0;
  std::size_t last_n_ = 0;
  // Inference fast-path workspaces (see forward); reused across calls under
  // the one-instance-one-thread replica contract.
  Tensor f_scratch_;  // Z W for the layer in flight
  Tensor z_scratch_;  // contiguous copy of the previous layer's output
};

}  // namespace magic::nn
