#pragma once
// Graph-convolution operator zoo.
//
// The paper's Eq. 1 convolution
//
//   Z_{t+1} = f( D^-1 * A_hat * Z_t * W_t )
//
// is one member of a family of `f(P Z W)`-shaped operators over the same
// precomputed sparse propagation operator P = D^-1 * A_hat
// (tensor::SparseMatrix::propagation_operator). The per-layer math lives
// behind the GraphConvOp interface so the stack, the trainer, the packed
// batch engine and the fused inference path are operator-generic:
//
//   PaperGraphConv  Eq. 1 exactly: Y = f(P Z W). Bit-identical to the
//                   pre-zoo GraphConvLayer (same kernels in the same
//                   order), pinned by the golden tests.
//   SageConv        GraphSAGE-style mean aggregator: Y = f([Z | P Z] W),
//                   i.e. the concatenation of the self features and the
//                   mean-neighbor features through one fused weight.
//   TagConv         K-hop topology-adaptive convolution:
//                   Y = f([Z | P Z | ... | P^K Z] W) — the concat-weight
//                   form of the usual sum over powers sum_k P^k Z W_k
//                   (W stacks the per-hop blocks row-wise).
//
// Every operator owns exactly one weight tensor, shares the SpMM/GEMM SIMD
// kernels, and provides the three entry points the surrounding system
// needs: forward (training, caches for backward), backward, and
// forward_inference_into (the fused inference path that activates straight
// into a column slice of the concatenated Z^{1:h}). Stacking h layers
// aggregates multi-scale substructure; the concatenation
// Z^{1:h} = [Z_1, ..., Z_h] feeds the pooling stage.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/module.hpp"
#include "tensor/sparse.hpp"
#include "util/rng.hpp"

namespace magic::nn {

using tensor::SparseMatrix;

/// Which per-layer convolution the stack runs (DgcnnConfig::graph_conv_op).
enum class GraphConvOperator { Paper, Sage, Tag };

/// Wire/checkpoint name: "paper", "sage" or "tag".
const char* graph_conv_operator_name(GraphConvOperator kind) noexcept;

/// Inverse of graph_conv_operator_name; throws std::runtime_error on an
/// unknown name (checkpoint loaders and CLI flags want a loud failure).
GraphConvOperator parse_graph_conv_operator(const std::string& name);

/// Operator choice plus its per-operator knobs.
struct GraphConvOpOptions {
  GraphConvOperator kind = GraphConvOperator::Paper;
  /// TagConv only: number of propagation hops K (>= 1; hop 0 is Z itself).
  std::size_t tag_hops = 2;
};

/// One graph-convolution layer behind a uniform interface.
///
/// Unlike plain Module, forward takes the per-graph propagation operator P;
/// backward reuses the P from the last forward (the caller keeps it alive).
/// Contract for implementations (DESIGN.md "Graph-convolution operators"):
///  * forward/forward_inference_into open with a shape contract
///    (magic_lint rule conv-op-contract) and reject a P whose side differs
///    from the vertex count;
///  * output width is exactly out_channels() — the stack's concat layout
///    and DgcnnConfig::total_graph_channels() rely on it;
///  * forward_inference_into is bit-identical to forward() and throws
///    std::logic_error while grad caching is enabled;
///  * parameters() order is deterministic (fixed-order gradient reduction
///    in ParallelTrainer) and every parameter name is operator-specific so
///    checkpoints cannot silently load across operators.
class GraphConvOp {
 public:
  virtual ~GraphConvOp() = default;

  virtual GraphConvOperator kind() const noexcept = 0;

  /// Y = f(op(P, Z) W); caches what backward needs (input, pre-activation).
  virtual Tensor forward(const SparseMatrix& prop, const Tensor& z) = 0;

  /// Accumulates dW into the parameter grad and returns dZ (w.r.t. input).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only fused forward: computes the activated output and writes
  /// its rows directly into `out` (row stride `out_stride`, rows
  /// zero-initialized by the caller) — typically a column slice of the
  /// stack's concatenated Z^{1:h}, which skips the per-layer output tensor
  /// and the final concat copy entirely. When `next_input` is non-null the
  /// activated values are mirrored into it contiguously for the next layer
  /// (it may alias `z`; `z` is fully consumed first). `f_scratch` is a
  /// reusable workspace. Results are bit-identical to forward(); throws
  /// std::logic_error while grad caching is enabled.
  virtual void forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                                      Tensor& f_scratch, double* out,
                                      std::size_t out_stride,
                                      Tensor* next_input) = 0;

  /// When disabled, forward skips the backward caches (inference mode);
  /// a subsequent backward throws std::logic_error.
  void set_grad_enabled(bool enabled) noexcept { grad_enabled_ = enabled; }
  bool grad_enabled() const noexcept { return grad_enabled_; }

  /// Every zoo operator has exactly one weight; its name and shape are
  /// operator-specific (see the concrete classes).
  Parameter& weight() noexcept { return weight_; }
  const Parameter& weight() const noexcept { return weight_; }
  std::vector<Parameter*> parameters() { return {&weight_}; }

  std::size_t in_channels() const noexcept { return in_; }
  std::size_t out_channels() const noexcept { return out_; }

 protected:
  GraphConvOp(std::size_t in_channels, std::size_t out_channels,
              Activation activation, Parameter weight)
      : in_(in_channels),
        out_(out_channels),
        activation_(activation),
        weight_(std::move(weight)) {}

  std::size_t in_;
  std::size_t out_;
  Activation activation_;
  bool grad_enabled_ = true;
  Parameter weight_;
};

/// Eq. 1 of the paper: Y = f(P Z W), weight "graph_conv.weight" (in x out).
/// The kernel order (GEMM Z W, then SpMM P F, then the activation) is the
/// pre-zoo GraphConvLayer's exactly — golden tests pin it bitwise.
class PaperGraphConv final : public GraphConvOp {
 public:
  PaperGraphConv(std::size_t in_channels, std::size_t out_channels,
                 Activation activation, util::Rng& rng);

  GraphConvOperator kind() const noexcept override {
    return GraphConvOperator::Paper;
  }
  Tensor forward(const SparseMatrix& prop, const Tensor& z) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                              Tensor& f_scratch, double* out,
                              std::size_t out_stride,
                              Tensor* next_input) override;

 private:
  const SparseMatrix* cached_prop_ = nullptr;
  Tensor cached_input_;
  Tensor cached_preact_;  // S = P Z W before f
  Tensor dw_scratch_;     // reused (in x out) buffer for Z^T dF
};

/// GraphSAGE-style mean aggregator: Y = f(H W) with H = [Z | P Z]
/// (self features next to mean-neighbor features; P's row-normalization is
/// the mean, including the self loop of A_hat). Weight "sage_conv.weight"
/// (2*in x out) fuses the self- and neighbor-transforms into one GEMM.
class SageConv final : public GraphConvOp {
 public:
  SageConv(std::size_t in_channels, std::size_t out_channels,
           Activation activation, util::Rng& rng);

  GraphConvOperator kind() const noexcept override {
    return GraphConvOperator::Sage;
  }
  Tensor forward(const SparseMatrix& prop, const Tensor& z) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                              Tensor& f_scratch, double* out,
                              std::size_t out_stride,
                              Tensor* next_input) override;

 private:
  const SparseMatrix* cached_prop_ = nullptr;
  Tensor cached_input_;   // H = [Z | P Z] from the last forward
  Tensor cached_preact_;  // H W before f
  Tensor dw_scratch_;     // (2*in x out) buffer for H^T dS
  Tensor h_scratch_;      // inference-path H workspace
};

/// K-hop topology-adaptive convolution: Y = f(H W) with
/// H = [Z | P Z | ... | P^K Z]; the hops are built iteratively with
/// SparseMatrix::multiply_into, each written straight into its column
/// block of H. Weight "tag_conv.weight" ((K+1)*in x out) stacks the
/// per-hop weight blocks, so H W = sum_k (P^k Z) W_k.
class TagConv final : public GraphConvOp {
 public:
  /// Throws std::invalid_argument when hops < 1.
  TagConv(std::size_t in_channels, std::size_t out_channels, std::size_t hops,
          Activation activation, util::Rng& rng);

  GraphConvOperator kind() const noexcept override {
    return GraphConvOperator::Tag;
  }
  std::size_t hops() const noexcept { return hops_; }
  Tensor forward(const SparseMatrix& prop, const Tensor& z) override;
  Tensor backward(const Tensor& grad_output) override;
  void forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                              Tensor& f_scratch, double* out,
                              std::size_t out_stride,
                              Tensor* next_input) override;

 private:
  std::size_t hops_;
  const SparseMatrix* cached_prop_ = nullptr;
  Tensor cached_input_;   // H = [Z | P Z | ... | P^K Z] from the last forward
  Tensor cached_preact_;  // H W before f
  Tensor dw_scratch_;     // ((K+1)*in x out) buffer for H^T dS
  Tensor h_scratch_;      // inference-path H workspace
  Tensor hop_scratch_;    // contiguous previous hop while building H
};

/// Builds the operator `options` names. Throws std::invalid_argument on
/// invalid per-operator knobs (e.g. tag_hops == 0).
std::unique_ptr<GraphConvOp> make_graph_conv_op(const GraphConvOpOptions& options,
                                                std::size_t in_channels,
                                                std::size_t out_channels,
                                                Activation activation,
                                                util::Rng& rng);

/// Deprecated name of the Eq. 1 operator, kept for one release so existing
/// call sites keep compiling; new code names PaperGraphConv (or builds
/// through make_graph_conv_op). See README "Migration notes".
using GraphConvLayer = PaperGraphConv;

/// Everything the stack needs to build its layers, in one place.
/// DgcnnConfig::graph_conv_stack_config() is the single producer — config,
/// model and classifier no longer thread channels/activation separately.
struct GraphConvStackConfig {
  /// Input width of layer 1 (the ACFG attribute count).
  std::size_t in_channels = 11;
  /// {c_1, ..., c_h}: output width of each layer.
  std::vector<std::size_t> channels = {32, 32, 32, 32};
  Activation activation = Activation::ReLU;
  GraphConvOpOptions op;
};

/// Stack of h graph-convolution layers producing Z^{1:h}.
class GraphConvStack {
 public:
  explicit GraphConvStack(const GraphConvStackConfig& config, util::Rng& rng);

  /// Deprecated shim (one release): builds a PaperGraphConv stack from the
  /// pre-zoo positional signature. Prefer the GraphConvStackConfig ctor.
  GraphConvStack(std::size_t in_channels, const std::vector<std::size_t>& channels,
                 Activation activation, util::Rng& rng);

  /// Returns the column-concatenated Z^{1:h} of shape (n x total_channels()).
  Tensor forward(const SparseMatrix& prop, const Tensor& x);

  /// Takes d(loss)/d(Z^{1:h}) and returns d(loss)/d(X).
  Tensor backward(const Tensor& grad_concat);

  /// Propagates to every layer (see GraphConvOp::set_grad_enabled).
  void set_grad_enabled(bool enabled) noexcept;

  std::vector<Parameter*> parameters();

  std::size_t depth() const noexcept { return layers_.size(); }
  std::size_t total_channels() const noexcept { return total_channels_; }
  /// Output width of layer t (0-based).
  std::size_t layer_channels(std::size_t t) const {
    return layers_.at(t)->out_channels();
  }
  /// The operator every layer runs (uniform across the stack).
  GraphConvOperator op_kind() const noexcept { return op_options_.kind; }
  const GraphConvOpOptions& op_options() const noexcept { return op_options_; }

 private:
  GraphConvOpOptions op_options_;
  std::vector<std::unique_ptr<GraphConvOp>> layers_;
  std::vector<Tensor> layer_outputs_;  // Z_1..Z_h from the last forward
  std::size_t total_channels_ = 0;
  std::size_t last_n_ = 0;
  // Inference fast-path workspaces (see forward); reused across calls under
  // the one-instance-one-thread replica contract.
  Tensor f_scratch_;  // per-layer GEMM output in flight
  Tensor z_scratch_;  // contiguous copy of the previous layer's output
};

}  // namespace magic::nn
