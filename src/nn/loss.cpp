#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace magic::nn {

Tensor LogSoftmax::forward(const Tensor& input) {
  if (input.rank() != 1) {
    throw std::invalid_argument("LogSoftmax: rank-1 input required");
  }
  const double m = tensor::max(input);
  double lse = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) lse += std::exp(input[i] - m);
  lse = m + std::log(lse);
  cached_output_ = tensor::map(input, [lse](double x) { return x - lse; });
  return cached_output_;
}

Tensor LogSoftmax::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("LogSoftmax::backward: shape mismatch");
  }
  // d/dx_j of log_softmax_i = delta_ij - softmax_j
  double grad_sum = 0.0;
  for (std::size_t i = 0; i < grad_output.size(); ++i) grad_sum += grad_output[i];
  Tensor grad = grad_output;
  for (std::size_t j = 0; j < grad.size(); ++j) {
    grad[j] -= std::exp(cached_output_[j]) * grad_sum;
  }
  return grad;
}

double NllLoss::forward(const Tensor& log_probs, std::size_t target) {
  if (log_probs.rank() != 1 || target >= log_probs.dim(0)) {
    throw std::invalid_argument("NllLoss: bad target or input rank");
  }
  size_ = log_probs.dim(0);
  target_ = target;
  return -log_probs[target];
}

Tensor NllLoss::backward() const {
  Tensor grad = Tensor::zeros({size_});
  grad[target_] = -1.0;
  return grad;
}

Tensor exp_probs(const Tensor& log_probs) {
  return tensor::map(log_probs, [](double x) { return std::exp(x); });
}

}  // namespace magic::nn
