#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/shape_contract.hpp"
#include "tensor/simd/kernels.hpp"
#include "util/check.hpp"

namespace magic::nn {

Tensor LogSoftmax::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("LogSoftmax::forward", input, shape::at_least("classes", 1));
  if (input.rank() != 1) {
    throw std::invalid_argument("LogSoftmax: rank-1 input required");
  }
  cache_valid_ = grad_enabled();
  Tensor out = input;
  tensor::simd::kernels().logsoftmax_fwd(out.data(), out.size());
  if (cache_valid_) cached_output_ = out;
  return out;
}

Tensor LogSoftmax::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("LogSoftmax::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("LogSoftmax::backward: shape mismatch");
  }
  // d/dx_j of log_softmax_i = delta_ij - softmax_j
  Tensor grad = grad_output;
  tensor::simd::kernels().logsoftmax_bwd(grad.data(), cached_output_.data(),
                                         grad.size());
  return grad;
}

Tensor LogSoftmax::forward_batch(const Tensor& input) {
  require_batch_inference("LogSoftmax::forward_batch");
  (void)batch_item_shape(input, "LogSoftmax::forward_batch");
  if (input.rank() != 2 || input.dim(1) == 0) {
    throw std::invalid_argument(
        "LogSoftmax::forward_batch: (batch x classes) input required");
  }
  const std::size_t rows = input.dim(0), classes = input.dim(1);
  Tensor out = input;
  const auto& kernels = tensor::simd::kernels();
  for (std::size_t r = 0; r < rows; ++r) {
    kernels.logsoftmax_fwd(out.data() + r * classes, classes);
  }
  return out;
}

Tensor LogSoftmax::forward_batch_owned(Tensor&& input) {
  require_batch_inference("LogSoftmax::forward_batch");
  (void)batch_item_shape(input, "LogSoftmax::forward_batch");
  if (input.rank() != 2 || input.dim(1) == 0) {
    throw std::invalid_argument(
        "LogSoftmax::forward_batch: (batch x classes) input required");
  }
  const std::size_t rows = input.dim(0), classes = input.dim(1);
  const auto& kernels = tensor::simd::kernels();
  for (std::size_t r = 0; r < rows; ++r) {
    kernels.logsoftmax_fwd(input.data() + r * classes, classes);
  }
  return std::move(input);
}

double NllLoss::forward(const Tensor& log_probs, std::size_t target) {
  MAGIC_SHAPE_CONTRACT("NllLoss::forward", log_probs, shape::at_least("classes", 1));
  if (log_probs.rank() != 1 || target >= log_probs.dim(0)) {
    throw std::invalid_argument("NllLoss: bad target or input rank");
  }
  size_ = log_probs.dim(0);
  target_ = target;
  return -log_probs[target];
}

Tensor NllLoss::backward() const {
  MAGIC_CHECK(size_ > 0, "NllLoss::backward called before forward");
  Tensor grad = Tensor::zeros({size_});
  if (size_ == 0) return grad;  // unchecked-build fallback: avoid OOB write
  grad[target_] = -1.0;
  return grad;
}

Tensor exp_probs(const Tensor& log_probs) {
  Tensor out = log_probs;
  tensor::simd::kernels().exp_fwd(out.data(), out.size());
  return out;
}

}  // namespace magic::nn
