#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/shape_contract.hpp"
#include "util/check.hpp"

namespace magic::nn {

Tensor LogSoftmax::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("LogSoftmax::forward", input, shape::at_least("classes", 1));
  if (input.rank() != 1) {
    throw std::invalid_argument("LogSoftmax: rank-1 input required");
  }
  const double m = tensor::max(input);
  double lse = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) lse += std::exp(input[i] - m);
  lse = m + std::log(lse);
  cache_valid_ = grad_enabled();
  if (!cache_valid_) return tensor::map(input, [lse](double x) { return x - lse; });
  cached_output_ = tensor::map(input, [lse](double x) { return x - lse; });
  return cached_output_;
}

Tensor LogSoftmax::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("LogSoftmax::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("LogSoftmax::backward: shape mismatch");
  }
  // d/dx_j of log_softmax_i = delta_ij - softmax_j
  double grad_sum = 0.0;
  for (std::size_t i = 0; i < grad_output.size(); ++i) grad_sum += grad_output[i];
  Tensor grad = grad_output;
  for (std::size_t j = 0; j < grad.size(); ++j) {
    grad[j] -= std::exp(cached_output_[j]) * grad_sum;
  }
  return grad;
}

Tensor LogSoftmax::forward_batch(const Tensor& input) {
  require_batch_inference("LogSoftmax::forward_batch");
  (void)batch_item_shape(input, "LogSoftmax::forward_batch");
  if (input.rank() != 2 || input.dim(1) == 0) {
    throw std::invalid_argument(
        "LogSoftmax::forward_batch: (batch x classes) input required");
  }
  const std::size_t rows = input.dim(0), classes = input.dim(1);
  Tensor out({rows, classes});
  for (std::size_t r = 0; r < rows; ++r) {
    const double* x = input.data() + r * classes;
    double m = x[0];
    for (std::size_t j = 1; j < classes; ++j) {
      if (x[j] > m) m = x[j];
    }
    double lse = 0.0;
    for (std::size_t j = 0; j < classes; ++j) lse += std::exp(x[j] - m);
    lse = m + std::log(lse);
    for (std::size_t j = 0; j < classes; ++j) out[r * classes + j] = x[j] - lse;
  }
  return out;
}

Tensor LogSoftmax::forward_batch_owned(Tensor&& input) {
  require_batch_inference("LogSoftmax::forward_batch");
  (void)batch_item_shape(input, "LogSoftmax::forward_batch");
  if (input.rank() != 2 || input.dim(1) == 0) {
    throw std::invalid_argument(
        "LogSoftmax::forward_batch: (batch x classes) input required");
  }
  const std::size_t rows = input.dim(0), classes = input.dim(1);
  for (std::size_t r = 0; r < rows; ++r) {
    double* x = input.data() + r * classes;
    double m = x[0];
    for (std::size_t j = 1; j < classes; ++j) {
      if (x[j] > m) m = x[j];
    }
    double lse = 0.0;
    for (std::size_t j = 0; j < classes; ++j) lse += std::exp(x[j] - m);
    lse = m + std::log(lse);
    for (std::size_t j = 0; j < classes; ++j) x[j] -= lse;
  }
  return std::move(input);
}

double NllLoss::forward(const Tensor& log_probs, std::size_t target) {
  MAGIC_SHAPE_CONTRACT("NllLoss::forward", log_probs, shape::at_least("classes", 1));
  if (log_probs.rank() != 1 || target >= log_probs.dim(0)) {
    throw std::invalid_argument("NllLoss: bad target or input rank");
  }
  size_ = log_probs.dim(0);
  target_ = target;
  return -log_probs[target];
}

Tensor NllLoss::backward() const {
  MAGIC_CHECK(size_ > 0, "NllLoss::backward called before forward");
  Tensor grad = Tensor::zeros({size_});
  if (size_ == 0) return grad;  // unchecked-build fallback: avoid OOB write
  grad[target_] = -1.0;
  return grad;
}

Tensor exp_probs(const Tensor& log_probs) {
  return tensor::map(log_probs, [](double x) { return std::exp(x); });
}

}  // namespace magic::nn
