#include "nn/conv2d.hpp"

#include <algorithm>

#include "nn/init.hpp"
#include "nn/shape_contract.hpp"

namespace magic::nn {
namespace {

// Valid output range [lo, hi) for one kernel offset k with padding p over
// an input extent `in` and output extent `out`: iy = oy + k - p must lie in
// [0, in).
inline void valid_range(std::size_t k, std::size_t pad, std::size_t in,
                        std::size_t out, std::size_t& lo, std::size_t& hi) noexcept {
  const std::ptrdiff_t lo_s = static_cast<std::ptrdiff_t>(pad) - static_cast<std::ptrdiff_t>(k);
  lo = lo_s > 0 ? static_cast<std::size_t>(lo_s) : 0;
  const std::ptrdiff_t hi_s = static_cast<std::ptrdiff_t>(in + pad) - static_cast<std::ptrdiff_t>(k);
  hi = hi_s < 0 ? 0 : std::min<std::size_t>(out, static_cast<std::size_t>(hi_s));
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w, std::size_t padding,
               util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kh_(kernel_h),
      kw_(kernel_w),
      pad_(padding),
      weight_("conv2d.weight",
              xavier_uniform({out_channels, in_channels, kernel_h, kernel_w},
                             in_channels * kernel_h * kernel_w,
                             out_channels * kernel_h * kernel_w, rng)),
      bias_("conv2d.bias", Tensor::zeros({out_channels})) {
  if (kernel_h == 0 || kernel_w == 0) {
    throw std::invalid_argument("Conv2D: kernel must be positive");
  }
}

Tensor Conv2D::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("Conv2D::forward", input, shape::eq(in_channels_),
                       shape::at_least("H", kh_ > 2 * pad_ ? kh_ - 2 * pad_ : 1),
                       shape::at_least("W", kw_ > 2 * pad_ ? kw_ - 2 * pad_ : 1));
  if (input.rank() != 3 || input.dim(0) != in_channels_) {
    throw std::invalid_argument("Conv2D::forward: expected (" +
                                std::to_string(in_channels_) + " x H x W), got " +
                                input.describe());
  }
  const std::size_t H = input.dim(1), W = input.dim(2);
  if (H + 2 * pad_ < kh_ || W + 2 * pad_ < kw_) {
    throw std::invalid_argument("Conv2D: input too small for kernel");
  }
  cache_valid_ = grad_enabled();
  if (cache_valid_) cached_input_ = input;
  const std::size_t Ho = H + 2 * pad_ - kh_ + 1;
  const std::size_t Wo = W + 2 * pad_ - kw_ + 1;
  Tensor out({out_channels_, Ho, Wo});
  convolve_into(input.data(), out.data(), H, W);
  return out;
}

void Conv2D::convolve_into(const double* pin, double* pout, std::size_t H,
                           std::size_t W) const {
  const std::size_t Ho = H + 2 * pad_ - kh_ + 1;
  const std::size_t Wo = W + 2 * pad_ - kw_ + 1;
  // Kernel-offset decomposition: for each (ky, kx) the contribution is a
  // shifted elementwise product, so the inner loop is a contiguous axpy.
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    double* ochan = pout + oc * Ho * Wo;
    const double b = bias_.value[oc];
    for (std::size_t i = 0; i < Ho * Wo; ++i) ochan[i] = b;
    for (std::size_t ic = 0; ic < in_channels_; ++ic) {
      const double* ichan = pin + ic * H * W;
      for (std::size_t ky = 0; ky < kh_; ++ky) {
        std::size_t oy_lo, oy_hi;
        valid_range(ky, pad_, H, Ho, oy_lo, oy_hi);
        for (std::size_t kx = 0; kx < kw_; ++kx) {
          std::size_t ox_lo, ox_hi;
          valid_range(kx, pad_, W, Wo, ox_lo, ox_hi);
          if (ox_hi <= ox_lo) continue;
          const double w = weight_.value[((oc * in_channels_ + ic) * kh_ + ky) * kw_ + kx];
          if (w == 0.0) continue;
          for (std::size_t oy = oy_lo; oy < oy_hi; ++oy) {
            const std::size_t iy = oy + ky - pad_;
            const double* irow = ichan + iy * W + (ox_lo + kx - pad_);
            double* orow = ochan + oy * Wo + ox_lo;
            const std::size_t span = ox_hi - ox_lo;
            for (std::size_t j = 0; j < span; ++j) orow[j] += w * irow[j];
          }
        }
      }
    }
  }
}

Tensor Conv2D::forward_batch(const Tensor& input) {
  require_batch_inference("Conv2D::forward_batch");
  (void)batch_item_shape(input, "Conv2D::forward_batch");
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2D::forward_batch: expected (batch x " +
                                std::to_string(in_channels_) +
                                " x H x W), got " + input.describe());
  }
  const std::size_t batch = input.dim(0);
  const std::size_t H = input.dim(2), W = input.dim(3);
  if (H + 2 * pad_ < kh_ || W + 2 * pad_ < kw_) {
    throw std::invalid_argument("Conv2D::forward_batch: input too small for kernel");
  }
  const std::size_t Ho = H + 2 * pad_ - kh_ + 1;
  const std::size_t Wo = W + 2 * pad_ - kw_ + 1;
  Tensor out({batch, out_channels_, Ho, Wo});
  for (std::size_t s = 0; s < batch; ++s) {
    convolve_into(input.data() + s * in_channels_ * H * W,
                  out.data() + s * out_channels_ * Ho * Wo, H, W);
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Conv2D::backward: no cached forward (grad caching disabled)");
  }
  const std::size_t H = cached_input_.dim(1), W = cached_input_.dim(2);
  const std::size_t Ho = H + 2 * pad_ - kh_ + 1;
  const std::size_t Wo = W + 2 * pad_ - kw_ + 1;
  if (grad_output.rank() != 3 || grad_output.dim(0) != out_channels_ ||
      grad_output.dim(1) != Ho || grad_output.dim(2) != Wo) {
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  }
  Tensor grad_in = Tensor::zeros(cached_input_.shape());
  const double* pin = cached_input_.data();
  const double* pgo = grad_output.data();
  double* pgi = grad_in.data();
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    const double* gchan = pgo + oc * Ho * Wo;
    double bsum = 0.0;
    for (std::size_t i = 0; i < Ho * Wo; ++i) bsum += gchan[i];
    bias_.grad[oc] += bsum;
    for (std::size_t ic = 0; ic < in_channels_; ++ic) {
      const double* ichan = pin + ic * H * W;
      double* gichan = pgi + ic * H * W;
      for (std::size_t ky = 0; ky < kh_; ++ky) {
        std::size_t oy_lo, oy_hi;
        valid_range(ky, pad_, H, Ho, oy_lo, oy_hi);
        for (std::size_t kx = 0; kx < kw_; ++kx) {
          std::size_t ox_lo, ox_hi;
          valid_range(kx, pad_, W, Wo, ox_lo, ox_hi);
          if (ox_hi <= ox_lo || oy_hi <= oy_lo) continue;
          const std::size_t widx = ((oc * in_channels_ + ic) * kh_ + ky) * kw_ + kx;
          const double w = weight_.value[widx];
          double wgrad = 0.0;
          const std::size_t span = ox_hi - ox_lo;
          for (std::size_t oy = oy_lo; oy < oy_hi; ++oy) {
            const std::size_t iy = oy + ky - pad_;
            const double* irow = ichan + iy * W + (ox_lo + kx - pad_);
            double* girow = gichan + iy * W + (ox_lo + kx - pad_);
            const double* grow = gchan + oy * Wo + ox_lo;
            for (std::size_t j = 0; j < span; ++j) {
              wgrad += grow[j] * irow[j];
              girow[j] += w * grow[j];
            }
          }
          weight_.grad[widx] += wgrad;
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> Conv2D::parameters() { return {&weight_, &bias_}; }

}  // namespace magic::nn
