#include "nn/conv1d.hpp"

#include "nn/init.hpp"
#include "nn/shape_contract.hpp"

namespace magic::nn {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      weight_("conv1d.weight",
              xavier_uniform({out_channels, in_channels, kernel},
                             in_channels * kernel, out_channels * kernel, rng)),
      bias_("conv1d.bias", Tensor::zeros({out_channels})) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("Conv1D: kernel and stride must be positive");
  }
}

std::size_t Conv1D::out_length(std::size_t in_length) const {
  if (in_length < kernel_) {
    throw std::invalid_argument("Conv1D: input shorter than kernel");
  }
  return (in_length - kernel_) / stride_ + 1;
}

Tensor Conv1D::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("Conv1D::forward", input, shape::eq(in_channels_),
                       shape::at_least("L", kernel_));
  if (input.rank() != 2 || input.dim(0) != in_channels_) {
    throw std::invalid_argument("Conv1D::forward: expected (" +
                                std::to_string(in_channels_) + " x L), got " +
                                input.describe());
  }
  cache_valid_ = grad_enabled();
  if (cache_valid_) cached_input_ = input;
  const std::size_t L = input.dim(1);
  const std::size_t Lo = out_length(L);
  Tensor out({out_channels_, Lo});
  convolve_into(input.data(), out.data(), L, Lo);
  return out;
}

void Conv1D::convolve_into(const double* in, double* out, std::size_t L,
                           std::size_t Lo) const {
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    for (std::size_t t = 0; t < Lo; ++t) {
      double acc = bias_.value[oc];
      const std::size_t base = t * stride_;
      for (std::size_t ic = 0; ic < in_channels_; ++ic) {
        for (std::size_t k = 0; k < kernel_; ++k) {
          acc += weight_.value[(oc * in_channels_ + ic) * kernel_ + k] *
                 in[ic * L + base + k];
        }
      }
      out[oc * Lo + t] = acc;
    }
  }
}

Tensor Conv1D::forward_batch(const Tensor& input) {
  require_batch_inference("Conv1D::forward_batch");
  (void)batch_item_shape(input, "Conv1D::forward_batch");
  if (input.rank() != 3 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv1D::forward_batch: expected (batch x " +
                                std::to_string(in_channels_) + " x L), got " +
                                input.describe());
  }
  const std::size_t batch = input.dim(0);
  const std::size_t L = input.dim(2);
  const std::size_t Lo = out_length(L);
  // im2col: one row per (sample, output position), laid out C_in-major /
  // K-minor to match the (C_out x C_in x K) weight rows. The whole batch
  // then runs as a single register-blocked GEMM against W^T instead of
  // batch * C_out re-streams of each image.
  const std::size_t K = in_channels_ * kernel_;
  col_scratch_.resize({batch * Lo, K});
  double* col = col_scratch_.data();
  for (std::size_t s = 0; s < batch; ++s) {
    const double* in = input.data() + s * in_channels_ * L;
    for (std::size_t t = 0; t < Lo; ++t) {
      double* row = col + (s * Lo + t) * K;
      const std::size_t base = t * stride_;
      for (std::size_t ic = 0; ic < in_channels_; ++ic) {
        const double* src = in + ic * L + base;
        for (std::size_t k = 0; k < kernel_; ++k) row[ic * kernel_ + k] = src[k];
      }
    }
  }
  tensor::matmul_nt_into(gemm_scratch_, col_scratch_,
                         weight_.value.reshape({out_channels_, K}));
  // Scatter (batch*Lo x C_out) back to (batch x C_out x Lo), adding bias.
  Tensor out({batch, out_channels_, Lo});
  const double* gm = gemm_scratch_.data();
  for (std::size_t s = 0; s < batch; ++s) {
    double* po = out.data() + s * out_channels_ * Lo;
    const double* gs = gm + s * Lo * out_channels_;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const double b = bias_.value[oc];
      for (std::size_t t = 0; t < Lo; ++t) {
        po[oc * Lo + t] = gs[t * out_channels_ + oc] + b;
      }
    }
  }
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Conv1D::backward: no cached forward (grad caching disabled)");
  }
  const std::size_t L = cached_input_.dim(1);
  const std::size_t Lo = out_length(L);
  if (grad_output.rank() != 2 || grad_output.dim(0) != out_channels_ ||
      grad_output.dim(1) != Lo) {
    throw std::invalid_argument("Conv1D::backward: grad shape mismatch");
  }
  Tensor grad_in = Tensor::zeros(cached_input_.shape());
  for (std::size_t oc = 0; oc < out_channels_; ++oc) {
    for (std::size_t t = 0; t < Lo; ++t) {
      const double g = grad_output[oc * Lo + t];
      if (g == 0.0) continue;
      bias_.grad[oc] += g;
      const std::size_t base = t * stride_;
      for (std::size_t ic = 0; ic < in_channels_; ++ic) {
        for (std::size_t k = 0; k < kernel_; ++k) {
          const std::size_t widx = (oc * in_channels_ + ic) * kernel_ + k;
          weight_.grad[widx] += g * cached_input_[ic * L + base + k];
          grad_in[ic * L + base + k] += g * weight_.value[widx];
        }
      }
    }
  }
  return grad_in;
}

std::vector<Parameter*> Conv1D::parameters() { return {&weight_, &bias_}; }

}  // namespace magic::nn
