#pragma once
// 1-D convolution over (channels x length) inputs.
//
// The original DGCNN head (§III-A4) applies a Conv1D of kernel/stride equal
// to the per-vertex descriptor width to the flattened SortPooling output,
// then a second Conv1D with a small kernel (the paper tunes kernel size in
// {5, 7} and channel pair (16, 32), Table II).

#include "nn/activations.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace magic::nn {

/// Conv1D layer. Input (C_in x L); output (C_out x L_out) with
/// L_out = (L - kernel) / stride + 1 (no padding).
class Conv1D : public Module {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (batch x C_in x L) -> (batch x C_out x L_out). Lowered to one im2col +
  /// GEMM over the whole batch (instead of re-streaming every image once
  /// per output channel), so it matches forward() per sample to within
  /// floating-point associativity of the shared kernels.
  Tensor forward_batch(const Tensor& input) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Conv1D"; }

  std::size_t out_length(std::size_t in_length) const;

 private:
  /// Shared convolution core: one (C_in x L) image into (C_out x Lo).
  void convolve_into(const double* in, double* out, std::size_t L,
                     std::size_t Lo) const;

  std::size_t in_channels_;
  std::size_t out_channels_;
  std::size_t kernel_;
  std::size_t stride_;
  Parameter weight_;  // (C_out x C_in x K)
  Parameter bias_;    // (C_out)
  Tensor cached_input_;
  bool cache_valid_ = false;
  // forward_batch workspaces, reused across calls so steady-state batched
  // inference allocates nothing here (same instance/thread contract as the
  // gradient caches above).
  Tensor col_scratch_;   // im2col matrix (batch*L_out x C_in*K)
  Tensor gemm_scratch_;  // GEMM output (batch*L_out x C_out)
};

}  // namespace magic::nn
