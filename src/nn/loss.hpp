#pragma once
// LogSoftmax and negative log-likelihood loss (Eq. 5 of the paper).
//
// The model outputs log-probabilities over malware families; training
// minimizes the mean negative logarithmic loss, exactly the criterion the
// paper reports ("mean negative logarithmic loss", §IV-B and Table IV).

#include "nn/module.hpp"

namespace magic::nn {

/// Numerically stable log-softmax over the last axis of a rank-1 tensor.
class LogSoftmax : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Row-wise log-softmax over a (batch x classes) tensor; each row matches
  /// the rank-1 forward exactly (same max/exp-sum evaluation order).
  Tensor forward_batch(const Tensor& input) override;
  /// Owned input: normalizes each row in place (same evaluation order).
  Tensor forward_batch_owned(Tensor&& input) override;
  std::string name() const override { return "LogSoftmax"; }

 private:
  Tensor cached_output_;  // log-probabilities
  bool cache_valid_ = false;
};

/// NLL of a single observation given log-probabilities.
///
/// forward(log_probs, target) returns -log p_target; backward() returns the
/// gradient w.r.t. log_probs. Combined with LogSoftmax this is the standard
/// cross-entropy whose gradient w.r.t. logits is softmax(x) - onehot(y).
class NllLoss {
 public:
  double forward(const Tensor& log_probs, std::size_t target);
  Tensor backward() const;

 private:
  std::size_t size_ = 0;
  std::size_t target_ = 0;
};

/// Softmax probabilities from log-probabilities.
Tensor exp_probs(const Tensor& log_probs);

}  // namespace magic::nn
