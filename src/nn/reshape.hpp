#pragma once
// Shape-adapter modules used to glue convolutional stages to dense heads.

#include "nn/module.hpp"
#include "nn/shape_contract.hpp"

namespace magic::nn {

/// Flattens any input to rank-1; backward restores the original shape.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override {
    MAGIC_SHAPE_CONTRACT_ANY("Flatten::forward", input);
    input_shape_ = input.shape();
    return input.reshape({input.size()});
  }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshape(input_shape_);
  }
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

/// Reshapes to a fixed target shape (total size must match).
class FixedReshape : public Module {
 public:
  explicit FixedReshape(Shape target) : target_(std::move(target)) {}

  Tensor forward(const Tensor& input) override {
    MAGIC_SHAPE_CONTRACT_SIZE("FixedReshape::forward", input, target_size());
    input_shape_ = input.shape();
    return input.reshape(target_);
  }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshape(input_shape_);
  }
  std::string name() const override { return "FixedReshape"; }

 private:
  std::size_t target_size() const {
    std::size_t total = 1;
    for (std::size_t d : target_) total *= d;
    return total;
  }

  Shape target_;
  Shape input_shape_;
};

}  // namespace magic::nn
