#pragma once
// Shape-adapter modules used to glue convolutional stages to dense heads.

#include "nn/module.hpp"
#include "nn/shape_contract.hpp"

namespace magic::nn {

/// Flattens any input to rank-1; backward restores the original shape.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override {
    MAGIC_SHAPE_CONTRACT_ANY("Flatten::forward", input);
    input_shape_ = input.shape();
    return input.reshape({input.size()});
  }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshape(input_shape_);
  }
  /// Flattens everything after the leading batch dimension.
  Tensor forward_batch(const Tensor& input) override {
    require_batch_inference("Flatten::forward_batch");
    (void)batch_item_shape(input, "Flatten::forward_batch");
    const std::size_t batch = input.dim(0);
    return input.reshape({batch, input.size() / batch});
  }
  /// Owned input: pure metadata change, storage moves through untouched.
  Tensor forward_batch_owned(Tensor&& input) override {
    require_batch_inference("Flatten::forward_batch");
    (void)batch_item_shape(input, "Flatten::forward_batch");
    const std::size_t batch = input.dim(0);
    return std::move(input).reshape({batch, input.size() / batch});
  }
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

/// Reshapes to a fixed target shape (total size must match).
class FixedReshape : public Module {
 public:
  explicit FixedReshape(Shape target) : target_(std::move(target)) {}

  Tensor forward(const Tensor& input) override {
    MAGIC_SHAPE_CONTRACT_SIZE("FixedReshape::forward", input, target_size());
    input_shape_ = input.shape();
    return input.reshape(target_);
  }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshape(input_shape_);
  }
  /// Reshapes each sample to the target shape under a leading batch dim.
  Tensor forward_batch(const Tensor& input) override {
    require_batch_inference("FixedReshape::forward_batch");
    (void)batch_item_shape(input, "FixedReshape::forward_batch");
    const std::size_t batch = input.dim(0);
    if (input.size() != batch * target_size()) {
      throw std::invalid_argument("FixedReshape::forward_batch: per-sample "
                                  "size mismatch for " + input.describe());
    }
    Shape batched{batch};
    for (std::size_t d : target_) batched.push_back(d);
    return input.reshape(std::move(batched));
  }
  /// Owned input: pure metadata change, storage moves through untouched.
  Tensor forward_batch_owned(Tensor&& input) override {
    require_batch_inference("FixedReshape::forward_batch");
    (void)batch_item_shape(input, "FixedReshape::forward_batch");
    const std::size_t batch = input.dim(0);
    if (input.size() != batch * target_size()) {
      throw std::invalid_argument("FixedReshape::forward_batch: per-sample "
                                  "size mismatch for " + input.describe());
    }
    Shape batched{batch};
    for (std::size_t d : target_) batched.push_back(d);
    return std::move(input).reshape(std::move(batched));
  }
  std::string name() const override { return "FixedReshape"; }

 private:
  std::size_t target_size() const {
    std::size_t total = 1;
    for (std::size_t d : target_) total *= d;
    return total;
  }

  Shape target_;
  Shape input_shape_;
};

}  // namespace magic::nn
