#pragma once
// Shape-adapter modules used to glue convolutional stages to dense heads.

#include "nn/module.hpp"

namespace magic::nn {

/// Flattens any input to rank-1; backward restores the original shape.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& input) override {
    input_shape_ = input.shape();
    return input.reshape({input.size()});
  }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshape(input_shape_);
  }
  std::string name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

/// Reshapes to a fixed target shape (total size must match).
class FixedReshape : public Module {
 public:
  explicit FixedReshape(Shape target) : target_(std::move(target)) {}

  Tensor forward(const Tensor& input) override {
    input_shape_ = input.shape();
    return input.reshape(target_);
  }
  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshape(input_shape_);
  }
  std::string name() const override { return "FixedReshape"; }

 private:
  Shape target_;
  Shape input_shape_;
};

}  // namespace magic::nn
