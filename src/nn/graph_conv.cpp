#include "nn/graph_conv.hpp"

#include <algorithm>

#include "nn/init.hpp"
#include "nn/shape_contract.hpp"
#include "util/check.hpp"

namespace magic::nn {

GraphConvLayer::GraphConvLayer(std::size_t in_channels, std::size_t out_channels,
                               Activation activation, util::Rng& rng)
    : in_(in_channels),
      out_(out_channels),
      activation_(activation),
      weight_("graph_conv.weight",
              xavier_uniform({in_channels, out_channels}, in_channels,
                             out_channels, rng)) {}

Tensor GraphConvLayer::forward(const SparseMatrix& prop, const Tensor& z) {
  // Single authoritative input check, live in checked AND release builds:
  // ShapeContractError derives from std::invalid_argument, so release-mode
  // callers catching invalid input keep working.
  check_shape_contract("GraphConvLayer::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  if (prop.rows() != z.dim(0) || prop.cols() != z.dim(0)) {
    // Checked builds upgrade this to a CheckError with the full geometry;
    // release builds fall through to the plain invalid_argument.
    MAGIC_CHECK(false, "GraphConvLayer::forward: propagation operator is "
                           << prop.rows() << 'x' << prop.cols()
                           << " but input has " << z.dim(0) << " vertices");
    throw std::invalid_argument("GraphConvLayer::forward: operator size mismatch");
  }
  if (!grad_enabled_) {
    cached_prop_ = nullptr;  // invalidate any stale training cache
    Tensor f = tensor::matmul(z, weight_.value);
    Tensor s = prop.multiply(f);
    apply_activation(activation_, s.data(), s.size());
    return s;
  }
  cached_prop_ = &prop;
  cached_input_ = z;
  // F = Z W, then S = P F (sparse), then Y = f(S).
  Tensor f = tensor::matmul(z, weight_.value);
  cached_preact_ = prop.multiply(f);
  Tensor y = cached_preact_;
  apply_activation(activation_, y.data(), y.size());
  return y;
}

void GraphConvLayer::forward_inference_into(const SparseMatrix& prop,
                                            const Tensor& z, Tensor& f_scratch,
                                            double* out, std::size_t out_stride,
                                            Tensor* next_input) {
  check_shape_contract("GraphConvLayer::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  if (prop.rows() != z.dim(0) || prop.cols() != z.dim(0)) {
    throw std::invalid_argument("GraphConvLayer::forward: operator size mismatch");
  }
  if (grad_enabled_) {
    throw std::logic_error(
        "GraphConvLayer::forward_inference_into: grad caching must be off");
  }
  cached_prop_ = nullptr;  // invalidate any stale training cache
  const std::size_t n = z.dim(0);
  tensor::matmul_into(f_scratch, z, weight_.value);  // consumes z fully
  // The resize may reallocate; safe even when next_input aliases z because
  // the matmul above was the last reader of z.
  if (next_input != nullptr) next_input->resize({n, out_});
  double* mirror = next_input != nullptr ? next_input->data() : nullptr;
  const std::size_t width = out_;
  const Activation act = activation_;
  prop.multiply_into(f_scratch, out, out_stride,
                     [mirror, width, act](std::size_t r, double* row) {
                       apply_activation(act, row, width);
                       if (mirror != nullptr) {
                         std::copy(row, row + width, mirror + r * width);
                       }
                     });
}

Tensor GraphConvLayer::backward(const Tensor& grad_output) {
  if (cached_prop_ == nullptr) {
    throw std::logic_error(
        grad_enabled_
            ? "GraphConvLayer::backward before forward"
            : "GraphConvLayer::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_preact_)) {
    throw std::invalid_argument("GraphConvLayer::backward: grad shape mismatch");
  }
  // dS = dY * f'(S)
  Tensor ds = grad_output;
  apply_activation_grad(activation_, ds.data(), cached_preact_.data(), ds.size());
  // dF = P^T dS ; dW += Z^T dF ; dZ = dF W^T.
  // matmul_tn/matmul_nt consume the operands in place -- no transpose
  // temporaries; dw_scratch_ is reused across steps.
  Tensor df = cached_prop_->multiply_transposed(ds);
  tensor::matmul_tn_into(dw_scratch_, cached_input_, df);
  weight_.grad += dw_scratch_;
  return tensor::matmul_nt(df, weight_.value);
}

GraphConvStack::GraphConvStack(std::size_t in_channels,
                               const std::vector<std::size_t>& channels,
                               Activation activation, util::Rng& rng) {
  if (channels.empty()) {
    throw std::invalid_argument("GraphConvStack: at least one layer required");
  }
  std::size_t prev = in_channels;
  layers_.reserve(channels.size());
  for (std::size_t c : channels) {
    if (c == 0) throw std::invalid_argument("GraphConvStack: zero-width layer");
    layers_.emplace_back(prev, c, activation, rng);
    prev = c;
    total_channels_ += c;
  }
}

Tensor GraphConvStack::forward(const SparseMatrix& prop, const Tensor& x) {
  MAGIC_SHAPE_CONTRACT("GraphConvStack::forward", x, shape::any("n"),
                       shape::eq(layers_.front().in_channels()));
  layer_outputs_.clear();
  last_n_ = x.dim(0);
  if (!layers_.front().grad_enabled()) {
    // Inference fast path: each layer activates straight into its column
    // slice of the concatenated Z^{1:h}, so there are no per-layer output
    // tensors and no final concat copy. Bit-identical to the training path
    // below (same matmul/spmm kernels in the same order).
    const std::size_t n = x.dim(0);
    Tensor concat({n, total_channels_});  // zero-init = spmm accumulator
    const Tensor* zin = &x;
    std::size_t offset = 0;
    for (std::size_t t = 0; t < layers_.size(); ++t) {
      const bool last = t + 1 == layers_.size();
      layers_[t].forward_inference_into(prop, *zin, f_scratch_,
                                        concat.data() + offset, total_channels_,
                                        last ? nullptr : &z_scratch_);
      offset += layers_[t].out_channels();
      zin = &z_scratch_;
    }
    return concat;
  }
  layer_outputs_.reserve(layers_.size());
  Tensor z = x;
  for (auto& layer : layers_) {
    z = layer.forward(prop, z);
    layer_outputs_.push_back(z);
  }
  return tensor::concat_cols(layer_outputs_);
}

Tensor GraphConvStack::backward(const Tensor& grad_concat) {
  if (grad_concat.rank() != 2 || grad_concat.dim(0) != last_n_ ||
      grad_concat.dim(1) != total_channels_) {
    throw std::invalid_argument("GraphConvStack::backward: grad shape mismatch");
  }
  // Split the concat gradient into per-layer slices.
  std::vector<Tensor> slices;
  slices.reserve(layers_.size());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t c = layer.out_channels();
    Tensor g({last_n_, c});
    for (std::size_t i = 0; i < last_n_; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        g[i * c + j] = grad_concat[i * total_channels_ + offset + j];
      }
    }
    slices.push_back(std::move(g));
    offset += c;
  }
  // Each Z_t receives gradient both from the concat and from layer t+1.
  Tensor g = slices.back();
  for (std::size_t t = layers_.size(); t-- > 0;) {
    Tensor gin = layers_[t].backward(g);
    if (t > 0) {
      g = slices[t - 1];
      g += gin;
    } else {
      g = gin;  // gradient w.r.t. the original attribute matrix X
    }
  }
  return g;
}

void GraphConvStack::set_grad_enabled(bool enabled) noexcept {
  for (auto& layer : layers_) layer.set_grad_enabled(enabled);
}

std::vector<Parameter*> GraphConvStack::parameters() {
  std::vector<Parameter*> params;
  params.reserve(layers_.size());
  for (auto& layer : layers_) params.push_back(&layer.weight());
  return params;
}

}  // namespace magic::nn
