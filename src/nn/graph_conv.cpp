#include "nn/graph_conv.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/shape_contract.hpp"
#include "util/check.hpp"

namespace magic::nn {
namespace {

/// Shared geometry check: P must be (n x n) for an n-vertex input. Checked
/// builds upgrade the failure to a CheckError with the full geometry;
/// release builds fall through to the plain invalid_argument.
void check_propagation(const char* what, const SparseMatrix& prop,
                       const Tensor& z) {
  if (prop.rows() != z.dim(0) || prop.cols() != z.dim(0)) {
    MAGIC_CHECK(false, what << ": propagation operator is " << prop.rows()
                            << 'x' << prop.cols() << " but input has "
                            << z.dim(0) << " vertices");
    throw std::invalid_argument(std::string(what) + ": operator size mismatch");
  }
}

/// Columns [col0, col0 + width) of a row-major (n x stride) tensor as a
/// contiguous (n x width) tensor (backward-time block extraction).
Tensor copy_block(const Tensor& src, std::size_t col0, std::size_t width) {
  const std::size_t n = src.dim(0);
  const std::size_t stride = src.dim(1);
  Tensor out({n, width});
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = src.data() + i * stride + col0;
    std::copy(row, row + width, out.data() + i * width);
  }
  return out;
}

}  // namespace

const char* graph_conv_operator_name(GraphConvOperator kind) noexcept {
  switch (kind) {
    case GraphConvOperator::Paper: return "paper";
    case GraphConvOperator::Sage: return "sage";
    case GraphConvOperator::Tag: return "tag";
  }
  return "paper";
}

GraphConvOperator parse_graph_conv_operator(const std::string& name) {
  if (name == "paper") return GraphConvOperator::Paper;
  if (name == "sage") return GraphConvOperator::Sage;
  if (name == "tag") return GraphConvOperator::Tag;
  throw std::runtime_error("unknown graph-conv operator '" + name +
                           "' (expected paper, sage or tag)");
}

// ---- PaperGraphConv (Eq. 1; the pre-zoo GraphConvLayer verbatim) ----------

PaperGraphConv::PaperGraphConv(std::size_t in_channels, std::size_t out_channels,
                               Activation activation, util::Rng& rng)
    : GraphConvOp(in_channels, out_channels, activation,
                  Parameter("graph_conv.weight",
                            xavier_uniform({in_channels, out_channels},
                                           in_channels, out_channels, rng))) {}

Tensor PaperGraphConv::forward(const SparseMatrix& prop, const Tensor& z) {
  // Single authoritative input check, live in checked AND release builds:
  // ShapeContractError derives from std::invalid_argument, so release-mode
  // callers catching invalid input keep working.
  check_shape_contract("PaperGraphConv::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  check_propagation("PaperGraphConv::forward", prop, z);
  if (!grad_enabled_) {
    cached_prop_ = nullptr;  // invalidate any stale training cache
    Tensor f = tensor::matmul(z, weight_.value);
    Tensor s = prop.multiply(f);
    apply_activation(activation_, s.data(), s.size());
    return s;
  }
  cached_prop_ = &prop;
  cached_input_ = z;
  // F = Z W, then S = P F (sparse), then Y = f(S).
  Tensor f = tensor::matmul(z, weight_.value);
  cached_preact_ = prop.multiply(f);
  Tensor y = cached_preact_;
  apply_activation(activation_, y.data(), y.size());
  return y;
}

void PaperGraphConv::forward_inference_into(const SparseMatrix& prop,
                                            const Tensor& z, Tensor& f_scratch,
                                            double* out, std::size_t out_stride,
                                            Tensor* next_input) {
  check_shape_contract("PaperGraphConv::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  check_propagation("PaperGraphConv::forward", prop, z);
  if (grad_enabled_) {
    throw std::logic_error(
        "PaperGraphConv::forward_inference_into: grad caching must be off");
  }
  cached_prop_ = nullptr;  // invalidate any stale training cache
  const std::size_t n = z.dim(0);
  tensor::matmul_into(f_scratch, z, weight_.value);  // consumes z fully
  // The resize may reallocate; safe even when next_input aliases z because
  // the matmul above was the last reader of z.
  if (next_input != nullptr) next_input->resize({n, out_});
  double* mirror = next_input != nullptr ? next_input->data() : nullptr;
  const std::size_t width = out_;
  const Activation act = activation_;
  prop.multiply_into(f_scratch, out, out_stride,
                     [mirror, width, act](std::size_t r, double* row) {
                       apply_activation(act, row, width);
                       if (mirror != nullptr) {
                         std::copy(row, row + width, mirror + r * width);
                       }
                     });
}

Tensor PaperGraphConv::backward(const Tensor& grad_output) {
  if (cached_prop_ == nullptr) {
    throw std::logic_error(
        grad_enabled_
            ? "PaperGraphConv::backward before forward"
            : "PaperGraphConv::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_preact_)) {
    throw std::invalid_argument("PaperGraphConv::backward: grad shape mismatch");
  }
  // dS = dY * f'(S)
  Tensor ds = grad_output;
  apply_activation_grad(activation_, ds.data(), cached_preact_.data(), ds.size());
  // dF = P^T dS ; dW += Z^T dF ; dZ = dF W^T.
  // matmul_tn/matmul_nt consume the operands in place -- no transpose
  // temporaries; dw_scratch_ is reused across steps.
  Tensor df = cached_prop_->multiply_transposed(ds);
  tensor::matmul_tn_into(dw_scratch_, cached_input_, df);
  weight_.grad += dw_scratch_;
  return tensor::matmul_nt(df, weight_.value);
}

// ---- SageConv (mean aggregator: Y = f([Z | P Z] W)) -----------------------

namespace {

/// Fills `h` (n x 2*in) with [Z | P Z]: the left block is a straight copy,
/// the right block one SpMM into the column slice. `h` must arrive zeroed
/// (multiply_into accumulates).
void build_sage_concat(const SparseMatrix& prop, const Tensor& z,
                       std::size_t in, Tensor& h) {
  const std::size_t n = z.dim(0);
  const std::size_t width = 2 * in;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = z.data() + i * in;
    std::copy(row, row + in, h.data() + i * width);
  }
  prop.multiply_into(z, h.data() + in, width);
}

}  // namespace

SageConv::SageConv(std::size_t in_channels, std::size_t out_channels,
                   Activation activation, util::Rng& rng)
    : GraphConvOp(in_channels, out_channels, activation,
                  Parameter("sage_conv.weight",
                            xavier_uniform({2 * in_channels, out_channels},
                                           2 * in_channels, out_channels, rng))) {}

Tensor SageConv::forward(const SparseMatrix& prop, const Tensor& z) {
  check_shape_contract("SageConv::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  check_propagation("SageConv::forward", prop, z);
  const std::size_t n = z.dim(0);
  Tensor h({n, 2 * in_});  // zero-init = spmm accumulator
  build_sage_concat(prop, z, in_, h);
  if (!grad_enabled_) {
    cached_prop_ = nullptr;
    Tensor y = tensor::matmul(h, weight_.value);
    apply_activation(activation_, y.data(), y.size());
    return y;
  }
  cached_prop_ = &prop;
  cached_preact_ = tensor::matmul(h, weight_.value);
  cached_input_ = std::move(h);
  Tensor y = cached_preact_;
  apply_activation(activation_, y.data(), y.size());
  return y;
}

void SageConv::forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                                      Tensor& f_scratch, double* out,
                                      std::size_t out_stride,
                                      Tensor* next_input) {
  check_shape_contract("SageConv::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  check_propagation("SageConv::forward", prop, z);
  if (grad_enabled_) {
    throw std::logic_error(
        "SageConv::forward_inference_into: grad caching must be off");
  }
  cached_prop_ = nullptr;
  const std::size_t n = z.dim(0);
  h_scratch_.resize({n, 2 * in_});
  h_scratch_.fill(0.0);
  build_sage_concat(prop, z, in_, h_scratch_);
  // z is fully consumed; next_input may now alias it.
  tensor::matmul_into(f_scratch, h_scratch_, weight_.value);
  if (next_input != nullptr) next_input->resize({n, out_});
  double* mirror = next_input != nullptr ? next_input->data() : nullptr;
  for (std::size_t r = 0; r < n; ++r) {
    double* row = f_scratch.data() + r * out_;
    apply_activation(activation_, row, out_);
    std::copy(row, row + out_, out + r * out_stride);
    if (mirror != nullptr) std::copy(row, row + out_, mirror + r * out_);
  }
}

Tensor SageConv::backward(const Tensor& grad_output) {
  if (cached_prop_ == nullptr) {
    throw std::logic_error(
        grad_enabled_
            ? "SageConv::backward before forward"
            : "SageConv::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_preact_)) {
    throw std::invalid_argument("SageConv::backward: grad shape mismatch");
  }
  // dS = dY * f'(S); dW += H^T dS; dH = dS W^T.
  Tensor ds = grad_output;
  apply_activation_grad(activation_, ds.data(), cached_preact_.data(), ds.size());
  tensor::matmul_tn_into(dw_scratch_, cached_input_, ds);
  weight_.grad += dw_scratch_;
  Tensor dh = tensor::matmul_nt(ds, weight_.value);
  // dZ = dH_left + P^T dH_right (the self path plus the aggregated path).
  Tensor dz = copy_block(dh, 0, in_);
  dz += cached_prop_->multiply_transposed(copy_block(dh, in_, in_));
  return dz;
}

// ---- TagConv (K-hop: Y = f([Z | P Z | ... | P^K Z] W)) --------------------

namespace {

/// Fills `h` (n x (hops+1)*in) with [Z | P Z | ... | P^K Z]. Hop k is one
/// SpMM of the previous hop straight into its column block of `h`
/// (multiply_into), with the finished rows mirrored into `hop_scratch` so
/// the next hop has a contiguous operand. `h` must arrive zeroed.
void build_tag_concat(const SparseMatrix& prop, const Tensor& z, std::size_t in,
                      std::size_t hops, Tensor& h, Tensor& hop_scratch,
                      Tensor& prev_scratch) {
  const std::size_t n = z.dim(0);
  const std::size_t width = (hops + 1) * in;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = z.data() + i * in;
    std::copy(row, row + in, h.data() + i * width);
  }
  const Tensor* prev = &z;
  for (std::size_t k = 1; k <= hops; ++k) {
    hop_scratch.resize({n, in});
    double* mirror = hop_scratch.data();
    prop.multiply_into(*prev, h.data() + k * in, width,
                       [mirror, in](std::size_t r, double* row) {
                         std::copy(row, row + in, mirror + r * in);
                       });
    std::swap(hop_scratch, prev_scratch);
    prev = &prev_scratch;
  }
}

}  // namespace

TagConv::TagConv(std::size_t in_channels, std::size_t out_channels,
                 std::size_t hops, Activation activation, util::Rng& rng)
    : GraphConvOp(in_channels, out_channels, activation,
                  Parameter("tag_conv.weight",
                            xavier_uniform({(hops + 1) * in_channels, out_channels},
                                           (hops + 1) * in_channels, out_channels,
                                           rng))),
      hops_(hops) {
  if (hops_ < 1) {
    throw std::invalid_argument("TagConv: tag_hops must be >= 1");
  }
}

Tensor TagConv::forward(const SparseMatrix& prop, const Tensor& z) {
  check_shape_contract("TagConv::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  check_propagation("TagConv::forward", prop, z);
  const std::size_t n = z.dim(0);
  Tensor h({n, (hops_ + 1) * in_});  // zero-init = spmm accumulator
  Tensor prev;
  build_tag_concat(prop, z, in_, hops_, h, hop_scratch_, prev);
  if (!grad_enabled_) {
    cached_prop_ = nullptr;
    Tensor y = tensor::matmul(h, weight_.value);
    apply_activation(activation_, y.data(), y.size());
    return y;
  }
  cached_prop_ = &prop;
  cached_preact_ = tensor::matmul(h, weight_.value);
  cached_input_ = std::move(h);
  Tensor y = cached_preact_;
  apply_activation(activation_, y.data(), y.size());
  return y;
}

void TagConv::forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                                     Tensor& f_scratch, double* out,
                                     std::size_t out_stride, Tensor* next_input) {
  check_shape_contract("TagConv::forward", z,
                       {shape::any("n"), shape::eq(in_)});
  check_propagation("TagConv::forward", prop, z);
  if (grad_enabled_) {
    throw std::logic_error(
        "TagConv::forward_inference_into: grad caching must be off");
  }
  cached_prop_ = nullptr;
  const std::size_t n = z.dim(0);
  h_scratch_.resize({n, (hops_ + 1) * in_});
  h_scratch_.fill(0.0);
  Tensor prev;
  build_tag_concat(prop, z, in_, hops_, h_scratch_, hop_scratch_, prev);
  // z is fully consumed; next_input may now alias it.
  tensor::matmul_into(f_scratch, h_scratch_, weight_.value);
  if (next_input != nullptr) next_input->resize({n, out_});
  double* mirror = next_input != nullptr ? next_input->data() : nullptr;
  for (std::size_t r = 0; r < n; ++r) {
    double* row = f_scratch.data() + r * out_;
    apply_activation(activation_, row, out_);
    std::copy(row, row + out_, out + r * out_stride);
    if (mirror != nullptr) std::copy(row, row + out_, mirror + r * out_);
  }
}

Tensor TagConv::backward(const Tensor& grad_output) {
  if (cached_prop_ == nullptr) {
    throw std::logic_error(
        grad_enabled_
            ? "TagConv::backward before forward"
            : "TagConv::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_preact_)) {
    throw std::invalid_argument("TagConv::backward: grad shape mismatch");
  }
  // dS = dY * f'(S); dW += H^T dS; dH = dS W^T.
  Tensor ds = grad_output;
  apply_activation_grad(activation_, ds.data(), cached_preact_.data(), ds.size());
  tensor::matmul_tn_into(dw_scratch_, cached_input_, ds);
  weight_.grad += dw_scratch_;
  Tensor dh = tensor::matmul_nt(ds, weight_.value);
  // dZ = sum_k (P^T)^k dH_k, evaluated with Horner's scheme innermost-out:
  // acc = dH_K; acc = dH_k + P^T acc for k = K-1 .. 0.
  Tensor acc = copy_block(dh, hops_ * in_, in_);
  for (std::size_t k = hops_; k-- > 0;) {
    Tensor lifted = cached_prop_->multiply_transposed(acc);
    acc = copy_block(dh, k * in_, in_);
    acc += lifted;
  }
  return acc;
}

// ---- Factory --------------------------------------------------------------

std::unique_ptr<GraphConvOp> make_graph_conv_op(const GraphConvOpOptions& options,
                                                std::size_t in_channels,
                                                std::size_t out_channels,
                                                Activation activation,
                                                util::Rng& rng) {
  switch (options.kind) {
    case GraphConvOperator::Paper:
      return std::make_unique<PaperGraphConv>(in_channels, out_channels,
                                              activation, rng);
    case GraphConvOperator::Sage:
      return std::make_unique<SageConv>(in_channels, out_channels, activation,
                                        rng);
    case GraphConvOperator::Tag:
      return std::make_unique<TagConv>(in_channels, out_channels,
                                       options.tag_hops, activation, rng);
  }
  throw std::invalid_argument("make_graph_conv_op: unknown operator");
}

// ---- GraphConvStack -------------------------------------------------------

GraphConvStack::GraphConvStack(const GraphConvStackConfig& config, util::Rng& rng)
    : op_options_(config.op) {
  if (config.channels.empty()) {
    throw std::invalid_argument("GraphConvStack: at least one layer required");
  }
  std::size_t prev = config.in_channels;
  layers_.reserve(config.channels.size());
  for (std::size_t c : config.channels) {
    if (c == 0) throw std::invalid_argument("GraphConvStack: zero-width layer");
    layers_.push_back(
        make_graph_conv_op(config.op, prev, c, config.activation, rng));
    prev = c;
    total_channels_ += c;
  }
}

GraphConvStack::GraphConvStack(std::size_t in_channels,
                               const std::vector<std::size_t>& channels,
                               Activation activation, util::Rng& rng)
    : GraphConvStack(
          [&] {
            GraphConvStackConfig config;
            config.in_channels = in_channels;
            config.channels = channels;
            config.activation = activation;
            return config;
          }(),
          rng) {}

Tensor GraphConvStack::forward(const SparseMatrix& prop, const Tensor& x) {
  MAGIC_SHAPE_CONTRACT("GraphConvStack::forward", x, shape::any("n"),
                       shape::eq(layers_.front()->in_channels()));
  layer_outputs_.clear();
  last_n_ = x.dim(0);
  if (!layers_.front()->grad_enabled()) {
    // Inference fast path: each layer activates straight into its column
    // slice of the concatenated Z^{1:h}, so there are no per-layer output
    // tensors and no final concat copy. Bit-identical to the training path
    // below (same matmul/spmm kernels in the same order).
    const std::size_t n = x.dim(0);
    Tensor concat({n, total_channels_});  // zero-init = spmm accumulator
    const Tensor* zin = &x;
    std::size_t offset = 0;
    for (std::size_t t = 0; t < layers_.size(); ++t) {
      const bool last = t + 1 == layers_.size();
      layers_[t]->forward_inference_into(prop, *zin, f_scratch_,
                                         concat.data() + offset, total_channels_,
                                         last ? nullptr : &z_scratch_);
      offset += layers_[t]->out_channels();
      zin = &z_scratch_;
    }
    return concat;
  }
  layer_outputs_.reserve(layers_.size());
  Tensor z = x;
  for (auto& layer : layers_) {
    z = layer->forward(prop, z);
    layer_outputs_.push_back(z);
  }
  return tensor::concat_cols(layer_outputs_);
}

Tensor GraphConvStack::backward(const Tensor& grad_concat) {
  if (grad_concat.rank() != 2 || grad_concat.dim(0) != last_n_ ||
      grad_concat.dim(1) != total_channels_) {
    throw std::invalid_argument("GraphConvStack::backward: grad shape mismatch");
  }
  // Split the concat gradient into per-layer slices.
  std::vector<Tensor> slices;
  slices.reserve(layers_.size());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const std::size_t c = layer->out_channels();
    Tensor g({last_n_, c});
    for (std::size_t i = 0; i < last_n_; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        g[i * c + j] = grad_concat[i * total_channels_ + offset + j];
      }
    }
    slices.push_back(std::move(g));
    offset += c;
  }
  // Each Z_t receives gradient both from the concat and from layer t+1.
  Tensor g = slices.back();
  for (std::size_t t = layers_.size(); t-- > 0;) {
    Tensor gin = layers_[t]->backward(g);
    if (t > 0) {
      g = slices[t - 1];
      g += gin;
    } else {
      g = gin;  // gradient w.r.t. the original attribute matrix X
    }
  }
  return g;
}

void GraphConvStack::set_grad_enabled(bool enabled) noexcept {
  for (auto& layer : layers_) layer->set_grad_enabled(enabled);
}

std::vector<Parameter*> GraphConvStack::parameters() {
  std::vector<Parameter*> params;
  params.reserve(layers_.size());
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace magic::nn
