#pragma once
// Weight initialization schemes.

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace magic::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
tensor::Tensor xavier_uniform(tensor::Shape shape, std::size_t fan_in,
                              std::size_t fan_out, util::Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)); suited to ReLU layers.
tensor::Tensor he_normal(tensor::Shape shape, std::size_t fan_in, util::Rng& rng);

}  // namespace magic::nn
