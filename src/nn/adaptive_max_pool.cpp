#include "nn/adaptive_max_pool.hpp"

#include <stdexcept>

#include "nn/shape_contract.hpp"

namespace magic::nn {
namespace {

// Window start/end for adaptive pooling: [floor(i*in/out), ceil((i+1)*in/out)).
std::size_t win_start(std::size_t i, std::size_t in, std::size_t out) noexcept {
  return (i * in) / out;
}
std::size_t win_end(std::size_t i, std::size_t in, std::size_t out) noexcept {
  return ((i + 1) * in + out - 1) / out;
}

}  // namespace

AdaptiveMaxPool2D::AdaptiveMaxPool2D(std::size_t out_h, std::size_t out_w)
    : oh_(out_h), ow_(out_w) {
  if (out_h == 0 || out_w == 0) {
    throw std::invalid_argument("AdaptiveMaxPool2D: output dims must be positive");
  }
}

Tensor AdaptiveMaxPool2D::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("AdaptiveMaxPool2D::forward", input, shape::any("C"),
                       shape::at_least("H", 1), shape::at_least("W", 1));
  if (input.rank() != 3) {
    throw std::invalid_argument("AdaptiveMaxPool2D: (C x H x W) input required");
  }
  const std::size_t C = input.dim(0), H = input.dim(1), W = input.dim(2);
  if (H == 0 || W == 0) {
    throw std::invalid_argument("AdaptiveMaxPool2D: empty spatial dims");
  }
  input_shape_ = input.shape();
  argmax_.assign(C * oh_ * ow_, 0);
  Tensor out({C, oh_, ow_});
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t oy = 0; oy < oh_; ++oy) {
      // When the output grid is larger than the input, windows overlap/repeat
      // (start index clamped so each window is non-empty).
      std::size_t y0 = win_start(oy, H, oh_), y1 = win_end(oy, H, oh_);
      if (y0 >= H) y0 = H - 1;
      if (y1 <= y0) y1 = y0 + 1;
      for (std::size_t ox = 0; ox < ow_; ++ox) {
        std::size_t x0 = win_start(ox, W, ow_), x1 = win_end(ox, W, ow_);
        if (x0 >= W) x0 = W - 1;
        if (x1 <= x0) x1 = x0 + 1;
        std::size_t best = (c * H + y0) * W + x0;
        for (std::size_t y = y0; y < y1; ++y) {
          for (std::size_t x = x0; x < x1; ++x) {
            const std::size_t idx = (c * H + y) * W + x;
            if (input[idx] > input[best]) best = idx;
          }
        }
        const std::size_t oidx = (c * oh_ + oy) * ow_ + ox;
        argmax_[oidx] = best;
        out[oidx] = input[best];
      }
    }
  }
  return out;
}

Tensor AdaptiveMaxPool2D::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("AdaptiveMaxPool2D::backward: grad shape mismatch");
  }
  Tensor grad_in = Tensor::zeros(input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    grad_in[argmax_[i]] += grad_output[i];
  }
  return grad_in;
}

}  // namespace magic::nn
