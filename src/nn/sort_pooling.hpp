#pragma once
// SortPooling layer (§III-A3 of the paper; Zhang et al., AAAI'18).
//
// Sorts the vertex feature descriptors Z^{1:h} by the last channel in
// decreasing order, breaking ties with progressively earlier channels
// (the "most refined WL colors" live in the deepest layer's output), then
// truncates or zero-pads to exactly k rows so every graph yields a
// (k x total_channels) tensor.

#include <vector>

#include "nn/module.hpp"

namespace magic::nn {

/// SortPooling with a fixed k. Input (n x C); output (k x C).
class SortPooling : public Module {
 public:
  explicit SortPooling(std::size_t k);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "SortPooling"; }

  std::size_t k() const noexcept { return k_; }

  /// Packed-batch pooling: `packed` is a (total_vertices x C) concatenation
  /// of N graphs' vertex descriptors and `offsets` the (N+1) segment bounds.
  /// Each segment is sorted with the same comparator as forward() and
  /// truncated/zero-padded to k rows, yielding (N x k x C). Inference-only;
  /// leaves the forward()/backward() caches untouched.
  Tensor forward_packed(const Tensor& packed,
                        const std::vector<std::size_t>& offsets);

  /// Row order chosen by the last forward: position p in the output came
  /// from input row order()[p] (only the first min(n, k) entries are used).
  const std::vector<std::size_t>& order() const noexcept { return order_; }

 private:
  std::size_t k_;
  std::vector<std::size_t> order_;
  Shape input_shape_;
};

}  // namespace magic::nn
