#include "nn/weighted_vertices.hpp"

#include <cmath>

#include "nn/shape_contract.hpp"

namespace magic::nn {

WeightedVertices::WeightedVertices(std::size_t k, Activation activation,
                                   util::Rng& rng)
    : k_(k),
      activation_(activation),
      // Initialized near uniform averaging (1/k with small noise) so early
      // training behaves like mean pooling over the kept vertices.
      weight_("weighted_vertices.weight", Tensor::zeros({k})) {
  if (k == 0) throw std::invalid_argument("WeightedVertices: k must be positive");
  const double base = 1.0 / static_cast<double>(k);
  for (std::size_t i = 0; i < k; ++i) {
    weight_.value[i] = base + rng.uniform(-0.1 * base, 0.1 * base);
  }
}

Tensor WeightedVertices::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT("WeightedVertices::forward", input, shape::eq(k_),
                       shape::any("C"));
  if (input.rank() != 2 || input.dim(0) != k_) {
    throw std::invalid_argument("WeightedVertices::forward: expected (" +
                                std::to_string(k_) + " x C), got " + input.describe());
  }
  const std::size_t c = input.dim(1);
  Tensor preact = Tensor::zeros({c});
  for (std::size_t i = 0; i < k_; ++i) {
    const double w = weight_.value[i];
    for (std::size_t j = 0; j < c; ++j) {
      preact[j] += w * input[i * c + j];
    }
  }
  Tensor out = tensor::map(preact,
                           [this](double x) { return activate(activation_, x); });
  cache_valid_ = grad_enabled();
  if (cache_valid_) {
    cached_input_ = input;
    cached_preact_ = std::move(preact);
  }
  return out;
}

Tensor WeightedVertices::forward_batch(const Tensor& input) {
  require_batch_inference("WeightedVertices::forward_batch");
  (void)batch_item_shape(input, "WeightedVertices::forward_batch");
  if (input.rank() != 3 || input.dim(1) != k_) {
    throw std::invalid_argument("WeightedVertices::forward_batch: expected (batch x " +
                                std::to_string(k_) + " x C), got " +
                                input.describe());
  }
  const std::size_t batch = input.dim(0);
  const std::size_t c = input.dim(2);
  Tensor out = Tensor::zeros({batch, c});
  for (std::size_t s = 0; s < batch; ++s) {
    const double* in = input.data() + s * k_ * c;
    double* po = out.data() + s * c;
    for (std::size_t i = 0; i < k_; ++i) {
      const double w = weight_.value[i];
      for (std::size_t j = 0; j < c; ++j) po[j] += w * in[i * c + j];
    }
    for (std::size_t j = 0; j < c; ++j) po[j] = activate(activation_, po[j]);
  }
  return out;
}

Tensor WeightedVertices::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error(
        "WeightedVertices::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_preact_)) {
    throw std::invalid_argument("WeightedVertices::backward: grad shape mismatch");
  }
  const std::size_t c = cached_preact_.dim(0);
  Tensor ds = grad_output;
  for (std::size_t j = 0; j < c; ++j) {
    ds[j] *= activate_grad(activation_, cached_preact_[j]);
  }
  Tensor grad_in = Tensor::zeros(cached_input_.shape());
  for (std::size_t i = 0; i < k_; ++i) {
    double wg = 0.0;
    const double w = weight_.value[i];
    for (std::size_t j = 0; j < c; ++j) {
      wg += ds[j] * cached_input_[i * c + j];
      grad_in[i * c + j] = w * ds[j];
    }
    weight_.grad[i] += wg;
  }
  return grad_in;
}

std::vector<Parameter*> WeightedVertices::parameters() { return {&weight_}; }

}  // namespace magic::nn
