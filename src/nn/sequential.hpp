#pragma once
// Ordered container of modules executed front-to-back (and reversed on
// backward). Used for the classifier heads that follow the graph stages.

#include <memory>

#include "nn/module.hpp"

namespace magic::nn {

/// Owning chain of modules.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module and returns a reference to it (builder style).
  template <typename M, typename... Args>
  M& emplace(Args&&... args) {
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    modules_.push_back(std::move(mod));
    return ref;
  }

  void push_back(std::unique_ptr<Module> m) { modules_.push_back(std::move(m)); }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Chains the children's forward_batch; the batch stays fused wherever a
  /// child provides a native batched kernel.
  Tensor forward_batch(const Tensor& input) override;
  std::vector<Parameter*> parameters() override;
  void set_training(bool training) override;
  void set_grad_enabled(bool enabled) override;
  /// Derives a distinct child seed per module index, so sibling stochastic
  /// layers get uncorrelated streams from one seed.
  void reseed_rng(std::uint64_t seed) override;
  std::string name() const override { return "Sequential"; }

  std::size_t size() const noexcept { return modules_.size(); }
  Module& at(std::size_t i) { return *modules_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace magic::nn
