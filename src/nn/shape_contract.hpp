#pragma once
// Shape contracts for layer inputs.
//
// Every Module::forward (and the graph-stage forwards that take extra
// arguments) declares the shape it accepts via MAGIC_SHAPE_CONTRACT at entry.
// A violated contract throws ShapeContractError with a message naming the
// layer and the expected-vs-actual shape, e.g.
//
//   Conv1D::forward: shape contract violated: expected (16 x L>=5),
//   got Tensor[3x40]
//
// Contracts are live when MAGIC_CHECKED_BUILD is defined (CMake option
// MAGIC_CHECKED_BUILD, forced ON whenever tests are built) and compile to
// nothing otherwise, so an unchecked Release build pays zero overhead.
//
// Policy (see DESIGN.md): every new layer must declare its input contract
// with one of these macros before touching the tensor's storage.
//
//   MAGIC_SHAPE_CONTRACT(layer, t, dims...)  -- exact rank, per-dim specs
//   MAGIC_SHAPE_CONTRACT_ANY(layer, t)       -- elementwise layer, any shape
//   MAGIC_SHAPE_CONTRACT_SIZE(layer, t, n)   -- any shape of total size n
//
// Dim specs: shape::eq(c) pins an extent, shape::any("n") names a free
// dimension, shape::at_least("L", k) bounds one from below.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace magic::nn {

/// Thrown on contract violation. Derives from std::invalid_argument so the
/// pre-contract error-handling tests (and callers catching invalid input)
/// keep working unchanged.
class ShapeContractError : public std::invalid_argument {
 public:
  explicit ShapeContractError(const std::string& what) : std::invalid_argument(what) {}
};

namespace shape {

/// One expected dimension of a layer-input contract.
struct Dim {
  std::size_t extent = 0;        ///< Exact extent (when symbol == nullptr).
  const char* symbol = nullptr;  ///< Name of a free dimension, e.g. "n".
  std::size_t min_extent = 0;    ///< Lower bound for free dimensions.
};

/// Exactly `extent`.
constexpr Dim eq(std::size_t extent) { return {extent, nullptr, 0}; }

/// Any extent; `symbol` names the dimension in diagnostics.
constexpr Dim any(const char* symbol) { return {0, symbol, 0}; }

/// Any extent >= `min_extent` (e.g. a conv input covering one kernel window).
constexpr Dim at_least(const char* symbol, std::size_t min_extent) {
  return {0, symbol, min_extent};
}

}  // namespace shape

/// Renders a contract like "(n x 32)" or "(16 x L>=5)"; "scalar" when empty.
std::string format_contract(const std::vector<shape::Dim>& dims);

/// Checks `t` dimension-by-dimension; throws ShapeContractError naming
/// `layer` plus expected-vs-actual on rank or extent mismatch.
void check_shape_contract(const char* layer, const tensor::Tensor& t,
                          const std::vector<shape::Dim>& expected);

/// Checks total element count only (reshape-style layers).
void check_size_contract(const char* layer, const tensor::Tensor& t,
                         std::size_t expected_size);

}  // namespace magic::nn

#ifdef MAGIC_CHECKED_BUILD

#define MAGIC_SHAPE_CONTRACT(layer, tensor_expr, ...) \
  ::magic::nn::check_shape_contract((layer), (tensor_expr), {__VA_ARGS__})

// Elementwise layers accept any shape; the macro records the (vacuous)
// contract so every forward declares one, and costs nothing.
#define MAGIC_SHAPE_CONTRACT_ANY(layer, tensor_expr) \
  static_cast<void>(sizeof(layer)), static_cast<void>(tensor_expr)

#define MAGIC_SHAPE_CONTRACT_SIZE(layer, tensor_expr, expected_size) \
  ::magic::nn::check_size_contract((layer), (tensor_expr), (expected_size))

#else

#define MAGIC_SHAPE_CONTRACT(layer, tensor_expr, ...) ((void)0)
#define MAGIC_SHAPE_CONTRACT_ANY(layer, tensor_expr) ((void)0)
#define MAGIC_SHAPE_CONTRACT_SIZE(layer, tensor_expr, expected_size) ((void)0)

#endif  // MAGIC_CHECKED_BUILD
