#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/shape_contract.hpp"
#include "tensor/simd/kernels.hpp"

namespace magic::nn {

Tensor ReLU::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("ReLU::forward", input);
  cache_valid_ = grad_enabled();
  if (cache_valid_) cached_input_ = input;
  Tensor out = input;
  tensor::simd::kernels().relu_fwd(out.data(), out.size());
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("ReLU::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_input_)) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  tensor::simd::kernels().relu_bwd(grad.data(), cached_input_.data(), grad.size());
  return grad;
}

Tensor ReLU::forward_batch(const Tensor& input) {
  require_batch_inference("ReLU::forward_batch");
  (void)batch_item_shape(input, "ReLU::forward_batch");
  return forward(input);  // elementwise; eval-mode forward caches nothing
}

Tensor ReLU::forward_batch_owned(Tensor&& input) {
  require_batch_inference("ReLU::forward_batch");
  (void)batch_item_shape(input, "ReLU::forward_batch");
  tensor::simd::kernels().relu_fwd(input.data(), input.size());
  return std::move(input);
}

Tensor Tanh::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Tanh::forward", input);
  cache_valid_ = grad_enabled();
  Tensor out = input;
  tensor::simd::kernels().tanh_fwd(out.data(), out.size());
  if (cache_valid_) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Tanh::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("Tanh::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  tensor::simd::kernels().tanh_bwd(grad.data(), cached_output_.data(), grad.size());
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Sigmoid::forward", input);
  cache_valid_ = grad_enabled();
  if (!cache_valid_) {
    return tensor::map(input, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  }
  cached_output_ = tensor::map(input, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  return cached_output_;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Sigmoid::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("Sigmoid::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= cached_output_[i] * (1.0 - cached_output_[i]);
  }
  return grad;
}

double activate(Activation a, double x) noexcept {
  switch (a) {
    case Activation::ReLU: return x > 0.0 ? x : 0.0;
    case Activation::Tanh: return std::tanh(x);
    case Activation::Identity: return x;
  }
  return x;
}

double activate_grad(Activation a, double x) noexcept {
  switch (a) {
    case Activation::ReLU: return x > 0.0 ? 1.0 : 0.0;
    case Activation::Tanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::Identity: return 1.0;
  }
  return 1.0;
}

void apply_activation(Activation a, double* x, std::size_t n) {
  switch (a) {
    case Activation::ReLU: tensor::simd::kernels().relu_fwd(x, n); return;
    case Activation::Tanh: tensor::simd::kernels().tanh_fwd(x, n); return;
    case Activation::Identity: return;
  }
}

void apply_activation_grad(Activation a, double* grad, const double* preact,
                           std::size_t n) {
  switch (a) {
    case Activation::ReLU:
      tensor::simd::kernels().relu_bwd(grad, preact, n);
      return;
    case Activation::Tanh:
      tensor::simd::kernels().tanh_grad_pre(grad, preact, n);
      return;
    case Activation::Identity: return;
  }
}

}  // namespace magic::nn
