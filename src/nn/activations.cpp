#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/shape_contract.hpp"

namespace magic::nn {

Tensor ReLU::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("ReLU::forward", input);
  cache_valid_ = grad_enabled();
  if (cache_valid_) cached_input_ = input;
  return tensor::map(input, [](double x) { return x > 0.0 ? x : 0.0; });
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("ReLU::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_input_)) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (cached_input_[i] <= 0.0) grad[i] = 0.0;
  }
  return grad;
}

Tensor ReLU::forward_batch(const Tensor& input) {
  require_batch_inference("ReLU::forward_batch");
  (void)batch_item_shape(input, "ReLU::forward_batch");
  return forward(input);  // elementwise; eval-mode forward caches nothing
}

Tensor ReLU::forward_batch_owned(Tensor&& input) {
  require_batch_inference("ReLU::forward_batch");
  (void)batch_item_shape(input, "ReLU::forward_batch");
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = input[i] > 0.0 ? input[i] : 0.0;  // same expression as forward()
  }
  return std::move(input);
}

Tensor Tanh::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Tanh::forward", input);
  cache_valid_ = grad_enabled();
  if (!cache_valid_) return tensor::map(input, [](double x) { return std::tanh(x); });
  cached_output_ = tensor::map(input, [](double x) { return std::tanh(x); });
  return cached_output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Tanh::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("Tanh::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= 1.0 - cached_output_[i] * cached_output_[i];
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Sigmoid::forward", input);
  cache_valid_ = grad_enabled();
  if (!cache_valid_) {
    return tensor::map(input, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  }
  cached_output_ = tensor::map(input, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
  return cached_output_;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Sigmoid::backward: no cached forward (grad caching disabled)");
  }
  if (!grad_output.same_shape(cached_output_)) {
    throw std::invalid_argument("Sigmoid::backward: shape mismatch");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= cached_output_[i] * (1.0 - cached_output_[i]);
  }
  return grad;
}

double activate(Activation a, double x) noexcept {
  switch (a) {
    case Activation::ReLU: return x > 0.0 ? x : 0.0;
    case Activation::Tanh: return std::tanh(x);
    case Activation::Identity: return x;
  }
  return x;
}

double activate_grad(Activation a, double x) noexcept {
  switch (a) {
    case Activation::ReLU: return x > 0.0 ? 1.0 : 0.0;
    case Activation::Tanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case Activation::Identity: return 1.0;
  }
  return 1.0;
}

}  // namespace magic::nn
