#pragma once
// WeightedVertices layer (§III-B of the paper, Eq. 3-4 and Fig. 5).
//
// The paper's first extension to DGCNN: a single-channel Conv1D of kernel
// size k and stride k over the SortPooling output is equivalent to
//
//   E = f( W x Z^sp ),   W in R^{1 x k}
//
// i.e. a learned weighted sum of the k kept vertex embeddings, producing a
// graph embedding E in R^{1 x sum(c_t)} that feeds the classifier. The
// weights are trained by gradient descent together with the rest of the
// network.

#include "nn/activations.hpp"
#include "nn/module.hpp"
#include "util/rng.hpp"

namespace magic::nn {

/// Input (k x C); output rank-1 tensor of length C.
class WeightedVertices : public Module {
 public:
  WeightedVertices(std::size_t k, Activation activation, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// (batch x k x C) -> (batch x C); identical accumulation order per sample.
  Tensor forward_batch(const Tensor& input) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "WeightedVertices"; }

  Parameter& weight() noexcept { return weight_; }

 private:
  std::size_t k_;
  Activation activation_;
  Parameter weight_;  // (k)
  Tensor cached_input_;
  Tensor cached_preact_;  // S = W Zsp, length C
  bool cache_valid_ = false;
};

}  // namespace magic::nn
