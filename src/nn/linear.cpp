#include "nn/linear.hpp"

#include "nn/init.hpp"
#include "nn/shape_contract.hpp"

namespace magic::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
               bool bias)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_("linear.weight", xavier_uniform({in_features, out_features},
                                              in_features, out_features, rng)),
      bias_("linear.bias", Tensor::zeros({out_features})) {}

Tensor Linear::forward(const Tensor& input) {
  input_was_rank1_ = (input.rank() == 1);
  if (input_was_rank1_) {
    MAGIC_SHAPE_CONTRACT("Linear::forward", input, shape::eq(in_));
  } else {
    MAGIC_SHAPE_CONTRACT("Linear::forward", input, shape::any("rows"),
                         shape::eq(in_));
  }
  Tensor input2 = input_was_rank1_ ? input.reshape({1, input.dim(0)}) : input;
  if (input2.rank() != 2 || input2.dim(1) != in_) {
    // Unchecked-build fallback; in checked builds the contract above fires
    // first with the richer message.
    throw std::invalid_argument("Linear::forward: expected (*, " +
                                std::to_string(in_) + "), got " + input.describe());
  }
  Tensor out = tensor::matmul(input2, weight_.value);
  cache_valid_ = grad_enabled();
  if (cache_valid_) cached_input_ = std::move(input2);
  if (has_bias_) {
    const std::size_t rows = out.dim(0);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < out_; ++j) out[i * out_ + j] += bias_.value[j];
    }
  }
  return input_was_rank1_ ? out.reshape({out_}) : out;
}

Tensor Linear::forward_batch(const Tensor& input) {
  require_batch_inference("Linear::forward_batch");
  (void)batch_item_shape(input, "Linear::forward_batch");
  if (input.rank() != 2) {
    throw std::invalid_argument("Linear::forward_batch: (batch x " +
                                std::to_string(in_) + ") input required, got " +
                                input.describe());
  }
  return forward(input);  // the rank-2 path is already one fused GEMM
}

Tensor Linear::backward(const Tensor& grad_output) {
  if (!cache_valid_) {
    throw std::logic_error("Linear::backward: no cached forward (grad caching disabled)");
  }
  Tensor grad2 = grad_output.rank() == 1
                     ? grad_output.reshape({1, grad_output.dim(0)})
                     : grad_output;
  if (grad2.rank() != 2 || grad2.dim(1) != out_ ||
      grad2.dim(0) != cached_input_.dim(0)) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }
  // dW = X^T dY ; db = column sums of dY ; dX = dY W^T.
  // Transpose-free kernels; dw_scratch_ is reused across steps.
  tensor::matmul_tn_into(dw_scratch_, cached_input_, grad2);
  weight_.grad += dw_scratch_;
  if (has_bias_) {
    const std::size_t rows = grad2.dim(0);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < out_; ++j) bias_.grad[j] += grad2[i * out_ + j];
    }
  }
  Tensor grad_in = tensor::matmul_nt(grad2, weight_.value);
  return input_was_rank1_ ? grad_in.reshape({in_}) : grad_in;
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace magic::nn
