#include "nn/dropout.hpp"

#include <stdexcept>

#include "nn/shape_contract.hpp"

namespace magic::nn {

Dropout::Dropout(double rate, util::Rng& rng) : rate_(rate), rng_(rng.split()) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& input) {
  MAGIC_SHAPE_CONTRACT_ANY("Dropout::forward", input);
  if (!training_ || rate_ == 0.0) {
    mask_valid_ = false;
    return input;
  }
  const double keep = 1.0 - rate_;
  mask_ = Tensor::zeros(input.shape());
  Tensor out = input;
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (rng_.uniform() < keep) {
      mask_[i] = 1.0 / keep;
      out[i] *= mask_[i];
    } else {
      out[i] = 0.0;
    }
  }
  mask_valid_ = true;
  return out;
}

Tensor Dropout::forward_batch(const Tensor& input) {
  require_batch_inference("Dropout::forward_batch");
  (void)batch_item_shape(input, "Dropout::forward_batch");
  if (training_) {
    throw std::logic_error("Dropout::forward_batch: eval mode required");
  }
  return input;  // inverted dropout is identity at inference time
}

Tensor Dropout::forward_batch_owned(Tensor&& input) {
  require_batch_inference("Dropout::forward_batch");
  (void)batch_item_shape(input, "Dropout::forward_batch");
  if (training_) {
    throw std::logic_error("Dropout::forward_batch: eval mode required");
  }
  return std::move(input);
}

void Dropout::reseed_rng(std::uint64_t seed) { rng_ = util::Rng(seed); }

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!mask_valid_) return grad_output;  // eval mode: identity
  if (!grad_output.same_shape(mask_)) {
    throw std::invalid_argument("Dropout::backward: shape mismatch");
  }
  return tensor::hadamard(grad_output, mask_);
}

}  // namespace magic::nn
