#pragma once
// Neural-network module interface.
//
// magic::nn uses explicit per-module forward/backward (not tape autograd):
// each module caches what it needs from its last forward() and its
// backward() returns the gradient w.r.t. that input while accumulating
// parameter gradients into Parameter::grad. Batches are processed one
// sample at a time (CFGs have varying sizes), so gradients accumulate
// across calls until the optimizer consumes and zeroes them. Every
// module's backward is validated against central-difference numerical
// gradients in tests/nn/.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace magic::nn {

using tensor::Shape;
using tensor::Tensor;

/// A learnable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(Tensor::zeros(value.shape())) {}

  void zero_grad() { grad.fill(0.0); }
};

/// Base class for layers with a single dense input and output.
///
/// Contract: backward(grad_out) must be called after forward(input) with
/// grad_out shaped like that forward's output; it returns d(loss)/d(input)
/// and *adds* parameter gradients into Parameter::grad.
class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only batched forward: the leading dimension of `input`
  /// indexes independent samples and the remaining dimensions are exactly
  /// one forward() input, so a module mapping shape S -> T maps
  /// (N x S) -> (N x T). Only valid while grad caching is disabled (throws
  /// std::logic_error otherwise — there is no backward_batch). The default
  /// implementation slices, forwards each sample and restacks; dense layers
  /// override it to run the whole batch as one fused op (Linear becomes a
  /// single (N x in) GEMM). Overrides must match forward() per sample to
  /// within floating-point associativity of the shared kernels.
  virtual Tensor forward_batch(const Tensor& input);

  /// forward_batch for a batch tensor the caller no longer needs: modules
  /// whose batched op is a pure reshape or elementwise map override this to
  /// reuse `input`'s storage (move it, or mutate in place) instead of
  /// allocating a fresh output. Results are bit-identical to
  /// forward_batch(input); the default simply delegates to it. Sequential
  /// feeds its owned intermediates through this overload, which is where
  /// fused inference saves most of its memory traffic.
  virtual Tensor forward_batch_owned(Tensor&& input) {
    return forward_batch(input);
  }

  /// Learnable parameters (empty by default).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Toggles training-only behaviour (e.g. dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const noexcept { return training_; }

  /// Toggles caching of the activations backward() needs. When disabled
  /// (inference/serving), forward() skips the input/activation copies and a
  /// later backward() throws std::logic_error. DgcnnModel ties this to its
  /// training mode; explain() re-enables it around an eval-mode backward.
  virtual void set_grad_enabled(bool enabled) { grad_enabled_ = enabled; }
  bool grad_enabled() const noexcept { return grad_enabled_; }

  /// Re-seeds any owned RNG stream (dropout masks). The deterministic
  /// parallel trainer derives one seed per (epoch, sample position) so that
  /// stochastic masks are a function of the sample, not of which worker
  /// thread happened to process it. Default: no owned randomness, no-op.
  virtual void reseed_rng(std::uint64_t seed) { static_cast<void>(seed); }

  /// Short layer name for diagnostics.
  virtual std::string name() const = 0;

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

 protected:
  /// Enforces the forward_batch contract (grad caching must be off).
  void require_batch_inference(const char* who) const;

  bool training_ = true;
  bool grad_enabled_ = true;
};

/// Shape of one sample within a batched tensor (all dims after the first).
/// Throws std::invalid_argument when `input` has no non-empty leading
/// batch dimension.
Shape batch_item_shape(const Tensor& input, const char* who);

}  // namespace magic::nn
