#include "data/corpus_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace magic::data {
namespace {

constexpr char kMagic[8] = {'M', 'G', 'C', 'C', 'O', 'R', 'P', '\n'};
constexpr std::uint64_t kVersion = 1;
// Written natively; reads back as this value only on a same-endian host.
constexpr std::uint64_t kEndianTag = 0x0102030405060708ull;

// 88 bytes: 8 magic + 10 u64 fields. Kept as explicit offsets (not a packed
// struct) so the layout is the spec, not whatever the ABI decides.
constexpr std::size_t kHeaderBytes = 88;

struct Header {
  std::uint64_t version = 0;
  std::uint64_t endian_tag = 0;
  std::uint64_t file_size = 0;
  std::uint64_t num_samples = 0;
  std::uint64_t num_families = 0;
  std::uint64_t channels = 0;
  std::uint64_t family_table_offset = 0;
  std::uint64_t sample_table_offset = 0;
  std::uint64_t payload_hash_hi = 0;
  std::uint64_t payload_hash_lo = 0;
};

std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("packed corpus '" + path + "': " + what);
}

/// Append-only little buffer builder with alignment helpers.
struct Builder {
  std::vector<unsigned char> bytes;

  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    bytes.insert(bytes.end(), b, b + n);
  }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void align8() { bytes.resize(pad8(bytes.size()), 0); }
};

/// Reader over the mapping with hard bounds checks; every read that would
/// cross `size` throws instead of touching the page.
struct Reader {
  const unsigned char* base;
  std::size_t size;
  const std::string& path;

  void require(std::size_t offset, std::size_t n) const {
    if (offset > size || n > size - offset) {
      fail(path, "out-of-bounds read at offset " + std::to_string(offset) +
                     " (+" + std::to_string(n) + " of " +
                     std::to_string(size) + " bytes)");
    }
  }
  std::uint64_t u64(std::size_t offset) const {
    require(offset, 8);
    std::uint64_t v;
    std::memcpy(&v, base + offset, 8);
    return v;
  }
  std::int64_t i64(std::size_t offset) const {
    return static_cast<std::int64_t>(u64(offset));
  }
};

}  // namespace

void pack_corpus(const Dataset& dataset, const std::string& path) {
  // Channel width must be corpus-wide uniform: the header records it once
  // and the model consumes it as a single input width.
  std::size_t channels = 0;
  for (const auto& sample : dataset.samples) {
    const std::size_t c = sample.num_channels();
    if (channels == 0) channels = c;
    if (c != channels && sample.num_vertices() > 0) {
      throw std::invalid_argument(
          "pack_corpus: mixed channel widths (" + std::to_string(channels) +
          " vs " + std::to_string(c) + " in sample '" + sample.id + "')");
    }
  }

  Builder out;
  out.bytes.resize(kHeaderBytes, 0);  // header back-patched at the end

  const std::size_t family_table_offset = out.bytes.size();
  for (const auto& name : dataset.family_names) {
    out.put_u64(name.size());
    out.put_raw(name.data(), name.size());
  }
  out.align8();

  const std::size_t sample_table_offset = out.bytes.size();
  const std::size_t table_entry_base = out.bytes.size();
  out.bytes.resize(out.bytes.size() + dataset.samples.size() * 16, 0);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> table;
  table.reserve(dataset.samples.size());
  for (const auto& sample : dataset.samples) {
    sample.validate();
    const std::size_t n = sample.num_vertices();
    const std::size_t m = sample.num_edges();
    if (n >= std::numeric_limits<std::uint32_t>::max() ||
        m > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("pack_corpus: sample '" + sample.id +
                                  "' exceeds u32 CSR limits");
    }
    const std::size_t record_start = out.bytes.size();
    out.put_u64(n);
    out.put_u64(m);
    out.put_i64(sample.label);
    out.put_u64(sample.id.size());
    const cache::CacheKey hash = cache::acfg_content_hash(sample);
    out.put_u64(hash.hi);
    out.put_u64(hash.lo);
    out.put_raw(sample.id.data(), sample.id.size());
    out.align8();
    std::vector<std::uint32_t> row_ptr(n + 1, 0);
    std::vector<std::uint32_t> col_idx;
    col_idx.reserve(m);
    for (std::size_t u = 0; u < n; ++u) {
      row_ptr[u] = static_cast<std::uint32_t>(col_idx.size());
      for (const std::size_t v : sample.out_edges[u]) {
        col_idx.push_back(static_cast<std::uint32_t>(v));
      }
    }
    row_ptr[n] = static_cast<std::uint32_t>(col_idx.size());
    out.put_raw(row_ptr.data(), row_ptr.size() * 4);
    out.align8();
    out.put_raw(col_idx.data(), col_idx.size() * 4);
    out.align8();
    out.put_raw(sample.attributes.data(), n * channels * sizeof(double));
    table.emplace_back(record_start, out.bytes.size() - record_start);
  }

  for (std::size_t i = 0; i < table.size(); ++i) {
    std::memcpy(out.bytes.data() + table_entry_base + i * 16, &table[i].first, 8);
    std::memcpy(out.bytes.data() + table_entry_base + i * 16 + 8,
                &table[i].second, 8);
  }

  // Back-patch the header now that the payload is final. The payload hash
  // covers everything after the header, so any flipped bit anywhere in the
  // tables or records changes it.
  const cache::CacheKey payload_hash = cache::bytes_content_hash(
      out.bytes.data() + kHeaderBytes, out.bytes.size() - kHeaderBytes);
  Header h;
  h.version = kVersion;
  h.endian_tag = kEndianTag;
  h.file_size = out.bytes.size();
  h.num_samples = dataset.samples.size();
  h.num_families = dataset.family_names.size();
  h.channels = channels;
  h.family_table_offset = family_table_offset;
  h.sample_table_offset = sample_table_offset;
  h.payload_hash_hi = payload_hash.hi;
  h.payload_hash_lo = payload_hash.lo;
  std::memcpy(out.bytes.data(), kMagic, 8);
  std::memcpy(out.bytes.data() + 8, &h, sizeof(Header));
  static_assert(sizeof(Header) == kHeaderBytes - 8);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) fail(path, "cannot open for writing");
  const std::size_t written = std::fwrite(out.bytes.data(), 1, out.bytes.size(), f);
  const bool flush_ok = std::fclose(f) == 0;
  if (written != out.bytes.size() || !flush_ok) fail(path, "short write");
}

PackedCorpus::PackedCorpus(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    fail(path, "truncated: smaller than the header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) fail(path, "mmap failed");
  map_ = map;
  map_size_ = size;

  // From here on any validation failure must unmap before throwing.
  try {
    const Reader r{base(), map_size_, path};
    if (std::memcmp(base(), kMagic, 8) != 0) fail(path, "bad magic");
    Header h;
    std::memcpy(&h, base() + 8, sizeof(Header));
    if (h.version != kVersion) {
      fail(path, "unsupported version " + std::to_string(h.version));
    }
    if (h.endian_tag != kEndianTag) fail(path, "foreign endianness");
    if (h.file_size != map_size_) {
      fail(path, "size mismatch: header says " + std::to_string(h.file_size) +
                     ", file is " + std::to_string(map_size_) +
                     " bytes (truncated or appended-to)");
    }
    const cache::CacheKey actual = cache::bytes_content_hash(
        base() + kHeaderBytes, map_size_ - kHeaderBytes);
    if (actual.hi != h.payload_hash_hi || actual.lo != h.payload_hash_lo) {
      fail(path, "payload hash mismatch (tampered or corrupt)");
    }

    channels_ = h.channels;
    sample_count_ = h.num_samples;

    std::size_t cursor = h.family_table_offset;
    family_names_.reserve(h.num_families);
    for (std::uint64_t i = 0; i < h.num_families; ++i) {
      const std::uint64_t len = r.u64(cursor);
      cursor += 8;
      r.require(cursor, len);
      family_names_.emplace_back(reinterpret_cast<const char*>(base() + cursor),
                                 len);
      cursor += len;
    }

    records_.reserve(sample_count_);
    for (std::uint64_t i = 0; i < h.num_samples; ++i) {
      const std::size_t entry = h.sample_table_offset + i * 16;
      const std::uint64_t offset = r.u64(entry);
      const std::uint64_t length = r.u64(entry + 8);
      r.require(offset, length);
      if (offset % 8 != 0) {
        fail(path, "misaligned record " + std::to_string(i));
      }
      // Validate the record's internal extents once, here, so view() can be
      // pure arithmetic.
      const std::uint64_t n = r.u64(offset);
      const std::uint64_t m = r.u64(offset + 8);
      const std::uint64_t id_len = r.u64(offset + 24);
      const std::size_t need = 48 + pad8(id_len) + pad8((n + 1) * 4) +
                               pad8(m * 4) + n * channels_ * sizeof(double);
      if (length < need) {
        fail(path, "record " + std::to_string(i) + " shorter than its contents");
      }
      records_.emplace_back(offset, length);
    }
  } catch (...) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
    throw;
  }
}

PackedCorpus::~PackedCorpus() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
}

PackedCorpus::PackedCorpus(PackedCorpus&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      sample_count_(std::exchange(other.sample_count_, 0)),
      channels_(std::exchange(other.channels_, 0)),
      family_names_(std::move(other.family_names_)),
      records_(std::move(other.records_)) {}

PackedCorpus& PackedCorpus::operator=(PackedCorpus&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    sample_count_ = std::exchange(other.sample_count_, 0);
    channels_ = std::exchange(other.channels_, 0);
    family_names_ = std::move(other.family_names_);
    records_ = std::move(other.records_);
  }
  return *this;
}

PackedCorpus::SampleView PackedCorpus::view(std::size_t i) const {
  if (i >= records_.size()) {
    throw std::out_of_range("PackedCorpus::view: index " + std::to_string(i) +
                            " of " + std::to_string(records_.size()));
  }
  const unsigned char* p = base() + records_[i].first;
  auto u64_at = [&](std::size_t off) {
    std::uint64_t v;
    std::memcpy(&v, p + off, 8);
    return v;
  };
  SampleView v;
  v.vertices = u64_at(0);
  v.edges = u64_at(8);
  v.label = static_cast<int>(static_cast<std::int64_t>(u64_at(16)));
  const std::uint64_t id_len = u64_at(24);
  v.content_hash = cache::CacheKey{u64_at(32), u64_at(40)};
  std::size_t off = 48;
  v.id = std::string_view(reinterpret_cast<const char*>(p + off), id_len);
  off += pad8(id_len);
  // CSR arrays are 8-aligned within an 8-aligned record, so reinterpreting
  // as u32/double is well-aligned.
  v.row_ptr = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(p + off), v.vertices + 1);
  off += pad8((v.vertices + 1) * 4);
  v.col_idx = std::span<const std::uint32_t>(
      reinterpret_cast<const std::uint32_t*>(p + off), v.edges);
  off += pad8(v.edges * 4);
  v.attributes = std::span<const double>(
      reinterpret_cast<const double*>(p + off), v.vertices * channels_);
  return v;
}

acfg::Acfg PackedCorpus::materialize(std::size_t i) const {
  const SampleView v = view(i);
  acfg::Acfg out;
  out.label = v.label;
  out.id = std::string(v.id);
  out.attributes = tensor::Tensor(
      {v.vertices, channels_},
      tensor::AlignedVector(v.attributes.begin(), v.attributes.end()));
  out.out_edges.resize(v.vertices);
  for (std::size_t u = 0; u < v.vertices; ++u) {
    const std::uint32_t begin = v.row_ptr[u];
    const std::uint32_t end = v.row_ptr[u + 1];
    out.out_edges[u].reserve(end - begin);
    for (std::uint32_t e = begin; e < end; ++e) {
      out.out_edges[u].push_back(v.col_idx[e]);
    }
  }
  out.validate();
  return out;
}

Dataset PackedCorpus::to_dataset() const {
  Dataset out;
  out.family_names = family_names_;
  out.samples.reserve(sample_count_);
  for (std::size_t i = 0; i < sample_count_; ++i) {
    out.samples.push_back(materialize(i));
  }
  return out;
}

Dataset load_packed_corpus(const std::string& path) {
  return PackedCorpus(path).to_dataset();
}

}  // namespace magic::data
