#pragma once
// Synthetic x86-style program generator.
//
// Emits textual assembly listings (the format asmx::parse_listing accepts)
// with family-dependent control-flow structure: functions made of basic
// blocks wired with conditional branches, loops, unconditional jumps,
// switch-style dispatch fans, intra-program calls and returns. The listing
// is a faithful stand-in for an IDA .asm export, so the full front end
// (parser, tagging pass, Algorithm 2) is exercised on every sample.

#include <cstdint>
#include <string>
#include <vector>

#include "data/family_spec.hpp"
#include "util/rng.hpp"

namespace magic::data {

/// Generates polymorphic samples of one family.
class ProgramGenerator {
 public:
  /// `rng` is copied: one generator instance = one deterministic stream.
  ProgramGenerator(FamilySpec spec, util::Rng rng);

  /// Generates one complete listing (deterministic given construction
  /// state; successive calls yield different polymorphic variants).
  std::string generate_listing();

  /// The spec actually in use after overlap blending.
  const FamilySpec& effective_spec() const noexcept { return spec_; }

  /// The generic profile used as the overlap blending target.
  static FamilySpec generic_profile();

 private:
  struct PendingInst {
    std::string mnemonic;
    std::vector<std::string> operands;  // textual; branch target filled late
    int target_block = -1;              // index into blocks_, -1 = none
    std::uint32_t size = 2;
  };
  struct Block {
    std::vector<PendingInst> insts;
    std::uint64_t addr = 0;  // assigned at layout time
  };

  /// Per-sample jittered copy of the family spec.
  FamilySpec jittered_spec();

  void generate_function(const FamilySpec& s, std::size_t first_block,
                         std::size_t n_blocks,
                         const std::vector<std::size_t>& function_entries);
  void emit_body(const FamilySpec& s, Block& block,
                 const std::vector<std::size_t>& function_entries);
  PendingInst random_body_inst(const FamilySpec& s);
  std::string random_register();
  std::string random_immediate();

  FamilySpec spec_;
  util::Rng rng_;
  std::vector<Block> blocks_;
};

/// Blends `spec` toward the generic profile by its own `overlap` factor.
FamilySpec blend_with_generic(const FamilySpec& spec);

}  // namespace magic::data
