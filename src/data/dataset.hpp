#pragma once
// Labelled ACFG dataset plus splitting utilities (stratified K-fold cross
// validation, §V-B: "the dataset is splitted into five equal-size subsets"
// with training never seeing the validation samples).

#include <cstddef>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"
#include "util/rng.hpp"

namespace magic::data {

/// A labelled corpus: samples plus the family-name table.
struct Dataset {
  std::vector<acfg::Acfg> samples;
  std::vector<std::string> family_names;

  std::size_t size() const noexcept { return samples.size(); }
  std::size_t num_families() const noexcept { return family_names.size(); }

  /// Per-family sample counts (indexed by label).
  std::vector<std::size_t> family_counts() const;

  /// Mean vertex count across samples.
  double mean_vertices() const noexcept;

  /// Sorted vertex counts -> value at the given percentile in [0, 100].
  std::size_t vertex_count_percentile(double pct) const;

  /// Subset by sample indices (copies).
  Dataset subset(const std::vector<std::size_t>& indices) const;
};

/// One train/validation split expressed as index sets into the dataset.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
};

/// Builds K stratified folds: samples of each family are shuffled and dealt
/// round-robin so every fold preserves the family ratio within rounding.
std::vector<FoldSplit> stratified_k_fold(const Dataset& dataset, std::size_t k,
                                         util::Rng& rng);

/// Simple stratified holdout split with the given train fraction.
FoldSplit stratified_holdout(const Dataset& dataset, double train_fraction,
                             util::Rng& rng);

}  // namespace magic::data
