#pragma once
// Corpus builders for the two evaluation datasets of the paper.
//
//  - MSKCFG-like: 9 families with the exact family proportions of the 2015
//    Microsoft Malware Classification Challenge training set (Fig. 7);
//  - YANCFG-like: 13 families (12 malware + Benign) with proportions
//    matching Fig. 8, including the small hard families whose F1 the paper
//    reports as poor (Ldpinch, Sdbot, Rbot, Lmir).
//
// Both corpora are generated as assembly listings and pushed through the
// full pipeline (parse -> tag -> CFG -> ACFG), in parallel over a thread
// pool. `scale` in (0, 1] shrinks every family proportionally (minimum
// kept per family so 5-fold stratified CV stays valid).

#include <cstddef>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"
#include "data/dataset.hpp"
#include "data/family_spec.hpp"
#include "util/thread_pool.hpp"

namespace magic::data {

/// The 9 MSKCFG family profiles with full-scale counts (total 10,868).
std::vector<FamilySpec> mskcfg_family_specs();

/// The 13 YANCFG family profiles with full-scale counts (total 16,351).
std::vector<FamilySpec> yancfg_family_specs();

/// Generates a labelled ACFG corpus from family specs.
/// Each family gets max(min_per_family, round(corpus_count * scale)) samples.
Dataset generate_corpus(const std::vector<FamilySpec>& specs, double scale,
                        std::uint64_t seed, util::ThreadPool& pool,
                        std::size_t min_per_family = 10);

/// Convenience wrappers.
Dataset mskcfg_like_corpus(double scale, std::uint64_t seed, util::ThreadPool& pool);
Dataset yancfg_like_corpus(double scale, std::uint64_t seed, util::ThreadPool& pool);

/// Generates raw listings (family label attached) without ACFG extraction;
/// used by examples and the §V-E overhead bench.
std::vector<std::pair<std::string, int>> generate_listings(
    const std::vector<FamilySpec>& specs, double scale, std::uint64_t seed,
    std::size_t min_per_family = 10);

/// Simulates malware evolution ("malware development trends after the
/// collection of these two datasets", §V-E): each family's polymorphism
/// knobs grow with `drift` in [0, 1] — more junk code, more per-sample
/// jitter, and a pull toward the generic profile. drift = 0 returns the
/// specs unchanged; drift = 1 roughly doubles jitter/junk and adds 0.3
/// overlap (clamped).
std::vector<FamilySpec> drift_family_specs(std::vector<FamilySpec> specs,
                                           double drift);

}  // namespace magic::data
