#include "data/program_generator.hpp"

#include <algorithm>
#include <sstream>

namespace magic::data {
namespace {

constexpr std::uint64_t kBaseAddr = 0x401000;

const char* const kRegisters[] = {"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp"};
const char* const kArith[] = {"add", "sub", "xor", "and", "or",  "shl",
                              "shr", "imul", "inc", "dec", "neg", "lea"};
const char* const kMov[] = {"mov", "movzx", "push", "pop", "xchg"};
const char* const kStringOps[] = {"lodsb", "stosb", "movsb", "cmpsb"};
const char* const kCondJumps[] = {"jz", "jnz", "jl", "jge", "ja", "jbe", "js", "jo"};

double blend(double a, double b, double t) { return (1.0 - t) * a + t * b; }

}  // namespace

FamilySpec ProgramGenerator::generic_profile() {
  FamilySpec g;
  g.name = "generic";
  g.functions_mean = 6.0;
  g.blocks_per_function = 8.0;
  g.block_length_mean = 6.0;
  g.branch_prob = 0.45;
  g.loop_prob = 0.25;
  g.goto_prob = 0.10;
  g.dispatch_prob = 0.05;
  g.call_density = 0.10;
  g.arith_weight = 1.0;
  g.mov_weight = 1.5;
  g.compare_weight = 0.4;
  g.data_decl_weight = 0.05;
  g.string_op_weight = 0.1;
  g.numeric_const_prob = 0.5;
  g.junk_prob = 0.05;
  return g;
}

FamilySpec blend_with_generic(const FamilySpec& spec) {
  const FamilySpec g = ProgramGenerator::generic_profile();
  const double t = std::clamp(spec.overlap, 0.0, 1.0);
  FamilySpec out = spec;
  out.functions_mean = blend(spec.functions_mean, g.functions_mean, t);
  out.blocks_per_function = blend(spec.blocks_per_function, g.blocks_per_function, t);
  out.block_length_mean = blend(spec.block_length_mean, g.block_length_mean, t);
  out.branch_prob = blend(spec.branch_prob, g.branch_prob, t);
  out.loop_prob = blend(spec.loop_prob, g.loop_prob, t);
  out.goto_prob = blend(spec.goto_prob, g.goto_prob, t);
  out.dispatch_prob = blend(spec.dispatch_prob, g.dispatch_prob, t);
  out.call_density = blend(spec.call_density, g.call_density, t);
  out.arith_weight = blend(spec.arith_weight, g.arith_weight, t);
  out.mov_weight = blend(spec.mov_weight, g.mov_weight, t);
  out.compare_weight = blend(spec.compare_weight, g.compare_weight, t);
  out.data_decl_weight = blend(spec.data_decl_weight, g.data_decl_weight, t);
  out.string_op_weight = blend(spec.string_op_weight, g.string_op_weight, t);
  out.numeric_const_prob = blend(spec.numeric_const_prob, g.numeric_const_prob, t);
  out.junk_prob = blend(spec.junk_prob, g.junk_prob, t);
  return out;
}

ProgramGenerator::ProgramGenerator(FamilySpec spec, util::Rng rng)
    : spec_(blend_with_generic(spec)), rng_(rng) {}

FamilySpec ProgramGenerator::jittered_spec() {
  FamilySpec s = spec_;
  auto jit = [this](double v) {
    return std::max(0.0, v * (1.0 + spec_.jitter * rng_.uniform(-1.0, 1.0)));
  };
  s.functions_mean = std::max(1.0, jit(s.functions_mean));
  s.blocks_per_function = std::max(2.0, jit(s.blocks_per_function));
  s.block_length_mean = std::max(1.0, jit(s.block_length_mean));
  s.branch_prob = std::min(0.95, jit(s.branch_prob));
  s.loop_prob = std::min(0.95, jit(s.loop_prob));
  s.goto_prob = std::min(0.6, jit(s.goto_prob));
  s.dispatch_prob = std::min(0.5, jit(s.dispatch_prob));
  s.call_density = std::min(0.6, jit(s.call_density));
  s.numeric_const_prob = std::min(1.0, jit(s.numeric_const_prob));
  s.junk_prob = std::min(0.6, jit(s.junk_prob));
  return s;
}

std::string ProgramGenerator::random_register() {
  return kRegisters[static_cast<std::size_t>(rng_.uniform_int(0, 6))];
}

std::string ProgramGenerator::random_immediate() {
  // Small constants dominate real code; occasionally emit pointer-like ones.
  if (rng_.bernoulli(0.15)) {
    std::ostringstream oss;
    oss << "0x" << std::hex << (0x400000 + rng_.uniform_int(0, 0xFFFF));
    return oss.str();
  }
  return std::to_string(rng_.uniform_int(0, 255));
}

ProgramGenerator::PendingInst ProgramGenerator::random_body_inst(const FamilySpec& s) {
  PendingInst inst;
  inst.size = static_cast<std::uint32_t>(rng_.uniform_int(1, 6));
  const std::vector<double> weights = {s.arith_weight, s.mov_weight,
                                       s.compare_weight, s.data_decl_weight,
                                       s.string_op_weight};
  switch (rng_.weighted_index(weights)) {
    case 0: {  // arithmetic
      inst.mnemonic = kArith[static_cast<std::size_t>(rng_.uniform_int(0, 11))];
      if (inst.mnemonic == "inc" || inst.mnemonic == "dec" || inst.mnemonic == "neg") {
        inst.operands = {random_register()};
      } else if (inst.mnemonic == "lea") {
        inst.operands = {random_register(), "[" + random_register() + "+" +
                                                std::to_string(rng_.uniform_int(0, 64)) + "]"};
      } else if (rng_.bernoulli(s.numeric_const_prob)) {
        inst.operands = {random_register(), random_immediate()};
      } else {
        inst.operands = {random_register(), random_register()};
      }
      break;
    }
    case 1: {  // data movement
      inst.mnemonic = kMov[static_cast<std::size_t>(rng_.uniform_int(0, 4))];
      if (inst.mnemonic == "push") {
        inst.operands = {rng_.bernoulli(s.numeric_const_prob) ? random_immediate()
                                                              : random_register()};
      } else if (inst.mnemonic == "pop") {
        inst.operands = {random_register()};
      } else if (rng_.bernoulli(0.3)) {
        inst.operands = {random_register(), "[" + random_register() + "]"};
      } else if (rng_.bernoulli(s.numeric_const_prob)) {
        inst.operands = {random_register(), random_immediate()};
      } else {
        inst.operands = {random_register(), random_register()};
      }
      break;
    }
    case 2: {  // compare
      inst.mnemonic = rng_.bernoulli(0.7) ? "cmp" : "test";
      inst.operands = {random_register(), rng_.bernoulli(s.numeric_const_prob)
                                              ? random_immediate()
                                              : random_register()};
      break;
    }
    case 3: {  // data declaration pseudo-instruction
      inst.mnemonic = rng_.bernoulli(0.5) ? "db" : "dd";
      inst.operands = {random_immediate()};
      break;
    }
    default: {  // string op
      inst.mnemonic = kStringOps[static_cast<std::size_t>(rng_.uniform_int(0, 3))];
      break;
    }
  }
  return inst;
}

void ProgramGenerator::emit_body(const FamilySpec& s, Block& block,
                                 const std::vector<std::size_t>& function_entries) {
  const auto len = static_cast<std::size_t>(rng_.concentrated_count(s.block_length_mean, 0.35));
  for (std::size_t i = 0; i < len; ++i) {
    if (rng_.bernoulli(s.call_density) && !function_entries.empty()) {
      PendingInst call;
      call.mnemonic = "call";
      call.size = 5;
      if (rng_.bernoulli(0.85)) {
        call.target_block = static_cast<int>(rng_.choice(function_entries));
        call.operands = {"<patch>"};
      } else {
        // External import: a target outside the program image; the tagging
        // pass counts it as unresolved and no edge is created.
        call.operands = {"0x77e80000"};
      }
      block.insts.push_back(std::move(call));
      continue;
    }
    block.insts.push_back(random_body_inst(s));
    if (rng_.bernoulli(s.junk_prob)) {
      PendingInst junk;
      junk.mnemonic = rng_.bernoulli(0.5) ? "nop" : "xchg";
      if (junk.mnemonic == "xchg") {
        const std::string r = random_register();
        junk.operands = {r, r};
      }
      junk.size = 1;
      block.insts.push_back(std::move(junk));
    }
  }
}

void ProgramGenerator::generate_function(const FamilySpec& s, std::size_t first_block,
                                         std::size_t n_blocks,
                                         const std::vector<std::size_t>& function_entries) {
  for (std::size_t b = 0; b < n_blocks; ++b) {
    Block& block = blocks_[first_block + b];
    emit_body(s, block, function_entries);
    const bool last = (b + 1 == n_blocks);
    if (last) {
      PendingInst ret;
      ret.mnemonic = "ret";
      ret.size = 1;
      block.insts.push_back(std::move(ret));
      continue;
    }
    if (rng_.bernoulli(s.dispatch_prob) && n_blocks > 3) {
      // Switch-like fan: a chain of compare+jump pairs targeting several
      // forward blocks gives the high out-degree texture of dispatch code.
      const std::size_t fan = std::min<std::size_t>(
          3 + static_cast<std::size_t>(rng_.uniform_int(0, 2)), n_blocks - b - 1);
      for (std::size_t f = 0; f < fan; ++f) {
        PendingInst cmp;
        cmp.mnemonic = "cmp";
        cmp.operands = {"eax", std::to_string(f)};
        cmp.size = 3;
        block.insts.push_back(std::move(cmp));
        PendingInst jcc;
        jcc.mnemonic = "jz";
        jcc.size = 2;
        jcc.target_block =
            static_cast<int>(first_block + b + 1 +
                             static_cast<std::size_t>(rng_.uniform_int(
                                 0, static_cast<std::int64_t>(n_blocks - b - 2))));
        jcc.operands = {"<patch>"};
        block.insts.push_back(std::move(jcc));
      }
      continue;  // falls through to the next block after the fan
    }
    if (rng_.bernoulli(s.branch_prob)) {
      // Conditional branch; backwards with loop_prob (forming a loop),
      // otherwise to a random forward block. Fall-through continues.
      PendingInst cmp;
      cmp.mnemonic = rng_.bernoulli(0.8) ? "cmp" : "test";
      cmp.operands = {random_register(), rng_.bernoulli(s.numeric_const_prob)
                                             ? random_immediate()
                                             : random_register()};
      cmp.size = 3;
      block.insts.push_back(std::move(cmp));
      PendingInst jcc;
      jcc.mnemonic = kCondJumps[static_cast<std::size_t>(rng_.uniform_int(0, 7))];
      jcc.size = 2;
      const bool backwards = rng_.bernoulli(s.loop_prob) && b > 0;
      if (backwards) {
        jcc.target_block = static_cast<int>(
            first_block + static_cast<std::size_t>(rng_.uniform_int(
                              0, static_cast<std::int64_t>(b) - 1)));
      } else {
        jcc.target_block = static_cast<int>(
            first_block + b + 1 +
            static_cast<std::size_t>(rng_.uniform_int(
                0, static_cast<std::int64_t>(n_blocks - b - 2))));
      }
      jcc.operands = {"<patch>"};
      block.insts.push_back(std::move(jcc));
      continue;
    }
    if (rng_.bernoulli(s.goto_prob) && b + 2 < n_blocks) {
      PendingInst jmp;
      jmp.mnemonic = "jmp";
      jmp.size = 2;
      jmp.target_block = static_cast<int>(
          first_block + b + 1 +
          static_cast<std::size_t>(rng_.uniform_int(
              1, static_cast<std::int64_t>(n_blocks - b - 2))));
      jmp.operands = {"<patch>"};
      block.insts.push_back(std::move(jmp));
      continue;
    }
    // Plain fall-through into the next block.
  }
}

std::string ProgramGenerator::generate_listing() {
  blocks_.clear();
  const FamilySpec s = jittered_spec();

  // Plan functions: contiguous runs of blocks; entry block = first of run.
  // Counts are concentrated around the family profile: polymorphic variants
  // of one family keep its structural scale (real packers/generators mutate
  // instructions far more than program shape).
  const auto n_funcs =
      static_cast<std::size_t>(rng_.concentrated_count(s.functions_mean, 0.25));
  std::vector<std::pair<std::size_t, std::size_t>> funcs;  // (first, count)
  std::vector<std::size_t> function_entries;
  for (std::size_t f = 0; f < n_funcs; ++f) {
    const auto nb = static_cast<std::size_t>(
        std::max<std::int64_t>(2, rng_.concentrated_count(s.blocks_per_function, 0.25)));
    funcs.emplace_back(blocks_.size(), nb);
    function_entries.push_back(blocks_.size());
    blocks_.resize(blocks_.size() + nb);
  }
  for (const auto& [first, count] : funcs) {
    generate_function(s, first, count, function_entries);
  }

  // Layout: assign addresses sequentially (sizes were fixed at generation,
  // so patching targets afterwards cannot shift code).
  std::uint64_t addr = kBaseAddr;
  for (auto& block : blocks_) {
    block.addr = addr;
    for (auto& inst : block.insts) addr += inst.size;
  }

  // Patch branch/call targets with concrete block addresses and print.
  std::ostringstream oss;
  oss << "; synthetic sample, family profile '" << spec_.name << "'\n";
  for (auto& block : blocks_) {
    std::uint64_t a = block.addr;
    for (auto& inst : block.insts) {
      if (inst.target_block >= 0) {
        std::ostringstream target;
        target << "0x" << std::hex
               << blocks_[static_cast<std::size_t>(inst.target_block)].addr;
        inst.operands.back() = target.str();
      }
      oss << std::hex << a << std::dec << " " << inst.mnemonic;
      for (std::size_t i = 0; i < inst.operands.size(); ++i) {
        oss << (i ? ", " : " ") << inst.operands[i];
      }
      oss << "\n";
      a += inst.size;
    }
  }
  return oss.str();
}

}  // namespace magic::data
