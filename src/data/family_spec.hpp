#pragma once
// Synthetic malware family specification.
//
// The paper's corpora (MSKCFG: Microsoft Kaggle 2015; YANCFG: VirusTotal-
// labelled CFGs from [8]) are proprietary. We substitute a generator that
// produces x86-style assembly listings whose control-flow structure and
// instruction mix differ by family, then run them through the SAME pipeline
// the paper uses (parse -> tag -> CFG -> ACFG -> DGCNN). A family is a
// parameter profile; samples are polymorphic variants drawn around it.
// The `overlap` knob blends a family toward a generic profile so rare,
// hard-to-separate families (Ldpinch/Sdbot/Rbot/Lmir in Fig. 10) reproduce
// the paper's low-F1 behaviour.

#include <cstddef>
#include <string>

namespace magic::data {

/// Generation profile of one malware family.
struct FamilySpec {
  std::string name;

  // --- program shape -------------------------------------------------------
  double functions_mean = 6.0;        // functions per sample
  double blocks_per_function = 8.0;   // basic blocks per function
  double block_length_mean = 6.0;     // instructions per block

  // --- control-flow texture -------------------------------------------------
  double branch_prob = 0.45;   // block ends with a conditional jump
  double loop_prob = 0.25;     // a conditional jump goes backwards (loop)
  double goto_prob = 0.10;     // block ends with an unconditional jump
  double dispatch_prob = 0.05; // block is a multi-way dispatch (switch-like)
  double call_density = 0.10;  // per-instruction probability of a call

  // --- instruction mix (relative weights within a block body) ---------------
  double arith_weight = 1.0;
  double mov_weight = 1.5;
  double compare_weight = 0.4;
  double data_decl_weight = 0.05;
  double string_op_weight = 0.1;

  double numeric_const_prob = 0.5;  // operand is an immediate
  double junk_prob = 0.05;          // junk/no-op padding (polymorphism)

  // --- sample-level randomization -------------------------------------------
  double jitter = 0.15;   // relative noise applied to every parameter per sample
  double overlap = 0.0;   // 0 = fully distinctive, 1 = generic profile

  // --- corpus bookkeeping ----------------------------------------------------
  std::size_t corpus_count = 0;  // samples in the full-scale corpus (Fig. 7/8)
};

}  // namespace magic::data
