#pragma once
// Packed corpus format: a versioned, memory-mapped, zero-copy binary layout
// for labelled ACFG corpora.
//
// The text format (acfg/serialization.hpp) re-parses every float and edge
// on every load — fine for examples, hopeless for the corpus scale the
// paper's datasets imply (10,868 + 16,351 samples, reloaded by every
// trainer, bench and scan-queue run). The packed format lays the corpus
// out so that opening it is one mmap plus an integrity pass, and reading a
// sample is pointer arithmetic into the mapping:
//
//   [Header 88B]  magic "MGCCORP\n", version, endian tag, file size,
//                 counts (samples/families/channels), section offsets,
//                 128-bit payload hash
//   [family name table]     per family: u64 length + bytes
//   [sample offset table]   per sample: u64 offset, u64 size
//   [sample records...]     each 8-byte aligned:
//       u64 n, u64 m, i64 label, u64 id_len,
//       u64 content_hash_hi, u64 content_hash_lo,
//       char id[id_len]  (padded to 8)
//       u32 row_ptr[n+1] (padded to 8)   } adjacency CSR; the DGCNN
//       u32 col_idx[m]   (padded to 8)   } propagation operator D^-1(A+I)
//                                          derives from it in O(n+m)
//       double attributes[n * channels]  (bit-exact Table I rows)
//
// Integrity mirrors the checkpoint-v2 discipline (magic/model_io.cpp): the
// header records the exact file size (truncation detection) and a 128-bit
// content hash over the whole payload (tamper detection); open() rejects
// any mismatch with a descriptive error, never by reading garbage. Every
// table offset and record extent is bounds-checked against the mapping
// before a single sample is served.
//
// Each record also stores the *canonical* content hash of its graph
// (cache/acfg_hash.hpp), precomputed at pack time, so scan queues can
// consult the verdict cache for a mapped sample without rehashing.
//
// Endianness/layout are native; the endian tag makes a foreign-endian file
// fail loudly instead of decoding garbage (corpora are build artifacts,
// not interchange files).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "acfg/acfg.hpp"
#include "cache/acfg_hash.hpp"
#include "data/dataset.hpp"

namespace magic::data {

/// Writes `dataset` to `path` in the packed format. Overwrites. Throws
/// std::runtime_error on I/O failure and std::invalid_argument on corpora
/// the format cannot hold (mixed channel widths, > 4B vertices/edges).
void pack_corpus(const Dataset& dataset, const std::string& path);

/// A read-only, memory-mapped packed corpus. Opening validates the header,
/// the size, the payload hash and every table/record extent up front;
/// afterwards every accessor is non-throwing pointer arithmetic into the
/// mapping. Move-only; the mapping lives exactly as long as the object
/// (SampleView spans must not outlive it).
class PackedCorpus {
 public:
  /// Zero-copy view of one sample inside the mapping.
  struct SampleView {
    int label = -1;
    std::string_view id;
    std::size_t vertices = 0;
    std::size_t edges = 0;
    /// Adjacency CSR: out-neighbours of u are col_idx[row_ptr[u]
    /// .. row_ptr[u+1]).
    std::span<const std::uint32_t> row_ptr;
    std::span<const std::uint32_t> col_idx;
    /// Row-major (vertices x channels) attribute matrix, bit-exact.
    std::span<const double> attributes;
    /// Canonical content hash (cache/acfg_hash.hpp), precomputed at pack
    /// time — the verdict-cache key of this sample.
    cache::CacheKey content_hash;
  };

  /// Maps and validates `path`; throws std::runtime_error on any integrity
  /// violation (bad magic/version/endianness, size mismatch, payload hash
  /// mismatch, out-of-bounds tables or records).
  explicit PackedCorpus(const std::string& path);
  ~PackedCorpus();

  PackedCorpus(PackedCorpus&& other) noexcept;
  PackedCorpus& operator=(PackedCorpus&& other) noexcept;
  PackedCorpus(const PackedCorpus&) = delete;
  PackedCorpus& operator=(const PackedCorpus&) = delete;

  std::size_t size() const noexcept { return sample_count_; }
  std::size_t channels() const noexcept { return channels_; }
  const std::vector<std::string>& family_names() const noexcept {
    return family_names_;
  }
  std::size_t file_bytes() const noexcept { return map_size_; }

  /// Zero-copy view of sample `i` (bounds-checked; throws std::out_of_range).
  SampleView view(std::size_t i) const;

  /// Deep-copies sample `i` out of the mapping into an owning Acfg.
  acfg::Acfg materialize(std::size_t i) const;

  /// Materializes the whole corpus (samples + family table).
  Dataset to_dataset() const;

 private:
  const unsigned char* base() const noexcept {
    return static_cast<const unsigned char*>(map_);
  }

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::size_t sample_count_ = 0;
  std::size_t channels_ = 0;
  std::vector<std::string> family_names_;
  /// Validated {offset, size} per sample, copied out of the mapping at
  /// open time so view() needs no re-validation.
  std::vector<std::pair<std::size_t, std::size_t>> records_;
};

/// Convenience: map `path` and materialize everything into a Dataset.
Dataset load_packed_corpus(const std::string& path);

}  // namespace magic::data
