#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace magic::data {

std::vector<std::size_t> Dataset::family_counts() const {
  std::vector<std::size_t> counts(family_names.size(), 0);
  for (const auto& s : samples) {
    if (s.label >= 0 && static_cast<std::size_t>(s.label) < counts.size()) {
      ++counts[static_cast<std::size_t>(s.label)];
    }
  }
  return counts;
}

double Dataset::mean_vertices() const noexcept {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : samples) total += static_cast<double>(s.num_vertices());
  return total / static_cast<double>(samples.size());
}

std::size_t Dataset::vertex_count_percentile(double pct) const {
  if (samples.empty()) return 0;
  std::vector<std::size_t> counts;
  counts.reserve(samples.size());
  for (const auto& s : samples) counts.push_back(s.num_vertices());
  std::sort(counts.begin(), counts.end());
  const double rank = std::clamp(pct, 0.0, 100.0) / 100.0 *
                      static_cast<double>(counts.size() - 1);
  return counts[static_cast<std::size_t>(std::llround(rank))];
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.family_names = family_names;
  out.samples.reserve(indices.size());
  for (std::size_t i : indices) out.samples.push_back(samples.at(i));
  return out;
}

std::vector<FoldSplit> stratified_k_fold(const Dataset& dataset, std::size_t k,
                                         util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("stratified_k_fold: k must be >= 2");
  // Group sample indices by family, shuffle within family, deal round-robin.
  std::vector<std::vector<std::size_t>> by_family(dataset.num_families());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const int label = dataset.samples[i].label;
    if (label < 0 || static_cast<std::size_t>(label) >= by_family.size()) {
      throw std::invalid_argument("stratified_k_fold: sample with invalid label");
    }
    by_family[static_cast<std::size_t>(label)].push_back(i);
  }
  std::vector<std::vector<std::size_t>> fold_members(k);
  for (auto& members : by_family) {
    rng.shuffle(members);
    for (std::size_t j = 0; j < members.size(); ++j) {
      fold_members[j % k].push_back(members[j]);
    }
  }
  std::vector<FoldSplit> splits(k);
  for (std::size_t f = 0; f < k; ++f) {
    splits[f].validation = fold_members[f];
    for (std::size_t other = 0; other < k; ++other) {
      if (other == f) continue;
      splits[f].train.insert(splits[f].train.end(), fold_members[other].begin(),
                             fold_members[other].end());
    }
    std::sort(splits[f].validation.begin(), splits[f].validation.end());
    std::sort(splits[f].train.begin(), splits[f].train.end());
  }
  return splits;
}

FoldSplit stratified_holdout(const Dataset& dataset, double train_fraction,
                             util::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("stratified_holdout: fraction must be in (0, 1)");
  }
  std::vector<std::vector<std::size_t>> by_family(dataset.num_families());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_family[static_cast<std::size_t>(dataset.samples[i].label)].push_back(i);
  }
  FoldSplit split;
  for (auto& members : by_family) {
    rng.shuffle(members);
    const auto n_train = static_cast<std::size_t>(
        std::llround(train_fraction * static_cast<double>(members.size())));
    for (std::size_t j = 0; j < members.size(); ++j) {
      (j < n_train ? split.train : split.validation).push_back(members[j]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.validation.begin(), split.validation.end());
  return split;
}

}  // namespace magic::data
