#include "data/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "acfg/extractor.hpp"
#include "data/program_generator.hpp"
#include "util/logging.hpp"

namespace magic::data {
namespace {

FamilySpec make_spec(std::string name, std::size_t count, double funcs,
                     double blocks, double blen, double branch, double loop,
                     double go, double dispatch, double call, double arith,
                     double mov, double cmp, double data, double str,
                     double imm, double junk, double overlap) {
  FamilySpec s;
  s.name = std::move(name);
  s.corpus_count = count;
  s.functions_mean = funcs;
  s.blocks_per_function = blocks;
  s.block_length_mean = blen;
  s.branch_prob = branch;
  s.loop_prob = loop;
  s.goto_prob = go;
  s.dispatch_prob = dispatch;
  s.call_density = call;
  s.arith_weight = arith;
  s.mov_weight = mov;
  s.compare_weight = cmp;
  s.data_decl_weight = data;
  s.string_op_weight = str;
  s.numeric_const_prob = imm;
  s.junk_prob = junk;
  s.overlap = overlap;
  return s;
}

}  // namespace

// Family counts are the real Fig. 7 distribution (Kaggle 2015 training set,
// total 10,868). Profiles are synthetic but chosen so that the nine
// families are structurally well separated — the paper reports F1 >= 0.97
// for every MSKCFG family (Table III).
std::vector<FamilySpec> mskcfg_family_specs() {
  // Each family carries a few extreme "signature" traits (loop-heavy file
  // infector, dispatch-heavy botnet, junk-saturated obfuscator, ...) so the
  // nine families separate nearly perfectly — matching the paper's Table III
  // where every family scores F1 >= 0.97.
  std::vector<FamilySpec> specs = {
      //         name              count  fn    blk   len   br    loop  goto  disp  call  ar   mv   cmp  dat   str   imm   junk  ovl
      make_spec("Ramnit",          1541, 7.0,  11.0, 4.5,  0.70, 0.60, 0.05, 0.02, 0.08, 1.2, 1.0, 0.9, 0.01, 0.70, 0.40, 0.03, 0.00),
      make_spec("Lollipop",        2478, 14.0, 5.0,  9.0,  0.25, 0.08, 0.10, 0.02, 0.40, 0.5, 3.0, 0.2, 0.03, 0.02, 0.70, 0.02, 0.00),
      make_spec("Kelihos_ver3",    2942, 18.0, 14.0, 6.0,  0.45, 0.15, 0.08, 0.35, 0.14, 1.0, 1.4, 0.6, 0.02, 0.05, 0.50, 0.02, 0.00),
      make_spec("Vundo",            475, 4.0,  7.0,  3.0,  0.60, 0.25, 0.05, 0.02, 0.05, 4.0, 0.6, 0.5, 0.01, 0.02, 0.95, 0.08, 0.00),
      make_spec("Simda",             42, 3.0,  5.0,  12.0, 0.28, 0.08, 0.25, 0.01, 0.04, 1.0, 1.2, 0.2, 0.50, 0.02, 0.30, 0.45, 0.00),
      make_spec("Tracur",           751, 6.0,  10.0, 5.0,  0.30, 0.10, 0.50, 0.02, 0.10, 0.8, 1.6, 1.3, 0.02, 0.04, 0.55, 0.04, 0.00),
      make_spec("Kelihos_ver1",     398, 26.0, 3.0,  5.0,  0.35, 0.12, 0.05, 0.03, 0.55, 1.0, 1.0, 1.8, 0.03, 0.15, 0.20, 0.03, 0.00),
      make_spec("Obfuscator.ACY",  1228, 5.0,  16.0, 2.5,  0.70, 0.35, 0.15, 0.04, 0.04, 3.5, 0.6, 0.7, 0.01, 0.02, 1.00, 0.55, 0.00),
      make_spec("Gatak",           1013, 7.0,  6.0,  14.0, 0.30, 0.10, 0.06, 0.05, 0.16, 0.7, 1.8, 0.3, 0.20, 0.90, 0.55, 0.01, 0.00),
  };
  for (auto& s : specs) s.jitter = 0.10;
  return specs;
}

// Family counts approximate the Fig. 8 distribution (total 16,351). The
// populous families get distinctive profiles; the small hard families
// (Ldpinch, Lmir, Rbot, Sdbot) are pushed toward the generic profile and
// toward each other, reproducing the paper's low F1 scores for them
// (Table V: Ldpinch 0.59, Sdbot 0.58, Rbot 0.70, Lmir 0.78).
std::vector<FamilySpec> yancfg_family_specs() {
  std::vector<FamilySpec> specs = {
      //         name       count  fn    blk   len   br    loop  goto  disp  call  ar   mv   cmp  dat   str   imm   junk  ovl
      make_spec("Bagle",      100, 5.0,  7.0,  5.0,  0.55, 0.40, 0.08, 0.02, 0.08, 1.6, 0.9, 0.5, 0.02, 0.50, 0.60, 0.10, 0.20),
      make_spec("Benign",    1045, 16.0, 6.0,  8.0,  0.35, 0.15, 0.04, 0.10, 0.35, 0.8, 2.0, 0.5, 0.08, 0.03, 0.40, 0.00, 0.00),
      make_spec("Bifrose",   1600, 7.0,  13.0, 4.5,  0.60, 0.40, 0.10, 0.03, 0.10, 1.6, 1.0, 0.8, 0.01, 0.08, 0.70, 0.08, 0.15),
      make_spec("Hupigon",   3049, 20.0, 9.0,  6.5,  0.45, 0.18, 0.08, 0.16, 0.26, 1.0, 1.5, 0.4, 0.03, 0.06, 0.50, 0.02, 0.10),
      make_spec("Koobface",   350, 4.0,  18.0, 3.5,  0.75, 0.50, 0.12, 0.20, 0.04, 2.8, 0.6, 1.0, 0.01, 0.02, 0.90, 0.20, 0.00),
      make_spec("Ldpinch",    350, 6.0,  8.0,  6.0,  0.46, 0.24, 0.10, 0.05, 0.11, 1.1, 1.4, 0.45, 0.04, 0.09, 0.52, 0.05, 0.55),
      make_spec("Lmir",       210, 6.5,  7.5,  6.2,  0.44, 0.26, 0.11, 0.04, 0.13, 1.0, 1.5, 0.40, 0.05, 0.07, 0.48, 0.06, 0.45),
      make_spec("Rbot",      1650, 6.0,  8.5,  5.8,  0.47, 0.25, 0.09, 0.05, 0.12, 1.1, 1.4, 0.42, 0.04, 0.08, 0.50, 0.05, 0.50),
      make_spec("Sdbot",      430, 6.2,  8.2,  5.9,  0.46, 0.25, 0.10, 0.05, 0.12, 1.1, 1.4, 0.43, 0.04, 0.08, 0.51, 0.05, 0.55),
      make_spec("Swizzor",   2330, 11.0, 4.5,  13.0, 0.22, 0.06, 0.25, 0.02, 0.38, 0.5, 2.8, 0.2, 0.12, 0.02, 0.70, 0.01, 0.00),
      make_spec("Vundo",     1100, 4.0,  7.0,  3.0,  0.60, 0.25, 0.05, 0.02, 0.05, 4.0, 0.6, 0.5, 0.01, 0.02, 0.95, 0.08, 0.00),
      make_spec("Zbot",      1900, 9.0,  13.0, 5.5,  0.52, 0.20, 0.07, 0.14, 0.16, 1.2, 1.2, 1.4, 0.02, 0.35, 0.55, 0.03, 0.10),
      make_spec("Zlob",      2237, 8.0,  5.5,  10.0, 0.30, 0.10, 0.15, 0.03, 0.22, 0.7, 2.0, 0.3, 0.30, 0.60, 0.45, 0.02, 0.00),
  };
  for (auto& s : specs) s.jitter = 0.10;
  return specs;
}

std::vector<std::pair<std::string, int>> generate_listings(
    const std::vector<FamilySpec>& specs, double scale, std::uint64_t seed,
    std::size_t min_per_family) {
  std::vector<std::pair<std::string, int>> listings;
  util::Rng master(seed);
  for (std::size_t f = 0; f < specs.size(); ++f) {
    const auto want = static_cast<std::size_t>(
        std::llround(static_cast<double>(specs[f].corpus_count) * scale));
    const std::size_t n = std::max(min_per_family, want);
    ProgramGenerator gen(specs[f], master.split());
    for (std::size_t i = 0; i < n; ++i) {
      listings.emplace_back(gen.generate_listing(), static_cast<int>(f));
    }
  }
  return listings;
}

Dataset generate_corpus(const std::vector<FamilySpec>& specs, double scale,
                        std::uint64_t seed, util::ThreadPool& pool,
                        std::size_t min_per_family) {
  Dataset dataset;
  for (const auto& s : specs) dataset.family_names.push_back(s.name);

  auto listings = generate_listings(specs, scale, seed, min_per_family);
  MAGIC_LOG_INFO("generating corpus: " << listings.size() << " samples across "
                                       << specs.size() << " families");
  dataset.samples.resize(listings.size());
  pool.parallel_for(listings.size(), [&](std::size_t i) {
    acfg::Acfg a = acfg::extract_acfg_from_listing(listings[i].first);
    a.label = listings[i].second;
    a.id = dataset.family_names[static_cast<std::size_t>(a.label)] + "/" +
           std::to_string(i);
    dataset.samples[i] = std::move(a);
  });
  return dataset;
}

std::vector<FamilySpec> drift_family_specs(std::vector<FamilySpec> specs,
                                           double drift) {
  const double d = std::clamp(drift, 0.0, 1.0);
  for (auto& s : specs) {
    s.jitter = std::min(0.5, s.jitter * (1.0 + d));
    s.junk_prob = std::min(0.6, s.junk_prob + 0.15 * d);
    s.overlap = std::min(1.0, s.overlap + 0.3 * d);
    // Newer variants also grow slightly (feature creep is real for malware).
    s.functions_mean *= 1.0 + 0.2 * d;
  }
  return specs;
}

Dataset mskcfg_like_corpus(double scale, std::uint64_t seed, util::ThreadPool& pool) {
  return generate_corpus(mskcfg_family_specs(), scale, seed, pool);
}

Dataset yancfg_like_corpus(double scale, std::uint64_t seed, util::ThreadPool& pool) {
  return generate_corpus(yancfg_family_specs(), scale, seed, pool);
}

}  // namespace magic::data
