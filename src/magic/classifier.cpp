#include "magic/classifier.hpp"

#include <cmath>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "acfg/extractor.hpp"
#include "magic/replica_pool.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {

MagicClassifier::MagicClassifier(DgcnnConfig config, TrainOptions train_options,
                                 std::uint64_t seed)
    : config_(config), train_options_(train_options), seed_(seed) {}

std::size_t MagicClassifier::derive_sort_k(const data::Dataset& dataset,
                                           const std::vector<std::size_t>& train_indices,
                                           double ratio) {
  data::Dataset train = dataset.subset(train_indices);
  const std::size_t k = train.vertex_count_percentile((1.0 - ratio) * 100.0);
  return k < 4 ? 4 : k;
}

TrainResult MagicClassifier::fit(const data::Dataset& dataset,
                                 double holdout_fraction) {
  std::vector<std::size_t> train_idx, val_idx;
  if (holdout_fraction > 0.0 && dataset.size() >= 20) {
    util::Rng rng(seed_ ^ 0xA5A5A5A5ULL);
    data::FoldSplit split =
        data::stratified_holdout(dataset, 1.0 - holdout_fraction, rng);
    train_idx = std::move(split.train);
    val_idx = std::move(split.validation);
  } else {
    train_idx.resize(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) train_idx[i] = i;
  }
  return fit_indices(dataset, train_idx, val_idx);
}

TrainResult MagicClassifier::fit_indices(const data::Dataset& dataset,
                                         const std::vector<std::size_t>& train_indices,
                                         const std::vector<std::size_t>& val_indices) {
  family_names_ = dataset.family_names;
  config_.num_classes = dataset.num_families();
  replica_pool_.reset();  // stale clones must not outlive a retrain
  util::Rng rng(seed_);
  const std::size_t k =
      derive_sort_k(dataset, train_indices, config_.pooling_ratio);
  model_ = std::make_unique<DgcnnModel>(config_, rng, k);
  return train_model(*model_, dataset, train_indices, val_indices, train_options_);
}

Prediction MagicClassifier::predict(const acfg::Acfg& sample) {
  if (!fitted()) throw std::logic_error("MagicClassifier::predict: not fitted");
  model_->set_training(false);
  const nn::Tensor log_probs = model_->forward(sample);
  const nn::Tensor probs = nn::exp_probs(log_probs);
  Prediction pred;
  pred.family_index = tensor::argmax(probs);
  pred.family_name = pred.family_index < family_names_.size()
                         ? family_names_[pred.family_index]
                         : std::to_string(pred.family_index);
  pred.probabilities.assign(probs.data(), probs.data() + probs.size());
  return pred;
}

Prediction MagicClassifier::predict_listing(std::string_view listing) {
  return predict(acfg::extract_acfg_from_listing(listing));
}

std::vector<Prediction> MagicClassifier::predict_batch(
    const std::vector<acfg::Acfg>& samples, util::ThreadPool& pool) {
  if (!fitted()) throw std::logic_error("MagicClassifier::predict_batch: not fitted");
  std::vector<Prediction> results(samples.size());
  const std::size_t chunks = std::min(pool.size(), std::max<std::size_t>(1, samples.size()));
  // One replica per chunk, materialized once and reused on later calls.
  std::shared_ptr<ReplicaPool> replicas = replica_pool(chunks);
  const std::size_t per_chunk = (samples.size() + chunks - 1) / chunks;
  pool.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(samples.size(), begin + per_chunk);
    if (begin >= end) return;
    const ReplicaPool::Lease replica = replicas->acquire();
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = replica->predict(samples[i]);
    }
  });
  return results;
}

std::shared_ptr<ReplicaPool> MagicClassifier::replica_pool(std::size_t warm_count) {
  if (!fitted()) throw std::logic_error("MagicClassifier::replica_pool: not fitted");
  if (!replica_pool_) replica_pool_ = std::make_shared<ReplicaPool>(*this);
  replica_pool_->warm(warm_count);
  return replica_pool_;
}

Explanation MagicClassifier::explain(const acfg::Acfg& sample) {
  if (!fitted()) throw std::logic_error("MagicClassifier::explain: not fitted");
  // Save parameter grads so an explain() during a training loop is harmless.
  auto params = model_->parameters();
  std::vector<nn::Tensor> saved_grads;
  saved_grads.reserve(params.size());
  for (auto* p : params) saved_grads.push_back(p->grad);

  model_->set_training(false);
  // Saliency needs an eval-mode backward: eval disables grad caching, so
  // re-enable it for this forward/backward pair.
  model_->set_grad_enabled(true);
  const nn::Tensor log_probs = model_->forward(sample);
  const std::size_t winner = tensor::argmax(log_probs);
  // d(log p_winner)/d(inputs): seed the backward with a one-hot gradient.
  nn::Tensor seed = nn::Tensor::zeros(log_probs.shape());
  seed[winner] = 1.0;
  model_->backward(seed);
  model_->set_grad_enabled(false);
  const nn::Tensor& input_grad = model_->input_gradient();

  Explanation out;
  out.prediction.family_index = winner;
  out.prediction.family_name = winner < family_names_.size()
                                   ? family_names_[winner]
                                   : std::to_string(winner);
  const nn::Tensor probs = nn::exp_probs(log_probs);
  out.prediction.probabilities.assign(probs.data(), probs.data() + probs.size());

  const std::size_t n = input_grad.dim(0);
  const std::size_t c = input_grad.dim(1);
  out.vertex_saliency.assign(n, 0.0);
  out.channel_saliency.assign(c, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      const double g = input_grad[i * c + j];
      row += g * g;
      out.channel_saliency[j] += std::abs(g);
    }
    out.vertex_saliency[i] = std::sqrt(row);
  }
  auto normalize = [](std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    if (total > 0.0) {
      for (double& x : v) x /= total;
    }
  };
  normalize(out.vertex_saliency);
  normalize(out.channel_saliency);

  for (std::size_t i = 0; i < params.size(); ++i) params[i]->grad = saved_grads[i];
  return out;
}

EvalResult MagicClassifier::evaluate(const data::Dataset& dataset,
                                     const std::vector<std::size_t>& indices) {
  if (!fitted()) throw std::logic_error("MagicClassifier::evaluate: not fitted");
  return evaluate_model(*model_, dataset, indices);
}

void MagicClassifier::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MagicClassifier: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("MagicClassifier: write failed for " + path);
}

MagicClassifier MagicClassifier::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MagicClassifier: cannot open " + path);
  return load(in);
}

}  // namespace magic::core
