#include "magic/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "acfg/extractor.hpp"
#include "magic/replica_pool.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {

MagicClassifier::MagicClassifier(DgcnnConfig config, TrainOptions train_options,
                                 std::uint64_t seed)
    : config_(config), train_options_(train_options), seed_(seed) {}

MagicClassifier::~MagicClassifier() = default;

MagicClassifier::MagicClassifier(MagicClassifier&& other) noexcept
    : config_(std::move(other.config_)),
      train_options_(std::move(other.train_options_)),
      seed_(other.seed_),
      model_(std::move(other.model_)),
      family_names_(std::move(other.family_names_)),
      is_pool_replica_(other.is_pool_replica_) {
  util::MutexLock lock(other.pool_mutex_);
  replica_pool_ = std::move(other.replica_pool_);
}

MagicClassifier& MagicClassifier::operator=(MagicClassifier&& other) noexcept {
  if (this != &other) {
    std::shared_ptr<ReplicaPool> moved_pool;
    {
      util::MutexLock lock(other.pool_mutex_);
      moved_pool = std::move(other.replica_pool_);
    }
    config_ = std::move(other.config_);
    train_options_ = std::move(other.train_options_);
    seed_ = other.seed_;
    model_ = std::move(other.model_);
    family_names_ = std::move(other.family_names_);
    is_pool_replica_ = other.is_pool_replica_;
    util::MutexLock lock(pool_mutex_);
    replica_pool_ = std::move(moved_pool);
  }
  return *this;
}

std::size_t MagicClassifier::derive_sort_k(const data::Dataset& dataset,
                                           const std::vector<std::size_t>& train_indices,
                                           double ratio) {
  data::Dataset train = dataset.subset(train_indices);
  const std::size_t k = train.vertex_count_percentile((1.0 - ratio) * 100.0);
  return k < 4 ? 4 : k;
}

TrainResult MagicClassifier::fit(const data::Dataset& dataset,
                                 double holdout_fraction) {
  std::vector<std::size_t> train_idx, val_idx;
  if (holdout_fraction > 0.0 && dataset.size() >= 20) {
    util::Rng rng(seed_ ^ 0xA5A5A5A5ULL);
    data::FoldSplit split =
        data::stratified_holdout(dataset, 1.0 - holdout_fraction, rng);
    train_idx = std::move(split.train);
    val_idx = std::move(split.validation);
  } else {
    train_idx.resize(dataset.size());
    for (std::size_t i = 0; i < dataset.size(); ++i) train_idx[i] = i;
  }
  return fit_indices(dataset, train_idx, val_idx);
}

TrainResult MagicClassifier::fit_indices(const data::Dataset& dataset,
                                         const std::vector<std::size_t>& train_indices,
                                         const std::vector<std::size_t>& val_indices) {
  family_names_ = dataset.family_names;
  config_.num_classes = dataset.num_families();
  {
    // Stale clones must not outlive a retrain.
    util::MutexLock lock(pool_mutex_);
    replica_pool_.reset();
  }
  util::Rng rng(seed_);
  const std::size_t k =
      derive_sort_k(dataset, train_indices, config_.pooling_ratio);
  model_ = std::make_unique<DgcnnModel>(config_, rng, k);
  return train_model(*model_, dataset, train_indices, val_indices, train_options_);
}

Prediction MagicClassifier::make_prediction(const double* probs,
                                            std::size_t classes) const {
  Prediction pred;
  // First maximum wins on ties, exactly like tensor::argmax.
  for (std::size_t j = 1; j < classes; ++j) {
    if (probs[j] > probs[pred.family_index]) pred.family_index = j;
  }
  pred.family_name = pred.family_index < family_names_.size()
                         ? family_names_[pred.family_index]
                         : std::to_string(pred.family_index);
  pred.probabilities.assign(probs, probs + classes);
  return pred;
}

Prediction MagicClassifier::predict_on_own_model(const acfg::Acfg& sample) const {
  model_->set_training(false);
  const nn::Tensor log_probs = model_->forward(sample);
  const nn::Tensor probs = nn::exp_probs(log_probs);
  return make_prediction(probs.data(), probs.size());
}

std::vector<Prediction> MagicClassifier::predict_packed_on_own_model(
    const GraphBatch& batch) const {
  model_->set_training(false);
  const nn::Tensor log_probs = model_->predict_batch(batch);  // (N x classes)
  const std::size_t classes = log_probs.dim(1);
  std::vector<Prediction> preds;
  preds.reserve(batch.size());
  std::vector<double> probs(classes);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double* row = log_probs.data() + i * classes;
    for (std::size_t j = 0; j < classes; ++j) probs[j] = std::exp(row[j]);
    preds.push_back(make_prediction(probs.data(), classes));
  }
  return preds;
}

std::vector<Prediction> MagicClassifier::classify(
    std::span<const acfg::Acfg> samples, const PredictOptions& options) const {
  if (!fitted()) throw std::logic_error("MagicClassifier::classify: not fitted");
  if (options.engine == PredictEngine::Packed && options.max_pack_vertices == 0) {
    throw std::invalid_argument(
        "MagicClassifier::classify: max_pack_vertices must be >= 1");
  }
  std::vector<Prediction> results(samples.size());
  if (samples.empty()) return results;

  std::size_t threads =
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads = std::min(threads, samples.size());
  // Pool replicas are already exclusively leased; they score serially on
  // their own model and never spawn nested pools.
  if (is_pool_replica_) threads = 1;

  // Work units are contiguous [begin, end) ranges of `samples`: greedy
  // vertex-budget packs for the packed engine, one range per worker for
  // the per-sample engine.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (options.engine == PredictEngine::Packed) {
    std::size_t begin = 0, budget = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const std::size_t n = samples[i].num_vertices();
      if (i > begin && budget + n > options.max_pack_vertices) {
        chunks.emplace_back(begin, i);
        begin = i;
        budget = 0;
      }
      budget += n;
    }
    chunks.emplace_back(begin, samples.size());
  } else {
    const std::size_t per = (samples.size() + threads - 1) / threads;
    for (std::size_t begin = 0; begin < samples.size(); begin += per) {
      chunks.emplace_back(begin, std::min(samples.size(), begin + per));
    }
  }

  auto run_chunk = [&](const MagicClassifier& scorer, std::size_t begin,
                       std::size_t end) {
    if (options.engine == PredictEngine::Packed) {
      const GraphBatch batch = GraphBatch::pack(samples.subspan(begin, end - begin));
      std::vector<Prediction> preds = scorer.predict_packed_on_own_model(batch);
      for (std::size_t j = 0; j < preds.size(); ++j) {
        results[begin + j] = std::move(preds[j]);
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        results[i] = scorer.predict_on_own_model(samples[i]);
      }
    }
  };

  if (threads <= 1) {
    if (is_pool_replica_) {
      for (const auto& [begin, end] : chunks) run_chunk(*this, begin, end);
    } else {
      // One lease covers the whole call; exclusive access for every chunk.
      const std::shared_ptr<ReplicaPool> replicas = ensure_replica_pool();
      const ReplicaPool::Lease replica = replicas->acquire();
      for (const auto& [begin, end] : chunks) run_chunk(*replica, begin, end);
    }
    return results;
  }

  const std::shared_ptr<ReplicaPool> replicas = ensure_replica_pool();
  util::ThreadPool pool(threads);
  pool.parallel_for(chunks.size(), [&](std::size_t c) {
    const ReplicaPool::Lease replica = replicas->acquire();
    run_chunk(*replica, chunks[c].first, chunks[c].second);
  });
  return results;
}

Prediction MagicClassifier::predict(const acfg::Acfg& sample) const {
  if (!fitted()) throw std::logic_error("MagicClassifier::predict: not fitted");
  if (is_pool_replica_) return predict_on_own_model(sample);
  const std::shared_ptr<ReplicaPool> replicas = ensure_replica_pool();
  const ReplicaPool::Lease replica = replicas->acquire();
  return replica->predict_on_own_model(sample);
}

Prediction MagicClassifier::predict_listing(std::string_view listing) const {
  return predict(acfg::extract_acfg_from_listing(listing));
}

std::vector<Prediction> MagicClassifier::predict_batch(
    const std::vector<acfg::Acfg>& samples, util::ThreadPool& pool) const {
  if (!fitted()) throw std::logic_error("MagicClassifier::predict_batch: not fitted");
  std::vector<Prediction> results(samples.size());
  if (samples.empty()) return results;
  const std::size_t chunks = std::min(pool.size(), std::max<std::size_t>(1, samples.size()));
  // One replica per chunk, materialized once and reused on later calls.
  const std::shared_ptr<ReplicaPool> replicas = ensure_replica_pool();
  replicas->warm(chunks);
  const std::size_t per_chunk = (samples.size() + chunks - 1) / chunks;
  pool.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(samples.size(), begin + per_chunk);
    if (begin >= end) return;
    const ReplicaPool::Lease replica = replicas->acquire();
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = replica->predict_on_own_model(samples[i]);
    }
  });
  return results;
}

std::vector<Prediction> MagicClassifier::predict_packed(const GraphBatch& batch) const {
  if (!fitted()) throw std::logic_error("MagicClassifier::predict_packed: not fitted");
  if (is_pool_replica_) return predict_packed_on_own_model(batch);
  const std::shared_ptr<ReplicaPool> replicas = ensure_replica_pool();
  const ReplicaPool::Lease replica = replicas->acquire();
  return replica->predict_packed_on_own_model(batch);
}

std::shared_ptr<ReplicaPool> MagicClassifier::ensure_replica_pool() const {
  util::MutexLock lock(pool_mutex_);
  if (!replica_pool_) replica_pool_ = std::make_shared<ReplicaPool>(*this);
  return replica_pool_;
}

std::shared_ptr<ReplicaPool> MagicClassifier::replica_pool(
    const ReplicaPoolOptions& options) const {
  if (!fitted()) throw std::logic_error("MagicClassifier::replica_pool: not fitted");
  const std::shared_ptr<ReplicaPool> pool = ensure_replica_pool();
  pool->warm(options.warm_count);
  return pool;
}

std::shared_ptr<ReplicaPool> MagicClassifier::replica_pool(std::size_t warm_count) const {
  return replica_pool(ReplicaPoolOptions{warm_count});
}

Explanation MagicClassifier::explain(const acfg::Acfg& sample) {
  if (!fitted()) throw std::logic_error("MagicClassifier::explain: not fitted");
  // Save parameter grads so an explain() during a training loop is harmless.
  auto params = model_->parameters();
  std::vector<nn::Tensor> saved_grads;
  saved_grads.reserve(params.size());
  for (auto* p : params) saved_grads.push_back(p->grad);

  model_->set_training(false);
  // Saliency needs an eval-mode backward: eval disables grad caching, so
  // re-enable it for this forward/backward pair.
  model_->set_grad_enabled(true);
  const nn::Tensor log_probs = model_->forward(sample);
  const std::size_t winner = tensor::argmax(log_probs);
  // d(log p_winner)/d(inputs): seed the backward with a one-hot gradient.
  nn::Tensor seed = nn::Tensor::zeros(log_probs.shape());
  seed[winner] = 1.0;
  model_->backward(seed);
  model_->set_grad_enabled(false);
  const nn::Tensor& input_grad = model_->input_gradient();

  Explanation out;
  out.prediction.family_index = winner;
  out.prediction.family_name = winner < family_names_.size()
                                   ? family_names_[winner]
                                   : std::to_string(winner);
  const nn::Tensor probs = nn::exp_probs(log_probs);
  out.prediction.probabilities.assign(probs.data(), probs.data() + probs.size());

  const std::size_t n = input_grad.dim(0);
  const std::size_t c = input_grad.dim(1);
  out.vertex_saliency.assign(n, 0.0);
  out.channel_saliency.assign(c, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      const double g = input_grad[i * c + j];
      row += g * g;
      out.channel_saliency[j] += std::abs(g);
    }
    out.vertex_saliency[i] = std::sqrt(row);
  }
  auto normalize = [](std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    if (total > 0.0) {
      for (double& x : v) x /= total;
    }
  };
  normalize(out.vertex_saliency);
  normalize(out.channel_saliency);

  for (std::size_t i = 0; i < params.size(); ++i) params[i]->grad = saved_grads[i];
  return out;
}

EvalResult MagicClassifier::evaluate(const data::Dataset& dataset,
                                     const std::vector<std::size_t>& indices) {
  if (!fitted()) throw std::logic_error("MagicClassifier::evaluate: not fitted");
  return evaluate_model(*model_, dataset, indices);
}

void MagicClassifier::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("MagicClassifier: cannot open " + path);
  save(out);
  if (!out) throw std::runtime_error("MagicClassifier: write failed for " + path);
}

MagicClassifier MagicClassifier::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("MagicClassifier: cannot open " + path);
  return load(in);
}

void MagicClassifier::save_file(const std::string& path) const { save(path); }

MagicClassifier MagicClassifier::load_file(const std::string& path) {
  return load(path);
}

}  // namespace magic::core
