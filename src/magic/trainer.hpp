#pragma once
// Training loop for DgcnnModel: Adam on the mean negative log loss (Eq. 5),
// minibatch gradient accumulation, and the paper's learning-rate schedule
// (reduce by 10x after two consecutive epochs of increasing validation
// loss, §V-B).

#include <vector>

#include "data/dataset.hpp"
#include "magic/dgcnn.hpp"
#include "ml/metrics.hpp"

namespace magic::core {

struct TrainOptions {
  std::size_t epochs = 100;
  std::size_t batch_size = 10;   // Table II: {10, 40}
  double learning_rate = 1e-3;
  double weight_decay = 1e-4;    // Table II: {1e-4, 5e-4}
  std::size_t lr_patience = 2;   // consecutive val-loss increases before decay
  double lr_factor = 0.1;
  std::uint64_t seed = 7;
  bool verbose = false;
  /// Snapshot parameters at the best validation epoch and restore them
  /// after the last epoch (paper §V-B scores models at their minimum
  /// validation loss). No effect when the validation set is empty.
  bool restore_best = true;
  /// Family-balanced oversampling: each epoch draws |train| samples with
  /// replacement; the family is drawn with weight count^(1 - strength).
  /// Counters the heavy class imbalance of both corpora (Fig. 7/8) when the
  /// scaled-down minority families would otherwise contribute only a
  /// handful of gradient steps per epoch.
  bool balance_families = false;
  /// 0 = natural frequency, 0.5 = sqrt compromise, 1 = fully uniform.
  double balance_strength = 1.0;
  /// Worker threads for the data-parallel engine (0 = hardware
  /// concurrency). Per-sample gradients are reduced in fixed sample-index
  /// order, so the trained parameters and history are bitwise identical for
  /// every thread count, including 1 (see DESIGN.md "Training performance").
  std::size_t threads = 1;
};

/// Per-epoch record of one training run.
struct EpochStats {
  double train_loss = 0.0;
  double validation_loss = 0.0;
  double validation_accuracy = 0.0;
};

/// Outcome of a full training run.
struct TrainResult {
  std::vector<EpochStats> history;
  double best_validation_loss = 0.0;
  std::size_t best_epoch = 0;
};

/// Evaluation of a model over an index subset.
struct EvalResult {
  double mean_log_loss = 0.0;
  ml::ConfusionMatrix confusion;
  std::vector<std::vector<double>> probabilities;  // per evaluated sample
  std::vector<std::size_t> labels;
};

/// Trains `model` on dataset[train_indices], validating after each epoch on
/// dataset[val_indices] (validation may be empty: lr schedule then follows
/// the training loss).
TrainResult train_model(DgcnnModel& model, const data::Dataset& dataset,
                        const std::vector<std::size_t>& train_indices,
                        const std::vector<std::size_t>& val_indices,
                        const TrainOptions& options);

/// Evaluates log loss + confusion over dataset[indices] (no grads).
EvalResult evaluate_model(DgcnnModel& model, const data::Dataset& dataset,
                          const std::vector<std::size_t>& indices);

/// Parallel evaluation across `threads` model replicas (0 = hardware
/// concurrency). Produces the same EvalResult as the serial overload: rows
/// are stored by sample position, so the output is order-deterministic.
EvalResult evaluate_model(DgcnnModel& model, const data::Dataset& dataset,
                          const std::vector<std::size_t>& indices,
                          std::size_t threads);

}  // namespace magic::core
