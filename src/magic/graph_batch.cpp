#include "magic/graph_batch.hpp"

#include <stdexcept>
#include <string>

namespace magic::core {
namespace {

[[noreturn]] void bad_batch(const std::string& what) {
  throw std::invalid_argument("GraphBatch: " + what);
}

}  // namespace

GraphBatch GraphBatch::pack(std::span<const acfg::Acfg> graphs) {
  std::vector<const acfg::Acfg*> ptrs;
  ptrs.reserve(graphs.size());
  for (const acfg::Acfg& g : graphs) ptrs.push_back(&g);
  return pack(std::span<const acfg::Acfg* const>(ptrs));
}

GraphBatch GraphBatch::pack(std::span<const acfg::Acfg* const> graphs) {
  if (graphs.empty()) bad_batch("cannot pack an empty batch");
  std::size_t total = 0;
  std::size_t channels = 0;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const acfg::Acfg& g = *graphs[i];
    const std::size_t n = g.num_vertices();
    if (n == 0) bad_batch("graph " + std::to_string(i) + " is empty");
    if (g.attributes.rank() != 2 || g.attributes.dim(0) != n) {
      bad_batch("graph " + std::to_string(i) +
                " attribute matrix does not match its vertex count");
    }
    if (i == 0) {
      channels = g.num_channels();
    } else if (g.num_channels() != channels) {
      bad_batch("graph " + std::to_string(i) + " has " +
                std::to_string(g.num_channels()) + " channels, batch has " +
                std::to_string(channels));
    }
    total += n;
  }

  tensor::Tensor attributes({total, channels});
  std::vector<std::size_t> offsets;
  offsets.reserve(graphs.size() + 1);
  offsets.push_back(0);
  std::vector<std::vector<std::size_t>> out_edges;
  out_edges.reserve(total);
  std::size_t row = 0;
  for (const acfg::Acfg* gp : graphs) {
    const acfg::Acfg& g = *gp;
    const std::size_t n = g.num_vertices();
    const std::size_t base = row;
    for (std::size_t i = 0; i < n * channels; ++i) {
      attributes[base * channels + i] = g.attributes[i];
    }
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<std::size_t> shifted;
      shifted.reserve(g.out_edges[v].size());
      for (std::size_t target : g.out_edges[v]) {
        if (target >= n) bad_batch("edge target out of range in input graph");
        shifted.push_back(base + target);
      }
      out_edges.push_back(std::move(shifted));
    }
    row += n;
    offsets.push_back(row);
  }
  return GraphBatch(std::move(attributes), std::move(offsets),
                    std::move(out_edges));
}

GraphBatch::GraphBatch(tensor::Tensor attributes,
                       std::vector<std::size_t> offsets,
                       std::vector<std::vector<std::size_t>> out_edges)
    : attributes_(std::move(attributes)),
      offsets_(std::move(offsets)),
      out_edges_(std::move(out_edges)) {
  if (offsets_.size() < 2) bad_batch("offsets must describe at least one graph");
  if (offsets_.front() != 0) bad_batch("offsets must start at 0");
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    if (offsets_[i + 1] <= offsets_[i]) {
      bad_batch("offsets must be strictly increasing (graph " +
                std::to_string(i) + " would be empty)");
    }
  }
  if (attributes_.rank() != 2) bad_batch("attributes must be rank 2");
  const std::size_t total = offsets_.back();
  if (attributes_.dim(0) != total) {
    bad_batch("offsets end at " + std::to_string(total) +
              " but attributes have " + std::to_string(attributes_.dim(0)) +
              " rows");
  }
  if (out_edges_.size() != total) {
    bad_batch("adjacency covers " + std::to_string(out_edges_.size()) +
              " vertices but offsets describe " + std::to_string(total));
  }
  // Block-diagonal check: each vertex's edges must stay in its own segment.
  std::size_t segment = 0;
  for (std::size_t v = 0; v < total; ++v) {
    while (v >= offsets_[segment + 1]) ++segment;
    for (std::size_t target : out_edges_[v]) {
      if (target < offsets_[segment] || target >= offsets_[segment + 1]) {
        bad_batch("edge " + std::to_string(v) + " -> " +
                  std::to_string(target) + " crosses a segment boundary");
      }
    }
  }
}

tensor::SparseMatrix GraphBatch::propagation_operator(bool normalize) const {
  // out_edges_ is already a global adjacency list whose edges never cross
  // segment boundaries, so the single-graph operator builders produce the
  // block-diagonal batch operator directly (per-vertex degrees only involve
  // the vertex's own segment).
  return normalize ? tensor::SparseMatrix::propagation_operator(out_edges_)
                   : tensor::SparseMatrix::augmented_adjacency(out_edges_);
}

}  // namespace magic::core
