// Text serialization for MagicClassifier (format "MAGIC-MODEL v3";
// "MAGIC-MODEL v1"/"v2" files still load).
//
// The file stores the config, the derived SortPooling k, the family-name
// table and every parameter tensor in the deterministic order returned by
// DgcnnModel::parameters(). Loading rebuilds the identical architecture and
// overwrites its weights, so save -> load -> predict is bit-reproducible.
//
// v2 writes each family name length-prefixed ("<bytes> <raw name>") so
// names containing whitespace -- "Trojan Horse", UTF-8 labels with spaces,
// even embedded newlines -- survive the round trip. v1 wrote one bare name
// per line but read it back with operator>>, which split on the first
// space and then cascaded the leftover tokens into later names; that is
// the corruption this version fixes. The v1 reader is kept for old files
// (correct for the space-free names v1 could actually round-trip).
//
// v3 adds the graph-convolution operator to the header ("op <name>
// tag_hops <k>", between "act" and "classes"). v1/v2 files predate the
// operator zoo and always meant Eq. 1, so they load as PaperGraphConv. A
// hand-edited header naming the wrong operator for the stored weights is
// rejected by the per-parameter name check below: every operator uses a
// distinct weight name (graph_conv.weight / sage_conv.weight /
// tag_conv.weight), so the mismatch surfaces as a loud name-mismatch error
// instead of silently loading weights into a different formula.

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "magic/classifier.hpp"

namespace magic::core {
namespace {

void expect(std::istream& is, const std::string& token) {
  std::string got;
  if (!(is >> got) || got != token) {
    throw std::runtime_error("MagicClassifier::load: expected '" + token +
                             "', got '" + got + "'");
  }
}

const char* pooling_name(PoolingType p) {
  return p == PoolingType::SortPooling ? "sort" : "amp";
}
const char* remaining_name(RemainingLayer r) {
  return r == RemainingLayer::Conv1D ? "conv1d" : "wv";
}
const char* activation_name(nn::Activation a) {
  switch (a) {
    case nn::Activation::ReLU: return "relu";
    case nn::Activation::Tanh: return "tanh";
    case nn::Activation::Identity: return "id";
  }
  return "relu";
}

PoolingType parse_pooling(const std::string& s) {
  if (s == "sort") return PoolingType::SortPooling;
  if (s == "amp") return PoolingType::AdaptivePooling;
  throw std::runtime_error("MagicClassifier::load: bad pooling '" + s + "'");
}
RemainingLayer parse_remaining(const std::string& s) {
  if (s == "conv1d") return RemainingLayer::Conv1D;
  if (s == "wv") return RemainingLayer::WeightedVertices;
  throw std::runtime_error("MagicClassifier::load: bad remaining layer '" + s + "'");
}
nn::Activation parse_activation(const std::string& s) {
  if (s == "relu") return nn::Activation::ReLU;
  if (s == "tanh") return nn::Activation::Tanh;
  if (s == "id") return nn::Activation::Identity;
  throw std::runtime_error("MagicClassifier::load: bad activation '" + s + "'");
}

}  // namespace

void MagicClassifier::save(std::ostream& os) const {
  if (!fitted()) throw std::logic_error("MagicClassifier::save: not fitted");
  const DgcnnConfig& c = model_->config();
  os << "MAGIC-MODEL v3\n";
  os << "families " << family_names_.size() << "\n";
  // Length prefix in bytes, then exactly that many raw bytes: immune to
  // whitespace (and any other byte) inside the name.
  for (const auto& name : family_names_) os << name.size() << " " << name << "\n";
  os << "pooling " << pooling_name(c.pooling) << " ratio " << c.pooling_ratio
     << " sort_k " << model_->sort_k() << " remaining " << remaining_name(c.remaining)
     << " conv1d " << c.conv1d_channels_first << " " << c.conv1d_channels_second
     << " " << c.conv1d_kernel << " conv2d " << c.conv2d_channels << " hidden "
     << c.hidden_dim << " dropout " << c.dropout_rate << " log1p "
     << (c.log1p_attributes ? 1 : 0) << " norm "
     << (c.normalize_propagation ? 1 : 0) << " act "
     << activation_name(c.graph_conv_activation) << " op "
     << nn::graph_conv_operator_name(c.graph_conv_op) << " tag_hops "
     << c.tag_hops << " classes " << c.num_classes
     << " input_channels " << c.input_channels << "\n";
  os << "graph_conv " << c.graph_conv_channels.size();
  for (std::size_t ch : c.graph_conv_channels) os << " " << ch;
  os << "\n";

  auto params = const_cast<DgcnnModel*>(model_.get())->parameters();
  os << "params " << params.size() << "\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const nn::Parameter* p : params) {
    os << p->name << " " << p->value.size() << "\n";
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      if (i) os << ' ';
      os << p->value[i];
    }
    os << "\n";
  }
}

MagicClassifier MagicClassifier::load(std::istream& is) {
  expect(is, "MAGIC-MODEL");
  std::string version;
  if (!(is >> version) || (version != "v1" && version != "v2" && version != "v3")) {
    throw std::runtime_error("MagicClassifier::load: unsupported version '" +
                             version + "' (expected v1, v2 or v3)");
  }
  expect(is, "families");
  std::size_t n_families = 0;
  is >> n_families;
  std::vector<std::string> names(n_families);
  if (version == "v1") {
    // Legacy whitespace-delimited names (correct only for space-free names,
    // which is all v1 save() could round-trip).
    for (auto& name : names) is >> name;
  } else {
    for (auto& name : names) {
      std::size_t len = 0;
      if (!(is >> len)) {
        throw std::runtime_error("MagicClassifier::load: truncated family table");
      }
      is.get();  // the single separator byte after the length
      name.resize(len);
      if (len > 0 && !is.read(name.data(), static_cast<std::streamsize>(len))) {
        throw std::runtime_error("MagicClassifier::load: truncated family name");
      }
    }
  }

  DgcnnConfig cfg;
  std::size_t sort_k = 0;
  std::string tok;
  expect(is, "pooling");
  is >> tok;
  cfg.pooling = parse_pooling(tok);
  expect(is, "ratio");
  is >> cfg.pooling_ratio;
  expect(is, "sort_k");
  is >> sort_k;
  expect(is, "remaining");
  is >> tok;
  cfg.remaining = parse_remaining(tok);
  expect(is, "conv1d");
  is >> cfg.conv1d_channels_first >> cfg.conv1d_channels_second >> cfg.conv1d_kernel;
  expect(is, "conv2d");
  is >> cfg.conv2d_channels;
  expect(is, "hidden");
  is >> cfg.hidden_dim;
  expect(is, "dropout");
  is >> cfg.dropout_rate;
  expect(is, "log1p");
  int log1p_flag = 0;
  is >> log1p_flag;
  cfg.log1p_attributes = log1p_flag != 0;
  expect(is, "norm");
  int norm_flag = 1;
  is >> norm_flag;
  cfg.normalize_propagation = norm_flag != 0;
  expect(is, "act");
  is >> tok;
  cfg.graph_conv_activation = parse_activation(tok);
  if (version == "v3") {
    expect(is, "op");
    is >> tok;
    cfg.graph_conv_op = nn::parse_graph_conv_operator(tok);
    expect(is, "tag_hops");
    is >> cfg.tag_hops;
  }  // v1/v2 predate the zoo: Eq. 1 (PaperGraphConv) is the only operator.
  expect(is, "classes");
  is >> cfg.num_classes;
  expect(is, "input_channels");
  is >> cfg.input_channels;
  expect(is, "graph_conv");
  std::size_t depth = 0;
  is >> depth;
  cfg.graph_conv_channels.assign(depth, 0);
  for (auto& ch : cfg.graph_conv_channels) is >> ch;
  if (!is) throw std::runtime_error("MagicClassifier::load: truncated header");
  cfg.sort_k = sort_k;

  // A family table that disagrees with the model's class count means the
  // checkpoint is corrupt (or hand-edited); predictions would index the
  // name table out of range or mislabel every verdict.
  if (names.size() != cfg.num_classes) {
    throw std::runtime_error(
        "MagicClassifier::load: family table has " + std::to_string(names.size()) +
        " names but the model declares " + std::to_string(cfg.num_classes) +
        " classes");
  }

  MagicClassifier clf(cfg);
  clf.family_names_ = std::move(names);
  util::Rng rng(1);  // weights are overwritten below
  clf.model_ = std::make_unique<DgcnnModel>(cfg, rng, sort_k == 0 ? 16 : sort_k);

  expect(is, "params");
  std::size_t n_params = 0;
  is >> n_params;
  auto params = clf.model_->parameters();
  if (params.size() != n_params) {
    throw std::runtime_error("MagicClassifier::load: parameter count mismatch");
  }
  for (nn::Parameter* p : params) {
    std::string name;
    std::size_t size = 0;
    if (!(is >> name >> size)) {
      throw std::runtime_error("MagicClassifier::load: truncated parameter header (expected " +
                               p->name + ")");
    }
    // Stored tensors must line up with the rebuilt architecture one-to-one;
    // a renamed or reordered entry would silently load weights into the
    // wrong layer.
    if (name != p->name) {
      throw std::runtime_error("MagicClassifier::load: parameter name mismatch: expected '" +
                               p->name + "', got '" + name + "'");
    }
    if (size != p->value.size()) {
      throw std::runtime_error("MagicClassifier::load: parameter shape mismatch for " +
                               p->name + ": expected " + std::to_string(p->value.size()) +
                               " values, got " + std::to_string(size));
    }
    for (std::size_t i = 0; i < size; ++i) {
      if (!(is >> p->value[i])) {
        throw std::runtime_error("MagicClassifier::load: truncated values for " + name);
      }
    }
  }
  return clf;
}

}  // namespace magic::core
