#pragma once
// Exhaustive hyper-parameter search over the Table II grid.
//
// The paper enumerates 208 settings: 64 adaptive-pooling models, 96
// sort-pooling + Conv1D models and 48 sort-pooling + WeightedVertices
// models, five-fold cross-validates each, and picks the model with the
// minimum epoch-averaged validation loss. full_table2_grid() reproduces
// that exact enumeration; reduced_grid() is a documented scaled-down
// version for CPU-budget runs.

#include <string>
#include <vector>

#include "magic/cross_validation.hpp"

namespace magic::core {

/// One grid entry plus its training knobs that belong to the grid
/// (batch size, L2 factor live in TrainOptions).
struct GridPoint {
  DgcnnConfig config;
  std::size_t batch_size = 10;
  double weight_decay = 1e-4;

  std::string describe() const;
};

/// The full 208-point Table II grid.
std::vector<GridPoint> full_table2_grid();

/// A reduced grid (one point per structural family x a few knobs) that
/// keeps every pooling/remaining-layer variant represented, plus an
/// operator axis: SAGE and TAG points on the best-YANCFG head so
/// grid_search sweeps the convolution zoo without bespoke loops
/// (full_table2_grid stays Paper-only for Table II fidelity).
std::vector<GridPoint> reduced_grid();

/// Search outcome for one grid point.
struct SearchEntry {
  GridPoint point;
  double score = 0.0;       // min mean epoch validation loss
  double accuracy = 0.0;
  double mean_log_loss = 0.0;
};

/// Full search result, sorted by ascending score (best first).
struct SearchResult {
  std::vector<SearchEntry> entries;
  const SearchEntry& best() const { return entries.front(); }
};

/// Cross-validates every grid point and ranks them.
SearchResult grid_search(const std::vector<GridPoint>& grid,
                         const data::Dataset& dataset, CvOptions options,
                         util::ThreadPool& pool);

}  // namespace magic::core
