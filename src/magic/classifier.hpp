#pragma once
// MagicClassifier: the public end-to-end API of the system.
//
// Mirrors the deployment story of §VII: train on a labelled ACFG corpus,
// then classify unknown programs given either their ACFG or their raw
// disassembly listing (the CFG/ACFG extraction happens inside). Models can
// be saved and loaded, so a cloud-trained model can ship to clients.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "acfg/acfg.hpp"
#include "data/dataset.hpp"
#include "magic/dgcnn.hpp"
#include "magic/trainer.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {

class ReplicaPool;

/// One prediction: the winning family plus the full distribution.
struct Prediction {
  std::size_t family_index = 0;
  std::string family_name;
  std::vector<double> probabilities;
};

/// Gradient-based attribution of one prediction: which basic blocks (and
/// which Table I attribute channels) pushed the model toward its verdict.
struct Explanation {
  Prediction prediction;
  /// Per-vertex saliency: L2 norm of d(log p_predicted)/d(attributes_v).
  /// Larger = this block mattered more. Sums normalized to 1.
  std::vector<double> vertex_saliency;
  /// Per-channel saliency aggregated over vertices (normalized to 1).
  std::vector<double> channel_saliency;
};

/// Trainable + queryable malware family classifier.
class MagicClassifier {
 public:
  /// Configures but does not yet build the model (the SortPooling k depends
  /// on the training distribution and is derived in fit()).
  MagicClassifier(DgcnnConfig config, TrainOptions train_options = {},
                  std::uint64_t seed = 42);

  /// Trains on the whole dataset (with an internal stratified holdout for
  /// the lr-on-plateau schedule when `holdout_fraction` > 0).
  TrainResult fit(const data::Dataset& dataset, double holdout_fraction = 0.1);

  /// Trains with explicit train/validation index sets (cross-validation).
  TrainResult fit_indices(const data::Dataset& dataset,
                          const std::vector<std::size_t>& train_indices,
                          const std::vector<std::size_t>& val_indices);

  /// Classifies one ACFG. Requires a fitted or loaded model. Not const and
  /// not thread-safe: forward passes cache activations inside the model
  /// (clone the classifier per thread for parallel prediction).
  Prediction predict(const acfg::Acfg& sample);

  /// Full pipeline: assembly listing -> CFG -> ACFG -> prediction.
  Prediction predict_listing(std::string_view listing);

  /// Classifies a batch in parallel. Each worker thread gets its own model
  /// replica from the cached replica pool (cloned once, reused across
  /// calls; invalidated by fit), so this is safe despite forward passes
  /// being stateful. Result order matches the input order.
  std::vector<Prediction> predict_batch(const std::vector<acfg::Acfg>& samples,
                                        util::ThreadPool& pool);

  /// The cached replica pool, (re)built from the current weights on first
  /// use, eagerly warmed to `warm_count` replicas, and invalidated whenever
  /// fit() / fit_indices() retrains. Shared by predict_batch and the
  /// serving layer (serve::InferenceServer); replicas are leased out, so
  /// concurrent consumers never collide. Not itself thread-safe: call from
  /// the thread that owns this classifier, then hand the pool to workers.
  std::shared_ptr<ReplicaPool> replica_pool(std::size_t warm_count = 0);

  /// Classifies and attributes the verdict to basic blocks / attribute
  /// channels via input gradients (saliency). Analyst triage tooling: "which
  /// blocks made this look like Kelihos?". Does not disturb training state
  /// (parameter gradients are restored afterwards).
  Explanation explain(const acfg::Acfg& sample);

  /// Evaluates on dataset[indices].
  EvalResult evaluate(const data::Dataset& dataset,
                      const std::vector<std::size_t>& indices);

  bool fitted() const noexcept { return model_ != nullptr; }
  const DgcnnConfig& config() const noexcept { return config_; }
  const std::vector<std::string>& family_names() const noexcept { return family_names_; }

  /// Model persistence (text format; includes config, k, family names and
  /// all parameters). See model_io.cpp for the format.
  void save(std::ostream& os) const;
  static MagicClassifier load(std::istream& is);
  void save_file(const std::string& path) const;
  static MagicClassifier load_file(const std::string& path);

  /// Access for serialization/tests.
  DgcnnModel* model() noexcept { return model_.get(); }
  const DgcnnModel* model() const noexcept { return model_.get(); }

 private:
  friend MagicClassifier load_classifier(std::istream& is);

  /// Derives the SortPooling k from the training-set size distribution:
  /// the vertex count at the (1 - ratio) percentile, so that roughly
  /// ratio-fraction of training graphs fill all k slots.
  static std::size_t derive_sort_k(const data::Dataset& dataset,
                                   const std::vector<std::size_t>& train_indices,
                                   double ratio);

  DgcnnConfig config_;
  TrainOptions train_options_;
  std::uint64_t seed_;
  std::unique_ptr<DgcnnModel> model_;
  std::vector<std::string> family_names_;
  /// Cached clones for parallel scoring; reset whenever the weights change.
  std::shared_ptr<ReplicaPool> replica_pool_;
};

}  // namespace magic::core
