#pragma once
// MagicClassifier: the public end-to-end API of the system.
//
// Mirrors the deployment story of §VII: train on a labelled ACFG corpus,
// then classify unknown programs given either their ACFG or their raw
// disassembly listing (the CFG/ACFG extraction happens inside). Models can
// be saved and loaded, so a cloud-trained model can ship to clients.
//
// Inference surface: classify(span, PredictOptions) is the single entry
// point — const, thread-safe (replica leases) and engine-selectable
// (packed block-diagonal batching vs. per-sample forwards). The historic
// predict / predict_listing / predict_batch calls are thin wrappers over
// it and remain source compatible.

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"
#include "data/dataset.hpp"
#include "magic/dgcnn.hpp"
#include "magic/graph_batch.hpp"
#include "magic/trainer.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {

class ReplicaPool;

/// Which forward path classify() drives.
enum class PredictEngine {
  /// Pack graphs into block-diagonal GraphBatches and score each pack in
  /// one fused forward (DgcnnModel::predict_batch). Default; results match
  /// PerSample to floating-point reassociation (tests pin 1e-9 relative).
  Packed,
  /// One forward per graph — the training-time code path.
  PerSample,
};

/// Options for MagicClassifier::classify().
struct PredictOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Each worker
  /// scores on its own exclusively leased model replica, so any value is
  /// safe from any thread.
  std::size_t threads = 1;
  /// Packed engine only: graphs are grouped greedily until the next graph
  /// would push the pack past this many total vertices (a single oversized
  /// graph still forms its own pack). Bounds peak memory of the packed
  /// activations. Must be >= 1.
  std::size_t max_pack_vertices = 4096;
  PredictEngine engine = PredictEngine::Packed;
};

/// Named options for MagicClassifier::replica_pool().
struct ReplicaPoolOptions {
  /// Replicas to materialize eagerly; the pool still grows on demand.
  std::size_t warm_count = 0;
};

/// One prediction: the winning family plus the full distribution.
struct Prediction {
  std::size_t family_index = 0;
  std::string family_name;
  std::vector<double> probabilities;
};

/// Gradient-based attribution of one prediction: which basic blocks (and
/// which Table I attribute channels) pushed the model toward its verdict.
struct Explanation {
  Prediction prediction;
  /// Per-vertex saliency: L2 norm of d(log p_predicted)/d(attributes_v).
  /// Larger = this block mattered more. Sums normalized to 1.
  std::vector<double> vertex_saliency;
  /// Per-channel saliency aggregated over vertices (normalized to 1).
  std::vector<double> channel_saliency;
};

/// Trainable + queryable malware family classifier.
class MagicClassifier {
 public:
  /// Configures but does not yet build the model (the SortPooling k depends
  /// on the training distribution and is derived in fit()).
  MagicClassifier(DgcnnConfig config, TrainOptions train_options = {},
                  std::uint64_t seed = 42);

  /// Move-only (the model is a unique resource). Hand-written because
  /// pool_mutex_ is a real (non-movable) capability: the moved-to object
  /// keeps its own mutex and takes over the cached replica pool. Moving a
  /// classifier that another thread is concurrently using is — as ever —
  /// undefined behaviour; the lock here only keeps the cached-pool handoff
  /// well-formed.
  MagicClassifier(MagicClassifier&& other) noexcept;
  MagicClassifier& operator=(MagicClassifier&& other) noexcept;
  MagicClassifier(const MagicClassifier&) = delete;
  MagicClassifier& operator=(const MagicClassifier&) = delete;
  ~MagicClassifier();

  /// Trains on the whole dataset (with an internal stratified holdout for
  /// the lr-on-plateau schedule when `holdout_fraction` > 0).
  TrainResult fit(const data::Dataset& dataset, double holdout_fraction = 0.1);

  /// Trains with explicit train/validation index sets (cross-validation).
  TrainResult fit_indices(const data::Dataset& dataset,
                          const std::vector<std::size_t>& train_indices,
                          const std::vector<std::size_t>& val_indices);

  /// ---- Prediction surface ----------------------------------------------
  ///
  /// classify() is THE inference entry point: const, thread-safe (every
  /// call scores on exclusively leased replicas from the cached pool, never
  /// on the shared model instance) and engine-selectable via PredictOptions.
  /// predict / predict_listing / predict_batch below are thin wrappers kept
  /// so existing call sites compile unchanged.

  /// Classifies `samples` in input order. Requires a fitted or loaded
  /// model. Safe to call concurrently from any number of threads.
  std::vector<Prediction> classify(std::span<const acfg::Acfg> samples,
                                   const PredictOptions& options = {}) const;

  /// Classifies one ACFG: classify() of a single sample (per-sample
  /// engine). Const and thread-safe — scoring happens on a leased replica.
  Prediction predict(const acfg::Acfg& sample) const;

  /// Full pipeline: assembly listing -> CFG -> ACFG -> prediction.
  /// Const and thread-safe, like predict().
  Prediction predict_listing(std::string_view listing) const;

  /// Compatibility wrapper: per-sample engine driven by the caller's thread
  /// pool (classify() manages its own workers instead). Result order
  /// matches the input order.
  std::vector<Prediction> predict_batch(const std::vector<acfg::Acfg>& samples,
                                        util::ThreadPool& pool) const;

  /// Scores one pre-packed batch in a single fused forward on a leased
  /// replica; returns one Prediction per packed graph. Const, thread-safe.
  std::vector<Prediction> predict_packed(const GraphBatch& batch) const;

  /// The cached replica pool, (re)built from the current weights on first
  /// use, eagerly warmed to `options.warm_count` replicas, and invalidated
  /// whenever fit() / fit_indices() retrains. Shared by classify() and the
  /// serving layer (serve::InferenceServer); replicas are leased out, so
  /// concurrent consumers never collide. Thread-safe.
  std::shared_ptr<ReplicaPool> replica_pool(const ReplicaPoolOptions& options) const;
  /// Compatibility overload of the above (warm_count positional).
  std::shared_ptr<ReplicaPool> replica_pool(std::size_t warm_count = 0) const;

  /// Classifies and attributes the verdict to basic blocks / attribute
  /// channels via input gradients (saliency). Analyst triage tooling: "which
  /// blocks made this look like Kelihos?". Does not disturb training state
  /// (parameter gradients are restored afterwards).
  Explanation explain(const acfg::Acfg& sample);

  /// Evaluates on dataset[indices].
  EvalResult evaluate(const data::Dataset& dataset,
                      const std::vector<std::size_t>& indices);

  bool fitted() const noexcept { return model_ != nullptr; }
  const DgcnnConfig& config() const noexcept { return config_; }
  const std::vector<std::string>& family_names() const noexcept { return family_names_; }

  /// ---- Persistence -------------------------------------------------------
  ///
  /// One canonical surface: save(stream) / load(stream) define the text
  /// format ("MAGIC-MODEL v2": config, derived k, family names, every
  /// parameter tensor; see model_io.cpp). The path overloads open the file
  /// and delegate to the stream pair; save -> load -> predict is
  /// bit-reproducible. save_file/load_file are legacy aliases of the path
  /// overloads and simply delegate.
  void save(std::ostream& os) const;
  void save(const std::string& path) const;
  static MagicClassifier load(std::istream& is);
  static MagicClassifier load(const std::string& path);
  void save_file(const std::string& path) const;
  static MagicClassifier load_file(const std::string& path);

  /// Access for serialization/tests.
  DgcnnModel* model() noexcept { return model_.get(); }
  const DgcnnModel* model() const noexcept { return model_.get(); }

 private:
  friend MagicClassifier load_classifier(std::istream& is);
  /// The pool marks the replicas it materializes (is_pool_replica_), which
  /// makes their predict*/classify score on their own model directly
  /// instead of re-routing through a nested pool.
  friend class ReplicaPool;

  /// Derives the SortPooling k from the training-set size distribution:
  /// the vertex count at the (1 - ratio) percentile, so that roughly
  /// ratio-fraction of training graphs fill all k slots.
  static std::size_t derive_sort_k(const data::Dataset& dataset,
                                   const std::vector<std::size_t>& train_indices,
                                   double ratio);

  /// Scoring on this instance's own model (exclusive access required; the
  /// public const entry points guarantee it via leases / is_pool_replica_).
  Prediction predict_on_own_model(const acfg::Acfg& sample) const;
  std::vector<Prediction> predict_packed_on_own_model(const GraphBatch& batch) const;
  /// Builds a Prediction from one row of class probabilities.
  Prediction make_prediction(const double* probs, std::size_t classes) const;
  /// The cached pool, built under pool_mutex_ on first use.
  std::shared_ptr<ReplicaPool> ensure_replica_pool() const MAGIC_EXCLUDES(pool_mutex_);

  DgcnnConfig config_;
  TrainOptions train_options_;
  std::uint64_t seed_;
  std::unique_ptr<DgcnnModel> model_;
  std::vector<std::string> family_names_;
  mutable util::Mutex pool_mutex_;
  /// Cached clones for parallel scoring; reset whenever the weights change.
  mutable std::shared_ptr<ReplicaPool> replica_pool_ MAGIC_GUARDED_BY(pool_mutex_);
  /// True for replicas materialized by a ReplicaPool: they are exclusively
  /// leased already, so their predict paths drive model_ directly (routing
  /// through their own pool would recurse forever).
  bool is_pool_replica_ = false;
};

}  // namespace magic::core
