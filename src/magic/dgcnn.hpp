#pragma once
// The extended DGCNN of the paper (§III): graph convolution stack ->
// {SortPooling -> Conv1D | SortPooling -> WeightedVertices |
//  Conv2D -> AdaptiveMaxPooling -> VGG-style Conv2D stack} -> MLP ->
// LogSoftmax.
//
// Training processes one graph at a time (CFGs vary in size); batching is
// gradient accumulation across consecutive forward/backward calls, which is
// mathematically identical to minibatch SGD for a sum loss. Inference
// additionally offers predict_batch(): a packed block-diagonal forward that
// scores N graphs in one pass (see magic/graph_batch.hpp).

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"
#include "magic/graph_batch.hpp"
#include "nn/activations.hpp"
#include "nn/adaptive_max_pool.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/graph_conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/max_pool1d.hpp"
#include "nn/sequential.hpp"
#include "nn/sort_pooling.hpp"
#include "nn/weighted_vertices.hpp"
#include "util/rng.hpp"

namespace magic::core {

/// Pooling stage choice (Table II "Pooling Type").
enum class PoolingType { SortPooling, AdaptivePooling };

/// Layer following SortPooling (Table II "Remaining Layer").
enum class RemainingLayer { Conv1D, WeightedVertices };

/// Full hyper-parameter set of one DGCNN variant (Table II rows).
struct DgcnnConfig {
  std::size_t input_channels = 11;   // Table I attribute count
  std::size_t num_classes = 2;

  std::vector<std::size_t> graph_conv_channels = {32, 32, 32, 32};
  nn::Activation graph_conv_activation = nn::Activation::ReLU;
  /// Which member of the convolution zoo every stack layer runs
  /// (nn::GraphConvOperator::{Paper, Sage, Tag}; checkpoint token "op").
  nn::GraphConvOperator graph_conv_op = nn::GraphConvOperator::Paper;
  /// TagConv only: number of propagation hops K (>= 1; checkpoint token
  /// "tag_hops"). Ignored by the other operators.
  std::size_t tag_hops = 2;

  PoolingType pooling = PoolingType::AdaptivePooling;
  /// SortPooling: fraction controlling k (k = the vertex count at the
  /// (1 - ratio) percentile of training-set graph sizes, floor 4).
  /// AdaptivePooling: controls the output grid (max(2, round(10 * ratio))).
  double pooling_ratio = 0.64;
  /// Explicit k override; 0 = derive from ratio at build time.
  std::size_t sort_k = 0;

  RemainingLayer remaining = RemainingLayer::Conv1D;  // SortPooling only
  std::size_t conv1d_channels_first = 16;             // Table II pair (16, 32)
  std::size_t conv1d_channels_second = 32;
  std::size_t conv1d_kernel = 5;                      // {5, 7}

  std::size_t conv2d_channels = 16;  // AdaptivePooling only; {16, 32}

  std::size_t hidden_dim = 128;
  double dropout_rate = 0.1;  // {0.1, 0.5}

  /// log1p-scale raw attributes before the first layer; keeps deep ReLU
  /// stacks numerically tame on large basic blocks. Ablated in
  /// bench_ablation.
  bool log1p_attributes = true;

  /// Use D^-1 (A + I) as in Eq. 1; false uses the unnormalized A + I
  /// (degree-normalization ablation, bench_ablation).
  bool normalize_propagation = true;

  /// Total feature channels after the graph convolution stack. Every zoo
  /// operator emits exactly its configured layer width (wider operators
  /// widen the weight, not the output), so this is the channel sum for all
  /// of them.
  std::size_t total_graph_channels() const;
  /// The stack-construction view of this config (operator, channels,
  /// activation in one struct) — the single source for DgcnnModel and any
  /// direct GraphConvStack builder.
  nn::GraphConvStackConfig graph_conv_stack_config() const;
  /// Adaptive pooling grid side derived from pooling_ratio.
  std::size_t adaptive_grid() const;
  /// Short description like "AMP g6 gc=(128,64,32,32) do=0.1".
  std::string describe() const;
};

/// The assembled network.
class DgcnnModel {
 public:
  /// `sort_k_hint`: the k to use when cfg.sort_k == 0 (callers derive it
  /// from the training distribution; MagicClassifier does this for you).
  DgcnnModel(DgcnnConfig cfg, util::Rng& rng, std::size_t sort_k_hint = 16);

  /// Log-probabilities over families for one graph.
  ///
  /// NOT const and NOT thread-safe: activations are cached in the layers
  /// for backward(), so one model instance must be driven by at most one
  /// thread at a time. Parallel scoring clones replicas (core::ReplicaPool;
  /// the serve layer and predict_batch do this for you). Checked builds
  /// enforce the contract: a concurrent entry throws util::CheckError.
  nn::Tensor forward(const acfg::Acfg& sample);

  /// Packed-batch inference: log-probabilities for every graph in `batch`,
  /// shape (N x num_classes), row i matching forward(graphs[i]) to within
  /// floating-point reassociation (in practice bitwise for the GEMM stages).
  ///
  /// Inference-only: throws std::logic_error while grad caching is enabled
  /// (call set_training(false) first); there is no batched backward. Like
  /// forward(), NOT thread-safe per instance — the checked-mode concurrency
  /// guard covers this entry point too.
  nn::Tensor predict_batch(const GraphBatch& batch);

  /// True while a forward pass is in flight (the checked-mode concurrency
  /// guard's flag; test/diagnostic hook).
  bool forward_in_flight() const noexcept {
    return in_forward_.load(std::memory_order_acquire);
  }

  /// Backward from d(loss)/d(log_probs); accumulates parameter grads.
  void backward(const nn::Tensor& grad_log_probs);

  /// d(loss)/d(attribute matrix) from the last backward(), in the
  /// preprocessed (post-log1p) attribute space. Shape (n x channels).
  /// Basis of per-block saliency attribution (MagicClassifier::explain).
  const nn::Tensor& input_gradient() const noexcept { return last_input_grad_; }

  std::vector<nn::Parameter*> parameters();
  /// Also toggles grad caching: eval mode (false) skips the backward caches
  /// in every layer, so forward is allocation-lighter and a subsequent
  /// backward throws std::logic_error. Callers needing eval-mode gradients
  /// (saliency) re-enable via set_grad_enabled(true) after set_training.
  void set_training(bool training);
  /// Toggles backward caching independently of train/eval statistics mode.
  void set_grad_enabled(bool enabled);
  /// Reseeds every stochastic module (Dropout) so the mask stream depends
  /// only on the seed, not on how many samples this instance processed.
  /// The parallel trainer derives the seed from (run seed, epoch, sample).
  void reseed_rng(std::uint64_t seed);

  const DgcnnConfig& config() const noexcept { return cfg_; }
  std::size_t sort_k() const noexcept { return sort_k_; }

  /// Total scalar parameter count.
  std::size_t parameter_count();

 private:
  nn::Tensor preprocess(const acfg::Acfg& sample) const;

  DgcnnConfig cfg_;
  std::size_t sort_k_ = 0;
  nn::GraphConvStack stack_;

  // SortPooling path.
  std::unique_ptr<nn::SortPooling> sort_pool_;
  // AdaptivePooling path (pre-pool Conv2D + pooling itself).
  std::unique_ptr<nn::Conv2D> pre_pool_conv_;
  std::unique_ptr<nn::ReLU> pre_pool_act_;
  std::unique_ptr<nn::AdaptiveMaxPool2D> adaptive_pool_;

  // Everything after pooling, expressed over reshaped tensors.
  nn::Sequential head_;

  // Shapes cached from the last forward for backward-time reshapes.
  tensor::Shape stack_out_shape_;
  tensor::Shape pool_out_shape_;

  // The propagation operator must outlive backward.
  std::unique_ptr<tensor::SparseMatrix> last_prop_;
  nn::Tensor last_input_grad_;

  // Checked-mode guard against concurrent forward passes on one instance.
  std::atomic<bool> in_forward_{false};
};

}  // namespace magic::core
