#include "magic/parallel_trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace magic::core {

namespace {

// Compile-away gate for the phase-timing instrumentation: with MAGIC_OBS
// off every `if constexpr (kObsCompiled)` block vanishes and the trainer is
// byte-for-byte the uninstrumented engine.
#ifdef MAGIC_OBS_BUILD
constexpr bool kObsCompiled = true;
#else
constexpr bool kObsCompiled = false;
#endif

}  // namespace

std::uint64_t per_sample_seed(std::uint64_t seed, std::uint64_t epoch,
                              std::uint64_t position) noexcept {
  // splitmix64 finalizer over a fixed-weight combination: the stream a
  // sample consumes is a pure function of (run seed, epoch, position).
  std::uint64_t s = seed + 0x9E3779B97F4A7C15ULL * (epoch + 1) +
                    0xBF58476D1CE4E5B9ULL * (position + 1);
  s ^= s >> 30;
  s *= 0xBF58476D1CE4E5B9ULL;
  s ^= s >> 27;
  s *= 0x94D049BB133111EBULL;
  s ^= s >> 31;
  return s;
}

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

ParallelTrainer::ParallelTrainer(DgcnnModel& model, const data::Dataset& dataset,
                                 const TrainOptions& options)
    : master_(model),
      dataset_(dataset),
      options_(options),
      threads_(resolve_threads(options.threads)) {
  master_params_ = master_.parameters();

  // Replicas are structural clones: same config with sort_k pinned so the
  // derived-k path cannot diverge, parameter values synced from the master.
  DgcnnConfig replica_cfg = master_.config();
  replica_cfg.sort_k = master_.sort_k();
  replicas_.reserve(threads_);
  replica_params_.reserve(threads_);
  for (std::size_t r = 0; r < threads_; ++r) {
    util::Rng init_rng(0x9E3779B9u + r);  // overwritten by sync_replicas
    replicas_.push_back(std::make_unique<DgcnnModel>(replica_cfg, init_rng,
                                                     master_.sort_k()));
    replica_params_.push_back(replicas_.back()->parameters());
    MAGIC_CHECK(replica_params_.back().size() == master_params_.size(),
                "ParallelTrainer: replica parameter count "
                    << replica_params_.back().size() << " != master "
                    << master_params_.size());
  }
  sync_replicas();
  if (threads_ > 1) {
    // parallel_for's caller participates, so threads_ - 1 workers give
    // exactly threads_ concurrent lanes.
    pool_ = std::make_unique<util::ThreadPool>(threads_ - 1);
  }
}

void ParallelTrainer::sync_replicas() {
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    for (std::size_t i = 0; i < master_params_.size(); ++i) {
      replica_params_[r][i]->value = master_params_[i]->value;
    }
  }
}

void ParallelTrainer::run_slot(std::size_t replica, std::size_t slot,
                               const std::vector<std::size_t>& order,
                               std::size_t begin, std::size_t epoch) {
  DgcnnModel& model = *replicas_[replica];
  auto& params = replica_params_[replica];
  const std::size_t position = begin + slot;
  const acfg::Acfg& sample = dataset_.samples[order[position]];

  // The dropout stream is a function of (seed, epoch, position) only, so
  // masks are independent of the worker that drew them.
  model.reseed_rng(per_sample_seed(options_.seed, epoch, position));
  for (nn::Parameter* p : params) p->grad.fill(0.0);

  nn::NllLoss loss;
  if (timing_) {
    // Per-slot accumulators, no shared state: workers never contend on the
    // timing path, and the clock is only read while obs is enabled.
    util::Timer timer;
    const nn::Tensor log_probs = model.forward(sample);
    slot_forward_ms_[slot] = timer.millis();
    slot_loss_[slot] =
        loss.forward(log_probs, static_cast<std::size_t>(sample.label));
    timer.reset();
    model.backward(loss.backward());
    slot_backward_ms_[slot] = timer.millis();
  } else {
    const nn::Tensor log_probs = model.forward(sample);
    slot_loss_[slot] =
        loss.forward(log_probs, static_cast<std::size_t>(sample.label));
    model.backward(loss.backward());
  }

  // Hand the per-sample gradients to the reducer without copying; the slot
  // buffer (same shapes, contents stale) becomes the replica's next grad
  // storage and is zeroed above before reuse.
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::swap(params[i]->grad, slot_grads_[slot][i]);
  }
}

void ParallelTrainer::run_chunk(const std::vector<std::size_t>& order,
                                std::size_t begin, std::size_t end,
                                std::size_t epoch) {
  const std::size_t chunk = end - begin;
  const std::size_t lanes = std::min(threads_, chunk);
  if (lanes <= 1 || !pool_) {
    for (std::size_t slot = 0; slot < chunk; ++slot) {
      run_slot(0, slot, order, begin, epoch);
    }
    return;
  }
  pool_->parallel_for(lanes, [&](std::size_t r) {
    for (std::size_t slot = r; slot < chunk; slot += lanes) {
      run_slot(r, slot, order, begin, epoch);
    }
  });
}

TrainResult ParallelTrainer::train(const std::vector<std::size_t>& train_indices,
                                   const std::vector<std::size_t>& val_indices) {
  if (train_indices.empty()) {
    throw std::invalid_argument("train_model: empty training set");
  }
  util::Rng rng(options_.seed);
  nn::Adam optimizer(master_params_, options_.learning_rate, 0.9, 0.999, 1e-8,
                     options_.weight_decay);
  nn::ReduceLrOnPlateau scheduler(optimizer, options_.lr_patience,
                                  options_.lr_factor);

  // Per-slot gradient buffers sized to the largest minibatch; allocated
  // once here, recycled by pointer swaps for the rest of the run.
  max_chunk_ = options_.batch_size == 0
                   ? train_indices.size()
                   : std::min(options_.batch_size, train_indices.size());
  slot_grads_.assign(max_chunk_, {});
  for (auto& slot : slot_grads_) {
    slot.reserve(master_params_.size());
    for (nn::Parameter* p : master_params_) {
      slot.push_back(nn::Tensor::zeros(p->value.shape()));
    }
  }
  slot_loss_.assign(max_chunk_, 0.0);
  if constexpr (kObsCompiled) {
    timing_ = obs::enabled();
    if (timing_) {
      slot_forward_ms_.assign(max_chunk_, 0.0);
      slot_backward_ms_.assign(max_chunk_, 0.0);
    }
  }

  TrainResult result;
  result.best_validation_loss = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order = train_indices;
  std::vector<nn::Tensor> best_snapshot;
  const bool snapshotting = options_.restore_best && !val_indices.empty();

  // Index pools per family for balanced oversampling (weight
  // count^(1 - strength); see TrainOptions). Drawn from the master rng so
  // the epoch order is thread-count independent.
  std::vector<std::vector<std::size_t>> by_family;
  std::vector<double> family_draw_weights;
  if (options_.balance_families) {
    by_family.assign(dataset_.num_families(), {});
    for (std::size_t idx : train_indices) {
      const int label = dataset_.samples[idx].label;
      if (label >= 0 && static_cast<std::size_t>(label) < by_family.size()) {
        by_family[static_cast<std::size_t>(label)].push_back(idx);
      }
    }
    by_family.erase(std::remove_if(by_family.begin(), by_family.end(),
                                   [](const auto& v) { return v.empty(); }),
                    by_family.end());
    const double exponent = 1.0 - std::clamp(options_.balance_strength, 0.0, 1.0);
    for (const auto& pool : by_family) {
      family_draw_weights.push_back(
          std::pow(static_cast<double>(pool.size()), exponent));
    }
  }

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (auto& replica : replicas_) replica->set_training(true);
    if (options_.balance_families && !by_family.empty()) {
      for (auto& idx : order) {
        const auto& pool = by_family[rng.weighted_index(family_draw_weights)];
        idx = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      }
    } else {
      rng.shuffle(order);
    }

    double epoch_loss = 0.0;
    double forward_ms = 0.0, backward_ms = 0.0, reduce_ms = 0.0,
           optimizer_ms = 0.0;
    util::Timer epoch_timer;  // read only while timing_
    optimizer.zero_grad();
    for (std::size_t begin = 0; begin < order.size(); begin += max_chunk_) {
      const std::size_t end = std::min(begin + max_chunk_, order.size());
      run_chunk(order, begin, end, epoch);
      if constexpr (kObsCompiled) {
        if (timing_) {
          for (std::size_t slot = 0; slot < end - begin; ++slot) {
            forward_ms += slot_forward_ms_[slot];
            backward_ms += slot_backward_ms_[slot];
          }
        }
      }
      util::Timer phase_timer;
      // Deterministic reduction: slot order == sample-index order, for
      // every thread count.
      for (std::size_t slot = 0; slot < end - begin; ++slot) {
        epoch_loss += slot_loss_[slot];
        for (std::size_t i = 0; i < master_params_.size(); ++i) {
          master_params_[i]->grad += slot_grads_[slot][i];
        }
      }
      if constexpr (kObsCompiled) {
        if (timing_) reduce_ms += phase_timer.millis();
      }
      phase_timer.reset();
      optimizer.step();
      optimizer.zero_grad();
      sync_replicas();
      if constexpr (kObsCompiled) {
        if (timing_) optimizer_ms += phase_timer.millis();
      }
    }
    if constexpr (kObsCompiled) {
      if (timing_) {
        // Per-epoch phase breakdown + throughput, visible in any
        // snapshot_json() sink (--metrics-out, magicd stats).
        const double wall_ms = epoch_timer.millis();
        obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
        registry.histogram("train.epoch.forward_ms").record(forward_ms);
        registry.histogram("train.epoch.backward_ms").record(backward_ms);
        registry.histogram("train.epoch.reduce_ms").record(reduce_ms);
        registry.histogram("train.epoch.optimizer_ms").record(optimizer_ms);
        registry.histogram("train.epoch.wall_ms").record(wall_ms);
        if (wall_ms > 0.0) {
          registry.gauge("train.samples_per_sec")
              .set(static_cast<double>(order.size()) / (wall_ms / 1e3));
        }
        registry.counter("train.epochs").add();
        registry.counter("train.samples").add(order.size());
      }
    }

    EpochStats stats;
    stats.train_loss = epoch_loss / static_cast<double>(order.size());
    if (!val_indices.empty()) {
      util::Timer validation_timer;
      EvalResult eval = evaluate(val_indices);
      if constexpr (kObsCompiled) {
        if (timing_) {
          obs::MetricsRegistry::global()
              .histogram("train.epoch.validation_ms")
              .record(validation_timer.millis());
        }
      }
      stats.validation_loss = eval.mean_log_loss;
      stats.validation_accuracy = eval.confusion.accuracy();
    } else {
      stats.validation_loss = stats.train_loss;
      stats.validation_accuracy = 0.0;
    }
    if (stats.validation_loss < result.best_validation_loss) {
      result.best_validation_loss = stats.validation_loss;
      result.best_epoch = epoch;
      if (snapshotting) {
        best_snapshot.clear();
        for (nn::Parameter* p : master_params_) best_snapshot.push_back(p->value);
      }
    }
    scheduler.observe(stats.validation_loss);
    if (options_.verbose) {
      MAGIC_LOG_INFO("epoch " << epoch << " train=" << stats.train_loss
                              << " val=" << stats.validation_loss
                              << " acc=" << stats.validation_accuracy
                              << " lr=" << optimizer.lr() << " threads="
                              << threads_);
    }
    result.history.push_back(stats);
  }
  if (snapshotting && !best_snapshot.empty()) {
    for (std::size_t i = 0; i < master_params_.size(); ++i) {
      master_params_[i]->value = best_snapshot[i];
    }
  }
  master_.set_training(false);
  return result;
}

EvalResult ParallelTrainer::evaluate(const std::vector<std::size_t>& indices) {
  for (auto& replica : replicas_) replica->set_training(false);
  EvalResult result{0.0, ml::ConfusionMatrix(dataset_.num_families()), {}, {}};
  const std::size_t n = indices.size();
  result.probabilities.assign(n, {});
  result.labels.assign(n, 0);
  const std::size_t lanes = std::min(threads_, n == 0 ? std::size_t{1} : n);

  auto score_range = [&](std::size_t r, std::size_t stride) {
    DgcnnModel& model = *replicas_[r];
    for (std::size_t pos = r; pos < n; pos += stride) {
      const acfg::Acfg& sample = dataset_.samples[indices[pos]];
      const nn::Tensor log_probs = model.forward(sample);
      const nn::Tensor p = nn::exp_probs(log_probs);
      result.probabilities[pos].assign(p.data(), p.data() + p.size());
      result.labels[pos] = static_cast<std::size_t>(sample.label);
    }
  };
  if (lanes <= 1 || !pool_) {
    score_range(0, 1);
  } else {
    pool_->parallel_for(lanes, [&](std::size_t r) { score_range(r, lanes); });
  }
  // Confusion is rebuilt serially in sample order, so the result matches
  // the serial evaluate_model exactly.
  for (std::size_t pos = 0; pos < n; ++pos) {
    std::size_t winner = 0;
    const auto& row = result.probabilities[pos];
    for (std::size_t j = 1; j < row.size(); ++j) {
      if (row[j] > row[winner]) winner = j;
    }
    result.confusion.add(result.labels[pos], winner);
  }
  result.mean_log_loss = ml::mean_log_loss(result.probabilities, result.labels);
  return result;
}

EvalResult evaluate_model(DgcnnModel& model, const data::Dataset& dataset,
                          const std::vector<std::size_t>& indices,
                          std::size_t threads) {
  const std::size_t resolved = resolve_threads(threads);
  if (resolved <= 1) return evaluate_model(model, dataset, indices);
  TrainOptions options;
  options.threads = resolved;
  ParallelTrainer trainer(model, dataset, options);
  return trainer.evaluate(indices);
}

}  // namespace magic::core
