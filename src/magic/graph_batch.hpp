#pragma once
// GraphBatch: N variable-size ACFGs packed into one block-diagonal batch.
//
// The DGCNN forward pass is dominated by (sparse propagation) x (dense GEMM)
// products whose row count is the vertex count of one graph. Packing a
// micro-batch of graphs into a single concatenated vertex-attribute matrix
// with per-graph row offsets turns N small products into one large one — the
// standard trick of minibatched GNN stacks (DGL / PyTorch Geometric; Zhang
// et al.'s reference DGCNN trains exactly this way). Because the combined
// propagation operator is block diagonal, one spmm over the packed rows is
// mathematically identical to N independent per-graph propagations, and the
// dense stages downstream see one tall matrix instead of N short ones.
//
// A GraphBatch is immutable once built. pack() validates every graph
// (non-empty, consistent channel width); the raw-parts constructor re-checks
// the packing invariants so a hand-assembled batch with mismatched offsets
// fails fast instead of silently mixing vertices across graphs.

#include <cstddef>
#include <span>
#include <vector>

#include "acfg/acfg.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"

namespace magic::core {

/// Immutable packed batch of ACFGs (attributes + offsets + shifted topology).
class GraphBatch {
 public:
  /// Packs `graphs` in order. Throws std::invalid_argument on an empty
  /// batch, an empty graph, or inconsistent channel counts.
  static GraphBatch pack(std::span<const acfg::Acfg> graphs);
  /// Zero-copy-friendly variant for callers whose samples are not
  /// contiguous (the serving layer batches request structs).
  static GraphBatch pack(std::span<const acfg::Acfg* const> graphs);

  /// Assembles a batch from pre-packed parts, validating the packing
  /// invariants: `attributes` is (total x channels); `offsets` has N + 1
  /// strictly increasing entries with offsets[0] == 0 and
  /// offsets[N] == total; `out_edges` holds one adjacency list per packed
  /// vertex using *global* (packed) vertex ids, and every edge must stay
  /// inside its source's segment (the block-diagonal property). Throws
  /// std::invalid_argument on any violation.
  GraphBatch(tensor::Tensor attributes, std::vector<std::size_t> offsets,
             std::vector<std::vector<std::size_t>> out_edges);

  /// Number of graphs N (always >= 1).
  std::size_t size() const noexcept { return offsets_.size() - 1; }
  /// Total packed vertex count (sum of per-graph vertex counts).
  std::size_t total_vertices() const noexcept { return offsets_.back(); }
  /// Attribute channels per vertex.
  std::size_t num_channels() const { return attributes_.dim(1); }
  /// First packed row of graph `i`.
  std::size_t offset(std::size_t i) const { return offsets_.at(i); }
  /// Vertex count of graph `i`.
  std::size_t vertices(std::size_t i) const {
    return offsets_.at(i + 1) - offsets_.at(i);
  }

  /// Concatenated vertex-attribute matrix, shape (total_vertices x channels).
  const tensor::Tensor& attributes() const noexcept { return attributes_; }
  /// The N + 1 segment boundaries (offsets()[0] == 0, back() == total).
  const std::vector<std::size_t>& offsets() const noexcept { return offsets_; }
  /// Packed adjacency in global vertex ids (block diagonal by construction).
  const std::vector<std::vector<std::size_t>>& out_edges() const noexcept {
    return out_edges_;
  }

  /// Block-diagonal propagation operator over the packed vertex space:
  /// D^-1 (A + I) when `normalize`, A + I otherwise. Each diagonal block is
  /// exactly the corresponding single-graph operator, so one multiply by
  /// this matrix equals N independent per-graph propagations.
  tensor::SparseMatrix propagation_operator(bool normalize = true) const;

 private:
  tensor::Tensor attributes_;                        // (total x channels)
  std::vector<std::size_t> offsets_;                 // N + 1 boundaries
  std::vector<std::vector<std::size_t>> out_edges_;  // global ids per vertex
};

}  // namespace magic::core
