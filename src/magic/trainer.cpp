#include "magic/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/optimizer.hpp"
#include "util/logging.hpp"

namespace magic::core {

TrainResult train_model(DgcnnModel& model, const data::Dataset& dataset,
                        const std::vector<std::size_t>& train_indices,
                        const std::vector<std::size_t>& val_indices,
                        const TrainOptions& options) {
  if (train_indices.empty()) {
    throw std::invalid_argument("train_model: empty training set");
  }
  util::Rng rng(options.seed);
  nn::Adam optimizer(model.parameters(), options.learning_rate, 0.9, 0.999, 1e-8,
                     options.weight_decay);
  nn::ReduceLrOnPlateau scheduler(optimizer, options.lr_patience, options.lr_factor);

  TrainResult result;
  result.best_validation_loss = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order = train_indices;
  std::vector<nn::Tensor> best_snapshot;
  const bool snapshotting = options.restore_best && !val_indices.empty();

  // Index pools per family for balanced oversampling. Families are drawn
  // with weight count^(1 - strength): strength 1 = uniform (full balance),
  // 0.5 = sqrt compromise, 0 = natural frequency.
  std::vector<std::vector<std::size_t>> by_family;
  std::vector<double> family_draw_weights;
  if (options.balance_families) {
    by_family.assign(dataset.num_families(), {});
    for (std::size_t idx : train_indices) {
      const int label = dataset.samples[idx].label;
      if (label >= 0 && static_cast<std::size_t>(label) < by_family.size()) {
        by_family[static_cast<std::size_t>(label)].push_back(idx);
      }
    }
    by_family.erase(std::remove_if(by_family.begin(), by_family.end(),
                                   [](const auto& v) { return v.empty(); }),
                    by_family.end());
    const double exponent = 1.0 - std::clamp(options.balance_strength, 0.0, 1.0);
    for (const auto& pool : by_family) {
      family_draw_weights.push_back(
          std::pow(static_cast<double>(pool.size()), exponent));
    }
  }

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    model.set_training(true);
    if (options.balance_families && !by_family.empty()) {
      for (auto& idx : order) {
        const auto& pool = by_family[rng.weighted_index(family_draw_weights)];
        idx = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      }
    } else {
      rng.shuffle(order);
    }
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    optimizer.zero_grad();
    for (std::size_t idx : order) {
      const acfg::Acfg& sample = dataset.samples[idx];
      nn::NllLoss loss;
      const nn::Tensor log_probs = model.forward(sample);
      epoch_loss += loss.forward(log_probs, static_cast<std::size_t>(sample.label));
      model.backward(loss.backward());
      if (++in_batch == options.batch_size) {
        optimizer.step();
        optimizer.zero_grad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.step();
      optimizer.zero_grad();
    }

    EpochStats stats;
    stats.train_loss = epoch_loss / static_cast<double>(order.size());
    if (!val_indices.empty()) {
      EvalResult eval = evaluate_model(model, dataset, val_indices);
      stats.validation_loss = eval.mean_log_loss;
      stats.validation_accuracy = eval.confusion.accuracy();
    } else {
      stats.validation_loss = stats.train_loss;
      stats.validation_accuracy = 0.0;
    }
    if (stats.validation_loss < result.best_validation_loss) {
      result.best_validation_loss = stats.validation_loss;
      result.best_epoch = epoch;
      if (snapshotting) {
        best_snapshot.clear();
        for (nn::Parameter* p : model.parameters()) best_snapshot.push_back(p->value);
      }
    }
    scheduler.observe(stats.validation_loss);
    if (options.verbose) {
      MAGIC_LOG_INFO("epoch " << epoch << " train=" << stats.train_loss
                              << " val=" << stats.validation_loss
                              << " acc=" << stats.validation_accuracy
                              << " lr=" << optimizer.lr());
    }
    result.history.push_back(stats);
  }
  if (snapshotting && !best_snapshot.empty()) {
    auto params = model.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_snapshot[i];
    }
  }
  return result;
}

EvalResult evaluate_model(DgcnnModel& model, const data::Dataset& dataset,
                          const std::vector<std::size_t>& indices) {
  model.set_training(false);
  EvalResult result{0.0, ml::ConfusionMatrix(dataset.num_families()), {}, {}};
  result.probabilities.reserve(indices.size());
  result.labels.reserve(indices.size());
  std::vector<std::vector<double>> probs;
  for (std::size_t idx : indices) {
    const acfg::Acfg& sample = dataset.samples[idx];
    const nn::Tensor log_probs = model.forward(sample);
    const nn::Tensor p = nn::exp_probs(log_probs);
    std::vector<double> row(p.data(), p.data() + p.size());
    const auto label = static_cast<std::size_t>(sample.label);
    result.confusion.add(label, tensor::argmax(p));
    result.probabilities.push_back(std::move(row));
    result.labels.push_back(label);
  }
  result.mean_log_loss = ml::mean_log_loss(result.probabilities, result.labels);
  return result;
}

}  // namespace magic::core
