#include "magic/trainer.hpp"

#include <stdexcept>

#include "magic/parallel_trainer.hpp"

namespace magic::core {

TrainResult train_model(DgcnnModel& model, const data::Dataset& dataset,
                        const std::vector<std::size_t>& train_indices,
                        const std::vector<std::size_t>& val_indices,
                        const TrainOptions& options) {
  // All thread counts (1 included) run the same per-slot reduce engine, so
  // the trajectory is bitwise independent of options.threads.
  ParallelTrainer trainer(model, dataset, options);
  return trainer.train(train_indices, val_indices);
}

EvalResult evaluate_model(DgcnnModel& model, const data::Dataset& dataset,
                          const std::vector<std::size_t>& indices) {
  model.set_training(false);
  EvalResult result{0.0, ml::ConfusionMatrix(dataset.num_families()), {}, {}};
  result.probabilities.reserve(indices.size());
  result.labels.reserve(indices.size());
  std::vector<std::vector<double>> probs;
  for (std::size_t idx : indices) {
    const acfg::Acfg& sample = dataset.samples[idx];
    const nn::Tensor log_probs = model.forward(sample);
    const nn::Tensor p = nn::exp_probs(log_probs);
    std::vector<double> row(p.data(), p.data() + p.size());
    const auto label = static_cast<std::size_t>(sample.label);
    result.confusion.add(label, tensor::argmax(p));
    result.probabilities.push_back(std::move(row));
    result.labels.push_back(label);
  }
  result.mean_log_loss = ml::mean_log_loss(result.probabilities, result.labels);
  return result;
}

}  // namespace magic::core
