#include "magic/replica_pool.hpp"

#include <sstream>

#include "magic/classifier.hpp"

namespace magic::core {

void ReplicaPool::Lease::release() noexcept {
  // Detach before locking so the capability expression (pool->mutex_) is
  // stable for the whole critical section — the analysis must see the same
  // mutex at acquire and (scoped) release.
  ReplicaPool* const pool = pool_;
  if (pool == nullptr) return;
  pool_ = nullptr;
  replica_ = nullptr;
  util::MutexLock lock(pool->mutex_);
  pool->busy_[index_] = false;
}

ReplicaPool::ReplicaPool(const MagicClassifier& source, std::size_t warm_count) {
  std::ostringstream snapshot;
  source.save(snapshot);  // throws std::logic_error when not fitted
  blob_ = snapshot.str();
  warm(warm_count);
}

ReplicaPool::~ReplicaPool() = default;

std::unique_ptr<MagicClassifier> ReplicaPool::materialize() const {
  std::istringstream in(blob_);
  auto replica = std::make_unique<MagicClassifier>(MagicClassifier::load(in));
  // Leased replicas are exclusively owned, so their predict paths drive the
  // model directly instead of re-routing through a (nested) pool.
  replica->is_pool_replica_ = true;
  return replica;
}

ReplicaPool::Lease ReplicaPool::acquire() {
  util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!busy_[i]) {
      busy_[i] = true;
      return Lease{this, i, replicas_[i].get()};
    }
  }
  replicas_.push_back(materialize());
  busy_.push_back(true);
  return Lease{this, replicas_.size() - 1, replicas_.back().get()};
}

void ReplicaPool::warm(std::size_t count) {
  util::MutexLock lock(mutex_);
  while (replicas_.size() < count) {
    replicas_.push_back(materialize());
    busy_.push_back(false);
  }
}

std::size_t ReplicaPool::size() const {
  util::MutexLock lock(mutex_);
  return replicas_.size();
}

std::size_t ReplicaPool::leased() const {
  util::MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const bool busy : busy_) {
    if (busy) ++count;
  }
  return count;
}

}  // namespace magic::core
