#include "magic/replica_pool.hpp"

#include <sstream>

#include "magic/classifier.hpp"

namespace magic::core {

void ReplicaPool::Lease::release() noexcept {
  if (pool_ == nullptr) return;
  std::lock_guard<std::mutex> lock(pool_->mutex_);
  pool_->busy_[index_] = false;
  pool_ = nullptr;
  replica_ = nullptr;
}

ReplicaPool::ReplicaPool(const MagicClassifier& source, std::size_t warm_count) {
  std::ostringstream snapshot;
  source.save(snapshot);  // throws std::logic_error when not fitted
  blob_ = snapshot.str();
  warm(warm_count);
}

ReplicaPool::~ReplicaPool() = default;

std::unique_ptr<MagicClassifier> ReplicaPool::materialize() const {
  std::istringstream in(blob_);
  auto replica = std::make_unique<MagicClassifier>(MagicClassifier::load(in));
  // Leased replicas are exclusively owned, so their predict paths drive the
  // model directly instead of re-routing through a (nested) pool.
  replica->is_pool_replica_ = true;
  return replica;
}

ReplicaPool::Lease ReplicaPool::acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!busy_[i]) {
      busy_[i] = true;
      return Lease{this, i, replicas_[i].get()};
    }
  }
  replicas_.push_back(materialize());
  busy_.push_back(true);
  return Lease{this, replicas_.size() - 1, replicas_.back().get()};
}

void ReplicaPool::warm(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (replicas_.size() < count) {
    replicas_.push_back(materialize());
    busy_.push_back(false);
  }
}

std::size_t ReplicaPool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_.size();
}

std::size_t ReplicaPool::leased() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const bool busy : busy_) {
    if (busy) ++count;
  }
  return count;
}

}  // namespace magic::core
