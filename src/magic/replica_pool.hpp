#pragma once
// ReplicaPool: per-thread model replicas, cloned once and leased out.
//
// DgcnnModel forward passes cache activations inside the layers, so one
// model instance must never be driven by two threads at once (enforced by a
// checked-mode guard in DgcnnModel::forward). Every parallel scoring path —
// MagicClassifier::predict_batch and the serve::InferenceServer workers —
// therefore needs exclusive access to a replica while scoring. Before this
// pool, predict_batch re-serialized and re-materialized the model on
// *every* call; the pool snapshots the weights once (text serialization,
// bit-reproducible per model_io.cpp) and materializes each replica exactly
// once, on first demand.
//
// Replicas are handed out as RAII leases: acquire() returns an idle replica
// (materializing a new one when all are busy), and the lease returns it on
// destruction. That makes concurrent consumers safe by construction — a
// predict_batch running next to a live InferenceServer over the same
// classifier simply grows the pool instead of sharing hot replicas.
//
// Thread-safety: acquire()/warm()/size() may be called concurrently. The
// classifier leased through a Lease is exclusively owned until the lease is
// destroyed. Replica addresses are stable for the pool's lifetime.
//
// Locking protocol (machine-checked via -Wthread-safety): replicas_ and
// busy_ only change under mutex_. A Lease releases from *outside* the pool
// object — Lease::release() acquires pool_->mutex_ across objects, which is
// exactly the kind of implicit contract the annotations pin down: the
// returning-a-replica write to busy_ is proven to happen under the same
// capability acquire() hands slots out under.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::core {

class MagicClassifier;

/// Lazily grown pool of independent clones of one fitted classifier.
class ReplicaPool {
 public:
  /// Exclusive RAII handle to one replica. Move-only; returns the replica
  /// to the pool on destruction. Must not outlive the pool.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { swap(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    MagicClassifier& operator*() const noexcept { return *replica_; }
    MagicClassifier* operator->() const noexcept { return replica_; }
    bool valid() const noexcept { return replica_ != nullptr; }

   private:
    friend class ReplicaPool;
    Lease(ReplicaPool* pool, std::size_t index, MagicClassifier* replica) noexcept
        : pool_(pool), index_(index), replica_(replica) {}
    /// Returns the replica: acquires pool_->mutex_ (cross-object!) to clear
    /// the busy bit. Must not be called with the pool mutex held — the
    /// annotation turns that potential self-deadlock into a compile error.
    void release() noexcept MAGIC_EXCLUDES(pool_->mutex_);
    void swap(Lease& other) noexcept {
      std::swap(pool_, other.pool_);
      std::swap(index_, other.index_);
      std::swap(replica_, other.replica_);
    }

    ReplicaPool* pool_ = nullptr;
    std::size_t index_ = 0;
    MagicClassifier* replica_ = nullptr;
  };

  /// Snapshots `source`'s weights (throws std::logic_error if not fitted)
  /// and eagerly materializes `warm_count` replicas.
  explicit ReplicaPool(const MagicClassifier& source, std::size_t warm_count = 0);
  ~ReplicaPool();

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  /// Leases an idle replica, materializing a new one when all existing
  /// replicas are busy. Never blocks on other lease holders.
  Lease acquire() MAGIC_EXCLUDES(mutex_);

  /// Materializes replicas until at least `count` exist (eager warm-up so
  /// first requests don't pay the clone cost).
  void warm(std::size_t count) MAGIC_EXCLUDES(mutex_);

  /// Number of replicas materialized so far.
  std::size_t size() const MAGIC_EXCLUDES(mutex_);
  /// Number of replicas currently leased out.
  std::size_t leased() const MAGIC_EXCLUDES(mutex_);

 private:
  std::unique_ptr<MagicClassifier> materialize() const;

  std::string blob_;  // serialized source model; immutable after the ctor
  mutable util::Mutex mutex_;
  /// The replica objects a Lease points into are NOT guarded by mutex_ —
  /// exclusivity comes from the busy bit; only the vectors themselves are.
  std::vector<std::unique_ptr<MagicClassifier>> replicas_ MAGIC_GUARDED_BY(mutex_);
  std::vector<bool> busy_ MAGIC_GUARDED_BY(mutex_);
};

}  // namespace magic::core
