#pragma once
// Stratified K-fold cross-validation driver (§V-B): each fold trains a
// fresh randomly-initialized model on 80% of the data and validates on the
// remaining 20%; per-epoch validation losses are averaged across folds and
// the minimum average is the model's score. Per-family precision/recall/F1
// (Tables III & V) are computed from the pooled validation confusion.

#include <vector>

#include "data/dataset.hpp"
#include "magic/classifier.hpp"
#include "ml/metrics.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {

/// Aggregated result of a K-fold run.
struct CvResult {
  /// mean-over-folds validation loss per epoch; the min is the model score.
  std::vector<double> mean_epoch_val_loss;
  double score = 0.0;  // min of mean_epoch_val_loss (paper's model criterion)

  /// Pooled validation confusion across folds (each sample validated once).
  ml::ConfusionMatrix confusion;
  /// Mean over folds of final-epoch validation log loss.
  double mean_log_loss = 0.0;
  double accuracy = 0.0;

  /// Per-fold final validation losses/accuracies.
  std::vector<double> fold_loss;
  std::vector<double> fold_accuracy;

  explicit CvResult(std::size_t num_classes) : confusion(num_classes) {}
};

struct CvOptions {
  /// Number of folds; cross_validate requires >= 2 (1 leaves no holdout).
  std::size_t folds = 5;
  /// Per-fold training options; cross_validate requires train.epochs >= 1.
  TrainOptions train;
  std::uint64_t seed = 11;
  /// Train folds concurrently on the pool (each fold is single-threaded).
  bool parallel_folds = true;
};

/// Runs K-fold CV of one DGCNN config over the dataset.
/// Throws std::invalid_argument for degenerate options (folds < 2 or
/// train.epochs == 0).
CvResult cross_validate(const DgcnnConfig& config, const data::Dataset& dataset,
                        const CvOptions& options, util::ThreadPool& pool);

}  // namespace magic::core
