#pragma once
// Data-parallel minibatch training engine (DESIGN.md "Training performance").
//
// Each minibatch fans per-graph forward/backward across model replicas on a
// util::ThreadPool; per-sample gradients land in preallocated per-slot
// buffers and are reduced into the master parameters in fixed sample-index
// order. Floating-point addition is not associative, so determinism comes
// from making EVERY thread count (including 1) use the same reduction
// structure: the trained parameters and TrainResult.history are bitwise
// identical for any TrainOptions::threads value.
//
// Stochastic modules (Dropout) are reseeded per (run seed, epoch, sample
// position), so the mask a sample sees never depends on which worker
// processed it or on how many samples that worker handled before.
//
// Deliberately free of -Wthread-safety annotations: this engine holds no
// mutex. Workers write disjoint per-slot buffers (slot index = worker
// index) and the reduction runs after the parallel_for barrier, so its
// race freedom is a data-partitioning argument the capability analysis
// cannot express. TSan stress coverage stands in where the static proof
// cannot reach (tests/magic/parallel_trainer_test.cpp under check.sh tsan).

#include <cstdint>
#include <memory>
#include <vector>

#include "magic/trainer.hpp"
#include "util/thread_pool.hpp"

namespace magic::core {

/// Mixes (seed, epoch, position) into one per-sample stream seed
/// (splitmix64 finalizer; exposed for tests).
std::uint64_t per_sample_seed(std::uint64_t seed, std::uint64_t epoch,
                              std::uint64_t position) noexcept;

/// The engine behind train_model. One instance owns the replica set, the
/// per-slot gradient buffers and the worker pool; buffers are allocated once
/// up front so the per-step loop is allocation-free in steady state.
class ParallelTrainer {
 public:
  /// `model` is the master: the optimizer steps its parameters and the
  /// trained values end up in it, exactly like the serial engine.
  ParallelTrainer(DgcnnModel& model, const data::Dataset& dataset,
                  const TrainOptions& options);

  TrainResult train(const std::vector<std::size_t>& train_indices,
                    const std::vector<std::size_t>& val_indices);

  /// Replica-parallel evaluation; rows stored by sample position so the
  /// result equals the serial evaluate_model byte for byte.
  EvalResult evaluate(const std::vector<std::size_t>& indices);

  std::size_t threads() const noexcept { return threads_; }

 private:
  /// Copies master parameter values into every replica.
  void sync_replicas();
  /// Runs samples order[begin, end) through the replicas; slot s leaves its
  /// gradients in slot_grads_[s] and its loss in slot_loss_[s].
  void run_chunk(const std::vector<std::size_t>& order, std::size_t begin,
                 std::size_t end, std::size_t epoch);
  /// One sample on one replica: reseed, zero grads, forward, loss,
  /// backward, swap gradients into the slot buffers.
  void run_slot(std::size_t replica, std::size_t slot,
                const std::vector<std::size_t>& order, std::size_t begin,
                std::size_t epoch);

  DgcnnModel& master_;
  const data::Dataset& dataset_;
  TrainOptions options_;
  std::size_t threads_;

  std::vector<std::unique_ptr<DgcnnModel>> replicas_;
  std::vector<std::vector<nn::Parameter*>> replica_params_;
  std::vector<nn::Parameter*> master_params_;

  // slot_grads_[slot][param] mirrors the master parameter shapes.
  std::vector<std::vector<nn::Tensor>> slot_grads_;
  std::vector<double> slot_loss_;
  std::size_t max_chunk_ = 0;

  // obs phase timing (magic::obs). Sampled once at train() entry; when
  // false (obs disabled or compiled out) no clock is ever read and the
  // per-slot timing buffers stay empty. Per-slot accumulators keep the
  // worker threads contention-free, exactly like slot_loss_.
  bool timing_ = false;
  std::vector<double> slot_forward_ms_;
  std::vector<double> slot_backward_ms_;

  std::unique_ptr<util::ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace magic::core
