#include "magic/dgcnn.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "nn/reshape.hpp"
#include "nn/shape_contract.hpp"
#include "util/check.hpp"

namespace magic::core {

std::size_t DgcnnConfig::total_graph_channels() const {
  std::size_t total = 0;
  for (std::size_t c : graph_conv_channels) total += c;
  return total;
}

nn::GraphConvStackConfig DgcnnConfig::graph_conv_stack_config() const {
  nn::GraphConvStackConfig sc;
  sc.in_channels = input_channels;
  sc.channels = graph_conv_channels;
  sc.activation = graph_conv_activation;
  sc.op.kind = graph_conv_op;
  sc.op.tag_hops = tag_hops;
  return sc;
}

std::size_t DgcnnConfig::adaptive_grid() const {
  // Ratio -> grid side. Floor of 3: a 2x2 grid retains too little of the
  // Z^{1:h} map for multi-family classification (the paper leaves the exact
  // mapping unspecified).
  const auto g = static_cast<std::size_t>(std::llround(10.0 * pooling_ratio));
  return g < 3 ? 3 : g;
}

std::string DgcnnConfig::describe() const {
  std::ostringstream oss;
  oss << (pooling == PoolingType::AdaptivePooling ? "AMP" : "SortPool");
  oss << " ratio=" << pooling_ratio;
  oss << " gc=(";
  for (std::size_t i = 0; i < graph_conv_channels.size(); ++i) {
    if (i) oss << ',';
    oss << graph_conv_channels[i];
  }
  oss << ")";
  oss << " op=" << nn::graph_conv_operator_name(graph_conv_op);
  if (graph_conv_op == nn::GraphConvOperator::Tag) oss << ':' << tag_hops;
  if (pooling == PoolingType::SortPooling) {
    if (remaining == RemainingLayer::Conv1D) {
      oss << " conv1d(k=" << conv1d_kernel << ")";
    } else {
      oss << " wv";
    }
  } else {
    oss << " c2d=" << conv2d_channels;
  }
  oss << " do=" << dropout_rate;
  return oss.str();
}

DgcnnModel::DgcnnModel(DgcnnConfig cfg, util::Rng& rng, std::size_t sort_k_hint)
    : cfg_(cfg), stack_(cfg.graph_conv_stack_config(), rng) {
  if (cfg_.num_classes < 2) {
    throw std::invalid_argument("DgcnnModel: at least two classes required");
  }
  const std::size_t C = cfg_.total_graph_channels();
  std::size_t flat_dim = 0;

  if (cfg_.pooling == PoolingType::SortPooling) {
    sort_k_ = cfg_.sort_k != 0 ? cfg_.sort_k : sort_k_hint;
    if (sort_k_ < 4) sort_k_ = 4;
    sort_pool_ = std::make_unique<nn::SortPooling>(sort_k_);

    if (cfg_.remaining == RemainingLayer::Conv1D) {
      // Original DGCNN head: Conv1D over the flattened (k x C) descriptor
      // with kernel = stride = C (one vertex per step), max-pool, then a
      // small-kernel Conv1D (§III-A4).
      head_.emplace<nn::FixedReshape>(tensor::Shape{1, sort_k_ * C});
      head_.emplace<nn::Conv1D>(1, cfg_.conv1d_channels_first, C, C, rng);
      head_.emplace<nn::ReLU>();
      const std::size_t l1 = sort_k_;
      const std::size_t l2 = (l1 - 2) / 2 + 1;
      head_.emplace<nn::MaxPool1D>(2, 2);
      const std::size_t k2 = std::min(cfg_.conv1d_kernel, l2);
      head_.emplace<nn::Conv1D>(cfg_.conv1d_channels_first,
                                cfg_.conv1d_channels_second, k2, 1, rng);
      head_.emplace<nn::ReLU>();
      const std::size_t l3 = l2 - k2 + 1;
      flat_dim = cfg_.conv1d_channels_second * l3;
      head_.emplace<nn::Flatten>();
    } else {
      // The paper's WeightedVertices extension (Eq. 3-4): a learned
      // weighted sum of the k kept vertex embeddings.
      head_.emplace<nn::WeightedVertices>(sort_k_, nn::Activation::ReLU, rng);
      flat_dim = C;
    }
  } else {
    // AdaptiveMaxPooling path (§III-C): Conv2D over Z^{1:h} viewed as a
    // one-channel image, adaptive max pool to a fixed grid, then a
    // VGG-inspired Conv2D stack.
    const std::size_t g = cfg_.adaptive_grid();
    const std::size_t f = cfg_.conv2d_channels;
    pre_pool_conv_ = std::make_unique<nn::Conv2D>(1, f, 3, 3, 1, rng);
    pre_pool_act_ = std::make_unique<nn::ReLU>();
    adaptive_pool_ = std::make_unique<nn::AdaptiveMaxPool2D>(g, g);
    head_.emplace<nn::Conv2D>(f, 2 * f, 3, 3, 1, rng);
    head_.emplace<nn::ReLU>();
    head_.emplace<nn::Conv2D>(2 * f, 2 * f, 3, 3, 1, rng);
    head_.emplace<nn::ReLU>();
    flat_dim = 2 * f * g * g;
    head_.emplace<nn::Flatten>();
  }

  head_.emplace<nn::Linear>(flat_dim, cfg_.hidden_dim, rng);
  head_.emplace<nn::ReLU>();
  head_.emplace<nn::Dropout>(cfg_.dropout_rate, rng);
  head_.emplace<nn::Linear>(cfg_.hidden_dim, cfg_.num_classes, rng);
  head_.emplace<nn::LogSoftmax>();
}

nn::Tensor DgcnnModel::preprocess(const acfg::Acfg& sample) const {
  nn::Tensor x = sample.attributes;
  if (cfg_.log1p_attributes) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::log1p(x[i]);
  }
  return x;
}

namespace {

/// RAII clear for the concurrent-forward guard flag (exception safe).
struct ForwardGuardClear {
  std::atomic<bool>* flag;
  ~ForwardGuardClear() { flag->store(false, std::memory_order_release); }
};

}  // namespace

nn::Tensor DgcnnModel::forward(const acfg::Acfg& sample) {
#ifdef MAGIC_CHECKED_BUILD
  // One instance, one thread: concurrent callers must clone replicas
  // (core::ReplicaPool). If the flag was already set another thread owns
  // it, so throw *without* installing the clearing guard.
  const bool already_running = in_forward_.exchange(true, std::memory_order_acq_rel);
  MAGIC_CHECK(!already_running,
              "DgcnnModel::forward: concurrent forward on one model instance; "
              "use one replica per thread (core::ReplicaPool)");
  ForwardGuardClear forward_guard{&in_forward_};
#endif
  if (sample.num_vertices() == 0) {
    throw std::invalid_argument("DgcnnModel::forward: empty graph");
  }
  // The attribute matrix must be (n x input_channels) with one row per
  // vertex; the contract names the layer on mismatch, the plain throws
  // below keep invalid input hard errors in unchecked builds too.
  MAGIC_SHAPE_CONTRACT("DgcnnModel::forward", sample.attributes,
                       nn::shape::eq(sample.num_vertices()),
                       nn::shape::eq(cfg_.input_channels));
  if (sample.num_channels() != cfg_.input_channels) {
    throw std::invalid_argument("DgcnnModel::forward: channel mismatch");
  }
  last_prop_ = std::make_unique<tensor::SparseMatrix>(
      cfg_.normalize_propagation
          ? sample.propagation_operator()
          : tensor::SparseMatrix::augmented_adjacency(sample.out_edges));
  const nn::Tensor x = preprocess(sample);
  nn::Tensor z = stack_.forward(*last_prop_, x);
  stack_out_shape_ = z.shape();

  if (cfg_.pooling == PoolingType::SortPooling) {
    return head_.forward(sort_pool_->forward(z));
  }
  const std::size_t n = z.dim(0), c = z.dim(1);
  nn::Tensor img = z.reshape({1, n, c});
  nn::Tensor act = pre_pool_act_->forward(pre_pool_conv_->forward(img));
  nn::Tensor pooled = adaptive_pool_->forward(act);
  pool_out_shape_ = pooled.shape();
  return head_.forward(pooled);
}

nn::Tensor DgcnnModel::predict_batch(const GraphBatch& batch) {
#ifdef MAGIC_CHECKED_BUILD
  // Same exclusivity contract as forward(): one instance, one thread.
  const bool already_running = in_forward_.exchange(true, std::memory_order_acq_rel);
  MAGIC_CHECK(!already_running,
              "DgcnnModel::predict_batch: concurrent entry on one model "
              "instance; use one replica per thread (core::ReplicaPool)");
  ForwardGuardClear forward_guard{&in_forward_};
#endif
  if (head_.grad_enabled()) {
    throw std::logic_error(
        "DgcnnModel::predict_batch: inference-only; call set_training(false) "
        "first (there is no batched backward)");
  }
  if (batch.num_channels() != cfg_.input_channels) {
    throw std::invalid_argument("DgcnnModel::predict_batch: channel mismatch");
  }
  // Packed preprocessing: log1p is elementwise, so scaling the concatenated
  // attribute matrix equals scaling each graph.
  nn::Tensor x = batch.attributes();
  if (cfg_.log1p_attributes) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::log1p(x[i]);
  }
  // One block-diagonal spmm per graph-conv layer covers all N graphs.
  const tensor::SparseMatrix prop =
      batch.propagation_operator(cfg_.normalize_propagation);
  nn::Tensor z = stack_.forward(prop, x);

  if (cfg_.pooling == PoolingType::SortPooling) {
    // Per-segment pooling into (N x k x C), then one fused head pass.
    return head_.forward_batch(sort_pool_->forward_packed(z, batch.offsets()));
  }
  // AdaptivePooling path: the pre-pool Conv2D sees a variable-height
  // (1 x n_g x C) image per graph, so that stage loops per segment; the
  // pooled (f x g x g) maps are fixed-size and batch from there on.
  const std::size_t c = z.dim(1);
  const std::size_t N = batch.size();
  const std::size_t f = cfg_.conv2d_channels;
  const std::size_t g = cfg_.adaptive_grid();
  nn::Tensor pooled({N, f, g, g});
  for (std::size_t i = 0; i < N; ++i) {
    const std::size_t base = batch.offset(i);
    const std::size_t n = batch.vertices(i);
    nn::Tensor img({1, n, c});
    const double* src = z.data() + base * c;
    for (std::size_t j = 0; j < n * c; ++j) img[j] = src[j];
    nn::Tensor p = adaptive_pool_->forward(
        pre_pool_act_->forward(pre_pool_conv_->forward(img)));
    double* dst = pooled.data() + i * f * g * g;
    for (std::size_t j = 0; j < f * g * g; ++j) dst[j] = p[j];
  }
  return head_.forward_batch(pooled);
}

void DgcnnModel::backward(const nn::Tensor& grad_log_probs) {
  nn::Tensor g = head_.backward(grad_log_probs);
  if (cfg_.pooling == PoolingType::SortPooling) {
    g = sort_pool_->backward(g);
  } else {
    g = adaptive_pool_->backward(g);
    g = pre_pool_conv_->backward(pre_pool_act_->backward(g));
    g = g.reshape(stack_out_shape_);
  }
  last_input_grad_ = stack_.backward(g);
}

std::vector<nn::Parameter*> DgcnnModel::parameters() {
  std::vector<nn::Parameter*> params = stack_.parameters();
  if (pre_pool_conv_) {
    for (auto* p : pre_pool_conv_->parameters()) params.push_back(p);
  }
  for (auto* p : head_.parameters()) params.push_back(p);
  return params;
}

void DgcnnModel::set_training(bool training) {
  head_.set_training(training);
  if (pre_pool_act_) pre_pool_act_->set_training(training);
  set_grad_enabled(training);
}

void DgcnnModel::set_grad_enabled(bool enabled) {
  stack_.set_grad_enabled(enabled);
  if (sort_pool_) sort_pool_->set_grad_enabled(enabled);
  if (pre_pool_conv_) pre_pool_conv_->set_grad_enabled(enabled);
  if (pre_pool_act_) pre_pool_act_->set_grad_enabled(enabled);
  if (adaptive_pool_) adaptive_pool_->set_grad_enabled(enabled);
  head_.set_grad_enabled(enabled);
}

void DgcnnModel::reseed_rng(std::uint64_t seed) { head_.reseed_rng(seed); }

std::size_t DgcnnModel::parameter_count() {
  std::size_t total = 0;
  for (auto* p : parameters()) total += p->value.size();
  return total;
}

}  // namespace magic::core
