#include "magic/cross_validation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/mutex.hpp"

namespace magic::core {

CvResult cross_validate(const DgcnnConfig& config, const data::Dataset& dataset,
                        const CvOptions& options, util::ThreadPool& pool) {
  // Guard the two degenerate configurations before any work: folds < 2
  // leaves nothing to hold out (and folds == 0 divides by zero in every
  // per-fold average below); epochs == 0 trains nothing and would take
  // min_element of the empty mean_epoch_val_loss -- undefined behaviour.
  if (options.folds < 2) {
    throw std::invalid_argument("cross_validate: folds must be >= 2, got " +
                                std::to_string(options.folds));
  }
  if (options.train.epochs == 0) {
    throw std::invalid_argument("cross_validate: train.epochs must be >= 1");
  }
  util::Rng rng(options.seed);
  const auto splits = data::stratified_k_fold(dataset, options.folds, rng);

  CvResult result(dataset.num_families());
  result.fold_loss.assign(options.folds, 0.0);
  result.fold_accuracy.assign(options.folds, 0.0);
  std::vector<std::vector<double>> epoch_losses(options.folds);
  // The accumulators above are locals, so MAGIC_GUARDED_BY cannot name them.
  // magic-lint: guards(the captured per-fold accumulators)
  util::Mutex merge_mutex;

  std::vector<TrainResult> histories(options.folds);
  auto run_fold_with_history = [&](std::size_t f) {
    TrainOptions train = options.train;
    train.seed = options.seed * 1000003ULL + f;
    MagicClassifier clf(config, train, train.seed ^ 0x5bd1e995ULL);
    TrainResult tr = clf.fit_indices(dataset, splits[f].train, splits[f].validation);
    EvalResult eval = clf.evaluate(dataset, splits[f].validation);

    util::MutexLock lock(merge_mutex);
    histories[f] = std::move(tr);
    result.fold_loss[f] = eval.mean_log_loss;
    result.fold_accuracy[f] = eval.confusion.accuracy();
    for (std::size_t i = 0; i < splits[f].validation.size(); ++i) {
      std::size_t pred = 0;
      const auto& row = eval.probabilities[i];
      for (std::size_t c = 1; c < row.size(); ++c) {
        if (row[c] > row[pred]) pred = c;
      }
      result.confusion.add(eval.labels[i], pred);
    }
  };

  if (options.parallel_folds && pool.size() > 1) {
    pool.parallel_for(options.folds, run_fold_with_history);
  } else {
    for (std::size_t f = 0; f < options.folds; ++f) run_fold_with_history(f);
  }

  // Average the per-epoch validation losses over folds; min is the score.
  const std::size_t epochs = options.train.epochs;
  result.mean_epoch_val_loss.assign(epochs, 0.0);
  for (std::size_t e = 0; e < epochs; ++e) {
    double total = 0.0;
    for (std::size_t f = 0; f < options.folds; ++f) {
      total += e < histories[f].history.size() ? histories[f].history[e].validation_loss
                                               : histories[f].best_validation_loss;
    }
    result.mean_epoch_val_loss[e] = total / static_cast<double>(options.folds);
  }
  result.score = *std::min_element(result.mean_epoch_val_loss.begin(),
                                   result.mean_epoch_val_loss.end());

  double loss_total = 0.0;
  for (double l : result.fold_loss) loss_total += l;
  result.mean_log_loss = loss_total / static_cast<double>(options.folds);
  result.accuracy = result.confusion.accuracy();
  return result;
}

}  // namespace magic::core
