#include "magic/hyperparam.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace magic::core {
namespace {

const std::vector<std::vector<std::size_t>>& conv_size_options() {
  static const std::vector<std::vector<std::size_t>> options = {
      {32, 32, 32, 1},     // only for sort pooling (Table II footnote 1)
      {32, 32, 32, 32},
      {128, 64, 32, 32},
  };
  return options;
}

constexpr double kRatios[] = {0.2, 0.64};
constexpr double kDropouts[] = {0.1, 0.5};
constexpr std::size_t kBatchSizes[] = {10, 40};
constexpr double kWeightDecays[] = {0.0001, 0.0005};
constexpr std::size_t kConv2dChannels[] = {16, 32};
constexpr std::size_t kConv1dKernels[] = {5, 7};

}  // namespace

std::string GridPoint::describe() const {
  std::ostringstream oss;
  oss << config.describe() << " bs=" << batch_size << " l2=" << weight_decay;
  return oss.str();
}

std::vector<GridPoint> full_table2_grid() {
  std::vector<GridPoint> grid;
  auto push_common = [&grid](DgcnnConfig cfg) {
    for (double dropout : kDropouts) {
      for (std::size_t batch : kBatchSizes) {
        for (double l2 : kWeightDecays) {
          GridPoint p;
          p.config = cfg;
          p.config.dropout_rate = dropout;
          p.batch_size = batch;
          p.weight_decay = l2;
          grid.push_back(p);
        }
      }
    }
  };

  for (double ratio : kRatios) {
    // Adaptive pooling: conv sizes exclude (32,32,32,1); 2D channels vary.
    // 2 ratio x 2 conv x 2 ch2d x 2 dropout x 2 batch x 2 l2 = 64 models.
    for (std::size_t cs = 1; cs < conv_size_options().size(); ++cs) {
      for (std::size_t ch2d : kConv2dChannels) {
        DgcnnConfig cfg;
        cfg.pooling = PoolingType::AdaptivePooling;
        cfg.pooling_ratio = ratio;
        cfg.graph_conv_channels = conv_size_options()[cs];
        cfg.conv2d_channels = ch2d;
        push_common(cfg);
      }
    }
    // Sort pooling + Conv1D: all 3 conv sizes, channel pair fixed (16,32),
    // kernel in {5,7}. 2 x 3 x 2 x 2 x 2 x 2 = 96 models.
    for (const auto& conv : conv_size_options()) {
      for (std::size_t kernel : kConv1dKernels) {
        DgcnnConfig cfg;
        cfg.pooling = PoolingType::SortPooling;
        cfg.remaining = RemainingLayer::Conv1D;
        cfg.pooling_ratio = ratio;
        cfg.graph_conv_channels = conv;
        cfg.conv1d_kernel = kernel;
        push_common(cfg);
      }
    }
    // Sort pooling + WeightedVertices: 2 ratio x 3 conv x 2 dropout x
    // 2 batch x 2 l2 = 48 models.
    for (const auto& conv : conv_size_options()) {
      DgcnnConfig cfg;
      cfg.pooling = PoolingType::SortPooling;
      cfg.remaining = RemainingLayer::WeightedVertices;
      cfg.pooling_ratio = ratio;
      cfg.graph_conv_channels = conv;
      push_common(cfg);
    }
  }
  return grid;
}

std::vector<GridPoint> reduced_grid() {
  std::vector<GridPoint> grid;
  auto add = [&grid](PoolingType pool, RemainingLayer rem, double ratio,
                     std::vector<std::size_t> conv, double dropout,
                     std::size_t batch, double l2,
                     nn::GraphConvOperator op = nn::GraphConvOperator::Paper) {
    GridPoint p;
    p.config.pooling = pool;
    p.config.remaining = rem;
    p.config.pooling_ratio = ratio;
    p.config.graph_conv_channels = std::move(conv);
    p.config.dropout_rate = dropout;
    p.config.graph_conv_op = op;
    p.batch_size = batch;
    p.weight_decay = l2;
    grid.push_back(p);
  };
  // One representative per structural family, covering both ratios and the
  // Table II best-model settings for both datasets.
  add(PoolingType::AdaptivePooling, RemainingLayer::Conv1D, 0.64,
      {128, 64, 32, 32}, 0.1, 10, 0.0001);  // best MSKCFG model (Table II)
  add(PoolingType::AdaptivePooling, RemainingLayer::Conv1D, 0.2,
      {32, 32, 32, 32}, 0.5, 40, 0.0005);   // best YANCFG model (Table II)
  add(PoolingType::SortPooling, RemainingLayer::Conv1D, 0.64,
      {32, 32, 32, 32}, 0.1, 10, 0.0001);
  add(PoolingType::SortPooling, RemainingLayer::Conv1D, 0.2,
      {32, 32, 32, 1}, 0.5, 10, 0.0001);
  add(PoolingType::SortPooling, RemainingLayer::WeightedVertices, 0.64,
      {32, 32, 32, 32}, 0.1, 10, 0.0001);
  add(PoolingType::SortPooling, RemainingLayer::WeightedVertices, 0.2,
      {128, 64, 32, 32}, 0.5, 40, 0.0001);
  // Operator axis (Table II is Paper-only; these probe the zoo on the
  // best-YANCFG head so one sweep compares operators like-for-like).
  add(PoolingType::AdaptivePooling, RemainingLayer::Conv1D, 0.2,
      {32, 32, 32, 32}, 0.5, 40, 0.0005, nn::GraphConvOperator::Sage);
  add(PoolingType::AdaptivePooling, RemainingLayer::Conv1D, 0.2,
      {32, 32, 32, 32}, 0.5, 40, 0.0005, nn::GraphConvOperator::Tag);
  return grid;
}

SearchResult grid_search(const std::vector<GridPoint>& grid,
                         const data::Dataset& dataset, CvOptions options,
                         util::ThreadPool& pool) {
  SearchResult result;
  result.entries.reserve(grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    CvOptions per_point = options;
    per_point.train.batch_size = grid[g].batch_size;
    per_point.train.weight_decay = grid[g].weight_decay;
    DgcnnConfig cfg = grid[g].config;
    cfg.num_classes = dataset.num_families();
    MAGIC_LOG_INFO("grid " << (g + 1) << "/" << grid.size() << ": "
                           << grid[g].describe());
    CvResult cv = cross_validate(cfg, dataset, per_point, pool);
    SearchEntry entry;
    entry.point = grid[g];
    entry.score = cv.score;
    entry.accuracy = cv.accuracy;
    entry.mean_log_loss = cv.mean_log_loss;
    result.entries.push_back(std::move(entry));
  }
  std::sort(result.entries.begin(), result.entries.end(),
            [](const SearchEntry& a, const SearchEntry& b) { return a.score < b.score; });
  return result;
}

}  // namespace magic::core
