#pragma once
// InferenceServer: the long-lived, thread-safe scoring core of magic::serve.
//
// The paper's §VII deployment story ("MAGIC would be deployed on a cloud...
// users upload suspicious files... classified on demand") needs more than a
// one-shot predict(): a resident service that owns a trained model, leases
// a replica per micro-batch (the DGCNN forward pass is stateful, see
// DgcnnModel::forward), and pushes every request through one bounded queue:
//
//   submit() --try_push--> BoundedQueue --pop--> worker micro-batcher
//                 |                                   |
//            full? reject                  flush on max_batch or
//            (backpressure)                batch_window deadline
//                                                     |
//                                          lease replica (RAII, per batch),
//                                          deadline-expired items shed, then
//                                          ONE packed forward for the rest
//                                          (per-item fallback / PerSample
//                                          engine), PendingVerdict resolved
//
// Dynamic micro-batching: a worker that pops one request keeps collecting
// until it has `max_batch` items or `batch_window` has elapsed, then scores
// the whole batch on its replica. Under load batches fill instantly (queue
// synchronization and stats amortize across the batch); when idle a lone
// request waits at most one batch window.
//
// Shutdown: stop(drain=true) — the SIGTERM path — stops admission and lets
// workers finish every queued request; stop(drain=false) resolves queued
// requests as ShuttingDown immediately. Every PendingVerdict is resolved
// before stop() returns, so no waiter can hang.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "acfg/acfg.hpp"
#include "cache/verdict_cache.hpp"
#include "magic/classifier.hpp"
#include "magic/replica_pool.hpp"
#include "serve/stats.hpp"
#include "serve/verdict.hpp"
#include "util/bounded_queue.hpp"
#include "util/join_thread.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::serve {

/// Tuning knobs of one InferenceServer.
struct ServeConfig {
  /// Worker threads == model replicas.
  std::size_t workers = 4;
  /// Bounded request queue: submissions beyond this reject immediately.
  std::size_t queue_capacity = 256;
  /// Micro-batch flush threshold (1 disables batching).
  std::size_t max_batch = 8;
  /// Micro-batch flush deadline: how long a worker waits for more requests
  /// after the first one (0 disables the wait, i.e. flush immediately).
  std::chrono::microseconds batch_window{2000};
  /// Default per-request deadline; 0 = none. A request whose deadline has
  /// passed when a worker picks it up resolves as DeadlineExpired without
  /// being scored (load shedding).
  std::chrono::milliseconds default_deadline{0};
  /// How a flushed micro-batch is scored. Packed (default): all live
  /// requests of the batch go through ONE fused block-diagonal forward on
  /// the leased replica (core::GraphBatch), falling back to per-item
  /// scoring if the packed pass throws; PerSample: one forward per item.
  core::PredictEngine engine = core::PredictEngine::Packed;
  /// Byte budget of the content-addressed verdict cache; 0 disables it.
  /// The cache sits *ahead of* the micro-batcher: submit() hashes the ACFG
  /// and a hit resolves the handle immediately, never touching the queue,
  /// a replica lease or a forward pass. Misses are scored normally and
  /// inserted on Ok completion.
  std::size_t cache_bytes = 0;
  /// LRU shard count of the verdict cache (ignored when cache_bytes == 0).
  std::size_t cache_shards = 8;
};

/// Concurrent scoring service over a fitted MagicClassifier.
class InferenceServer {
 public:
  /// Snapshots `model`'s weights (one replica per worker, cloned once) and
  /// starts the worker threads. Throws std::logic_error when `model` is not
  /// fitted. The source classifier is not referenced after construction.
  explicit InferenceServer(core::MagicClassifier& model, ServeConfig config = {});

  /// Graceful: equivalent to stop(/*drain=*/true).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one pre-extracted ACFG. Never blocks: on a full queue or a
  /// draining server the returned handle is already resolved with
  /// RejectedQueueFull / ShuttingDown. `deadline` overrides the config
  /// default (0 = no deadline).
  PendingVerdict submit(acfg::Acfg sample,
                        std::chrono::milliseconds deadline = std::chrono::milliseconds{-1});

  /// Full-pipeline variant: extracts listing -> CFG -> ACFG on the calling
  /// thread (producers parallelize extraction), then enqueues. Extraction
  /// failures resolve the handle with VerdictStatus::Error.
  PendingVerdict submit_listing(std::string_view listing,
                                std::chrono::milliseconds deadline = std::chrono::milliseconds{-1});

  /// Synchronous convenience: submit + get.
  Verdict scan(acfg::Acfg sample);
  Verdict scan_listing(std::string_view listing);

  /// Consistent stats snapshot (callable from any thread, any time).
  ServerStats stats() const;

  const std::vector<std::string>& family_names() const noexcept { return family_names_; }
  const ServeConfig& config() const noexcept { return config_; }

  /// Stops the server (idempotent, callable concurrently). drain=true
  /// scores everything already queued; drain=false resolves queued requests
  /// as ShuttingDown. Either way admission stops first and all outstanding
  /// PendingVerdicts are resolved before return.
  void stop(bool drain = true) MAGIC_EXCLUDES(stop_mutex_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Queued {
    acfg::Acfg sample;
    Clock::time_point submitted_at{};
    Clock::time_point deadline{Clock::time_point::max()};
    std::shared_ptr<detail::VerdictSlot> slot;
    /// Content hash computed by submit() when the cache is on, so the
    /// completion path can insert without rehashing.
    cache::CacheKey cache_key{};
    bool cacheable = false;
  };

  void worker_loop(std::size_t worker_index);
  /// Stores an Ok prediction under the request's content hash (no-op when
  /// the cache is off or the request was not hashed).
  void cache_store(const Queued& request, const core::Prediction& prediction);
  /// Scores one flushed micro-batch: leases a replica for exactly this
  /// batch (RAII — released even when scoring throws), resolves expired
  /// requests, then runs the configured engine over the live ones.
  void execute_batch(std::vector<Queued>& batch);
  void process(Queued& request, core::MagicClassifier& replica);
  static double elapsed_ms(Clock::time_point since);

  ServeConfig config_;
  std::vector<std::string> family_names_;
  /// Verdict cache (null when config_.cache_bytes == 0). Owned per server:
  /// verdicts are per-model, and this server's replicas never change.
  std::unique_ptr<cache::VerdictCache> cache_;
  std::shared_ptr<core::ReplicaPool> replicas_;
  util::BoundedQueue<Queued> queue_;
  StatsCollector stats_;
  std::atomic<bool> accepting_{true};
  std::vector<util::JoinThread> workers_;
  /// stop_mutex_ only arbitrates the stop() winner; the workers themselves
  /// are stopped through queue_.close() and joined below it.
  util::Mutex stop_mutex_;
  bool stopped_ MAGIC_GUARDED_BY(stop_mutex_) = false;
};

}  // namespace magic::serve
