#pragma once
// Serving-side observability: counters, batch-size histogram and latency
// percentiles, exported as a consistent ServerStats snapshot (the `stats`
// wire command and the throughput bench both read it).
//
// The collector is built on the magic::obs primitives: counters are
// obs::Counter (relaxed atomics), the latency distribution is an
// obs::HistogramCell. Each InferenceServer keeps its own instances so its
// snapshot() is exact per-server; while obs::enabled() every event is
// additionally mirrored into the process-wide MetricsRegistry under
// "serve.*" (counters accumulate across servers there), which is what puts
// serve latency quantiles into MetricsRegistry::snapshot_json() for
// `magicd stats` and `--metrics-out`.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/verdict_cache.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::serve {

/// Point-in-time view of an InferenceServer's counters and distributions.
struct ServerStats {
  std::uint64_t submitted = 0;        ///< all submit()/scan() entries
  std::uint64_t completed = 0;        ///< resolved Ok
  std::uint64_t rejected_full = 0;    ///< admission-control rejects
  std::uint64_t rejected_shutdown = 0;///< submitted to / queued in a draining server
  std::uint64_t expired = 0;          ///< per-request deadline passed
  std::uint64_t failed = 0;           ///< extraction/scoring error
  std::uint64_t batches = 0;          ///< micro-batches executed
  std::uint64_t packed_batches = 0;   ///< micro-batches scored as ONE packed forward
  std::size_t queue_depth = 0;        ///< requests queued right now
  std::size_t workers = 0;

  /// batch_size_counts[s] = number of micro-batches of size s. Index 0 is
  /// always 0 (a micro-batch has at least one request) but is emitted and
  /// averaged like every other slot, so to_json() and mean_batch_size()
  /// always agree on the same array.
  std::vector<std::uint64_t> batch_size_counts;

  /// Verdict-cache counters (all-zero with enabled=false when the server
  /// runs cache-less). Filled by InferenceServer::stats(), not the
  /// collector: the cache keeps its own counters.
  cache::CacheStats cache;

  /// End-to-end latency of Ok verdicts (submit -> resolution).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;

  double mean_batch_size() const noexcept;
  /// Single-line JSON rendering (the `stats` wire command's payload).
  /// Emits batch_size_counts in full, from index 0.
  std::string to_json() const;
};

/// Event-loop counters of the socket daemon's reactor (serve/reactor.hpp).
/// Owned and mutated by the loop thread only; spliced into the `stats`
/// wire payload as the "reactor" block.
struct ReactorStats {
  std::uint64_t accepted = 0;      ///< connections accepted
  std::uint64_t closed = 0;        ///< connections closed (any reason)
  std::uint64_t active = 0;        ///< open connections at snapshot time
  std::uint64_t requests = 0;      ///< scan requests dispatched to workers
  std::uint64_t read_pauses = 0;   ///< backpressure EPOLLIN pauses
  std::uint64_t write_stalls = 0;  ///< connections dropped for write stall
  std::uint64_t wakeups = 0;       ///< eventfd wakeups delivered
  std::uint64_t accept_parks = 0;  ///< listener parked on fd exhaustion

  /// Single-line JSON rendering.
  std::string to_json() const;
};

/// Thread-safe collector behind ServerStats. Counter bumps are lock-free;
/// the latency histogram and the batch-size table each take one mutex per
/// batch/verdict (amortized across the whole micro-batch).
class StatsCollector {
 public:
  explicit StatsCollector(std::size_t max_batch);

  void on_submitted() noexcept { bump(submitted_, global_.submitted); }
  void on_rejected_full() noexcept { bump(rejected_full_, global_.rejected_full); }
  void on_rejected_shutdown() noexcept {
    bump(rejected_shutdown_, global_.rejected_shutdown);
  }
  void on_expired() noexcept { bump(expired_, global_.expired); }
  void on_failed() noexcept { bump(failed_, global_.failed); }

  void on_batch(std::size_t batch_size) MAGIC_EXCLUDES(batch_mutex_);
  void on_packed_batch() noexcept { bump(packed_batches_, global_.packed_batches); }
  void on_completed(double latency_ms);

  ServerStats snapshot(std::size_t queue_depth, std::size_t workers) const
      MAGIC_EXCLUDES(batch_mutex_);

 private:
  /// Cached handles into the process-wide registry ("serve.*" names);
  /// only written while obs::enabled().
  struct GlobalMirror {
    obs::Counter* submitted;
    obs::Counter* completed;
    obs::Counter* rejected_full;
    obs::Counter* rejected_shutdown;
    obs::Counter* expired;
    obs::Counter* failed;
    obs::Counter* batches;
    obs::Counter* packed_batches;
    obs::HistogramCell* latency_ms;
  };

  static void bump(obs::Counter& local, obs::Counter* mirror) noexcept {
    local.add();
    if (obs::enabled()) mirror->add();
  }

  obs::Counter submitted_;
  obs::Counter completed_;
  obs::Counter rejected_full_;
  obs::Counter rejected_shutdown_;
  obs::Counter expired_;
  obs::Counter failed_;
  obs::Counter batches_;
  obs::Counter packed_batches_;
  obs::HistogramCell latency_ms_;

  /// Guards the one piece of non-atomic state: the batch-size table (it
  /// resizes, so it cannot be a fixed array of counters). Counters and the
  /// latency HistogramCell synchronize themselves; snapshot() reads them
  /// without this mutex, which is why a snapshot is "consistent per field,
  /// not cross-field" (each counter is exact, their relative order is not
  /// pinned).
  mutable util::Mutex batch_mutex_;
  std::vector<std::uint64_t> batch_size_counts_ MAGIC_GUARDED_BY(batch_mutex_);

  GlobalMirror global_;
};

}  // namespace magic::serve
