#pragma once
// Serving-side observability: counters, batch-size histogram and latency
// percentiles, exported as a consistent ServerStats snapshot (the `stats`
// wire command and the throughput bench both read it).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace magic::serve {

/// Point-in-time view of an InferenceServer's counters and distributions.
struct ServerStats {
  std::uint64_t submitted = 0;        ///< all submit()/scan() entries
  std::uint64_t completed = 0;        ///< resolved Ok
  std::uint64_t rejected_full = 0;    ///< admission-control rejects
  std::uint64_t rejected_shutdown = 0;///< submitted to / queued in a draining server
  std::uint64_t expired = 0;          ///< per-request deadline passed
  std::uint64_t failed = 0;           ///< extraction/scoring error
  std::uint64_t batches = 0;          ///< micro-batches executed
  std::size_t queue_depth = 0;        ///< requests queued right now
  std::size_t workers = 0;

  /// batch_size_counts[s] = number of micro-batches of size s
  /// (index 0 unused; size max_batch is the last slot).
  std::vector<std::uint64_t> batch_size_counts;

  /// End-to-end latency of Ok verdicts (submit -> resolution).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;

  double mean_batch_size() const noexcept;
  /// Single-line JSON rendering (the `stats` wire command's payload).
  std::string to_json() const;
};

/// Thread-safe collector behind ServerStats. Counter bumps are lock-free;
/// the histograms share one mutex (they are touched once per batch/verdict,
/// which is amortized across the whole micro-batch).
class StatsCollector {
 public:
  explicit StatsCollector(std::size_t max_batch);

  void on_submitted() noexcept { submitted_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_full() noexcept { rejected_full_.fetch_add(1, std::memory_order_relaxed); }
  void on_rejected_shutdown() noexcept { rejected_shutdown_.fetch_add(1, std::memory_order_relaxed); }
  void on_expired() noexcept { expired_.fetch_add(1, std::memory_order_relaxed); }
  void on_failed() noexcept { failed_.fetch_add(1, std::memory_order_relaxed); }

  void on_batch(std::size_t batch_size);
  void on_completed(double latency_ms);

  ServerStats snapshot(std::size_t queue_depth, std::size_t workers) const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};

  mutable std::mutex mutex_;
  util::Histogram latency_ms_;
  std::vector<std::uint64_t> batch_size_counts_;
};

}  // namespace magic::serve
