#pragma once
// ScanService: what a magicd front-end (the epoll reactor, the stdio
// protocol loop) needs from the scoring backend, abstracted so the same
// connection machinery serves either a single InferenceServer or a full
// versioned ModelRegistry.
//
// The front-ends only ever (a) submit scan requests, (b) render a stats
// payload, (c) forward control commands (`reload`, `shadow`) and (d) drain
// on shutdown. Keeping the surface this small is what lets the registry be
// hot-swapped underneath live connections: a front-end never holds a model
// or server pointer, only PendingVerdict handles, which stay valid across
// any number of version swaps.

#include <string>
#include <string_view>

#include "serve/server.hpp"
#include "serve/verdict.hpp"
#include "serve/wire.hpp"

namespace magic::serve {

/// Backend interface of the daemon front-ends. Implementations must be
/// safe to call from multiple threads (the reactor submits from its worker
/// pool while the stats path renders from the event loop).
class ScanService {
 public:
  virtual ~ScanService() = default;

  /// Submits one raw assembly listing for scanning. `version` is the
  /// per-request model-version override (empty = default). Never blocks on
  /// scoring: errors (including an unknown version) come back as an
  /// already-resolved handle with VerdictStatus::Error.
  virtual PendingVerdict submit_listing(std::string_view listing,
                                        const std::string& version) = 0;

  /// Full `stats` wire payload: one JSON object per call. Rendered at
  /// response-flush time so it reflects the requests ordered before it.
  virtual std::string stats_json() = 0;

  /// Executes one control command (Reload / Shadow) and returns the
  /// single-line JSON response. May block (a reload materializes a model).
  virtual std::string control(const wire::Request& request) = 0;

  /// Graceful shutdown: stop admission and score everything in flight.
  /// Every outstanding PendingVerdict is resolved before this returns.
  virtual void drain() = 0;
};

/// ScanService over one InferenceServer — the registry-less daemon (and the
/// compatibility surface for `run_unix_daemon(InferenceServer&, ...)`).
/// Version overrides and control commands report errors: there is only one
/// model and it cannot change.
class ServerScanService final : public ScanService {
 public:
  explicit ServerScanService(InferenceServer& server) : server_(server) {}

  PendingVerdict submit_listing(std::string_view listing,
                                const std::string& version) override;
  std::string stats_json() override;
  std::string control(const wire::Request& request) override;
  void drain() override { server_.stop(/*drain=*/true); }

 private:
  InferenceServer& server_;
};

/// Shared payload tail of every stats reply: the SIMD dispatch level the
/// math kernels run at plus the process-wide obs registry snapshot.
/// Returned as `,"simd_level":"...","obs":{...}` for splicing into a
/// surrounding JSON object.
std::string stats_payload_suffix();

/// Renders a control-command error as a single-line JSON response.
std::string control_error_line(const std::string& message);

/// Reads a whole file into `out`; false (with `out` untouched) when the
/// file cannot be opened. Shared by the protocol loops' `path` requests.
bool read_file_to_string(const std::string& path, std::string& out);

}  // namespace magic::serve
