#pragma once
// Verdict and PendingVerdict: the result types of the serving layer.
//
// A submitted scan resolves to exactly one Verdict — a prediction, or an
// explicit status explaining why no prediction was made (queue full,
// deadline expired, server draining, pipeline error). PendingVerdict is the
// future-like handle: copyable, waitable, and always eventually fulfilled
// (the server resolves every outstanding slot before its workers exit, so
// get() can never hang on a stopped server).

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "magic/classifier.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::serve {

/// Terminal state of one scan request.
enum class VerdictStatus {
  Ok,                 ///< prediction is valid
  RejectedQueueFull,  ///< admission control: the bounded queue was full
  DeadlineExpired,    ///< the per-request deadline passed before scoring
  ShuttingDown,       ///< submitted to (or queued in) a draining server
  Error,              ///< extraction/scoring threw; see `error`
};

const char* to_string(VerdictStatus status) noexcept;

/// The resolved outcome of one scan request.
struct Verdict {
  VerdictStatus status = VerdictStatus::Error;
  core::Prediction prediction;  ///< valid only when status == Ok
  double latency_ms = 0.0;      ///< submit -> resolution wall time
  std::string error;            ///< diagnostic for status == Error

  bool ok() const noexcept { return status == VerdictStatus::Ok; }
};

namespace detail {

/// Shared one-shot slot between a PendingVerdict and the server.
class VerdictSlot {
 public:
  /// Resolves the slot (first call wins; later calls are ignored so a
  /// shutdown sweep cannot clobber a worker's result). Registered
  /// completion callbacks run exactly once each, in registration order,
  /// outside the slot mutex.
  void fulfil(Verdict verdict) MAGIC_EXCLUDES(mutex_) {
    std::vector<std::function<void()>> callbacks;
    {
      util::MutexLock lock(mutex_);
      if (done_) return;
      verdict_ = std::move(verdict);
      done_ = true;
      callbacks.swap(callbacks_);
    }
    cv_.notify_all();
    for (auto& callback : callbacks) callback();
  }

  /// Registers a completion hook: `fn` runs when the slot resolves (on the
  /// resolving thread), or immediately on the calling thread when the slot
  /// is already resolved. Multiple hooks may be registered — the event
  /// loop's wake hook and the registry's shadow-agreement joiner subscribe
  /// to the same verdict. Hooks captured in the slot are dropped when they
  /// run, so a hook capturing the PendingVerdict itself does not leak: the
  /// server resolves every slot, which breaks the cycle.
  void on_ready(std::function<void()> fn) MAGIC_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (!done_) {
        callbacks_.push_back(std::move(fn));
        return;
      }
    }
    fn();
  }

  bool ready() const MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return done_;
  }

  Verdict wait() const MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (!done_) cv_.wait(lock);
    return verdict_;
  }

  template <typename Rep, typename Period>
  bool wait_for(const std::chrono::duration<Rep, Period>& timeout) const
      MAGIC_EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::MutexLock lock(mutex_);
    while (!done_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        return done_;  // final look under the lock
      }
    }
    return true;
  }

 private:
  mutable util::Mutex mutex_;
  mutable util::CondVar cv_;
  bool done_ MAGIC_GUARDED_BY(mutex_) = false;
  Verdict verdict_ MAGIC_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> callbacks_ MAGIC_GUARDED_BY(mutex_);
};

}  // namespace detail

/// Future-like handle to an in-flight scan. Copyable; all copies observe
/// the same resolution. A default-constructed handle is invalid.
class PendingVerdict {
 public:
  PendingVerdict() = default;

  /// An already-resolved handle. The serving layer uses this for requests
  /// that terminate before reaching any server (unknown model version,
  /// registry-less daemon asked for a versioned scan, ...).
  static PendingVerdict resolved(Verdict verdict) {
    auto slot = std::make_shared<detail::VerdictSlot>();
    slot->fulfil(std::move(verdict));
    return PendingVerdict{std::move(slot)};
  }

  bool valid() const noexcept { return slot_ != nullptr; }

  /// True once the verdict is resolved (non-blocking).
  bool ready() const { return slot_ && slot_->ready(); }

  /// Blocks until resolved and returns the verdict (repeatable).
  /// Throws std::logic_error on an invalid handle.
  Verdict get() const {
    if (!slot_) throw std::logic_error("PendingVerdict::get: invalid handle");
    return slot_->wait();
  }

  /// Waits up to `timeout`; true when the verdict became ready.
  template <typename Rep, typename Period>
  bool wait_for(const std::chrono::duration<Rep, Period>& timeout) const {
    if (!slot_) throw std::logic_error("PendingVerdict::wait_for: invalid handle");
    return slot_->wait_for(timeout);
  }

  /// Registers a completion hook (see VerdictSlot::on_ready): `fn` runs
  /// once, on the resolving thread — or immediately when already resolved.
  /// Throws std::logic_error on an invalid handle.
  void on_ready(std::function<void()> fn) const {
    if (!slot_) throw std::logic_error("PendingVerdict::on_ready: invalid handle");
    slot_->on_ready(std::move(fn));
  }

 private:
  friend class InferenceServer;
  explicit PendingVerdict(std::shared_ptr<detail::VerdictSlot> slot)
      : slot_(std::move(slot)) {}

  std::shared_ptr<detail::VerdictSlot> slot_;
};

}  // namespace magic::serve
