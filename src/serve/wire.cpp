#include "serve/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace magic::serve::wire {
namespace {

constexpr std::string_view kB64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> build_b64_inverse() {
  std::array<int, 256> inv{};
  inv.fill(-1);
  for (std::size_t i = 0; i < kB64Alphabet.size(); ++i) {
    inv[static_cast<unsigned char>(kB64Alphabet[i])] = static_cast<int>(i);
  }
  return inv;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": errno " + std::to_string(errno));
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Splits off the next whitespace-delimited token.
std::string_view take_token(std::string_view& rest) {
  rest = trim(rest);
  std::size_t end = 0;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  const std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end);
  return token;
}

}  // namespace

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const auto a = static_cast<unsigned char>(data[i]);
    const auto b = static_cast<unsigned char>(data[i + 1]);
    const auto c = static_cast<unsigned char>(data[i + 2]);
    out.push_back(kB64Alphabet[a >> 2]);
    out.push_back(kB64Alphabet[((a & 0x3) << 4) | (b >> 4)]);
    out.push_back(kB64Alphabet[((b & 0xF) << 2) | (c >> 6)]);
    out.push_back(kB64Alphabet[c & 0x3F]);
    i += 3;
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const auto a = static_cast<unsigned char>(data[i]);
    out.push_back(kB64Alphabet[a >> 2]);
    out.push_back(kB64Alphabet[(a & 0x3) << 4]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    const auto a = static_cast<unsigned char>(data[i]);
    const auto b = static_cast<unsigned char>(data[i + 1]);
    out.push_back(kB64Alphabet[a >> 2]);
    out.push_back(kB64Alphabet[((a & 0x3) << 4) | (b >> 4)]);
    out.push_back(kB64Alphabet[(b & 0xF) << 2]);
    out.push_back('=');
  }
  return out;
}

std::string base64_decode(std::string_view data) {
  static const std::array<int, 256> inv = build_b64_inverse();
  std::string out;
  out.reserve(data.size() / 4 * 3);
  std::uint32_t quantum = 0;
  int bits = 0;
  std::size_t i = 0;
  for (; i < data.size() && data[i] != '='; ++i) {
    const int value = inv[static_cast<unsigned char>(data[i])];
    if (value < 0) {
      throw std::runtime_error("base64_decode: invalid character");
    }
    quantum = (quantum << 6) | static_cast<std::uint32_t>(value);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((quantum >> bits) & 0xFF));
    }
  }
  // '=' may only appear as trailing padding: at most two of them, nothing
  // after, and only on input whose padded length is a whole quantum.
  std::size_t pads = 0;
  for (; i < data.size(); ++i) {
    if (data[i] != '=') {
      throw std::runtime_error("base64_decode: data after padding");
    }
    ++pads;
  }
  if (pads > 2 || (pads > 0 && data.size() % 4 != 0)) {
    throw std::runtime_error("base64_decode: misplaced padding");
  }
  if (bits >= 6) {
    throw std::runtime_error("base64_decode: truncated final quantum");
  }
  return out;
}

std::optional<Request> parse_request_line(std::string_view line) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return std::nullopt;

  std::string_view rest = trimmed;
  const std::string_view first = take_token(rest);
  if (first == "stats") {
    Request request;
    request.kind = Request::Kind::Stats;
    return request;
  }
  if (first == "quit") {
    Request request;
    request.kind = Request::Kind::Quit;
    return request;
  }
  if (first == "reload") {
    Request request;
    request.kind = Request::Kind::Reload;
    request.version = std::string(take_token(rest));
    request.payload = std::string(trim(rest));  // checkpoint path (may contain spaces)
    if (request.version.empty() || request.payload.empty()) {
      throw std::runtime_error("wire: reload needs '<name> <path>'");
    }
    return request;
  }
  if (first == "shadow") {
    Request request;
    request.kind = Request::Kind::Shadow;
    const std::string_view name = take_token(rest);
    if (name == "off") {
      if (!trim(rest).empty()) {
        throw std::runtime_error("wire: 'shadow off' takes no further fields");
      }
      return request;  // version stays empty = disable
    }
    request.version = std::string(name);
    const std::string_view frac = trim(rest);
    if (request.version.empty() || frac.empty()) {
      throw std::runtime_error("wire: shadow needs '<name> <fraction>' or 'off'");
    }
    try {
      std::size_t consumed = 0;
      request.fraction = std::stod(std::string(frac), &consumed);
      if (consumed != frac.size()) throw std::runtime_error("trailing junk");
    } catch (const std::exception&) {
      throw std::runtime_error("wire: bad shadow fraction '" + std::string(frac) + "'");
    }
    if (!(request.fraction >= 0.0 && request.fraction <= 1.0)) {
      throw std::runtime_error("wire: shadow fraction must be in [0, 1]");
    }
    return request;
  }

  Request request;
  request.id = std::string(first);
  // Per-request model-version override rides on the id token: `<id>@<v>`.
  if (const std::size_t at = request.id.find('@'); at != std::string::npos) {
    request.version = request.id.substr(at + 1);
    request.id.resize(at);
    if (request.version.empty()) {
      throw std::runtime_error("wire: empty version override on id '" +
                               request.id + "@'");
    }
  }
  const std::string_view kind = take_token(rest);
  const std::string_view payload = trim(rest);
  if (payload.empty()) {
    throw std::runtime_error("wire: request '" + request.id + "' has no payload");
  }
  if (kind == "path") {
    request.kind = Request::Kind::Path;
    request.payload = std::string(payload);
  } else if (kind == "b64") {
    request.kind = Request::Kind::Base64;
    request.payload = base64_decode(payload);
  } else {
    throw std::runtime_error("wire: unknown request kind '" + std::string(kind) +
                             "' (expected 'path' or 'b64')");
  }
  return request;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto ch = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[ch >> 4]);
          out.push_back(hex[ch & 0xF]);
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string verdict_to_json(std::string_view id, const Verdict& verdict) {
  std::ostringstream os;
  os << "{\"id\":\"" << json_escape(id) << "\",\"status\":\""
     << to_string(verdict.status) << "\"";
  if (verdict.ok()) {
    const core::Prediction& p = verdict.prediction;
    const double confidence = p.family_index < p.probabilities.size()
                                  ? p.probabilities[p.family_index]
                                  : 0.0;
    os << ",\"family\":\"" << json_escape(p.family_name)
       << "\",\"family_index\":" << p.family_index
       << ",\"confidence\":" << confidence << ",\"probabilities\":[";
    for (std::size_t c = 0; c < p.probabilities.size(); ++c) {
      if (c) os << ',';
      os << p.probabilities[c];
    }
    os << "]";
  }
  if (!verdict.error.empty()) {
    os << ",\"error\":\"" << json_escape(verdict.error) << "\"";
  }
  os << ",\"latency_ms\":" << verdict.latency_ms << "}";
  return os.str();
}

bool FdLineReader::next_line(std::string& out) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      out.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      out = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    std::array<char, 4096> chunk{};
    const ssize_t got = ::read(fd_, chunk.data(), chunk.size());
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("wire: read");
    }
    if (got == 0) {
      eof_ = true;
    } else {
      buffer_.append(chunk.data(), static_cast<std::size_t>(got));
    }
  }
}

void write_line(int fd, std::string_view line) {
  // Sockets get MSG_NOSIGNAL (a dead peer yields EPIPE, never SIGPIPE — the
  // daemon must outlive any one client) and MSG_DONTWAIT + poll so a peer
  // that stopped reading cannot block this thread past kWriteTimeout; that
  // bound is what keeps the daemon's graceful drain finite.
  constexpr auto kWriteTimeout = std::chrono::seconds(30);
  const auto deadline = std::chrono::steady_clock::now() + kWriteTimeout;

  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  bool is_socket = true;
  while (sent < framed.size()) {
    const ssize_t n =
        is_socket ? ::send(fd, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL | MSG_DONTWAIT)
                  : ::write(fd, framed.data() + sent, framed.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOTSOCK && is_socket) {
        is_socket = false;  // plain pipe/file fd: fall back to blocking write
        continue;
      }
      if (is_socket && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) {
          throw std::runtime_error("wire: write timed out (peer not reading)");
        }
        pollfd poller{};
        poller.fd = fd;
        poller.events = POLLOUT;
        const int ready = ::poll(&poller, 1, static_cast<int>(remaining.count()));
        if (ready < 0 && errno != EINTR) throw_errno("wire: poll");
        if (ready == 0) {
          throw std::runtime_error("wire: write timed out (peer not reading)");
        }
        continue;
      }
      throw_errno("wire: write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

namespace {

int connect_unix(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("wire: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("wire: socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("wire: cannot connect to " + socket_path +
                             " (errno " + std::to_string(errno) + ")");
  }
  return fd;
}

}  // namespace

UnixClient::UnixClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)), reader_(fd_) {}

UnixClient::~UnixClient() {
  if (fd_ >= 0) ::close(fd_);
}

void UnixClient::send_line(std::string_view line) { write_line(fd_, line); }

void UnixClient::finish_sending() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool UnixClient::recv_line(std::string& out) { return reader_.next_line(out); }

}  // namespace magic::serve::wire
