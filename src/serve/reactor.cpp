#include "serve/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/scan_service.hpp"
#include "serve/stats.hpp"
#include "serve/wire.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace magic::serve {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": errno " + std::to_string(errno));
}

/// Binds the Unix listener. A path already occupied by a *socket* is a
/// stale leftover of a crashed daemon and is replaced; any other kind of
/// file is refused — blindly unlinking whatever sits at --socket used to
/// be able to delete a user's regular file.
int bind_unix_listener(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("magicd: bad socket path '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  struct stat st {};
  if (::lstat(socket_path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      throw std::runtime_error("magicd: refusing to replace non-socket file '" +
                               socket_path + "'");
    }
    ::unlink(socket_path.c_str());
  } else if (errno != ENOENT) {
    throw_errno("magicd: stat " + socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("magicd: socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("magicd: cannot bind " + socket_path + " (errno " +
                             std::to_string(errno) + ")");
  }
  if (::listen(fd, 1024) != 0) {
    ::close(fd);
    throw_errno("magicd: listen");
  }
  return fd;
}

/// Removes the daemon's socket file on shutdown — only if the path still
/// holds a socket (same guard as bind: never delete a file the daemon did
/// not create).
void remove_socket_file(const std::string& path) noexcept {
  struct stat st {};
  if (::lstat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
    ::unlink(path.c_str());
  }
}

/// One in-order response slot on a connection's pending deque. `id` and
/// `is_stats` are written by the loop before the entry is ever shared;
/// `line` is written by exactly one producer (worker task or verdict
/// completion hook) before the release-store on `ready`, and read by the
/// loop after the acquire-load.
struct Entry {
  std::string id;
  bool is_stats = false;
  std::atomic<bool> ready{false};
  std::string line;
};

/// Wake-up channel from worker / scoring threads into the event loop: a
/// list of connection serials with flushable progress, plus an eventfd that
/// makes epoll_wait return. Outlives the loop in a shared_ptr so late
/// verdict completions (e.g. after a fatal-teardown) degrade to no-ops.
class WakeHub {
 public:
  explicit WakeHub(int event_fd) : event_fd_(event_fd) {}

  void notify(std::uint64_t serial) MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (closed_) return;
    ready_.push_back(serial);
    if (!signaled_) {
      signaled_ = true;
      const std::uint64_t one = 1;
      // A full eventfd counter is unreachable with this coalescing; an
      // EAGAIN here would still leave the serial queued for the next wake.
      [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof(one));
    }
  }

  /// Loop side: collect pending serials and re-arm.
  std::vector<std::uint64_t> drain() MAGIC_EXCLUDES(mutex_) {
    std::uint64_t counter = 0;
    while (::read(event_fd_, &counter, sizeof(counter)) > 0) {
    }
    std::vector<std::uint64_t> out;
    util::MutexLock lock(mutex_);
    out.swap(ready_);
    signaled_ = false;
    return out;
  }

  /// Must be called before the loop closes event_fd_: notify() never
  /// touches the fd again afterwards.
  void close() MAGIC_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }

 private:
  const int event_fd_;
  util::Mutex mutex_;
  bool closed_ MAGIC_GUARDED_BY(mutex_) = false;
  bool signaled_ MAGIC_GUARDED_BY(mutex_) = false;
  std::vector<std::uint64_t> ready_ MAGIC_GUARDED_BY(mutex_);
};

struct Conn {
  int fd = -1;
  std::uint64_t serial = 0;
  std::string in;          ///< received bytes not yet parsed into lines
  std::size_t in_start = 0;
  std::deque<std::shared_ptr<Entry>> pending;
  std::string out;         ///< rendered responses not yet written
  std::size_t out_start = 0;
  bool want_read = true;   ///< EPOLLIN registered
  bool want_write = false; ///< EPOLLOUT registered
  bool saw_eof = false;
  bool read_closed = false;  ///< EOF consumed, `quit` seen, or draining
  bool dead = false;         ///< write error — drop silently
  /// In-flight control command (reload/shadow): a per-connection sequence
  /// point. Lines after it stay buffered until it resolves, so a pipelined
  /// `reload` is guaranteed to apply to the scans that follow it.
  std::shared_ptr<Entry> barrier;
  /// Set while `out` is non-empty; pushed forward on every write progress.
  Clock::time_point stall_deadline{};
};

// epoll_event.data.u64 tags; connection serials start above these.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kWakeTag = 1;

class Reactor {
 public:
  Reactor(ScanService& service, const DaemonOptions& options,
          const std::function<bool()>& should_stop)
      : service_(service), options_(options), should_stop_(should_stop) {}

  ~Reactor() { release_fds(); }

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  std::uint64_t run() {
    setup();
    std::string fault;
    while (fault.empty() && !should_stop_()) {
      const int n = ::epoll_wait(epoll_fd_, events_.data(),
                                 static_cast<int>(events_.size()), kTickMs);
      if (n < 0) {
        if (errno == EINTR) continue;  // signal: loop re-checks should_stop
        fault = "magicd: epoll_wait: errno " + std::to_string(errno);
        break;
      }
      if (fault_injected()) {
        fault = "magicd: injected event-loop fault";
        break;
      }
      dispatch(n);
      expire_stalled();
      maybe_rearm_listener();
    }
    if (!fault.empty()) {
      // The PR 2 daemon closed only the listener on a poll failure and
      // threw, leaving connection threads blocked forever. The reactor owns
      // every fd, so a fatal error tears all of them down before it
      // propagates: peers see EOF, nothing can hang on a dead loop.
      fatal_teardown();
      throw std::runtime_error(fault);
    }
    graceful_drain();
    return served_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kTickMs = 200;
  static constexpr std::size_t kUnboundedRead =
      std::numeric_limits<std::size_t>::max();

  bool fault_injected() const {
    return options_.inject_loop_fault != nullptr &&
           options_.inject_loop_fault->load(std::memory_order_acquire);
  }

  void setup() {
    listen_fd_ = bind_unix_listener(options_.socket_path);
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("magicd: epoll_create1");
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) throw_errno("magicd: eventfd");
    hub_ = std::make_shared<WakeHub>(event_fd_);
    add_fd(listen_fd_, kListenerTag, EPOLLIN);
    add_fd(event_fd_, kWakeTag, EPOLLIN);
    events_.resize(256);
    std::size_t workers = options_.io_workers;
    if (workers == 0) workers = 4;
    pool_ = std::make_unique<util::ThreadPool>(workers);
  }

  void add_fd(int fd, std::uint64_t tag, std::uint32_t mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw_errno("magicd: epoll_ctl add");
    }
  }

  void update_interest(Conn& conn) {
    const std::uint32_t mask = (conn.want_read ? EPOLLIN : 0u) |
                               (conn.want_write ? EPOLLOUT : 0u);
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = conn.serial;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void dispatch(int n) {
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events_[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kListenerTag) {
        accept_ready();
        continue;
      }
      if (ev.data.u64 == kWakeTag) {
        ++stats_.wakeups;
        for (const std::uint64_t serial : hub_->drain()) pump(serial);
        continue;
      }
      const std::uint64_t serial = ev.data.u64;
      auto it = conns_.find(serial);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = it->second;
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        if (conn.read_closed) {
          // Peer fully gone and nothing more to read: any buffered output
          // is undeliverable. Matches the old daemon dropping a vanished
          // client on EPIPE.
          close_conn(serial);
          continue;
        }
        readable(conn);  // consume the EOF/reset through the read path
        pump(serial);
        continue;
      }
      if (ev.events & EPOLLIN) readable(conn);
      pump(serial);  // handles EPOLLOUT flushing too; may close the conn
    }
  }

  void accept_ready() {
    while (true) {
      int fd = -1;
      const int injected =
          options_.inject_accept_errno != nullptr
              ? options_.inject_accept_errno->exchange(0,
                                                       std::memory_order_acq_rel)
              : 0;
      if (injected != 0) {
        errno = injected;
      } else {
        fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      }
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
            errno == ENOMEM) {
          // Resource exhaustion: the connection stays in the backlog, so a
          // level-triggered listener event re-fires instantly and the loop
          // would spin at 100% CPU until fds free up. Park the listener
          // (drop it from the epoll set) and re-arm after a tick.
          park_listener();
        }
        break;  // EAGAIN: drained; anything else: try again next tick
      }
      const std::uint64_t serial = next_serial_++;
      Conn conn;
      conn.fd = fd;
      conn.serial = serial;
      auto [it, inserted] = conns_.emplace(serial, std::move(conn));
      try {
        add_fd(fd, serial, EPOLLIN);
      } catch (const std::exception&) {
        ::close(fd);
        conns_.erase(it);
        continue;
      }
      ++stats_.accepted;
    }
  }

  void park_listener() {
    if (listener_parked_ || listen_fd_ < 0) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    listener_parked_ = true;
    listener_resume_ = Clock::now() + std::chrono::milliseconds(kTickMs);
    ++stats_.accept_parks;
  }

  /// Re-arms a parked listener once its backoff elapsed. Called every loop
  /// iteration; epoll_wait's kTickMs timeout guarantees the loop gets here
  /// even when no fd is active.
  void maybe_rearm_listener() {
    if (!listener_parked_ || listen_fd_ < 0) return;
    if (Clock::now() < listener_resume_) return;
    listener_parked_ = false;
    add_fd(listen_fd_, kListenerTag, EPOLLIN);
  }

  /// Consumes what the kernel has buffered for this connection (up to
  /// EAGAIN, EOF, or `budget` bytes) into conn.in. The budget matters: the
  /// max_pending backpressure only bounds *parsed* response entries, so an
  /// uncapped recv loop would let a fast pipelining writer grow conn.in
  /// arbitrarily (and hold the loop hostage) before the pause ever kicks
  /// in. Stopping early is safe — the listener set is level-triggered, so
  /// EPOLLIN re-fires and the remainder is read on a later pass, with
  /// other connections serviced in between.
  void read_available(Conn& conn, std::size_t budget) {
    char buf[65536];
    while (!conn.saw_eof && budget > 0) {
      const std::size_t want = std::min(budget, sizeof(buf));
      const ssize_t n = ::recv(conn.fd, buf, want, 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        budget -= static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0) {
        conn.saw_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.dead = true;  // ECONNRESET and friends: drop silently
      return;
    }
  }

  void readable(Conn& conn) {
    read_available(conn, options_.read_chunk_bytes > 0
                             ? options_.read_chunk_bytes
                             : kUnboundedRead);
    if (!conn.dead) process_input(conn);
  }

  /// Parses complete lines out of conn.in (and, at EOF, a final
  /// unterminated line — FdLineReader semantics) until the buffer is dry,
  /// backpressure or an in-flight control command pauses the connection, or
  /// the stream ends.
  void process_input(Conn& conn) {
    while (!conn.read_closed && !conn.dead) {
      if (conn.barrier) {
        if (conn.barrier->ready.load(std::memory_order_acquire)) {
          conn.barrier.reset();
        } else {
          pause_read(conn);  // bound conn.in while the control executes
          break;
        }
      }
      if (conn.pending.size() >= options_.max_pending_per_connection) {
        pause_read(conn);
        break;
      }
      const std::size_t nl = conn.in.find('\n', conn.in_start);
      std::string line;
      if (nl != std::string::npos) {
        line = conn.in.substr(conn.in_start, nl - conn.in_start);
        conn.in_start = nl + 1;
      } else if (conn.saw_eof && conn.in_start < conn.in.size()) {
        line = conn.in.substr(conn.in_start);
        conn.in_start = conn.in.size();
      } else {
        break;
      }
      handle_line(conn, line);
    }
    conn.in.erase(0, conn.in_start);
    conn.in_start = 0;
    if (conn.read_closed) {
      conn.in.clear();  // `quit`: remaining input is never parsed
      stop_reading(conn);
    } else if (conn.saw_eof && conn.in.empty()) {
      conn.read_closed = true;
      stop_reading(conn);
    }
  }

  void stop_reading(Conn& conn) {
    if (!conn.want_read) return;
    conn.want_read = false;
    update_interest(conn);
  }

  void pause_read(Conn& conn) {
    if (!conn.want_read || conn.read_closed) return;
    conn.want_read = false;
    update_interest(conn);
    ++stats_.read_pauses;
  }

  void handle_line(Conn& conn, const std::string& line) {
    auto entry = std::make_shared<Entry>();
    try {
      const auto request = wire::parse_request_line(line);
      if (!request) return;  // blank / '#': the documented no-response lines
      switch (request->kind) {
        case wire::Request::Kind::Quit:
          conn.read_closed = true;
          return;
        case wire::Request::Kind::Stats:
          // Rendered at flush time (see flush_entries), so the payload
          // reflects the requests ordered before it.
          entry->is_stats = true;
          entry->ready.store(true, std::memory_order_release);
          conn.pending.push_back(std::move(entry));
          return;
        case wire::Request::Kind::Reload:
        case wire::Request::Kind::Shadow:
          conn.pending.push_back(entry);
          conn.barrier = entry;
          dispatch_control(conn.serial, std::move(entry), *request);
          return;
        case wire::Request::Kind::Path:
        case wire::Request::Kind::Base64:
          entry->id = request->id;
          conn.pending.push_back(entry);
          dispatch_scan(conn.serial, std::move(entry), std::move(*request));
          ++stats_.requests;
          return;
      }
    } catch (const std::exception& e) {
      // Malformed request: exactly one error response, stream stays up.
      Verdict verdict;
      verdict.status = VerdictStatus::Error;
      verdict.error = e.what();
      entry->line = wire::verdict_to_json(entry->id, verdict);
      entry->ready.store(true, std::memory_order_release);
      conn.pending.push_back(std::move(entry));
    }
  }

  /// Extraction + scoring off the loop: read the file (path requests),
  /// submit to the service, and let the verdict's completion hook render
  /// the response and wake the loop. The hook captures only the entry, the
  /// hub and the verdict handle — never the reactor — so a late completion
  /// after teardown is harmless.
  void dispatch_scan(std::uint64_t serial, std::shared_ptr<Entry> entry,
                     wire::Request request) {
    auto hub = hub_;
    ScanService& service = service_;
    std::atomic<std::uint64_t>& served = served_;
    pool_->submit([&service, &served, hub, serial, entry = std::move(entry),
                   request = std::move(request)] {
      auto finish_error = [&](const std::string& message) {
        Verdict verdict;
        verdict.status = VerdictStatus::Error;
        verdict.error = message;
        entry->line = wire::verdict_to_json(entry->id, verdict);
        entry->ready.store(true, std::memory_order_release);
        hub->notify(serial);
      };
      try {
        std::string listing;
        std::string_view view = request.payload;
        if (request.kind == wire::Request::Kind::Path) {
          if (!read_file_to_string(request.payload, listing)) {
            finish_error("cannot open " + request.payload);
            return;
          }
          view = listing;
        }
        const PendingVerdict verdict =
            service.submit_listing(view, request.version);
        served.fetch_add(1, std::memory_order_relaxed);
        verdict.on_ready([entry, hub, serial, verdict] {
          entry->line = wire::verdict_to_json(entry->id, verdict.get());
          entry->ready.store(true, std::memory_order_release);
          hub->notify(serial);
        });
      } catch (const std::exception& e) {
        finish_error(e.what());
      }
    });
  }

  /// Control commands may block (a reload materializes a model), so they
  /// run on the worker pool too; ScanService::control never throws.
  void dispatch_control(std::uint64_t serial, std::shared_ptr<Entry> entry,
                        wire::Request request) {
    auto hub = hub_;
    ScanService& service = service_;
    pool_->submit([&service, hub, serial, entry = std::move(entry),
                   request = std::move(request)] {
      entry->line = service.control(request);
      entry->ready.store(true, std::memory_order_release);
      hub->notify(serial);
    });
  }

  std::string render_stats() {
    std::string payload = service_.stats_json();
    stats_.active = conns_.size();
    // Splice the reactor block into the service's stats object.
    payload.insert(payload.size() - 1, ",\"reactor\":" + stats_.to_json());
    return payload;
  }

  /// Moves ready front entries into the output buffer (order preserved).
  void flush_entries(Conn& conn) {
    while (!conn.pending.empty()) {
      Entry& front = *conn.pending.front();
      if (!front.ready.load(std::memory_order_acquire)) break;
      conn.out += front.is_stats ? render_stats() : front.line;
      conn.out += '\n';
      conn.pending.pop_front();
    }
  }

  void try_write(Conn& conn) {
    bool progressed = false;
    while (conn.out_start < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_start,
                 conn.out.size() - conn.out_start, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_start += static_cast<std::size_t>(n);
        progressed = true;
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.dead = true;  // EPIPE / reset: peer vanished, drop silently
      return;
    }
    if (conn.out_start == conn.out.size()) {
      conn.out.clear();
      conn.out_start = 0;
    } else if (conn.out_start > 65536) {
      conn.out.erase(0, conn.out_start);
      conn.out_start = 0;
    }
    if (conn.out.empty()) {
      conn.stall_deadline = Clock::time_point{};
    } else if (progressed || conn.stall_deadline == Clock::time_point{}) {
      conn.stall_deadline = Clock::now() + options_.write_stall_timeout;
    }
  }

  /// Per-connection driver: flush ready responses, write, resume paused
  /// reads once the deque shrinks, close when the stream is complete.
  void pump(std::uint64_t serial) {
    auto it = conns_.find(serial);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    while (!conn.dead) {
      flush_entries(conn);
      try_write(conn);
      if (conn.dead) break;
      if (conn.read_closed && conn.pending.empty() && conn.out.empty()) {
        close_conn(serial);  // stream fully served
        return;
      }
      // Resume only once any control barrier has resolved (checking ready,
      // not presence — the barrier pointer is cleared inside process_input):
      // re-enabling reads under an unresolved barrier would pause again
      // immediately and spin this loop, with two epoll_ctl calls per lap,
      // for the whole duration of a blocking reload. The barrier's
      // completion hook wakes the loop, which re-enters here.
      if (!conn.want_read && !conn.read_closed &&
          (!conn.barrier ||
           conn.barrier->ready.load(std::memory_order_acquire)) &&
          conn.pending.size() <= options_.max_pending_per_connection / 2) {
        conn.want_read = true;
        update_interest(conn);
        process_input(conn);  // lines buffered while paused
        continue;             // they may have produced flushable entries
      }
      break;
    }
    if (conn.dead) {
      close_conn(serial);
      return;
    }
    const bool want_write = !conn.out.empty();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      update_interest(conn);
    }
  }

  void close_conn(std::uint64_t serial) {
    auto it = conns_.find(serial);
    if (it == conns_.end()) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    conns_.erase(it);
    ++stats_.closed;
  }

  void expire_stalled() {
    if (conns_.empty()) return;
    const auto now = Clock::now();
    std::vector<std::uint64_t> stalled;
    for (const auto& [serial, conn] : conns_) {
      if (conn.stall_deadline != Clock::time_point{} &&
          conn.stall_deadline <= now) {
        stalled.push_back(serial);
      }
    }
    for (const std::uint64_t serial : stalled) {
      ++stats_.write_stalls;
      close_conn(serial);
    }
  }

  /// Graceful shutdown, same contract as the thread-per-connection daemon:
  /// stop accepting, parse what is already buffered, give in-flight
  /// verdicts `drain_grace` to flush, hard-close stragglers, then drain
  /// the service so every outstanding PendingVerdict resolves.
  void graceful_drain() {
    // A client whose connect() already completed sits in the listener
    // backlog even if its EPOLLIN was never dispatched; closing the
    // listener would reset it mid-request. Adopt those connections first —
    // they drain like any other.
    accept_ready();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
    std::vector<std::uint64_t> serials;
    serials.reserve(conns_.size());
    for (auto& [serial, conn] : conns_) {
      serials.push_back(serial);
      if (!conn.read_closed && !conn.dead) {
        // Requests the client already sent sit in the kernel receive queue
        // if the stop signal beat their EPOLLIN dispatch; consume them —
        // closing an fd with unread data resets the peer mid-read, and the
        // old daemon's reader threads always drained what was buffered.
        // Unbudgeted: after this pass reads are off for good, so anything
        // left unread here would be lost.
        read_available(conn, kUnboundedRead);
        if (!conn.dead) {
          conn.saw_eof = true;  // treat the drain as end-of-stream
          process_input(conn);
        }
      }
      // Lines still parked behind an in-flight control barrier are parsed
      // when it resolves (saw_eof is set, so read_closed follows then);
      // everything else is closed for reading now.
      if (conn.in.empty() || conn.dead) {
        conn.read_closed = true;
      }
      stop_reading(conn);
    }
    for (const std::uint64_t serial : serials) pump(serial);

    const auto deadline = Clock::now() + options_.drain_grace;
    while (!conns_.empty()) {
      const auto now = Clock::now();
      if (now >= deadline) break;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - now);
      const int timeout =
          static_cast<int>(std::min<std::chrono::milliseconds::rep>(
              left.count(), kTickMs));
      const int n = ::epoll_wait(epoll_fd_, events_.data(),
                                 static_cast<int>(events_.size()),
                                 timeout > 0 ? timeout : 1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // teardown below hard-closes whatever is left
      }
      dispatch(n);
      expire_stalled();
    }
    while (!conns_.empty()) close_conn(conns_.begin()->first);
    hub_->close();
    pool_.reset();     // join extraction workers (late wakes are no-ops)
    service_.drain();  // resolve everything still queued
    release_fds();
    remove_socket_file(options_.socket_path);
  }

  /// Fatal-error teardown: close every connection fd (peers see EOF), join
  /// the workers, leave the service running — its owner decides its fate.
  void fatal_teardown() {
    while (!conns_.empty()) close_conn(conns_.begin()->first);
    hub_->close();
    pool_.reset();
    release_fds();
    remove_socket_file(options_.socket_path);
  }

  void release_fds() {
    for (auto& [serial, conn] : conns_) ::close(conn.fd);
    conns_.clear();
    if (hub_) hub_->close();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    listen_fd_ = event_fd_ = epoll_fd_ = -1;
  }

  ScanService& service_;
  const DaemonOptions& options_;
  const std::function<bool()>& should_stop_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  bool listener_parked_ = false;  ///< deregistered after fd exhaustion
  Clock::time_point listener_resume_{};
  std::shared_ptr<WakeHub> hub_;
  std::vector<epoll_event> events_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_serial_ = kWakeTag + 1;
  std::atomic<std::uint64_t> served_{0};
  ReactorStats stats_;
  /// Declared last: tasks reference the members above, so the pool must
  /// join before any of them die (run() also joins explicitly).
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace

std::uint64_t run_reactor(ScanService& service, const DaemonOptions& options,
                          const std::function<bool()>& should_stop) {
  Reactor reactor(service, options, should_stop);
  return reactor.run();
}

}  // namespace magic::serve
