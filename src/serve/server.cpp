#include "serve/server.hpp"

#include <exception>
#include <utility>

#include "acfg/extractor.hpp"

namespace magic::serve {

const char* to_string(VerdictStatus status) noexcept {
  switch (status) {
    case VerdictStatus::Ok: return "ok";
    case VerdictStatus::RejectedQueueFull: return "rejected_queue_full";
    case VerdictStatus::DeadlineExpired: return "deadline_expired";
    case VerdictStatus::ShuttingDown: return "shutting_down";
    case VerdictStatus::Error: return "error";
  }
  return "error";
}

InferenceServer::InferenceServer(core::MagicClassifier& model, ServeConfig config)
    : config_(config),
      family_names_(model.family_names()),
      queue_(config.queue_capacity),
      stats_(config.max_batch == 0 ? 1 : config.max_batch) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.cache_bytes > 0) {
    cache_ = std::make_unique<cache::VerdictCache>(
        cache::CacheConfig{config_.cache_bytes, config_.cache_shards});
  }
  // Reuses the classifier's cached pool: a second server over the same
  // model (or a predict_batch call) shares the same replicas.
  replicas_ = model.replica_pool(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

InferenceServer::~InferenceServer() { stop(/*drain=*/true); }

double InferenceServer::elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

PendingVerdict InferenceServer::submit(acfg::Acfg sample,
                                       std::chrono::milliseconds deadline) {
  auto slot = std::make_shared<detail::VerdictSlot>();
  PendingVerdict handle{slot};
  stats_.on_submitted();

  Queued request;
  request.sample = std::move(sample);
  request.submitted_at = Clock::now();
  if (deadline.count() < 0) deadline = config_.default_deadline;
  if (deadline.count() > 0) request.deadline = request.submitted_at + deadline;
  request.slot = slot;

  if (cache_) {
    // Content-addressed fast path, checked *before* the queue: a hit costs
    // one hash + one shard lock and never consumes queue capacity, a
    // replica lease or a forward pass. The hash is kept on the request so
    // the completion path can insert the miss without rehashing.
    request.cache_key = cache::acfg_content_hash(request.sample);
    request.cacheable = true;
    if (std::optional<cache::CachedVerdict> hit = cache_->get(request.cache_key)) {
      Verdict verdict;
      verdict.status = VerdictStatus::Ok;
      verdict.prediction.family_index = hit->family_index;
      verdict.prediction.family_name = std::move(hit->family_name);
      verdict.prediction.probabilities = std::move(hit->probabilities);
      verdict.latency_ms = elapsed_ms(request.submitted_at);
      stats_.on_completed(verdict.latency_ms);
      slot->fulfil(std::move(verdict));
      return handle;
    }
  }

  if (!accepting_.load(std::memory_order_acquire) || !queue_.try_push(request)) {
    Verdict verdict;
    if (accepting_.load(std::memory_order_acquire) && !queue_.closed()) {
      verdict.status = VerdictStatus::RejectedQueueFull;
      stats_.on_rejected_full();
    } else {
      verdict.status = VerdictStatus::ShuttingDown;
      stats_.on_rejected_shutdown();
    }
    verdict.latency_ms = elapsed_ms(request.submitted_at);
    slot->fulfil(std::move(verdict));
  }
  return handle;
}

PendingVerdict InferenceServer::submit_listing(std::string_view listing,
                                               std::chrono::milliseconds deadline) {
  try {
    return submit(acfg::extract_acfg_from_listing(listing), deadline);
  } catch (const std::exception& e) {
    stats_.on_submitted();
    stats_.on_failed();
    auto slot = std::make_shared<detail::VerdictSlot>();
    Verdict verdict;
    verdict.status = VerdictStatus::Error;
    verdict.error = e.what();
    slot->fulfil(std::move(verdict));
    return PendingVerdict{slot};
  }
}

Verdict InferenceServer::scan(acfg::Acfg sample) {
  return submit(std::move(sample)).get();
}

Verdict InferenceServer::scan_listing(std::string_view listing) {
  return submit_listing(listing).get();
}

ServerStats InferenceServer::stats() const {
  ServerStats out = stats_.snapshot(queue_.size(), workers_.size());
  if (cache_) out.cache = cache_->stats();
  return out;
}

void InferenceServer::cache_store(const Queued& request,
                                  const core::Prediction& prediction) {
  if (!cache_ || !request.cacheable) return;
  cache::CachedVerdict value;
  value.family_index = prediction.family_index;
  value.family_name = prediction.family_name;
  value.probabilities = prediction.probabilities;
  cache_->insert(request.cache_key, std::move(value));
}

void InferenceServer::worker_loop(std::size_t) {
  Queued first;
  while (queue_.pop(first)) {
    // Dynamic micro-batch: keep collecting until the batch fills or the
    // window elapses. pop_until returning false on close/drain just means
    // "flush what you have".
    std::vector<Queued> batch;
    batch.reserve(config_.max_batch);
    batch.push_back(std::move(first));
    if (config_.max_batch > 1 && config_.batch_window.count() > 0) {
      const Clock::time_point flush_at = Clock::now() + config_.batch_window;
      Queued extra;
      while (batch.size() < config_.max_batch && queue_.pop_until(extra, flush_at)) {
        batch.push_back(std::move(extra));
      }
    }
    stats_.on_batch(batch.size());
    execute_batch(batch);
  }
}

void InferenceServer::execute_batch(std::vector<Queued>& batch) {
  // The lease spans exactly this micro-batch. RAII guarantees the replica
  // returns to the pool even when the packed forward (or anything else in
  // here) throws — a leaked lease would strand a replica forever and
  // starve concurrent consumers of the shared pool.
  const core::ReplicaPool::Lease replica = replicas_->acquire();

  // Shed expired requests first so they neither inflate the pack nor get
  // scored (load shedding).
  std::vector<Queued*> live;
  live.reserve(batch.size());
  for (Queued& request : batch) {
    if (request.deadline != Clock::time_point::max() &&
        Clock::now() > request.deadline) {
      Verdict verdict;
      verdict.status = VerdictStatus::DeadlineExpired;
      verdict.latency_ms = elapsed_ms(request.submitted_at);
      stats_.on_expired();
      request.slot->fulfil(std::move(verdict));
    } else {
      live.push_back(&request);
    }
  }
  if (live.empty()) return;

  if (config_.engine == core::PredictEngine::Packed && live.size() > 1) {
    try {
      std::vector<const acfg::Acfg*> graphs;
      graphs.reserve(live.size());
      for (Queued* request : live) graphs.push_back(&request->sample);
      const core::GraphBatch packed =
          core::GraphBatch::pack(std::span<const acfg::Acfg* const>(graphs));
      std::vector<core::Prediction> preds = replica->predict_packed(packed);
      stats_.on_packed_batch();
      for (std::size_t i = 0; i < live.size(); ++i) {
        cache_store(*live[i], preds[i]);
        Verdict verdict;
        verdict.prediction = std::move(preds[i]);
        verdict.status = VerdictStatus::Ok;
        verdict.latency_ms = elapsed_ms(live[i]->submitted_at);
        stats_.on_completed(verdict.latency_ms);
        live[i]->slot->fulfil(std::move(verdict));
      }
      return;
    } catch (const std::exception&) {
      // Per-item fallback: one malformed graph must not fail the whole
      // micro-batch, and per-item scoring attributes the error to the
      // request that caused it. The lease stays held.
    }
  }
  for (Queued* request : live) process(*request, *replica);
}

void InferenceServer::process(Queued& request, core::MagicClassifier& replica) {
  Verdict verdict;
  if (request.deadline != Clock::time_point::max() &&
      Clock::now() > request.deadline) {
    verdict.status = VerdictStatus::DeadlineExpired;
    verdict.latency_ms = elapsed_ms(request.submitted_at);
    stats_.on_expired();
    request.slot->fulfil(std::move(verdict));
    return;
  }
  try {
    verdict.prediction = replica.predict(request.sample);
    verdict.status = VerdictStatus::Ok;
    cache_store(request, verdict.prediction);
  } catch (const std::exception& e) {
    verdict.status = VerdictStatus::Error;
    verdict.error = e.what();
  }
  verdict.latency_ms = elapsed_ms(request.submitted_at);
  if (verdict.ok()) {
    stats_.on_completed(verdict.latency_ms);
  } else {
    stats_.on_failed();
  }
  request.slot->fulfil(std::move(verdict));
}

void InferenceServer::stop(bool drain) {
  {
    util::MutexLock lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  accepting_.store(false, std::memory_order_release);
  if (drain) {
    queue_.close();  // workers finish everything already queued
  } else {
    for (Queued& request : queue_.close_and_drain()) {
      Verdict verdict;
      verdict.status = VerdictStatus::ShuttingDown;
      verdict.latency_ms = elapsed_ms(request.submitted_at);
      stats_.on_rejected_shutdown();
      request.slot->fulfil(std::move(verdict));
    }
  }
  for (util::JoinThread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace magic::serve
