#pragma once
// magicd daemon loops: serve the wire protocol over stdio or a Unix domain
// socket.
//
// Both modes pipeline: requests are submitted to the backend ScanService as
// they are read (so micro-batching sees real concurrency) while responses
// are flushed in request order as they resolve. A stream ends at EOF or a
// `quit` line, after which every outstanding verdict is flushed.
//
// The socket daemon is a single epoll event loop (serve/reactor.hpp): one
// thread owns every connection fd, extraction runs on a small worker pool,
// and verdict completions wake the loop through an eventfd. It accepts any
// number of concurrent connections and drains gracefully on SIGTERM/SIGINT:
// stop accepting, flush in-flight verdicts, then drain the service.
//
// Both loops are written against ScanService, so they serve a bare
// InferenceServer and a versioned ModelRegistry identically; the
// InferenceServer overloads below are the registry-less convenience
// surface.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/scan_service.hpp"
#include "serve/server.hpp"

namespace magic::serve {

/// Serves one request stream (the stdio mode of magicd). Returns the
/// number of scan requests submitted. Malformed lines produce an
/// {"id":"","status":"error",...} response instead of killing the stream.
std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           ScanService& service);
std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           InferenceServer& server);

/// Options for the socket daemon loop.
struct DaemonOptions {
  std::string socket_path;
  /// Install SIGTERM/SIGINT handlers that trigger graceful drain, and
  /// ignore SIGPIPE so a vanished client cannot kill the process.
  bool handle_signals = true;
  /// Optional external stop flag (tests); polled alongside the signal flag.
  const std::atomic<bool>* external_stop = nullptr;
  /// How long the drain waits for connections to flush their in-flight
  /// verdicts before hard-closing them (bounds shutdown latency even when
  /// a client stops reading).
  std::chrono::milliseconds drain_grace{5000};
  /// Worker threads for extraction and control commands (the event loop
  /// itself never extracts or scores). 0 = a small default.
  std::size_t io_workers = 0;
  /// Per-connection flow control: past this many outstanding responses the
  /// reactor stops reading the connection and resumes at half the limit.
  std::size_t max_pending_per_connection = 512;
  /// A connection whose output buffer makes no write progress for this
  /// long is dropped (the peer stopped reading).
  std::chrono::milliseconds write_stall_timeout{30000};
  /// Max bytes consumed from one connection per readable pass (0 = no
  /// cap). Bounds how much raw input a fast pipelining writer can buffer
  /// ahead of parsing — max_pending_per_connection only limits *parsed*
  /// responses — and keeps one connection from monopolizing the loop;
  /// level-triggered epoll re-delivers the event for the remainder.
  std::size_t read_chunk_bytes = 256 * 1024;
  /// Test hook: when set and true, the event loop treats its next wakeup
  /// as a fatal poll failure — exercising the teardown path that must
  /// close every connection fd before the error propagates.
  const std::atomic<bool>* inject_loop_fault = nullptr;
  /// Test hook: when set to a nonzero errno, the next accept attempt fails
  /// with it (the value is consumed) — exercising the fd-exhaustion path
  /// that parks the listener instead of spinning on a level-triggered
  /// event.
  std::atomic<int>* inject_accept_errno = nullptr;
};

/// Binds `options.socket_path` (replacing a *stale socket file* only — a
/// path occupied by any other kind of file is refused), accepts connections
/// until a stop signal, then drains and returns the total number of scan
/// requests served. Throws std::runtime_error on socket setup failure or a
/// fatal event-loop error.
std::uint64_t run_unix_daemon(ScanService& service, const DaemonOptions& options);
std::uint64_t run_unix_daemon(InferenceServer& server, const DaemonOptions& options);

}  // namespace magic::serve
