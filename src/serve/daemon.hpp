#pragma once
// magicd daemon loops: serve the wire protocol over stdio or a Unix domain
// socket.
//
// Both modes pipeline: requests are submitted to the InferenceServer as
// they are read (so micro-batching sees real concurrency) while responses
// are flushed in request order as they resolve. A stream ends at EOF or a
// `quit` line, after which every outstanding verdict is flushed.
//
// The socket daemon accepts any number of concurrent connections (each one
// is an independent producer into the shared server) and drains gracefully
// on SIGTERM/SIGINT: stop accepting, half-close active connections, flush
// their in-flight verdicts, then drain the server queue.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/server.hpp"

namespace magic::serve {

/// Serves one request stream (the stdio mode of magicd). Returns the
/// number of scan requests submitted. Malformed lines produce an
/// {"id":"","status":"error",...} response instead of killing the stream.
std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           InferenceServer& server);

/// Options for the socket daemon loop.
struct DaemonOptions {
  std::string socket_path;
  /// Install SIGTERM/SIGINT handlers that trigger graceful drain, and
  /// ignore SIGPIPE so a vanished client cannot kill the process.
  bool handle_signals = true;
  /// Optional external stop flag (tests); polled alongside the signal flag.
  const std::atomic<bool>* external_stop = nullptr;
  /// How long the drain waits for connections to flush their in-flight
  /// verdicts before hard-closing them (bounds shutdown latency even when
  /// a client stops reading).
  std::chrono::milliseconds drain_grace{5000};
};

/// Binds `options.socket_path` (replacing a stale socket file), accepts
/// connections until a stop signal, then drains and returns the total
/// number of scan requests served. Throws std::runtime_error on socket
/// setup failure.
std::uint64_t run_unix_daemon(InferenceServer& server, const DaemonOptions& options);

}  // namespace magic::serve
