#include "serve/stats.hpp"

#include <sstream>

namespace magic::serve {

double ServerStats::mean_batch_size() const noexcept {
  std::uint64_t total = 0;
  std::uint64_t weighted = 0;
  for (std::size_t s = 0; s < batch_size_counts.size(); ++s) {
    total += batch_size_counts[s];
    weighted += batch_size_counts[s] * s;
  }
  return total == 0 ? 0.0 : static_cast<double>(weighted) / static_cast<double>(total);
}

std::string ServerStats::to_json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"rejected_full\":" << rejected_full
     << ",\"rejected_shutdown\":" << rejected_shutdown
     << ",\"expired\":" << expired << ",\"failed\":" << failed
     << ",\"batches\":" << batches << ",\"queue_depth\":" << queue_depth
     << ",\"workers\":" << workers << ",\"mean_batch_size\":" << mean_batch_size()
     << ",\"batch_size_counts\":[";
  for (std::size_t s = 1; s < batch_size_counts.size(); ++s) {
    if (s > 1) os << ',';
    os << batch_size_counts[s];
  }
  os << "],\"latency_ms\":{\"p50\":" << latency_p50_ms << ",\"p95\":" << latency_p95_ms
     << ",\"p99\":" << latency_p99_ms << ",\"mean\":" << latency_mean_ms
     << ",\"max\":" << latency_max_ms << "}}";
  return os.str();
}

StatsCollector::StatsCollector(std::size_t max_batch)
    : batch_size_counts_(max_batch + 1, 0) {}

void StatsCollector::on_batch(std::size_t batch_size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch_size >= batch_size_counts_.size()) {
    batch_size_counts_.resize(batch_size + 1, 0);
  }
  ++batch_size_counts_[batch_size];
}

void StatsCollector::on_completed(double latency_ms) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  latency_ms_.record(latency_ms);
}

ServerStats StatsCollector::snapshot(std::size_t queue_depth,
                                     std::size_t workers) const {
  ServerStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  out.expired = expired_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.queue_depth = queue_depth;
  out.workers = workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.batch_size_counts = batch_size_counts_;
    out.latency_p50_ms = latency_ms_.quantile(0.50);
    out.latency_p95_ms = latency_ms_.quantile(0.95);
    out.latency_p99_ms = latency_ms_.quantile(0.99);
    out.latency_mean_ms = latency_ms_.mean();
    out.latency_max_ms = latency_ms_.max();
  }
  return out;
}

}  // namespace magic::serve
