#include "serve/stats.hpp"

#include <sstream>

#include "util/histogram.hpp"

namespace magic::serve {

double ServerStats::mean_batch_size() const noexcept {
  std::uint64_t total = 0;
  std::uint64_t weighted = 0;
  for (std::size_t s = 0; s < batch_size_counts.size(); ++s) {
    total += batch_size_counts[s];
    weighted += batch_size_counts[s] * s;
  }
  return total == 0 ? 0.0 : static_cast<double>(weighted) / static_cast<double>(total);
}

std::string ServerStats::to_json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"rejected_full\":" << rejected_full
     << ",\"rejected_shutdown\":" << rejected_shutdown
     << ",\"expired\":" << expired << ",\"failed\":" << failed
     << ",\"batches\":" << batches << ",\"packed_batches\":" << packed_batches
     << ",\"queue_depth\":" << queue_depth
     << ",\"workers\":" << workers << ",\"mean_batch_size\":" << mean_batch_size()
     << ",\"batch_size_counts\":[";
  // Full array including index 0: the JSON must describe exactly the
  // distribution mean_batch_size() averaged over.
  for (std::size_t s = 0; s < batch_size_counts.size(); ++s) {
    if (s > 0) os << ',';
    os << batch_size_counts[s];
  }
  os << "],\"latency_ms\":{\"p50\":" << latency_p50_ms << ",\"p95\":" << latency_p95_ms
     << ",\"p99\":" << latency_p99_ms << ",\"mean\":" << latency_mean_ms
     << ",\"max\":" << latency_max_ms << "},\"cache\":" << cache.to_json() << "}";
  return os.str();
}

std::string ReactorStats::to_json() const {
  std::ostringstream os;
  os << "{\"accepted\":" << accepted << ",\"closed\":" << closed
     << ",\"active\":" << active << ",\"requests\":" << requests
     << ",\"read_pauses\":" << read_pauses
     << ",\"write_stalls\":" << write_stalls << ",\"wakeups\":" << wakeups
     << ",\"accept_parks\":" << accept_parks << "}";
  return os.str();
}

StatsCollector::StatsCollector(std::size_t max_batch)
    : batch_size_counts_(max_batch + 1, 0) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  global_.submitted = &registry.counter("serve.submitted");
  global_.completed = &registry.counter("serve.completed");
  global_.rejected_full = &registry.counter("serve.rejected_full");
  global_.rejected_shutdown = &registry.counter("serve.rejected_shutdown");
  global_.expired = &registry.counter("serve.expired");
  global_.failed = &registry.counter("serve.failed");
  global_.batches = &registry.counter("serve.batches");
  global_.packed_batches = &registry.counter("serve.packed_batches");
  global_.latency_ms = &registry.histogram("serve.latency_ms");
}

void StatsCollector::on_batch(std::size_t batch_size) {
  bump(batches_, global_.batches);
  util::MutexLock lock(batch_mutex_);
  if (batch_size >= batch_size_counts_.size()) {
    batch_size_counts_.resize(batch_size + 1, 0);
  }
  ++batch_size_counts_[batch_size];
}

void StatsCollector::on_completed(double latency_ms) {
  bump(completed_, global_.completed);
  latency_ms_.record(latency_ms);
  if (obs::enabled()) global_.latency_ms->record(latency_ms);
}

ServerStats StatsCollector::snapshot(std::size_t queue_depth,
                                     std::size_t workers) const {
  ServerStats out;
  out.submitted = submitted_.value();
  out.completed = completed_.value();
  out.rejected_full = rejected_full_.value();
  out.rejected_shutdown = rejected_shutdown_.value();
  out.expired = expired_.value();
  out.failed = failed_.value();
  out.batches = batches_.value();
  out.packed_batches = packed_batches_.value();
  out.queue_depth = queue_depth;
  out.workers = workers;
  {
    util::MutexLock lock(batch_mutex_);
    out.batch_size_counts = batch_size_counts_;
  }
  const util::Histogram latency = latency_ms_.snapshot();
  out.latency_p50_ms = latency.quantile(0.50);
  out.latency_p95_ms = latency.quantile(0.95);
  out.latency_p99_ms = latency.quantile(0.99);
  out.latency_mean_ms = latency.mean();
  out.latency_max_ms = latency.max();
  return out;
}

}  // namespace magic::serve
