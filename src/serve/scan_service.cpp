#include "serve/scan_service.hpp"

#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "tensor/simd/dispatch.hpp"

namespace magic::serve {

std::string stats_payload_suffix() {
  return ",\"simd_level\":\"" +
         std::string(tensor::simd::level_name(tensor::simd::active_level())) +
         "\",\"obs\":" + obs::MetricsRegistry::global().snapshot_json();
}

std::string control_error_line(const std::string& message) {
  return "{\"status\":\"error\",\"error\":\"" + wire::json_escape(message) + "\"}";
}

bool read_file_to_string(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

PendingVerdict ServerScanService::submit_listing(std::string_view listing,
                                                 const std::string& version) {
  if (!version.empty()) {
    Verdict verdict;
    verdict.status = VerdictStatus::Error;
    verdict.error = "model version override '" + version +
                    "' requires a model registry (single-model daemon)";
    return PendingVerdict::resolved(std::move(verdict));
  }
  return server_.submit_listing(listing);
}

std::string ServerScanService::stats_json() {
  return "{\"server\":" + server_.stats().to_json() + stats_payload_suffix() + "}";
}

std::string ServerScanService::control(const wire::Request& request) {
  const char* op =
      request.kind == wire::Request::Kind::Reload ? "reload" : "shadow";
  return control_error_line(std::string(op) +
                            " requires a model registry (single-model daemon)");
}

}  // namespace magic::serve
