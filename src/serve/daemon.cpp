#include "serve/daemon.hpp"

#include <csignal>
#include <deque>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "serve/reactor.hpp"
#include "serve/scan_service.hpp"
#include "serve/wire.hpp"

namespace magic::serve {
namespace {

/// One in-order response slot: either a pending verdict or an
/// already-rendered line (parse errors, control replies, stats).
struct ResponseEntry {
  std::string id;
  PendingVerdict pending;  // invalid when ready_line / is_stats is used
  std::string ready_line;
  bool is_stats = false;   // render the snapshot at flush time, so it
                           // reflects the requests ordered before it
};

/// True for the documented no-response lines: blank or '#' comment.
bool ignorable_line(std::string_view line) {
  const std::size_t first = line.find_first_not_of(" \t\r");
  return first == std::string_view::npos || line[first] == '#';
}

/// Blocking protocol loop of the stdio mode. `read_line` returns false at
/// end of stream; `write_line_fn` emits one response line. (The socket
/// daemon runs the same protocol event-driven — serve/reactor.cpp.)
std::uint64_t serve_lines(const std::function<bool(std::string&)>& read_line,
                          const std::function<void(std::string_view)>& write_line_fn,
                          ScanService& service) {
  // Bounds the number of outstanding responses per stream; beyond it the
  // reader blocks on the oldest verdict (per-stream flow control on top of
  // the server's global admission control).
  constexpr std::size_t kMaxPending = 512;

  std::uint64_t served = 0;
  std::deque<ResponseEntry> pending;

  auto flush_front = [&] {
    ResponseEntry& front = pending.front();
    if (front.pending.valid()) {
      write_line_fn(wire::verdict_to_json(front.id, front.pending.get()));
    } else if (front.is_stats) {
      write_line_fn(service.stats_json());
    } else {
      write_line_fn(front.ready_line);
    }
    pending.pop_front();
  };
  auto flush_ready = [&] {
    while (!pending.empty() &&
           (!pending.front().pending.valid() || pending.front().pending.ready())) {
      flush_front();
    }
  };

  std::string line;
  bool quit = false;
  while (!quit && read_line(line)) {
    ResponseEntry entry;
    try {
      const auto request = wire::parse_request_line(line);
      if (!request) {
        // The parser returns nullopt only for ignorable lines; anything
        // else would be a silently dropped request, so answer it.
        if (!ignorable_line(line)) {
          Verdict verdict;
          verdict.status = VerdictStatus::Error;
          verdict.error = "unparseable request line";
          entry.ready_line = wire::verdict_to_json("", verdict);
          pending.push_back(std::move(entry));
        }
        flush_ready();
        continue;
      }
      switch (request->kind) {
        case wire::Request::Kind::Quit:
          quit = true;
          break;
        case wire::Request::Kind::Stats:
          entry.is_stats = true;
          pending.push_back(std::move(entry));
          break;
        case wire::Request::Kind::Reload:
        case wire::Request::Kind::Shadow:
          // Inline on the stream thread: control is rare and may block
          // anyway (a reload materializes a model). Never throws.
          entry.ready_line = service.control(*request);
          pending.push_back(std::move(entry));
          break;
        case wire::Request::Kind::Path: {
          entry.id = request->id;
          std::string listing;
          if (!read_file_to_string(request->payload, listing)) {
            Verdict verdict;
            verdict.status = VerdictStatus::Error;
            verdict.error = "cannot open " + request->payload;
            entry.ready_line = wire::verdict_to_json(entry.id, verdict);
          } else {
            entry.pending = service.submit_listing(listing, request->version);
            ++served;
          }
          pending.push_back(std::move(entry));
          break;
        }
        case wire::Request::Kind::Base64:
          entry.id = request->id;
          entry.pending = service.submit_listing(request->payload, request->version);
          ++served;
          pending.push_back(std::move(entry));
          break;
      }
    } catch (const std::exception& e) {
      Verdict verdict;
      verdict.status = VerdictStatus::Error;
      verdict.error = e.what();
      entry.ready_line = wire::verdict_to_json(entry.id, verdict);
      pending.push_back(std::move(entry));
    }
    if (pending.size() >= kMaxPending) flush_front();  // blocks on oldest
    flush_ready();
  }
  while (!pending.empty()) flush_front();  // blocking flush at end of stream
  return served;
}

// ---------------------------------------------------------------------------
// Signal plumbing: the handler may only touch a lock-free atomic flag.

std::atomic<bool> g_signal_stop{false};

void stop_signal_handler(int) { g_signal_stop.store(true, std::memory_order_relaxed); }

}  // namespace

std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           ScanService& service) {
  auto read_line = [&in](std::string& line) {
    return static_cast<bool>(std::getline(in, line));
  };
  auto write = [&out](std::string_view line) {
    out << line << '\n';
    out.flush();
  };
  return serve_lines(read_line, write, service);
}

std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           InferenceServer& server) {
  ServerScanService service(server);
  return serve_stream(in, out, service);
}

std::uint64_t run_unix_daemon(ScanService& service, const DaemonOptions& options) {
  if (options.handle_signals) {
    g_signal_stop.store(false, std::memory_order_relaxed);
    struct sigaction action {};
    action.sa_handler = stop_signal_handler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    // Belt and braces on top of MSG_NOSIGNAL in the reactor's writes: a
    // client that disconnects mid-response must never SIGPIPE-kill the
    // daemon.
    ::signal(SIGPIPE, SIG_IGN);
  }

  auto should_stop = [&options] {
    if (options.handle_signals && g_signal_stop.load(std::memory_order_relaxed)) {
      return true;
    }
    return options.external_stop != nullptr &&
           options.external_stop->load(std::memory_order_acquire);
  };
  return run_reactor(service, options, should_stop);
}

std::uint64_t run_unix_daemon(InferenceServer& server, const DaemonOptions& options) {
  ServerScanService service(server);
  return run_unix_daemon(service, options);
}

}  // namespace magic::serve
