#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/wire.hpp"
#include "tensor/simd/dispatch.hpp"
#include "util/join_thread.hpp"

namespace magic::serve {
namespace {

/// The `stats` wire response: the per-server snapshot, the SIMD dispatch
/// level the math kernels run at, plus the process-wide metrics registry
/// (extraction spans, serve latency quantiles, ...).
std::string stats_payload(InferenceServer& server) {
  return "{\"server\":" + server.stats().to_json() + ",\"simd_level\":\"" +
         tensor::simd::level_name(tensor::simd::active_level()) +
         "\",\"obs\":" + obs::MetricsRegistry::global().snapshot_json() + "}";
}

/// One in-order response slot: either a pending verdict or an
/// already-rendered line (parse errors, stats).
struct ResponseEntry {
  std::string id;
  PendingVerdict pending;     // invalid when ready_line / is_stats is used
  std::string ready_line;
  bool is_stats = false;      // render the snapshot at flush time, so it
                              // reflects the requests ordered before it
};

/// Core protocol loop shared by the stdio and socket paths. `read_line`
/// returns false at end of stream; `write_line_fn` emits one response line.
std::uint64_t serve_lines(const std::function<bool(std::string&)>& read_line,
                          const std::function<void(std::string_view)>& write_line_fn,
                          InferenceServer& server) {
  // Bounds the number of outstanding responses per stream; beyond it the
  // reader blocks on the oldest verdict (per-connection flow control on
  // top of the server's global admission control).
  constexpr std::size_t kMaxPending = 512;

  std::uint64_t served = 0;
  std::deque<ResponseEntry> pending;

  auto flush_front = [&] {
    ResponseEntry& front = pending.front();
    if (front.pending.valid()) {
      write_line_fn(wire::verdict_to_json(front.id, front.pending.get()));
    } else if (front.is_stats) {
      write_line_fn(stats_payload(server));
    } else {
      write_line_fn(front.ready_line);
    }
    pending.pop_front();
  };
  auto flush_ready = [&] {
    while (!pending.empty() &&
           (!pending.front().pending.valid() || pending.front().pending.ready())) {
      flush_front();
    }
  };

  std::string line;
  bool quit = false;
  while (!quit && read_line(line)) {
    ResponseEntry entry;
    try {
      const auto request = wire::parse_request_line(line);
      if (!request) {
        flush_ready();
        continue;
      }
      switch (request->kind) {
        case wire::Request::Kind::Quit:
          quit = true;
          break;
        case wire::Request::Kind::Stats:
          entry.is_stats = true;
          pending.push_back(std::move(entry));
          break;
        case wire::Request::Kind::Path: {
          entry.id = request->id;
          std::ifstream file(request->payload);
          if (!file) {
            Verdict verdict;
            verdict.status = VerdictStatus::Error;
            verdict.error = "cannot open " + request->payload;
            entry.ready_line = wire::verdict_to_json(entry.id, verdict);
          } else {
            std::ostringstream buffer;
            buffer << file.rdbuf();
            entry.pending = server.submit_listing(buffer.str());
            ++served;
          }
          pending.push_back(std::move(entry));
          break;
        }
        case wire::Request::Kind::Base64:
          entry.id = request->id;
          entry.pending = server.submit_listing(request->payload);
          ++served;
          pending.push_back(std::move(entry));
          break;
      }
    } catch (const std::exception& e) {
      Verdict verdict;
      verdict.status = VerdictStatus::Error;
      verdict.error = e.what();
      entry.ready_line = wire::verdict_to_json(entry.id, verdict);
      pending.push_back(std::move(entry));
    }
    if (pending.size() >= kMaxPending) flush_front();  // blocks on oldest
    flush_ready();
  }
  while (!pending.empty()) flush_front();  // blocking flush at end of stream
  return served;
}

// ---------------------------------------------------------------------------
// Signal plumbing: the handler may only touch a lock-free atomic flag.

std::atomic<bool> g_signal_stop{false};

void stop_signal_handler(int) { g_signal_stop.store(true, std::memory_order_relaxed); }

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": errno " + std::to_string(errno));
}

int bind_unix_listener(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("magicd: bad socket path '" + socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("magicd: socket");
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("magicd: cannot bind " + socket_path + " (errno " +
                             std::to_string(errno) + ")");
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("magicd: listen");
  }
  return fd;
}

}  // namespace

std::uint64_t serve_stream(std::istream& in, std::ostream& out,
                           InferenceServer& server) {
  auto read_line = [&in](std::string& line) {
    return static_cast<bool>(std::getline(in, line));
  };
  auto write = [&out](std::string_view line) {
    out << line << '\n';
    out.flush();
  };
  return serve_lines(read_line, write, server);
}

std::uint64_t run_unix_daemon(InferenceServer& server, const DaemonOptions& options) {
  if (options.handle_signals) {
    g_signal_stop.store(false, std::memory_order_relaxed);
    struct sigaction action {};
    action.sa_handler = stop_signal_handler;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    // Belt and braces on top of MSG_NOSIGNAL in wire::write_line: a client
    // that disconnects mid-response must never SIGPIPE-kill the daemon.
    ::signal(SIGPIPE, SIG_IGN);
  }

  const int listen_fd = bind_unix_listener(options.socket_path);

  // One entry per live connection. Only the accept/drain thread touches
  // this vector; connection threads touch just their own fd and done flag,
  // and the fd stays open until after the join, so a recycled fd number can
  // never be shut down by mistake.
  struct Connection {
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
    util::JoinThread thread;
  };
  std::vector<Connection> connections;
  std::atomic<std::uint64_t> served{0};

  auto reap_finished = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        ::close(it->fd);
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto should_stop = [&] {
    if (options.handle_signals && g_signal_stop.load(std::memory_order_relaxed)) {
      return true;
    }
    return options.external_stop != nullptr &&
           options.external_stop->load(std::memory_order_acquire);
  };

  while (!should_stop()) {
    reap_finished();  // join finished connection threads as we go
    pollfd poller{};
    poller.fd = listen_fd;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks should_stop
      ::close(listen_fd);
      throw_errno("magicd: poll");
    }
    if (ready == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener torn down
    }
    connections.push_back(Connection{conn_fd, std::make_shared<std::atomic<bool>>(false), {}});
    Connection& conn = connections.back();
    conn.thread = util::JoinThread([conn_fd, done = conn.done, &server, &served] {
      wire::FdLineReader reader(conn_fd);
      auto read_line = [&reader](std::string& line) { return reader.next_line(line); };
      auto write = [conn_fd](std::string_view line) { wire::write_line(conn_fd, line); };
      try {
        served.fetch_add(serve_lines(read_line, write, server),
                         std::memory_order_relaxed);
      } catch (const std::exception&) {
        // Client went away mid-response; drop the connection silently.
      }
      done->store(true, std::memory_order_release);
    });
  }

  // Graceful drain: stop accepting, half-close connection read sides so
  // blocked reads see EOF and the protocol loops flush pending verdicts.
  ::close(listen_fd);
  for (const Connection& conn : connections) ::shutdown(conn.fd, SHUT_RD);

  // Give well-behaved connections a grace period to finish flushing, then
  // hard-close stragglers (peers that stopped reading): their blocked
  // writes fail fast and the per-connection catch drops the connection,
  // so the joins below cannot hang.
  const auto grace_deadline = std::chrono::steady_clock::now() + options.drain_grace;
  auto all_done = [&connections] {
    for (const Connection& conn : connections) {
      if (!conn.done->load(std::memory_order_acquire)) return false;
    }
    return true;
  };
  while (!all_done() && std::chrono::steady_clock::now() < grace_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (const Connection& conn : connections) {
    if (!conn.done->load(std::memory_order_acquire)) ::shutdown(conn.fd, SHUT_RDWR);
  }
  for (Connection& conn : connections) {
    if (conn.thread.joinable()) conn.thread.join();
    ::close(conn.fd);
  }
  server.stop(/*drain=*/true);
  ::unlink(options.socket_path.c_str());
  return served.load(std::memory_order_relaxed);
}

}  // namespace magic::serve
