// magicd: the MAGIC scan daemon (the resident half of the paper's §VII
// cloud deployment).
//
// Serving (requires a trained model, see model_io.cpp for the format):
//   magicd --model FILE                     stdio mode: newline-delimited
//                                           requests on stdin, JSON verdicts
//                                           on stdout (see serve/wire.hpp)
//   magicd --model FILE --socket PATH      Unix-domain-socket daemon (one
//                                           epoll event loop; any number of
//                                           concurrent clients); graceful
//                                           drain on SIGTERM/SIGINT
// The daemon serves a versioned model registry: the --model checkpoint is
// version --model-version (default "v1"); more versions load at startup
// (--load NAME=FILE) or live (`reload NAME FILE` on the wire, which also
// hot-swaps the default without dropping in-flight requests). Shadow mode
// (--shadow NAME:FRACTION, or `shadow NAME FRACTION` on the wire) mirrors a
// fraction of traffic to a candidate version and counts family agreement.
// Tuning: --workers N --queue N --batch N --window-us U --deadline-ms D
//         --cache-bytes N (verdict-cache budget; 0 disables; default 64 MiB)
//         --io-workers N (socket daemon's extraction workers)
//
// Bootstrap (demo/CI; no real corpus required):
//   magicd --selftrain FILE [--samples-dir DIR] [--scale F] [--epochs N]
//                                           trains a small classifier on the
//                                           synthetic YANCFG-style corpus,
//                                           saves it to FILE and optionally
//                                           writes demo listings to DIR.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/classifier.hpp"
#include "obs/metrics.hpp"
#include "serve/daemon.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "tensor/simd/dispatch.hpp"
#include "util/join_thread.hpp"
#include "util/logging.hpp"
#include "util/mutex.hpp"
#include "util/timer.hpp"

namespace {

using namespace magic;

struct Options {
  std::string model_path;
  std::string selftrain_path;
  std::string samples_dir;
  std::string socket_path;
  std::string model_version = "v1";
  /// Extra versions to load at startup: (name, checkpoint path).
  std::vector<std::pair<std::string, std::string>> preload;
  /// Startup shadow spec: (version, fraction); empty version = off.
  std::string shadow_version;
  double shadow_fraction = 0.0;
  std::size_t io_workers = 0;
  serve::ServeConfig serve;
  double scale = 0.004;
  std::size_t epochs = 12;
  /// Selftrain graph-convolution operator ("paper", "sage" or "tag").
  std::string op = "paper";
  std::uint64_t seed = 13;
  /// Period of the stats flush to the log (0 = off).
  std::size_t stats_every_s = 0;
  bool log_json = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --model FILE [--socket PATH]\n"
      << "           [--model-version NAME] [--load NAME=FILE ...]\n"
      << "           [--shadow NAME:FRACTION] [--io-workers N]\n"
      << "           [--workers N] [--queue N] [--batch N] [--window-us U]\n"
      << "           [--deadline-ms D] [--cache-bytes N] [--stats-every SECS]\n"
      << "           [--log-json]\n"
      << "       " << argv0 << " --selftrain FILE [--samples-dir DIR]\n"
      << "           [--scale F] [--epochs N] [--seed S] [--op paper|sage|tag]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  // The daemon caches by default: repeated uploads of the same binary are
  // the common case a resident scanner exists for. --cache-bytes 0 disables.
  opt.serve.cache_bytes = 64ull << 20;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  // Numeric conversions must not leak exceptions out of parse(): a bad flag
  // value ("--workers abc") prints the usage message instead of aborting.
  auto numeric = [&](auto convert, const std::string& value) {
    try {
      std::size_t consumed = 0;
      const auto parsed = convert(value, &consumed);
      if (consumed != value.size()) usage(argv[0]);
      return parsed;
    } catch (const std::exception&) {
      usage(argv[0]);
    }
  };
  auto as_ul = [&](const std::string& v) {
    return numeric([](const std::string& s, std::size_t* pos) { return std::stoul(s, pos); }, v);
  };
  auto as_l = [&](const std::string& v) {
    return numeric([](const std::string& s, std::size_t* pos) { return std::stol(s, pos); }, v);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--model") opt.model_path = need_value(i);
    else if (arg == "--selftrain") opt.selftrain_path = need_value(i);
    else if (arg == "--samples-dir") opt.samples_dir = need_value(i);
    else if (arg == "--socket") opt.socket_path = need_value(i);
    else if (arg == "--workers") opt.serve.workers = as_ul(need_value(i));
    else if (arg == "--queue") opt.serve.queue_capacity = as_ul(need_value(i));
    else if (arg == "--batch") opt.serve.max_batch = as_ul(need_value(i));
    else if (arg == "--window-us")
      opt.serve.batch_window = std::chrono::microseconds(as_l(need_value(i)));
    else if (arg == "--deadline-ms")
      opt.serve.default_deadline = std::chrono::milliseconds(as_l(need_value(i)));
    else if (arg == "--cache-bytes") opt.serve.cache_bytes = as_ul(need_value(i));
    else if (arg == "--io-workers") opt.io_workers = as_ul(need_value(i));
    else if (arg == "--model-version") opt.model_version = need_value(i);
    else if (arg == "--load") {
      const std::string spec = need_value(i);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) usage(argv[0]);
      opt.preload.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    }
    else if (arg == "--shadow") {
      const std::string spec = need_value(i);
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) usage(argv[0]);
      opt.shadow_version = spec.substr(0, colon);
      opt.shadow_fraction = numeric(
          [](const std::string& s, std::size_t* pos) { return std::stod(s, pos); },
          spec.substr(colon + 1));
      if (opt.shadow_fraction < 0.0 || opt.shadow_fraction > 1.0) usage(argv[0]);
    }
    else if (arg == "--scale")
      opt.scale = numeric([](const std::string& s, std::size_t* pos) { return std::stod(s, pos); },
                          need_value(i));
    else if (arg == "--stats-every") opt.stats_every_s = as_ul(need_value(i));
    else if (arg == "--log-json") opt.log_json = true;
    else if (arg == "--epochs") opt.epochs = as_ul(need_value(i));
    else if (arg == "--op") opt.op = need_value(i);
    else if (arg == "--seed")
      opt.seed = numeric([](const std::string& s, std::size_t* pos) { return std::stoull(s, pos); },
                         need_value(i));
    else usage(argv[0]);
  }
  if (opt.model_path.empty() == opt.selftrain_path.empty()) usage(argv[0]);
  return opt;
}

int selftrain(const Options& opt) {
  util::ThreadPool pool;
  std::cerr << "magicd: generating a YANCFG-style corpus (scale " << opt.scale
            << ")...\n";
  data::Dataset corpus = data::yancfg_like_corpus(opt.scale, opt.seed, pool);
  std::cerr << "magicd: " << corpus.size() << " samples, "
            << corpus.num_families() << " families; training "
            << opt.epochs << " epochs...\n";

  core::DgcnnConfig config;
  config.pooling = core::PoolingType::AdaptivePooling;
  config.pooling_ratio = 0.2;
  config.graph_conv_channels = {32, 32};
  config.dropout_rate = 0.5;
  config.graph_conv_op = nn::parse_graph_conv_operator(opt.op);
  core::TrainOptions train;
  train.epochs = opt.epochs;
  train.batch_size = 10;
  train.learning_rate = 3e-3;
  train.weight_decay = 1e-4;
  train.balance_families = true;
  train.balance_strength = 0.5;

  core::MagicClassifier clf(config, train, opt.seed);
  util::Timer timer;
  clf.fit(corpus, 0.15);
  std::cerr << "magicd: trained in " << timer.seconds() << "s\n";
  clf.save_file(opt.selftrain_path);
  std::cerr << "magicd: model saved to " << opt.selftrain_path << "\n";

  if (!opt.samples_dir.empty()) {
    std::filesystem::create_directories(opt.samples_dir);
    const auto specs = data::yancfg_family_specs();
    std::size_t written = 0;
    for (const std::size_t family : {std::size_t{3}, std::size_t{9}, std::size_t{1}}) {
      data::ProgramGenerator gen(specs[family], util::Rng(opt.seed * 100 + family));
      const std::string path = opt.samples_dir + "/" + specs[family].name + ".asm";
      std::ofstream out(path);
      out << gen.generate_listing();
      if (!out) {
        std::cerr << "magicd: cannot write " << path << "\n";
        return 1;
      }
      ++written;
    }
    std::cerr << "magicd: wrote " << written << " demo listings to "
              << opt.samples_dir << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client (or shell pipe) that vanishes mid-response must surface as a
  // write error, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    const Options opt = parse(argc, argv);
    if (opt.log_json) util::set_log_format(util::LogFormat::Json);
    // The daemon always collects metrics: the `stats` wire command and the
    // periodic flush both read the process-wide registry.
    obs::set_enabled(true);
    if (!opt.selftrain_path.empty()) return selftrain(opt);

    auto clf = std::make_unique<core::MagicClassifier>(
        core::MagicClassifier::load_file(opt.model_path));
    const std::size_t families = clf->family_names().size();
    const char* conv_op =
        nn::graph_conv_operator_name(clf->config().graph_conv_op);
    serve::ModelRegistry registry(opt.model_version, std::move(clf), opt.serve);
    for (const auto& [name, path] : opt.preload) {
      registry.load_version(name, path, /*make_default=*/false);
      std::cerr << "magicd: loaded version " << name << " from " << path << "\n";
    }
    if (!opt.shadow_version.empty()) {
      registry.set_shadow(opt.shadow_version, opt.shadow_fraction);
      std::cerr << "magicd: shadowing " << opt.shadow_fraction
                << " of traffic to version " << opt.shadow_version << "\n";
    }
    std::cerr << "magicd: model " << opt.model_path << " (version "
              << opt.model_version << ", " << families << " families), "
              << opt.serve.workers << " workers, queue "
              << opt.serve.queue_capacity << ", batch "
              << opt.serve.max_batch << " @ "
              << opt.serve.batch_window.count() << "us, cache "
              << (opt.serve.cache_bytes == 0
                      ? std::string("off")
                      : std::to_string(opt.serve.cache_bytes >> 20) + " MiB")
              << ", simd "
              << tensor::simd::level_name(tensor::simd::active_level())
              << ", op " << conv_op << "\n";

    // Optional periodic stats flush: the same payload as the `stats` wire
    // command, logged at Info every --stats-every seconds. Stopped via a
    // condition variable so shutdown never waits out a full period.
    std::atomic<bool> stats_stop{false};
    util::Mutex stats_mutex;  // magic-lint: guards(the stop handshake below)
    util::CondVar stats_cv;
    util::JoinThread stats_thread;
    if (opt.stats_every_s > 0) {
      stats_thread = util::JoinThread([&] {
        const auto period = std::chrono::seconds(opt.stats_every_s);
        util::MutexLock lock(stats_mutex);
        for (;;) {
          // Deadline-based wait so a spurious wakeup never shortens (or a
          // notify never stretches) the logging period.
          const auto deadline = std::chrono::steady_clock::now() + period;
          while (!stats_stop.load(std::memory_order_relaxed) &&
                 stats_cv.wait_until(lock, deadline) != std::cv_status::timeout) {
          }
          if (stats_stop.load(std::memory_order_relaxed)) return;
          MAGIC_CLOG(util::LogLevel::Info, "serve",
                     "stats " << registry.stats_json());
        }
      });
    }
    auto stop_stats_thread = [&] {
      if (!stats_thread.joinable()) return;
      {
        // The store happens under the mutex so a waiter between its flag
        // check and its wait cannot miss the notify.
        util::MutexLock lock(stats_mutex);
        stats_stop.store(true, std::memory_order_relaxed);
      }
      stats_cv.notify_all();
      stats_thread.join();
    };

    std::uint64_t served = 0;
    if (opt.socket_path.empty()) {
      std::cerr << "magicd: serving stdio (one request per line; 'quit' ends)\n";
      served = serve::serve_stream(std::cin, std::cout, registry);
      registry.drain();
    } else {
      std::cerr << "magicd: listening on " << opt.socket_path << "\n";
      serve::DaemonOptions daemon;
      daemon.socket_path = opt.socket_path;
      daemon.io_workers = opt.io_workers;
      served = serve::run_unix_daemon(registry, daemon);
    }
    stop_stats_thread();
    const serve::ServerStats stats = registry.default_server_stats();
    std::cerr << "magicd: drained; served " << served << " requests ("
              << stats.completed << " ok, " << stats.rejected_full
              << " rejected, " << stats.expired << " expired, " << stats.failed
              << " failed)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "magicd: fatal: " << e.what() << "\n";
    return 1;
  }
}
