#pragma once
// Epoll-based event loop for the magicd socket daemon.
//
// One reactor thread owns the listener and every connection fd. Reads are
// non-blocking and feed per-connection line buffers; each parsed request
// becomes an in-order response entry on that connection's pending deque.
// Extraction and scoring never run on the loop: scan and control requests
// are dispatched to a small worker pool, and verdict completion hooks
// (PendingVerdict::on_ready) wake the loop through an eventfd when a
// response at the front of a deque becomes flushable.
//
// Flow control, per connection:
//  - responses flush strictly in request order (protocol invariant);
//  - past `max_pending_per_connection` outstanding responses the loop
//    stops reading that connection (EPOLLIN deregistered) and resumes at
//    half the limit — backpressure lands on the one slow client;
//  - each readable pass consumes at most `read_chunk_bytes` of raw input,
//    so a fast pipelining writer can neither balloon the input buffer
//    ahead of parsing nor monopolize the loop (level-triggered epoll
//    re-delivers the remainder);
//  - a connection paused behind an in-flight `reload`/`shadow` barrier
//    stays paused until the control's completion hook wakes the loop — a
//    blocking reload never spins it;
//  - a client that stops reading accumulates an output buffer; if no write
//    progress happens for `write_stall_timeout` the connection is dropped,
//    so one stuck peer can never wedge the daemon;
//  - fd exhaustion (EMFILE/ENFILE on accept) parks the listener for a tick
//    instead of letting the level-triggered event spin the loop.
//
// Shutdown replicates the thread-per-connection daemon's semantics: on a
// stop signal the listener closes, already-buffered request lines are still
// parsed, in-flight verdicts get `drain_grace` to flush, stragglers are
// hard-closed, and finally the ScanService drains (resolving everything
// still queued). If the event loop itself dies (epoll failure, injected
// fault), every connection fd is torn down *before* the error propagates —
// a dying loop must never leave peers attached to a daemon that will not
// serve them again.

#include <cstdint>
#include <functional>

#include "serve/daemon.hpp"

namespace magic::serve {

class ScanService;

/// Runs the reactor until `should_stop` returns true (checked at least
/// every ~200ms), then drains gracefully. Returns the number of scan
/// requests submitted to the service. Throws std::runtime_error on socket
/// setup failure or a fatal event-loop error — after tearing down every
/// connection fd.
std::uint64_t run_reactor(ScanService& service, const DaemonOptions& options,
                          const std::function<bool()>& should_stop);

}  // namespace magic::serve
