#pragma once
// magicd wire protocol: newline-delimited requests in, JSON verdicts out.
//
// Request lines (fields separated by whitespace):
//   <id> path <file>      classify the assembly listing stored at <file>
//   <id> b64 <base64>     classify the base64-encoded listing inline
//   stats                 emit a ServerStats JSON line
//   reload <name> <path>  load the checkpoint at <path> as model version
//                         <name> and atomically make it the default
//                         (model-registry daemons only)
//   shadow <name> <frac>  mirror `frac` of scan traffic to version <name>
//                         and count agreement; `shadow off` disables
//   quit                  drain and close this stream
// Blank lines and lines starting with '#' are ignored. A scan id may carry
// a per-request model-version override as `<id>@<version>` — the suffix is
// stripped from the id echoed back in the response.
//
// Response lines (one JSON object per request, in request order):
//   {"id":"a1","status":"ok","family":"Swizzor","family_index":9,
//    "confidence":0.98,"probabilities":[...],"latency_ms":1.42}
//   {"id":"a2","status":"rejected_queue_full","latency_ms":0.01}
//   {"id":"a3","status":"error","error":"..."}
//
// This header also carries the small POSIX helpers shared by the daemon
// and its clients (line-buffered fd reader, full-line writer, Unix-domain
// socket client).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/verdict.hpp"

namespace magic::serve::wire {

/// One parsed request line.
struct Request {
  enum class Kind { Path, Base64, Stats, Reload, Shadow, Quit };
  Kind kind = Kind::Quit;
  std::string id;
  std::string payload;  ///< file path or decoded listing text
  /// Scan requests: per-request model-version override from `<id>@<version>`
  /// (empty = default version). Reload/Shadow: the target version name
  /// (empty for `shadow off`).
  std::string version;
  /// Shadow only: fraction of traffic to mirror, in [0, 1].
  double fraction = 0.0;
};

/// Parses one request line. Returns nullopt ONLY for ignorable lines
/// (blank / '#' comments — the documented no-response cases); every other
/// malformed input throws std::runtime_error (unknown kind, missing fields,
/// bad base64, bad shadow fraction) so the caller can emit exactly one
/// error response per request line.
std::optional<Request> parse_request_line(std::string_view line);

std::string base64_encode(std::string_view data);
/// Throws std::runtime_error on characters outside the base64 alphabet, a
/// truncated final quantum, or misplaced '=' (padding is only accepted as
/// up to two trailing characters). Accepts both padded and unpadded input.
std::string base64_decode(std::string_view data);

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Renders one verdict as a single-line JSON object (no trailing newline).
std::string verdict_to_json(std::string_view id, const Verdict& verdict);

/// Line-buffered reader over a file descriptor (socket or pipe).
class FdLineReader {
 public:
  explicit FdLineReader(int fd) : fd_(fd) {}
  /// Reads the next '\n'-terminated line (terminator stripped). Returns
  /// false at EOF; a final unterminated line is returned before EOF.
  bool next_line(std::string& out);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Writes all of `line` plus '\n'; throws std::runtime_error on failure.
/// Socket fds are written with MSG_NOSIGNAL (a vanished peer raises EPIPE,
/// not process-killing SIGPIPE) and time out after ~30s if the peer stops
/// reading, so one stuck client can never wedge the daemon.
void write_line(int fd, std::string_view line);

/// Blocking Unix-domain stream-socket client (used by `malware_scanner
/// --serve` and the smoke tests).
class UnixClient {
 public:
  /// Connects to the daemon socket; throws std::runtime_error on failure.
  explicit UnixClient(const std::string& socket_path);
  ~UnixClient();

  UnixClient(const UnixClient&) = delete;
  UnixClient& operator=(const UnixClient&) = delete;

  void send_line(std::string_view line);
  /// Signals end-of-requests (half-close); responses can still be read.
  void finish_sending();
  bool recv_line(std::string& out);

 private:
  int fd_ = -1;
  FdLineReader reader_;
};

}  // namespace magic::serve::wire
