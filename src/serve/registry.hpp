#pragma once
// ModelRegistry: several checkpoint versions served side by side, with
// atomic hot-swap of the default and shadow-mode candidate evaluation.
//
// Each version owns its model and a dedicated InferenceServer (its own
// replicas, queue, cache and stats), held in a shared_ptr. A scan resolves
// its target version under the registry mutex, takes a reference, and
// submits outside the lock — so `reload` swaps the default pointer without
// ever blocking scans or dropping requests: in-flight verdicts are owned by
// the old version's server, which keeps living until the last reference
// drops and then drains itself (InferenceServer's destructor resolves every
// queued request before returning).
//
// Shadow mode mirrors a deterministic fraction of scan traffic to a
// candidate version: request n is mirrored iff floor((n+1)*f) > floor(n*f),
// so `mirrored` counts are exact, not probabilistic. Both verdicts are
// joined through completion hooks (no dedicated thread): when the pair is
// resolved, family agreement is counted into the registry's local counters
// and — while obs::enabled() — the process-wide "registry.shadow_*"
// metrics.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "magic/classifier.hpp"
#include "obs/metrics.hpp"
#include "serve/scan_service.hpp"
#include "serve/server.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace magic::serve {

/// Point-in-time view of the registry (rendered into the `stats` payload).
struct RegistryStats {
  std::string default_version;
  std::vector<std::string> versions;  ///< sorted by name
  /// Graph-convolution operator of versions[i] ("paper"/"sage"/"tag"),
  /// parallel to `versions` — an operator A/B shadow deployment reads which
  /// formula each served version runs from here.
  std::vector<std::string> operators;
  std::uint64_t reloads = 0;
  std::string shadow_version;  ///< empty when shadow mode is off
  double shadow_fraction = 0.0;
  std::uint64_t shadow_mirrored = 0;
  std::uint64_t shadow_agreed = 0;
  std::uint64_t shadow_disagreed = 0;
  /// Pairs where either verdict was not Ok (incomparable).
  std::uint64_t shadow_failed = 0;

  std::string to_json() const;
};

/// Shadow-pair agreement predicate: true when two Ok verdicts name the
/// same family. Compares family *names*, not indices — the primary and
/// shadow verdicts come from different model versions whose family
/// orderings (or sets) can differ, so equal indices do not imply the same
/// family. Either verdict not Ok makes the pair incomparable (false; the
/// caller counts it as `shadow_failed`, not disagreement).
bool verdicts_agree(const Verdict& primary, const Verdict& shadow) noexcept;

/// ScanService over a set of named model versions.
class ModelRegistry final : public ScanService {
 public:
  /// Starts with one version (the default). `config` applies to this and
  /// every later-loaded version's InferenceServer. Throws std::logic_error
  /// when the model is not fitted (InferenceServer's constructor contract).
  ModelRegistry(std::string name, std::unique_ptr<core::MagicClassifier> model,
                ServeConfig config = {});
  ~ModelRegistry() override;

  /// Loads the checkpoint at `path` as version `name` (replacing an
  /// existing version of that name) and — when `make_default` — atomically
  /// makes it the default. Throws std::runtime_error on a bad checkpoint.
  /// The previous default keeps serving its in-flight requests.
  void load_version(const std::string& name, const std::string& path,
                    bool make_default = true);

  /// Enables shadow mode: mirror `fraction` in [0,1] of scan traffic to
  /// version `name`. Throws std::runtime_error on an unknown version.
  void set_shadow(const std::string& name, double fraction);
  void clear_shadow();

  RegistryStats registry_stats() const;
  /// The default version's server stats (the exit summary of magicd).
  ServerStats default_server_stats() const;
  std::string default_version() const;

  // ScanService:
  PendingVerdict submit_listing(std::string_view listing,
                                const std::string& version) override;
  std::string stats_json() override;
  /// Executes Reload / Shadow; never throws — failures render as
  /// {"status":"error",...} lines.
  std::string control(const wire::Request& request) override;
  void drain() override;

 private:
  struct Version {
    std::string name;
    /// The server snapshots the model's weights at construction, but the
    /// model stays owned here so the version can later grow non-serving
    /// surfaces (explain, re-save) without changing lifetime rules.
    std::unique_ptr<core::MagicClassifier> model;
    std::unique_ptr<InferenceServer> server;
  };

  std::shared_ptr<Version> make_version(std::string name,
                                        std::unique_ptr<core::MagicClassifier> model);
  /// Joins a primary/shadow verdict pair and counts family agreement.
  void score_shadow_pair(const Verdict& primary, const Verdict& shadow);

  ServeConfig config_;

  mutable util::Mutex mutex_;
  std::map<std::string, std::shared_ptr<Version>> versions_ MAGIC_GUARDED_BY(mutex_);
  std::shared_ptr<Version> default_ MAGIC_GUARDED_BY(mutex_);
  std::shared_ptr<Version> shadow_ MAGIC_GUARDED_BY(mutex_);
  double shadow_fraction_ MAGIC_GUARDED_BY(mutex_) = 0.0;
  /// Scan sequence number behind the deterministic mirror decision.
  std::uint64_t scan_serial_ MAGIC_GUARDED_BY(mutex_) = 0;
  std::uint64_t reloads_ MAGIC_GUARDED_BY(mutex_) = 0;

  /// Shadow agreement counters: bumped from verdict completion hooks on
  /// scoring threads, so they are obs::Counter (relaxed atomics), mirrored
  /// into the global registry while obs::enabled().
  obs::Counter shadow_mirrored_;
  obs::Counter shadow_agreed_;
  obs::Counter shadow_disagreed_;
  obs::Counter shadow_failed_;
  obs::Counter* global_mirrored_;
  obs::Counter* global_agreed_;
  obs::Counter* global_disagreed_;
  obs::Counter* global_failed_;
  obs::Counter* global_reloads_;
};

}  // namespace magic::serve
