#include "serve/registry.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/wire.hpp"

namespace magic::serve {

std::string RegistryStats::to_json() const {
  std::ostringstream os;
  os << "{\"default\":\"" << wire::json_escape(default_version)
     << "\",\"versions\":[";
  for (std::size_t i = 0; i < versions.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << wire::json_escape(versions[i]) << '"';
  }
  os << "],\"operators\":[";
  for (std::size_t i = 0; i < operators.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << wire::json_escape(operators[i]) << '"';
  }
  os << "],\"reloads\":" << reloads << ",\"shadow\":{\"version\":";
  if (shadow_version.empty()) {
    os << "null";
  } else {
    os << '"' << wire::json_escape(shadow_version) << '"';
  }
  os << ",\"fraction\":" << shadow_fraction
     << ",\"mirrored\":" << shadow_mirrored << ",\"agreed\":" << shadow_agreed
     << ",\"disagreed\":" << shadow_disagreed << ",\"failed\":" << shadow_failed
     << "}}";
  return os.str();
}

ModelRegistry::ModelRegistry(std::string name,
                             std::unique_ptr<core::MagicClassifier> model,
                             ServeConfig config)
    : config_(config) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  global_mirrored_ = &registry.counter("registry.shadow_mirrored");
  global_agreed_ = &registry.counter("registry.shadow_agreed");
  global_disagreed_ = &registry.counter("registry.shadow_disagreed");
  global_failed_ = &registry.counter("registry.shadow_failed");
  global_reloads_ = &registry.counter("registry.reloads");

  auto version = make_version(std::move(name), std::move(model));
  util::MutexLock lock(mutex_);
  versions_[version->name] = version;
  default_ = std::move(version);
}

ModelRegistry::~ModelRegistry() { drain(); }

std::shared_ptr<ModelRegistry::Version> ModelRegistry::make_version(
    std::string name, std::unique_ptr<core::MagicClassifier> model) {
  auto version = std::make_shared<Version>();
  version->name = std::move(name);
  version->model = std::move(model);
  version->server = std::make_unique<InferenceServer>(*version->model, config_);
  return version;
}

void ModelRegistry::load_version(const std::string& name,
                                 const std::string& path, bool make_default) {
  // Materialize the new version entirely outside the lock: checkpoint
  // parsing and replica warm-up must not block in-flight scans.
  auto model = std::make_unique<core::MagicClassifier>(
      core::MagicClassifier::load_file(path));
  auto version = make_version(name, std::move(model));

  std::shared_ptr<Version> replaced;
  {
    util::MutexLock lock(mutex_);
    auto it = versions_.find(name);
    if (it != versions_.end()) {
      replaced = it->second;
      if (shadow_ == it->second) shadow_ = version;
    }
    versions_[name] = version;
    if (make_default) default_ = std::move(version);
    ++reloads_;
  }
  if (obs::enabled()) global_reloads_->add();
  // `replaced` is deliberately NOT stopped here: a scan that resolved its
  // target just before the swap may still be extracting and submit after
  // it; stopping now would resolve that request ShuttingDown — a dropped
  // in-flight request. Instead the old version dies by refcount: every
  // submitting thread holds a shared_ptr, so its InferenceServer's
  // destructor (a graceful drain) runs only after the last in-flight
  // submission completed.
}

void ModelRegistry::set_shadow(const std::string& name, double fraction) {
  util::MutexLock lock(mutex_);
  auto it = versions_.find(name);
  if (it == versions_.end()) {
    throw std::runtime_error("unknown model version '" + name + "'");
  }
  shadow_ = it->second;
  shadow_fraction_ = fraction;
}

void ModelRegistry::clear_shadow() {
  util::MutexLock lock(mutex_);
  shadow_.reset();
  shadow_fraction_ = 0.0;
}

bool verdicts_agree(const Verdict& primary, const Verdict& shadow) noexcept {
  return primary.ok() && shadow.ok() &&
         primary.prediction.family_name == shadow.prediction.family_name;
}

void ModelRegistry::score_shadow_pair(const Verdict& primary,
                                      const Verdict& shadow) {
  if (!primary.ok() || !shadow.ok()) {
    shadow_failed_.add();
    if (obs::enabled()) global_failed_->add();
    return;
  }
  if (verdicts_agree(primary, shadow)) {
    shadow_agreed_.add();
    if (obs::enabled()) global_agreed_->add();
  } else {
    shadow_disagreed_.add();
    if (obs::enabled()) global_disagreed_->add();
  }
}

PendingVerdict ModelRegistry::submit_listing(std::string_view listing,
                                             const std::string& version) {
  std::shared_ptr<Version> target;
  std::shared_ptr<Version> mirror;
  {
    util::MutexLock lock(mutex_);
    if (version.empty()) {
      target = default_;
      // Mirror decision only for default-routed traffic (an explicit
      // version override is an operator probe, not production flow), and
      // deterministic: request n mirrors iff the fraction accumulator
      // crosses an integer, so counts are exact.
      if (shadow_ && shadow_ != default_) {
        const double f = shadow_fraction_;
        const std::uint64_t n = scan_serial_++;
        if (std::floor(static_cast<double>(n + 1) * f) >
            std::floor(static_cast<double>(n) * f)) {
          mirror = shadow_;
        }
      }
    } else {
      auto it = versions_.find(version);
      if (it == versions_.end()) {
        Verdict verdict;
        verdict.status = VerdictStatus::Error;
        verdict.error = "unknown model version '" + version + "'";
        return PendingVerdict::resolved(std::move(verdict));
      }
      target = it->second;
    }
  }

  const PendingVerdict primary = target->server->submit_listing(listing);
  if (mirror) {
    shadow_mirrored_.add();
    if (obs::enabled()) global_mirrored_->add();
    const PendingVerdict shadowed = mirror->server->submit_listing(listing);
    // Join the pair through completion hooks — no joiner thread. The hooks
    // keep both slots (and the registry's counters; the registry drains all
    // servers before dying, so every hook has fired by then) alive until
    // the later of the two resolves.
    auto remaining = std::make_shared<std::atomic<int>>(2);
    auto arm = [this, remaining, primary, shadowed](const PendingVerdict& pv) {
      pv.on_ready([this, remaining, primary, shadowed] {
        if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          score_shadow_pair(primary.get(), shadowed.get());
        }
      });
    };
    arm(primary);
    arm(shadowed);
  }
  return primary;
}

RegistryStats ModelRegistry::registry_stats() const {
  RegistryStats out;
  {
    util::MutexLock lock(mutex_);
    out.default_version = default_ ? default_->name : "";
    for (const auto& [name, version] : versions_) {
      out.versions.push_back(name);
      out.operators.push_back(nn::graph_conv_operator_name(
          version->model->config().graph_conv_op));
    }
    out.reloads = reloads_;
    out.shadow_version = shadow_ ? shadow_->name : "";
    out.shadow_fraction = shadow_ ? shadow_fraction_ : 0.0;
  }
  out.shadow_mirrored = shadow_mirrored_.value();
  out.shadow_agreed = shadow_agreed_.value();
  out.shadow_disagreed = shadow_disagreed_.value();
  out.shadow_failed = shadow_failed_.value();
  return out;
}

ServerStats ModelRegistry::default_server_stats() const {
  std::shared_ptr<Version> target;
  {
    util::MutexLock lock(mutex_);
    target = default_;
  }
  return target->server->stats();
}

std::string ModelRegistry::default_version() const {
  util::MutexLock lock(mutex_);
  return default_ ? default_->name : "";
}

std::string ModelRegistry::stats_json() {
  std::shared_ptr<Version> target;
  {
    util::MutexLock lock(mutex_);
    target = default_;
  }
  return "{\"server\":" + target->server->stats().to_json() +
         ",\"registry\":" + registry_stats().to_json() +
         stats_payload_suffix() + "}";
}

std::string ModelRegistry::control(const wire::Request& request) {
  try {
    if (request.kind == wire::Request::Kind::Reload) {
      load_version(request.version, request.payload);
      std::size_t count = 0;
      {
        util::MutexLock lock(mutex_);
        count = versions_.size();
      }
      return "{\"status\":\"ok\",\"op\":\"reload\",\"default\":\"" +
             wire::json_escape(request.version) +
             "\",\"versions\":" + std::to_string(count) + "}";
    }
    if (request.kind == wire::Request::Kind::Shadow) {
      if (request.version.empty()) {
        clear_shadow();
        return "{\"status\":\"ok\",\"op\":\"shadow\",\"mode\":\"off\"}";
      }
      set_shadow(request.version, request.fraction);
      std::ostringstream os;
      os << "{\"status\":\"ok\",\"op\":\"shadow\",\"version\":\""
         << wire::json_escape(request.version)
         << "\",\"fraction\":" << request.fraction << "}";
      return os.str();
    }
    return control_error_line("unsupported control command");
  } catch (const std::exception& e) {
    return control_error_line(e.what());
  }
}

void ModelRegistry::drain() {
  // The version map stays intact: stats remain queryable after drain (the
  // daemon's exit summary reads them), and stop() is idempotent, so the
  // destructor draining again is harmless.
  std::vector<std::shared_ptr<Version>> versions;
  {
    util::MutexLock lock(mutex_);
    for (auto& [name, version] : versions_) versions.push_back(version);
  }
  for (const auto& version : versions) {
    version->server->stop(/*drain=*/true);
  }
}

}  // namespace magic::serve
