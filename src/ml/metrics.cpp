#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace magic::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {
  if (num_classes == 0) throw std::invalid_argument("ConfusionMatrix: zero classes");
}

void ConfusionMatrix::add(std::size_t true_label, std::size_t predicted_label) {
  if (true_label >= n_ || predicted_label >= n_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++cells_[true_label * n_ + predicted_label];
  ++total_;
}

std::size_t ConfusionMatrix::at(std::size_t true_label, std::size_t predicted) const {
  if (true_label >= n_ || predicted >= n_) {
    throw std::out_of_range("ConfusionMatrix::at");
  }
  return cells_[true_label * n_ + predicted];
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::size_t tp = at(cls, cls), predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += at(t, cls);
  return predicted == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::size_t tp = at(cls, cls), actual = 0;
  for (std::size_t p = 0; p < n_; ++p) actual += at(cls, p);
  return actual == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls), r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += at(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < n_; ++c) sum += f1(c);
  return sum / static_cast<double>(n_);
}

std::vector<ClassScores> per_class_scores(const ConfusionMatrix& cm) {
  std::vector<ClassScores> scores(cm.num_classes());
  for (std::size_t c = 0; c < cm.num_classes(); ++c) {
    scores[c] = {cm.precision(c), cm.recall(c), cm.f1(c)};
  }
  return scores;
}

double mean_log_loss(const std::vector<std::vector<double>>& probs,
                     const std::vector<std::size_t>& labels, double eps) {
  if (probs.size() != labels.size()) {
    throw std::invalid_argument("mean_log_loss: size mismatch");
  }
  if (probs.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (labels[i] >= probs[i].size()) {
      throw std::out_of_range("mean_log_loss: label out of range");
    }
    const double p = std::max(eps, std::min(1.0, probs[i][labels[i]]));
    total += -std::log(p);
  }
  return total / static_cast<double>(probs.size());
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace magic::ml
