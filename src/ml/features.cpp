#include "ml/features.hpp"

#include <cmath>

#include "acfg/attributes.hpp"

namespace magic::ml {
namespace {

constexpr std::size_t kStatsPerChannel = 4;  // sum, mean, max, stddev
constexpr std::size_t kStructural = 6;       // n, m, mean/max out-degree, density, leaf ratio

}  // namespace

std::size_t aggregate_feature_count(std::size_t channels) {
  return channels * kStatsPerChannel + kStructural;
}

std::vector<std::string> aggregate_feature_names(std::size_t channels) {
  std::vector<std::string> names;
  names.reserve(aggregate_feature_count(channels));
  for (std::size_t c = 0; c < channels; ++c) {
    const std::string base = c < acfg::kNumChannels
                                 ? std::string(acfg::channel_name(c))
                                 : "channel" + std::to_string(c);
    names.push_back(base + " (sum)");
    names.push_back(base + " (mean)");
    names.push_back(base + " (max)");
    names.push_back(base + " (std)");
  }
  names.push_back("vertices");
  names.push_back("edges");
  names.push_back("mean out-degree");
  names.push_back("max out-degree");
  names.push_back("edge density");
  names.push_back("leaf block ratio");
  return names;
}

std::vector<double> aggregate_features(const acfg::Acfg& acfg) {
  const std::size_t n = acfg.num_vertices();
  const std::size_t c = acfg.num_channels();
  std::vector<double> out;
  out.reserve(aggregate_feature_count(c));
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum = 0.0, maxv = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = acfg.attributes[i * c + ch];
      sum += v;
      sq += v * v;
      if (v > maxv) maxv = v;
    }
    const double mean = n ? sum / static_cast<double>(n) : 0.0;
    const double var = n ? std::max(0.0, sq / static_cast<double>(n) - mean * mean) : 0.0;
    out.push_back(sum);
    out.push_back(mean);
    out.push_back(maxv);
    out.push_back(std::sqrt(var));
  }
  const std::size_t m = acfg.num_edges();
  double max_deg = 0.0;
  std::size_t leaves = 0;
  for (const auto& edges : acfg.out_edges) {
    max_deg = std::max(max_deg, static_cast<double>(edges.size()));
    if (edges.empty()) ++leaves;
  }
  out.push_back(static_cast<double>(n));
  out.push_back(static_cast<double>(m));
  out.push_back(n ? static_cast<double>(m) / static_cast<double>(n) : 0.0);
  out.push_back(max_deg);
  out.push_back(n > 1 ? static_cast<double>(m) /
                            (static_cast<double>(n) * static_cast<double>(n - 1))
                      : 0.0);
  out.push_back(n ? static_cast<double>(leaves) / static_cast<double>(n) : 0.0);
  return out;
}

FeatureMatrix aggregate_feature_matrix(const std::vector<acfg::Acfg>& corpus) {
  FeatureMatrix fm;
  fm.rows.reserve(corpus.size());
  fm.labels.reserve(corpus.size());
  for (const auto& a : corpus) {
    fm.rows.push_back(aggregate_features(a));
    fm.labels.push_back(a.label < 0 ? 0 : static_cast<std::size_t>(a.label));
  }
  return fm;
}

}  // namespace magic::ml
