#pragma once
// Classification metrics used throughout §V: per-family precision/recall/F1
// (Tables III & V, Figs. 9-11), overall accuracy and mean negative
// logarithmic loss (Table IV).

#include <cstddef>
#include <vector>

namespace magic::ml {

/// Row-major confusion matrix: entry (true, predicted).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t true_label, std::size_t predicted_label);

  std::size_t num_classes() const noexcept { return n_; }
  std::size_t at(std::size_t true_label, std::size_t predicted) const;
  std::size_t total() const noexcept { return total_; }

  /// Per-class precision: tp / (tp + fp); 0 when the class was never predicted.
  double precision(std::size_t cls) const;
  /// Per-class recall: tp / (tp + fn); 0 when the class has no samples.
  double recall(std::size_t cls) const;
  /// Harmonic mean of precision and recall (0 when both are 0).
  double f1(std::size_t cls) const;
  /// Overall accuracy.
  double accuracy() const;
  /// Unweighted mean of per-class F1.
  double macro_f1() const;

 private:
  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // n_ x n_
};

/// Per-class metric triple.
struct ClassScores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// All per-class scores of a confusion matrix.
std::vector<ClassScores> per_class_scores(const ConfusionMatrix& cm);

/// Mean negative log-likelihood over predicted probability rows.
/// `probs[i]` is the predicted distribution of sample i; probabilities are
/// clamped to [eps, 1] before the log, matching common implementations.
double mean_log_loss(const std::vector<std::vector<double>>& probs,
                     const std::vector<std::size_t>& labels, double eps = 1e-15);

/// Running mean/stddev accumulator (Welford) for timing and CV statistics.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace magic::ml
