#pragma once
// Handcrafted aggregate feature vectors for the baseline classifiers.
//
// The paper contrasts MAGIC with "state-of-the-art methods applied on
// handcrafted malware features" (XGBoost [13], random forests [11][14],
// autoencoder+GBT [9], ESVC [8]). Those baselines consume flat vectors, so
// we aggregate each ACFG into a fixed-length descriptor: per-channel sums,
// means, maxima and standard deviations of the Table I attributes plus
// global structure statistics (vertex/edge counts, degree moments). This
// deliberately discards fine-grained structure — exactly the information
// DGCNN can exploit and flat models cannot.

#include <cstddef>
#include <string>
#include <vector>

#include "acfg/acfg.hpp"

namespace magic::ml {

/// Number of features emitted per ACFG.
std::size_t aggregate_feature_count(std::size_t channels);

/// Names of the features, in emission order (for reports).
std::vector<std::string> aggregate_feature_names(std::size_t channels);

/// Flattens one ACFG into an aggregate feature vector.
std::vector<double> aggregate_features(const acfg::Acfg& acfg);

/// Feature matrix + label vector for a whole corpus.
struct FeatureMatrix {
  std::vector<std::vector<double>> rows;
  std::vector<std::size_t> labels;
};
FeatureMatrix aggregate_feature_matrix(const std::vector<acfg::Acfg>& corpus);

}  // namespace magic::ml
