#pragma once
// CSR sparse matrix used for the DGCNN propagation operator.
//
// Equation (1) of the paper multiplies by D^-1 * A_hat, where A_hat = A + I
// is the augmented adjacency matrix and D its diagonal degree matrix. For a
// CFG that product is sparse (average out-degree ~2), so we precompute it
// once per graph as a CSR matrix and reuse it for every layer, epoch and
// both the forward (P * X) and backward (P^T * dY) passes.

#include <cstddef>
#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace magic::tensor {

/// One nonzero entry for building a SparseMatrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR sparse matrix of doubles.
class SparseMatrix {
 public:
  /// Builds from triplets; duplicate (row, col) entries are summed.
  SparseMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// Dense copy (for tests / small matrices).
  Tensor to_dense() const;

  /// Sparse-dense product: (rows x cols) * (cols x n) -> (rows x n).
  Tensor multiply(const Tensor& dense) const;

  /// As multiply(), but accumulates row r of the product into
  /// `out + r * out_stride` (out_stride >= dense columns), letting callers
  /// write straight into a column slice of a wider row-major matrix. The
  /// target rows must be zero-initialized; accumulation order per element
  /// matches multiply() exactly.
  void multiply_into(const Tensor& dense, double* out,
                     std::size_t out_stride) const;

  /// As multiply_into(), but invokes `row_done(r, out_row)` right after row
  /// r's accumulation completes, while the row is still cache-hot. The
  /// callback may rewrite the row in place (fused activation epilogues).
  void multiply_into(
      const Tensor& dense, double* out, std::size_t out_stride,
      const std::function<void(std::size_t, double*)>& row_done) const;

  /// Transposed product: A^T * dense, i.e. (cols x rows) * (rows x n).
  /// Used by backward passes without materializing the transpose.
  Tensor multiply_transposed(const Tensor& dense) const;

  /// Element lookup (O(log nnz_row)); 0 if absent.
  double at(std::size_t row, std::size_t col) const;

  /// The DGCNN propagation operator D^-1 (A + I) for a directed graph given
  /// as an out-edge adjacency list. Row i holds weight 1/deg_hat(i) on column
  /// j for each augmented neighbour j of i (including i itself).
  static SparseMatrix propagation_operator(
      const std::vector<std::vector<std::size_t>>& out_edges);

  /// The unnormalized augmented adjacency A + I (ablation of the D^-1
  /// row normalization in Eq. 1).
  static SparseMatrix augmented_adjacency(
      const std::vector<std::vector<std::size_t>>& out_edges);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;   // rows_ + 1 entries
  std::vector<std::size_t> col_idx_;   // nnz entries, sorted within each row
  std::vector<double> values_;
};

}  // namespace magic::tensor
