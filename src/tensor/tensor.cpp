#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

namespace magic::tensor {
namespace {

std::size_t shape_size(const Shape& shape) {
  std::size_t total = 1;
  for (std::size_t d : shape) total *= d;
  return total;
}

#ifdef MAGIC_CHECKED_BUILD
// Precise checked-mode diagnostic for the Tensor::at family: names the
// accessor, the offending index tuple and the actual shape.
[[noreturn]] void at_violation(const Tensor& t, const char* accessor,
                               std::initializer_list<std::size_t> idx) {
  std::ostringstream oss;
  oss << "Tensor::" << accessor;
  if (t.rank() != idx.size()) {
    oss << ": rank-" << idx.size() << " accessor on " << t.describe() << " (rank "
        << t.rank() << ")";
  } else {
    oss << ": index (";
    bool first = true;
    for (std::size_t i : idx) {
      if (!first) oss << ", ";
      oss << i;
      first = false;
    }
    oss << ") out of range for " << t.describe();
  }
  throw std::out_of_range(oss.str());
}
#endif  // MAGIC_CHECKED_BUILD

}  // namespace

Tensor::Tensor() : shape_{}, data_(1, 0.0) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_size(shape_), 0.0) {
  if (shape_.size() > 4) throw std::invalid_argument("Tensor: rank > 4 unsupported");
}

Tensor::Tensor(Shape shape, AlignedVector data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_.size() > 4) throw std::invalid_argument("Tensor: rank > 4 unsupported");
  if (data_.size() != shape_size(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

Tensor::Tensor(Shape shape, const std::vector<double>& data)
    : Tensor(std::move(shape), AlignedVector(data.begin(), data.end())) {}

Tensor::Tensor(Shape shape, std::initializer_list<double> data)
    : Tensor(std::move(shape), AlignedVector(data.begin(), data.end())) {}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0); }

Tensor Tensor::full(Shape shape, double value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from_rows(std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r ? rows.begin()->size() : 0;
  Tensor t(Shape{r, c});
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c) throw std::invalid_argument("from_rows: ragged rows");
    for (double v : row) t.data_[i++] = v;
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, util::Rng& rng, double lo, double hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, util::Rng& rng, double mean, double stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

std::size_t Tensor::dim(std::size_t d) const {
  if (d >= shape_.size()) throw std::out_of_range("Tensor::dim: axis out of range");
  return shape_[d];
}

Tensor Tensor::reshape(Shape new_shape) const& {
  if (shape_size(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch");
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor Tensor::reshape(Shape new_shape) && {
  if (shape_size(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch");
  }
  return Tensor(std::move(new_shape), std::move(data_));
}

void Tensor::resize(Shape new_shape) {
  const std::size_t n = shape_size(new_shape);
  if (n != data_.size()) data_.resize(n);
  shape_ = std::move(new_shape);
}

// The at() family is bounds- and rank-checked when MAGIC_CHECKED_BUILD is
// defined (always in test builds); an unchecked Release build indexes
// directly, so checked mode costs nothing when off.
double& Tensor::at(std::size_t i) {
#ifdef MAGIC_CHECKED_BUILD
  if (rank() != 1 || i >= shape_[0]) at_violation(*this, "at(i)", {i});
#endif
  return data_[i];
}
double Tensor::at(std::size_t i) const { return const_cast<Tensor*>(this)->at(i); }

double& Tensor::at(std::size_t i, std::size_t j) {
#ifdef MAGIC_CHECKED_BUILD
  if (rank() != 2 || i >= shape_[0] || j >= shape_[1]) {
    at_violation(*this, "at(i,j)", {i, j});
  }
#endif
  return data_[i * shape_[1] + j];
}
double Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

double& Tensor::at(std::size_t i, std::size_t j, std::size_t k) {
#ifdef MAGIC_CHECKED_BUILD
  if (rank() != 3 || i >= shape_[0] || j >= shape_[1] || k >= shape_[2]) {
    at_violation(*this, "at(i,j,k)", {i, j, k});
  }
#endif
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}
double Tensor::at(std::size_t i, std::size_t j, std::size_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

double& Tensor::at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
#ifdef MAGIC_CHECKED_BUILD
  if (rank() != 4 || i >= shape_[0] || j >= shape_[1] || k >= shape_[2] ||
      l >= shape_[3]) {
    at_violation(*this, "at(i,j,k,l)", {i, j, k, l});
  }
#endif
  return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
}
double Tensor::at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
  return const_cast<Tensor*>(this)->at(i, j, k, l);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (shape_ != other.shape_) {
    throw std::invalid_argument(std::string("Tensor: shape mismatch in ") + op +
                                " (" + describe() + " vs " + other.describe() + ")");
  }
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(double s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::mul_(const Tensor& rhs) {
  check_same_shape(rhs, "mul_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= rhs.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& rhs, double s) {
  check_same_shape(rhs, "add_scaled_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * rhs.data_[i];
  return *this;
}

void Tensor::fill(double value) noexcept {
  for (auto& v : data_) v = value;
}

std::string Tensor::describe() const {
  std::ostringstream oss;
  oss << "Tensor[";
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    if (d) oss << 'x';
    oss << shape_[d];
  }
  oss << ']';
  return oss.str();
}

}  // namespace magic::tensor
