#include <algorithm>
#include <cmath>

#include "tensor/simd/kernels.hpp"
#include "tensor/tensor.hpp"

namespace magic::tensor {

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator*(const Tensor& a, double s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor operator*(double s, const Tensor& a) { return a * s; }

Tensor hadamard(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

namespace {

// The GEMM kernels themselves live in src/tensor/simd/ (scalar reference +
// AVX2, selected once per process by the runtime dispatch); the wrappers
// below validate shapes, size the output and call through the active table.

void require_rank2(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw std::invalid_argument(std::string(op) + ": both operands must be rank-2");
  }
}

void require_inner(std::size_t ka, std::size_t kb, const Tensor& a,
                   const Tensor& b, const char* op) {
  if (ka != kb) {
    throw std::invalid_argument(std::string(op) + ": inner dimensions differ (" +
                                a.describe() + " vs " + b.describe() + ")");
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(out, a, b);
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_tn_into(out, a, b);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_nt_into(out, a, b);
  return out;
}

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  require_rank2(a, b, "matmul");
  require_inner(a.dim(1), b.dim(0), a, b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  out.resize(Shape{m, n});
  out.fill(0.0);
  simd::kernels().gemm_nn(out.data(), a.data(), b.data(), m, k, n);
}

void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b) {
  require_rank2(a, b, "matmul_tn");
  require_inner(a.dim(0), b.dim(0), a, b, "matmul_tn");
  const std::size_t m = a.dim(1), k = a.dim(0), n = b.dim(1);
  out.resize(Shape{m, n});
  out.fill(0.0);
  simd::kernels().gemm_tn(out.data(), a.data(), b.data(), m, k, n);
}

void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b) {
  require_rank2(a, b, "matmul_nt");
  require_inner(a.dim(1), b.dim(1), a, b, "matmul_nt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  out.resize(Shape{m, n});
  // gemm_nt fully overwrites every output element — no pre-zero needed.
  simd::kernels().gemm_nt(out.data(), a.data(), b.data(), m, k, n);
}

Tensor transpose(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose: rank-2 required");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

double sum(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mean(const Tensor& a) noexcept {
  return a.size() ? sum(a) / static_cast<double>(a.size()) : 0.0;
}

double max(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("max: empty tensor");
  double m = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) m = std::max(m, a[i]);
  return m;
}

std::size_t argmax(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("argmax: empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double norm(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * a[i];
  return std::sqrt(s);
}

Tensor row(const Tensor& a, std::size_t i) {
  if (a.rank() != 2) throw std::invalid_argument("row: rank-2 required");
  const std::size_t n = a.dim(1);
  if (i >= a.dim(0)) throw std::out_of_range("row: index out of range");
  Tensor out(Shape{n});
  for (std::size_t j = 0; j < n; ++j) out[j] = a[i * n + j];
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: empty input");
  const std::size_t rows = parts.front().dim(0);
  std::size_t cols = 0;
  for (const auto& p : parts) {
    if (p.rank() != 2 || p.dim(0) != rows) {
      throw std::invalid_argument("concat_cols: row count mismatch");
    }
    cols += p.dim(1);
  }
  Tensor out(Shape{rows, cols});
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const auto& p : parts) {
      const std::size_t pc = p.dim(1);
      for (std::size_t j = 0; j < pc; ++j) out[i * cols + offset + j] = p[i * pc + j];
      offset += pc;
    }
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty input");
  const std::size_t cols = parts.front().dim(1);
  std::size_t rows = 0;
  for (const auto& p : parts) {
    if (p.rank() != 2 || p.dim(1) != cols) {
      throw std::invalid_argument("concat_rows: column count mismatch");
    }
    rows += p.dim(0);
  }
  Tensor out(Shape{rows, cols});
  std::size_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.data() + r * cols);
    r += p.dim(0);
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, double atol) noexcept {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace magic::tensor
