#include <algorithm>
#include <cmath>

#include "tensor/tensor.hpp"

namespace magic::tensor {

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator*(const Tensor& a, double s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor operator*(double s, const Tensor& a) { return a * s; }

Tensor hadamard(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw std::invalid_argument("matmul: both operands must be rank-2");
  }
  const std::size_t m = a.dim(0), k = a.dim(1), k2 = b.dim(0), n = b.dim(1);
  if (k != k2) {
    throw std::invalid_argument("matmul: inner dimensions differ (" + a.describe() +
                                " vs " + b.describe() + ")");
  }
  Tensor out(Shape{m, n});
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  // ikj loop order: streams over b and out rows for cache friendliness.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aval = pa[i * k + kk];
      if (aval == 0.0) continue;
      const double* brow = pb + kk * n;
      double* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aval * brow[j];
    }
  }
  return out;
}

Tensor transpose(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose: rank-2 required");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

double sum(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mean(const Tensor& a) noexcept {
  return a.size() ? sum(a) / static_cast<double>(a.size()) : 0.0;
}

double max(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("max: empty tensor");
  double m = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) m = std::max(m, a[i]);
  return m;
}

std::size_t argmax(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("argmax: empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double norm(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * a[i];
  return std::sqrt(s);
}

Tensor row(const Tensor& a, std::size_t i) {
  if (a.rank() != 2) throw std::invalid_argument("row: rank-2 required");
  const std::size_t n = a.dim(1);
  if (i >= a.dim(0)) throw std::out_of_range("row: index out of range");
  Tensor out(Shape{n});
  for (std::size_t j = 0; j < n; ++j) out[j] = a[i * n + j];
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: empty input");
  const std::size_t rows = parts.front().dim(0);
  std::size_t cols = 0;
  for (const auto& p : parts) {
    if (p.rank() != 2 || p.dim(0) != rows) {
      throw std::invalid_argument("concat_cols: row count mismatch");
    }
    cols += p.dim(1);
  }
  Tensor out(Shape{rows, cols});
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const auto& p : parts) {
      const std::size_t pc = p.dim(1);
      for (std::size_t j = 0; j < pc; ++j) out[i * cols + offset + j] = p[i * pc + j];
      offset += pc;
    }
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty input");
  const std::size_t cols = parts.front().dim(1);
  std::size_t rows = 0;
  for (const auto& p : parts) {
    if (p.rank() != 2 || p.dim(1) != cols) {
      throw std::invalid_argument("concat_rows: column count mismatch");
    }
    rows += p.dim(0);
  }
  Tensor out(Shape{rows, cols});
  std::size_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.data() + r * cols);
    r += p.dim(0);
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, double atol) noexcept {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace magic::tensor
