#include <algorithm>
#include <cmath>

#include "tensor/tensor.hpp"

namespace magic::tensor {

Tensor operator+(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor operator-(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor operator*(const Tensor& a, double s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor operator*(double s, const Tensor& a) { return a * s; }

Tensor hadamard(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.mul_(b);
  return out;
}

namespace {

// --- GEMM kernels -----------------------------------------------------------
//
// All three kernels are register-blocked (4 output rows share each streamed
// row of B) and cache-blocked over the reduction dimension, so a tile of B
// stays hot while the A/out panel sweeps past. Accumulation into each output
// element is strictly in ascending k order, which keeps every product
// bit-deterministic for fixed inputs — the property the parallel trainer's
// fixed-order gradient reduction builds on. The zero-skip mirrors the old
// naive kernel: post-ReLU activation matrices are ~half zeros.

constexpr std::size_t kTileK = 64;  // reduction-tile: B rows kept hot per pass

// out(m x n) += a(m x k) * b(k x n); out must be pre-zeroed by the caller.
void gemm_nn(double* out, const double* a, const double* b, std::size_t m,
             std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
    const std::size_t k1 = std::min(k, k0 + kTileK);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      double* o0 = out + i * n;
      double* o1 = o0 + n;
      double* o2 = o1 + n;
      double* o3 = o2 + n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double a0 = a[i * k + kk];
        const double a1 = a[(i + 1) * k + kk];
        const double a2 = a[(i + 2) * k + kk];
        const double a3 = a[(i + 3) * k + kk];
        if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
        const double* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          const double bj = brow[j];
          o0[j] += a0 * bj;
          o1[j] += a1 * bj;
          o2[j] += a2 * bj;
          o3[j] += a3 * bj;
        }
      }
    }
    for (; i < m; ++i) {
      double* orow = out + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double aval = a[i * k + kk];
        if (aval == 0.0) continue;
        const double* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += aval * brow[j];
      }
    }
  }
}

// out(m x n) += a(k x m)^T * b(k x n); out must be pre-zeroed. Reads A rows
// contiguously (no transpose temporary); 4 output rows per streamed B row.
void gemm_tn(double* out, const double* a, const double* b, std::size_t m,
             std::size_t k, std::size_t n) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* arow = a + kk * m;
    const double* brow = b + kk * n;
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const double a0 = arow[i];
      const double a1 = arow[i + 1];
      const double a2 = arow[i + 2];
      const double a3 = arow[i + 3];
      if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
      double* o0 = out + i * n;
      double* o1 = o0 + n;
      double* o2 = o1 + n;
      double* o3 = o2 + n;
      for (std::size_t j = 0; j < n; ++j) {
        const double bj = brow[j];
        o0[j] += a0 * bj;
        o1[j] += a1 * bj;
        o2[j] += a2 * bj;
        o3[j] += a3 * bj;
      }
    }
    for (; i < m; ++i) {
      const double aval = arow[i];
      if (aval == 0.0) continue;
      double* orow = out + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aval * brow[j];
    }
  }
}

// out(m x n) = a(m x k) * b(n x k)^T: every output element is a contiguous
// dot product of two rows; 4 B rows share each streamed A row.
void gemm_nt(double* out, const double* a, const double* b, std::size_t m,
             std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      orow[j] = s0;
      orow[j + 1] = s1;
      orow[j + 2] = s2;
      orow[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* bj = b + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * bj[kk];
      orow[j] = s;
    }
  }
}

void require_rank2(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rank() != 2 || b.rank() != 2) {
    throw std::invalid_argument(std::string(op) + ": both operands must be rank-2");
  }
}

void require_inner(std::size_t ka, std::size_t kb, const Tensor& a,
                   const Tensor& b, const char* op) {
  if (ka != kb) {
    throw std::invalid_argument(std::string(op) + ": inner dimensions differ (" +
                                a.describe() + " vs " + b.describe() + ")");
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_into(out, a, b);
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_tn_into(out, a, b);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  Tensor out;
  matmul_nt_into(out, a, b);
  return out;
}

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  require_rank2(a, b, "matmul");
  require_inner(a.dim(1), b.dim(0), a, b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  out.resize(Shape{m, n});
  out.fill(0.0);
  gemm_nn(out.data(), a.data(), b.data(), m, k, n);
}

void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b) {
  require_rank2(a, b, "matmul_tn");
  require_inner(a.dim(0), b.dim(0), a, b, "matmul_tn");
  const std::size_t m = a.dim(1), k = a.dim(0), n = b.dim(1);
  out.resize(Shape{m, n});
  out.fill(0.0);
  gemm_tn(out.data(), a.data(), b.data(), m, k, n);
}

void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b) {
  require_rank2(a, b, "matmul_nt");
  require_inner(a.dim(1), b.dim(1), a, b, "matmul_nt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  out.resize(Shape{m, n});
  out.fill(0.0);
  gemm_nt(out.data(), a.data(), b.data(), m, k, n);
}

Tensor transpose(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose: rank-2 required");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = a[i * n + j];
  }
  return out;
}

double sum(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double mean(const Tensor& a) noexcept {
  return a.size() ? sum(a) / static_cast<double>(a.size()) : 0.0;
}

double max(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("max: empty tensor");
  double m = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) m = std::max(m, a[i]);
  return m;
}

std::size_t argmax(const Tensor& a) {
  if (a.size() == 0) throw std::invalid_argument("argmax: empty tensor");
  std::size_t best = 0;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

double norm(const Tensor& a) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * a[i];
  return std::sqrt(s);
}

Tensor row(const Tensor& a, std::size_t i) {
  if (a.rank() != 2) throw std::invalid_argument("row: rank-2 required");
  const std::size_t n = a.dim(1);
  if (i >= a.dim(0)) throw std::out_of_range("row: index out of range");
  Tensor out(Shape{n});
  for (std::size_t j = 0; j < n; ++j) out[j] = a[i * n + j];
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_cols: empty input");
  const std::size_t rows = parts.front().dim(0);
  std::size_t cols = 0;
  for (const auto& p : parts) {
    if (p.rank() != 2 || p.dim(0) != rows) {
      throw std::invalid_argument("concat_cols: row count mismatch");
    }
    cols += p.dim(1);
  }
  Tensor out(Shape{rows, cols});
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t offset = 0;
    for (const auto& p : parts) {
      const std::size_t pc = p.dim(1);
      for (std::size_t j = 0; j < pc; ++j) out[i * cols + offset + j] = p[i * pc + j];
      offset += pc;
    }
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty input");
  const std::size_t cols = parts.front().dim(1);
  std::size_t rows = 0;
  for (const auto& p : parts) {
    if (p.rank() != 2 || p.dim(1) != cols) {
      throw std::invalid_argument("concat_rows: column count mismatch");
    }
    rows += p.dim(0);
  }
  Tensor out(Shape{rows, cols});
  std::size_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data(), p.data() + p.size(), out.data() + r * cols);
    r += p.dim(0);
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, double atol) noexcept {
  if (!a.same_shape(b)) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > atol) return false;
  }
  return true;
}

}  // namespace magic::tensor
