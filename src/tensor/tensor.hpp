#pragma once
// Dense row-major tensor of doubles, rank 0..4.
//
// This is the numeric substrate under magic::nn. It favours clarity and
// testability over raw speed: all shapes are dynamic, storage is a 64-byte
// aligned std::vector<double>, and operations validate shapes with
// exceptions. The heavy loops (matmul family, SpMM, activations) dispatch
// through src/tensor/simd/ to the best kernel table the running CPU
// supports.

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/aligned_alloc.hpp"
#include "util/rng.hpp"

namespace magic::tensor {

/// Shape of a tensor; empty shape denotes a scalar.
using Shape = std::vector<std::size_t>;

/// Tensor storage: 64-byte aligned so SIMD kernels never straddle a cache
/// line at the buffer base (see util/aligned_alloc.hpp).
using AlignedVector = std::vector<double, util::AlignedAllocator<double, 64>>;

/// Dense row-major double tensor with value semantics.
class Tensor {
 public:
  /// Empty scalar-shaped tensor holding a single zero.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape taking ownership of aligned storage
  /// (size must match).
  Tensor(Shape shape, AlignedVector data);

  /// Tensor of the given shape copying from unaligned storage.
  Tensor(Shape shape, const std::vector<double>& data);

  /// Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::initializer_list<double> data);

  // --- factories -----------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, double value);
  /// 2-D tensor from nested initializer lists (rows must be equal length).
  static Tensor from_rows(std::initializer_list<std::initializer_list<double>> rows);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, util::Rng& rng, double lo, double hi);
  /// I.i.d. normal entries.
  static Tensor normal(Shape shape, util::Rng& rng, double mean, double stddev);

  // --- structure ------------------------------------------------------------
  const Shape& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  /// Dimension `d`; throws if out of range.
  std::size_t dim(std::size_t d) const;
  /// True when shapes match exactly.
  bool same_shape(const Tensor& other) const noexcept { return shape_ == other.shape_; }

  /// Returns a copy with a new shape of identical total size.
  Tensor reshape(Shape new_shape) const&;
  /// Rvalue overload: steals this tensor's storage instead of copying, so
  /// reshaping an owned temporary is O(1).
  Tensor reshape(Shape new_shape) &&;

  /// Re-shapes this tensor in place, growing/shrinking storage as needed.
  /// Element values are unspecified afterwards (callers overwrite them);
  /// when the total size is unchanged no allocation happens, which is what
  /// the matmul_*_into workspace variants rely on.
  void resize(Shape new_shape);

  // --- element access -------------------------------------------------------
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }
  AlignedVector& storage() noexcept { return data_; }
  const AlignedVector& storage() const noexcept { return data_; }

  double& operator[](std::size_t flat) { return data_[flat]; }
  double operator[](std::size_t flat) const { return data_[flat]; }

  /// N-d accessors. Rank- and bounds-checked when MAGIC_CHECKED_BUILD is
  /// defined (throwing std::out_of_range with the index and actual shape);
  /// direct unchecked indexing otherwise.
  double& at(std::size_t i);
  double at(std::size_t i) const;
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;
  double& at(std::size_t i, std::size_t j, std::size_t k);
  double at(std::size_t i, std::size_t j, std::size_t k) const;
  double& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l);
  double at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const;

  // --- in-place arithmetic ---------------------------------------------------
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(double s) noexcept;
  /// Hadamard product in place.
  Tensor& mul_(const Tensor& rhs);
  /// this += s * rhs (axpy).
  Tensor& add_scaled_(const Tensor& rhs, double s);
  /// Sets every element to `value`.
  void fill(double value) noexcept;

  /// Human-readable description like "Tensor[3x4]".
  std::string describe() const;

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  AlignedVector data_;
};

// --- free-function ops (implemented in tensor_ops.cpp) ------------------------

Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, double s);
Tensor operator*(double s, const Tensor& a);

/// Elementwise (Hadamard) product.
Tensor hadamard(const Tensor& a, const Tensor& b);

/// Dense 2-D matrix product: (m x k) * (k x n) -> (m x n). Cache/register
/// blocked; accumulation over k is strictly in index order per output
/// element, so results are deterministic for fixed inputs.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Transposed-A product A^T * B: (k x m)^T * (k x n) -> (m x n), without
/// materializing the transpose. Bit-identical to matmul(transpose(a), b).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Transposed-B product A * B^T: (m x k) * (n x k)^T -> (m x n), without
/// materializing the transpose. Bit-identical to matmul(a, transpose(b)).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// Workspace variants: write the product into `out` (resized as needed; no
/// allocation when the shape already matches — the training hot path reuses
/// one workspace per layer). `out` must not alias `a` or `b`.
void matmul_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor transpose(const Tensor& a);

/// Applies `fn` elementwise.
template <typename F>
Tensor map(const Tensor& a, F fn) {
  Tensor out = a;
  for (auto& v : out.storage()) v = fn(v);
  return out;
}

/// Sum of all elements.
double sum(const Tensor& a) noexcept;
/// Mean of all elements (0 for empty).
double mean(const Tensor& a) noexcept;
/// Maximum element; throws on empty.
double max(const Tensor& a);
/// Index of the maximum element (first on ties); throws on empty.
std::size_t argmax(const Tensor& a);
/// Frobenius / L2 norm.
double norm(const Tensor& a) noexcept;

/// Row `i` of a 2-D tensor as a rank-1 tensor.
Tensor row(const Tensor& a, std::size_t i);
/// Concatenates 2-D tensors along columns; all must have equal row count.
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Concatenates 2-D tensors along rows; all must have equal column count.
Tensor concat_rows(const std::vector<Tensor>& parts);

/// True iff all elements differ by at most atol.
bool allclose(const Tensor& a, const Tensor& b, double atol = 1e-9) noexcept;

}  // namespace magic::tensor
