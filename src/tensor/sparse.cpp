#include "tensor/sparse.hpp"

#include <algorithm>
#include <stdexcept>

#include "tensor/simd/kernels.hpp"

namespace magic::tensor {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> entries)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  for (const auto& t : entries) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("SparseMatrix: triplet out of range");
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  std::size_t prev_row = rows_;  // sentinel: no previous entry
  std::size_t prev_col = 0;
  for (const auto& t : entries) {
    if (t.row == prev_row && t.col == prev_col) {
      values_.back() += t.value;  // duplicate (row, col): accumulate
      continue;
    }
    col_idx_.push_back(t.col);
    values_.push_back(t.value);
    row_ptr_[t.row + 1] = col_idx_.size();
    prev_row = t.row;
    prev_col = t.col;
  }
  // Rows without entries inherit the running prefix so row_ptr_ stays monotone.
  for (std::size_t r = 0; r < rows_; ++r) {
    row_ptr_[r + 1] = std::max(row_ptr_[r + 1], row_ptr_[r]);
  }
}

Tensor SparseMatrix::to_dense() const {
  Tensor out(Shape{rows_, cols_});
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out[r * cols_ + col_idx_[k]] += values_[k];
    }
  }
  return out;
}

Tensor SparseMatrix::multiply(const Tensor& dense) const {
  if (dense.rank() != 2 || dense.dim(0) != cols_) {
    throw std::invalid_argument("SparseMatrix::multiply: shape mismatch");
  }
  const std::size_t n = dense.dim(1);
  Tensor out(Shape{rows_, n});
  simd::kernels().spmm(row_ptr_.data(), col_idx_.data(), values_.data(), rows_,
                       dense.data(), n, out.data(), n);
  return out;
}

void SparseMatrix::multiply_into(const Tensor& dense, double* out,
                                 std::size_t out_stride) const {
  if (dense.rank() != 2 || dense.dim(0) != cols_) {
    throw std::invalid_argument("SparseMatrix::multiply_into: shape mismatch");
  }
  const std::size_t n = dense.dim(1);
  if (out_stride < n) {
    throw std::invalid_argument("SparseMatrix::multiply_into: stride < columns");
  }
  simd::kernels().spmm(row_ptr_.data(), col_idx_.data(), values_.data(), rows_,
                       dense.data(), n, out, out_stride);
}

void SparseMatrix::multiply_into(
    const Tensor& dense, double* out, std::size_t out_stride,
    const std::function<void(std::size_t, double*)>& row_done) const {
  if (dense.rank() != 2 || dense.dim(0) != cols_) {
    throw std::invalid_argument("SparseMatrix::multiply_into: shape mismatch");
  }
  const std::size_t n = dense.dim(1);
  if (out_stride < n) {
    throw std::invalid_argument("SparseMatrix::multiply_into: stride < columns");
  }
  simd::kernels().spmm_cb(row_ptr_.data(), col_idx_.data(), values_.data(),
                          rows_, dense.data(), n, out, out_stride, row_done);
}

Tensor SparseMatrix::multiply_transposed(const Tensor& dense) const {
  if (dense.rank() != 2 || dense.dim(0) != rows_) {
    throw std::invalid_argument("SparseMatrix::multiply_transposed: shape mismatch");
  }
  const std::size_t n = dense.dim(1);
  Tensor out(Shape{cols_, n});
  simd::kernels().spmm_t(row_ptr_.data(), col_idx_.data(), values_.data(),
                         rows_, dense.data(), n, out.data());
  return out;
}

double SparseMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("SparseMatrix::at");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

SparseMatrix SparseMatrix::propagation_operator(
    const std::vector<std::vector<std::size_t>>& out_edges) {
  const std::size_t n = out_edges.size();
  std::vector<Triplet> triplets;
  triplets.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    // Augmented degree counts the self loop plus distinct out-neighbours;
    // parallel edges contribute multiplicity, matching A_hat = A + I where A
    // is the (possibly multi-) adjacency matrix.
    const double deg_hat = 1.0 + static_cast<double>(out_edges[i].size());
    const double w = 1.0 / deg_hat;
    triplets.push_back({i, i, w});
    for (std::size_t j : out_edges[i]) {
      if (j >= n) throw std::out_of_range("propagation_operator: edge target out of range");
      triplets.push_back({i, j, w});
    }
  }
  return SparseMatrix(n, n, std::move(triplets));
}

SparseMatrix SparseMatrix::augmented_adjacency(
    const std::vector<std::vector<std::size_t>>& out_edges) {
  const std::size_t n = out_edges.size();
  std::vector<Triplet> triplets;
  triplets.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    triplets.push_back({i, i, 1.0});
    for (std::size_t j : out_edges[i]) {
      if (j >= n) throw std::out_of_range("augmented_adjacency: edge target out of range");
      triplets.push_back({i, j, 1.0});
    }
  }
  return SparseMatrix(n, n, std::move(triplets));
}

}  // namespace magic::tensor
