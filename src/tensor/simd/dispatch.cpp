#include "tensor/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "tensor/simd/kernels.hpp"

namespace magic::tensor::simd {
namespace {

// Published level + table. The table pointer is the dispatch: kernels()
// does one acquire load and calls through. -1 level means "not resolved".
std::atomic<int> g_level{-1};
std::atomic<const KernelTable*> g_table{nullptr};
std::once_flag g_init_once;

const KernelTable* table_for(SimdLevel level) noexcept {
  if (level == SimdLevel::Avx2) {
    const KernelTable* avx2 = avx2_kernels();
    if (avx2 != nullptr) return avx2;
  }
  return &scalar_kernels();
}

void publish(SimdLevel level) {
  // Gauge first, so a snapshot taken right after a kernel call already
  // carries the level the kernel actually ran at.
  obs::MetricsRegistry::global()
      .gauge("tensor.simd_level")
      .set(static_cast<double>(static_cast<int>(level)));
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_table.store(table_for(level), std::memory_order_release);
}

bool cpu_has_avx2_fma() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

void resolve_once() {
  std::call_once(g_init_once, [] {
    if (g_table.load(std::memory_order_acquire) != nullptr) return;
    const char* env = std::getenv("MAGIC_SIMD");
    publish(parse_level(env != nullptr ? env : ""));
  });
}

}  // namespace

const char* level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
  }
  return "scalar";
}

SimdLevel parse_level(const std::string& value) {
  if (value.empty() || value == "native" || value == "auto") {
    return detected_level();
  }
  if (value == "scalar") return SimdLevel::Scalar;
  if (value == "avx2") {
    if (!avx2_available()) {
      throw std::invalid_argument(
          "MAGIC_SIMD=avx2: AVX2+FMA kernels are not available (CPU lacks "
          "the ISA or this build has no AVX2 translation unit)");
    }
    return SimdLevel::Avx2;
  }
  throw std::invalid_argument("MAGIC_SIMD: unknown level '" + value +
                              "' (expected scalar, avx2, native or auto)");
}

bool avx2_available() noexcept {
  return avx2_kernels() != nullptr && cpu_has_avx2_fma();
}

SimdLevel detected_level() noexcept {
  return avx2_available() ? SimdLevel::Avx2 : SimdLevel::Scalar;
}

SimdLevel active_level() {
  if (g_table.load(std::memory_order_acquire) == nullptr) resolve_once();
  return static_cast<SimdLevel>(g_level.load(std::memory_order_relaxed));
}

void set_level(SimdLevel level) {
  if (level == SimdLevel::Avx2 && !avx2_available()) {
    throw std::invalid_argument(
        "simd::set_level(Avx2): AVX2+FMA kernels are not available on this "
        "CPU/build");
  }
  // Publish first, then consume the once-flag: the env resolution lambda
  // bails out when a table is already published, so an explicit override
  // can never be overwritten — and kernels() never observes a consumed
  // flag with no table.
  publish(level);
  std::call_once(g_init_once, [] {});
}

const KernelTable& kernels() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    resolve_once();
    table = g_table.load(std::memory_order_acquire);
  }
  return *table;
}

#ifndef MAGIC_SIMD_AVX2_BUILT
const KernelTable* avx2_kernels() noexcept { return nullptr; }
#endif

}  // namespace magic::tensor::simd
