// Portable reference kernels: the dispatch level every platform has, and
// the semantics baseline the AVX2 table must match to 1e-12 relative.
//
// The GEMM kernels are register-blocked (4 output rows share each streamed
// row of B) and cache-blocked over the reduction dimension. Accumulation
// into each output element is strictly in ascending k order, which keeps
// every product bit-deterministic for fixed inputs — the property the
// parallel trainer's fixed-order gradient reduction builds on. The zero-skip
// mirrors the old naive kernel: post-ReLU activation matrices are ~half
// zeros.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "tensor/simd/kernels.hpp"

namespace magic::tensor::simd {
namespace {

constexpr std::size_t kTileK = 64;  // reduction-tile: B rows kept hot per pass

void gemm_nn_scalar(double* out, const double* a, const double* b,
                    std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t k0 = 0; k0 < k; k0 += kTileK) {
    const std::size_t k1 = std::min(k, k0 + kTileK);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      double* o0 = out + i * n;
      double* o1 = o0 + n;
      double* o2 = o1 + n;
      double* o3 = o2 + n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double a0 = a[i * k + kk];
        const double a1 = a[(i + 1) * k + kk];
        const double a2 = a[(i + 2) * k + kk];
        const double a3 = a[(i + 3) * k + kk];
        if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
        const double* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) {
          const double bj = brow[j];
          o0[j] += a0 * bj;
          o1[j] += a1 * bj;
          o2[j] += a2 * bj;
          o3[j] += a3 * bj;
        }
      }
    }
    for (; i < m; ++i) {
      double* orow = out + i * n;
      for (std::size_t kk = k0; kk < k1; ++kk) {
        const double aval = a[i * k + kk];
        if (aval == 0.0) continue;
        const double* brow = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += aval * brow[j];
      }
    }
  }
}

// A is (k x m) read as its transpose. Output-row blocks are the OUTER loop
// (the pre-PR8 kernel iterated kk outermost, sweeping the whole of `out`
// once per reduction step — that cache-thrashing is what regressed
// square_tn to 0.83x vs transpose-then-multiply). With i outermost the
// 4-row out panel stays hot across the whole reduction; A's column reads
// (arow[i..i+3], 32 contiguous bytes per kk) stream it once per row block.
void gemm_tn_scalar(double* out, const double* a, const double* b,
                    std::size_t m, std::size_t k, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    double* o0 = out + i * n;
    double* o1 = o0 + n;
    double* o2 = o1 + n;
    double* o3 = o2 + n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double* arow = a + kk * m;
      const double a0 = arow[i];
      const double a1 = arow[i + 1];
      const double a2 = arow[i + 2];
      const double a3 = arow[i + 3];
      if (a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0) continue;
      const double* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double bj = brow[j];
        o0[j] += a0 * bj;
        o1[j] += a1 * bj;
        o2[j] += a2 * bj;
        o3[j] += a3 * bj;
      }
    }
  }
  for (; i < m; ++i) {
    double* orow = out + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aval = a[kk * m + i];
      if (aval == 0.0) continue;
      const double* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aval * brow[j];
    }
  }
}

// Every output element is a contiguous dot product of two rows; 4 B rows
// share each streamed A row.
void gemm_nt_scalar(double* out, const double* a, const double* b,
                    std::size_t m, std::size_t k, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
      }
      orow[j] = s0;
      orow[j + 1] = s1;
      orow[j + 2] = s2;
      orow[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* bj = b + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) s += arow[kk] * bj[kk];
      orow[j] = s;
    }
  }
}

void spmm_scalar(const std::size_t* row_ptr, const std::size_t* col_idx,
                 const double* values, std::size_t rows, const double* dense,
                 std::size_t n, double* out, std::size_t out_stride) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* orow = out + r * out_stride;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double v = values[k];
      const double* drow = dense + col_idx[k] * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
}

void spmm_cb_scalar(const std::size_t* row_ptr, const std::size_t* col_idx,
                    const double* values, std::size_t rows,
                    const double* dense, std::size_t n, double* out,
                    std::size_t out_stride, const RowDoneFn& row_done) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* orow = out + r * out_stride;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double v = values[k];
      const double* drow = dense + col_idx[k] * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
    row_done(r, orow);
  }
}

void spmm_t_scalar(const std::size_t* row_ptr, const std::size_t* col_idx,
                   const double* values, std::size_t rows, const double* dense,
                   std::size_t n, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* drow = dense + r * n;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double v = values[k];
      double* orow = out + col_idx[k] * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
}

void relu_fwd_scalar(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void relu_bwd_scalar(double* grad, const double* input, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (input[i] <= 0.0) grad[i] = 0.0;
  }
}

void tanh_fwd_scalar(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

void tanh_bwd_scalar(double* grad, const double* output, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) grad[i] *= 1.0 - output[i] * output[i];
}

void tanh_grad_pre_scalar(double* grad, const double* preact, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double t = std::tanh(preact[i]);
    grad[i] *= 1.0 - t * t;
  }
}

void exp_fwd_scalar(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::exp(x[i]);
}

void logsoftmax_fwd_scalar(double* x, std::size_t n) {
  if (n == 0) return;
  double m = x[0];
  for (std::size_t j = 1; j < n; ++j) {
    if (x[j] > m) m = x[j];
  }
  double lse = 0.0;
  for (std::size_t j = 0; j < n; ++j) lse += std::exp(x[j] - m);
  lse = m + std::log(lse);
  for (std::size_t j = 0; j < n; ++j) x[j] -= lse;
}

void logsoftmax_bwd_scalar(double* grad, const double* output, std::size_t n) {
  double grad_sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) grad_sum += grad[j];
  for (std::size_t j = 0; j < n; ++j) grad[j] -= std::exp(output[j]) * grad_sum;
}

}  // namespace

const KernelTable& scalar_kernels() noexcept {
  static const KernelTable table = {
      gemm_nn_scalar,       gemm_tn_scalar,    gemm_nt_scalar,
      spmm_scalar,          spmm_cb_scalar,    spmm_t_scalar,
      relu_fwd_scalar,      relu_bwd_scalar,   tanh_fwd_scalar,
      tanh_bwd_scalar,      tanh_grad_pre_scalar,
      exp_fwd_scalar,       logsoftmax_fwd_scalar,
      logsoftmax_bwd_scalar,
  };
  return table;
}

}  // namespace magic::tensor::simd
