// AVX2+FMA double-precision kernels. This translation unit is compiled with
// -mavx2 -mfma regardless of the global architecture flags; it is only ever
// *called* after the runtime probe (dispatch.cpp) confirms the CPU executes
// AVX2, so the binary stays safe on older x86-64.
//
// This file is the ONLY place raw _mm256_* intrinsics are allowed
// (scripts/magic_lint.py rule `simd-intrinsics`).
//
// Numeric contracts:
//   * GEMM nn/tn keep the ascending-k accumulation per output element
//     (vectorization is across output columns), so each element sees the
//     same reduction order as the scalar kernel — results differ only by
//     FMA rounding, well inside the 1e-12 cross-ISA tolerance.
//   * gemm_nt splits each dot product across 4 lanes and horizontally sums,
//     which reorders the reduction; the absolute error stays O(k * eps).
//   * exp/tanh use a Cephes-style rational approximation (~2 ulp over
//     [-708, 708]; saturating at the extremes), far inside the 1e-12
//     tolerance against std::exp/std::tanh.
//   * Every kernel is bit-deterministic run to run for fixed inputs.

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstring>

#include "tensor/simd/kernels.hpp"

namespace magic::tensor::simd {
namespace {

// --- elementwise helpers ------------------------------------------------------

inline double hsum_pd(__m256d v) noexcept {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d shuf = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, shuf));
}

// Cephes-style exp: argument reduction against a split ln2, a degree-2/3
// rational on the reduced argument, then a two-step 2^n exponent scale so
// |n| up to 1024 never overflows the intermediate.
inline __m256d exp_pd(__m256d x0) noexcept {
  const __m256d kLog2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d kC1 = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d kC2 = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d kP0 = _mm256_set1_pd(1.26177193074810590878e-4);
  const __m256d kP1 = _mm256_set1_pd(3.02994407707441961300e-2);
  const __m256d kP2 = _mm256_set1_pd(9.99999999999999999910e-1);
  const __m256d kQ0 = _mm256_set1_pd(3.00198505138664455042e-6);
  const __m256d kQ1 = _mm256_set1_pd(2.52448340349684104192e-3);
  const __m256d kQ2 = _mm256_set1_pd(2.27265548208155028766e-1);
  const __m256d kQ3 = _mm256_set1_pd(2.00000000000000000005e0);
  const __m256d kOne = _mm256_set1_pd(1.0);

  // Clamp to the representable range; true underflow is blended to 0 below.
  const __m256d kMaxX = _mm256_set1_pd(709.782712893383996843);
  const __m256d kMinX = _mm256_set1_pd(-708.396418532264106224);
  const __m256d x = _mm256_min_pd(_mm256_max_pd(x0, kMinX), kMaxX);

  __m256d n = _mm256_floor_pd(_mm256_fmadd_pd(x, kLog2e, _mm256_set1_pd(0.5)));
  __m256d r = _mm256_fnmadd_pd(n, kC1, x);
  r = _mm256_fnmadd_pd(n, kC2, r);
  const __m256d rr = _mm256_mul_pd(r, r);
  __m256d px = _mm256_fmadd_pd(kP0, rr, kP1);
  px = _mm256_fmadd_pd(px, rr, kP2);
  px = _mm256_mul_pd(px, r);
  __m256d qx = _mm256_fmadd_pd(kQ0, rr, kQ1);
  qx = _mm256_fmadd_pd(qx, rr, kQ2);
  qx = _mm256_fmadd_pd(qx, rr, kQ3);
  __m256d e = _mm256_div_pd(px, _mm256_sub_pd(qx, px));
  e = _mm256_fmadd_pd(e, _mm256_set1_pd(2.0), kOne);

  // Scale by 2^n = 2^a * 2^b (a = n>>1, b = n-a), built in the exponent
  // field. n is integral and |n| <= 1075, so the int32 conversion is exact.
  const __m128i ni = _mm256_cvtpd_epi32(n);
  const __m128i ai = _mm_srai_epi32(ni, 1);
  const __m128i bi = _mm_sub_epi32(ni, ai);
  const __m256i bias = _mm256_set1_epi64x(1023);
  const __m256i sa =
      _mm256_slli_epi64(_mm256_add_epi64(_mm256_cvtepi32_epi64(ai), bias), 52);
  const __m256i sb =
      _mm256_slli_epi64(_mm256_add_epi64(_mm256_cvtepi32_epi64(bi), bias), 52);
  e = _mm256_mul_pd(_mm256_mul_pd(e, _mm256_castsi256_pd(sa)),
                    _mm256_castsi256_pd(sb));

  // x below the subnormal cliff is exactly 0; NaN propagates.
  const __m256d kZero = _mm256_setzero_pd();
  e = _mm256_blendv_pd(
      e, kZero, _mm256_cmp_pd(x0, _mm256_set1_pd(-745.2), _CMP_LT_OQ));
  e = _mm256_blendv_pd(e, x0, _mm256_cmp_pd(x0, x0, _CMP_UNORD_Q));
  return e;
}

// tanh via the exp identity for |x| >= 0.01 (expm1 cancellation is harmless
// there: rel error ~1e-14), the odd Taylor polynomial below it, saturation
// to +/-1 beyond 19 where 1 - tanh is under 1 ulp.
inline __m256d tanh_pd(__m256d x) noexcept {
  const __m256d kSignMask = _mm256_set1_pd(-0.0);
  const __m256d kOne = _mm256_set1_pd(1.0);
  const __m256d sign = _mm256_and_pd(x, kSignMask);
  const __m256d t = _mm256_andnot_pd(kSignMask, x);

  const __m256d e =
      exp_pd(_mm256_min_pd(_mm256_add_pd(t, t), _mm256_set1_pd(40.0)));
  __m256d mid =
      _mm256_div_pd(_mm256_sub_pd(e, kOne), _mm256_add_pd(e, kOne));
  mid = _mm256_blendv_pd(
      mid, kOne, _mm256_cmp_pd(t, _mm256_set1_pd(19.0), _CMP_GT_OQ));

  // x * (1 - x^2/3 + 2x^4/15 - 17x^6/315) for |x| < 0.01.
  const __m256d t2 = _mm256_mul_pd(t, t);
  __m256d p = _mm256_set1_pd(-5.396825396825396825e-2);  // -17/315
  p = _mm256_fmadd_pd(p, t2, _mm256_set1_pd(1.333333333333333333e-1));
  p = _mm256_fmadd_pd(p, t2, _mm256_set1_pd(-3.333333333333333333e-1));
  p = _mm256_fmadd_pd(p, t2, kOne);
  p = _mm256_mul_pd(p, t);

  const __m256d small_mask =
      _mm256_cmp_pd(t, _mm256_set1_pd(0.01), _CMP_LT_OQ);
  return _mm256_or_pd(_mm256_blendv_pd(mid, p, small_mask), sign);
}

// In-place elementwise map; the tail runs the same vector op through a
// padded buffer so a value produces identical bits wherever it sits.
template <typename VecOp>
inline void map_inplace(double* x, std::size_t n, VecOp op) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, op(_mm256_loadu_pd(x + i)));
  }
  const std::size_t tail = n - i;
  if (tail != 0) {
    alignas(32) double buf[4] = {0.0, 0.0, 0.0, 0.0};
    std::memcpy(buf, x + i, tail * sizeof(double));
    _mm256_store_pd(buf, op(_mm256_load_pd(buf)));
    std::memcpy(x + i, buf, tail * sizeof(double));
  }
}

// In-place map over (dst, src) pairs, same tail discipline.
template <typename VecOp>
inline void map2_inplace(double* dst, const double* src, std::size_t n,
                         VecOp op) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     op(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i)));
  }
  const std::size_t tail = n - i;
  if (tail != 0) {
    alignas(32) double dbuf[4] = {0.0, 0.0, 0.0, 0.0};
    alignas(32) double sbuf[4] = {0.0, 0.0, 0.0, 0.0};
    std::memcpy(dbuf, dst + i, tail * sizeof(double));
    std::memcpy(sbuf, src + i, tail * sizeof(double));
    _mm256_store_pd(dbuf, op(_mm256_load_pd(dbuf), _mm256_load_pd(sbuf)));
    std::memcpy(dst + i, dbuf, tail * sizeof(double));
  }
}

// --- GEMM micro-kernels -------------------------------------------------------
//
// nn and tn share one implementation parameterized by how A is strided:
// element (row i+r, reduction kk) lives at a[(i+r)*row_stride + kk*k_stride]
// (nn: row_stride=k, k_stride=1; tn reads the k x m matrix transposed:
// row_stride=1, k_stride=m). The register tile keeps 4x8 accumulators live
// across the whole reduction, so `out` is touched exactly twice per tile.

inline void micro_4x8(double* o0, double* o1, double* o2, double* o3,
                      std::size_t j, const double* a_base,
                      std::size_t row_stride, std::size_t k_stride,
                      const double* b, std::size_t n, std::size_t k) {
  __m256d c00 = _mm256_loadu_pd(o0 + j), c01 = _mm256_loadu_pd(o0 + j + 4);
  __m256d c10 = _mm256_loadu_pd(o1 + j), c11 = _mm256_loadu_pd(o1 + j + 4);
  __m256d c20 = _mm256_loadu_pd(o2 + j), c21 = _mm256_loadu_pd(o2 + j + 4);
  __m256d c30 = _mm256_loadu_pd(o3 + j), c31 = _mm256_loadu_pd(o3 + j + 4);
  const double* pa = a_base;
  const double* pb = b + j;
  for (std::size_t kk = 0; kk < k; ++kk, pa += k_stride, pb += n) {
    const __m256d b0 = _mm256_loadu_pd(pb);
    const __m256d b1 = _mm256_loadu_pd(pb + 4);
    __m256d av = _mm256_set1_pd(pa[0]);
    c00 = _mm256_fmadd_pd(av, b0, c00);
    c01 = _mm256_fmadd_pd(av, b1, c01);
    av = _mm256_set1_pd(pa[row_stride]);
    c10 = _mm256_fmadd_pd(av, b0, c10);
    c11 = _mm256_fmadd_pd(av, b1, c11);
    av = _mm256_set1_pd(pa[2 * row_stride]);
    c20 = _mm256_fmadd_pd(av, b0, c20);
    c21 = _mm256_fmadd_pd(av, b1, c21);
    av = _mm256_set1_pd(pa[3 * row_stride]);
    c30 = _mm256_fmadd_pd(av, b0, c30);
    c31 = _mm256_fmadd_pd(av, b1, c31);
  }
  _mm256_storeu_pd(o0 + j, c00);
  _mm256_storeu_pd(o0 + j + 4, c01);
  _mm256_storeu_pd(o1 + j, c10);
  _mm256_storeu_pd(o1 + j + 4, c11);
  _mm256_storeu_pd(o2 + j, c20);
  _mm256_storeu_pd(o2 + j + 4, c21);
  _mm256_storeu_pd(o3 + j, c30);
  _mm256_storeu_pd(o3 + j + 4, c31);
}

inline void micro_4x4(double* o0, double* o1, double* o2, double* o3,
                      std::size_t j, const double* a_base,
                      std::size_t row_stride, std::size_t k_stride,
                      const double* b, std::size_t n, std::size_t k) {
  __m256d c0 = _mm256_loadu_pd(o0 + j);
  __m256d c1 = _mm256_loadu_pd(o1 + j);
  __m256d c2 = _mm256_loadu_pd(o2 + j);
  __m256d c3 = _mm256_loadu_pd(o3 + j);
  const double* pa = a_base;
  const double* pb = b + j;
  for (std::size_t kk = 0; kk < k; ++kk, pa += k_stride, pb += n) {
    const __m256d b0 = _mm256_loadu_pd(pb);
    c0 = _mm256_fmadd_pd(_mm256_set1_pd(pa[0]), b0, c0);
    c1 = _mm256_fmadd_pd(_mm256_set1_pd(pa[row_stride]), b0, c1);
    c2 = _mm256_fmadd_pd(_mm256_set1_pd(pa[2 * row_stride]), b0, c2);
    c3 = _mm256_fmadd_pd(_mm256_set1_pd(pa[3 * row_stride]), b0, c3);
  }
  _mm256_storeu_pd(o0 + j, c0);
  _mm256_storeu_pd(o1 + j, c1);
  _mm256_storeu_pd(o2 + j, c2);
  _mm256_storeu_pd(o3 + j, c3);
}

inline void micro_1xw(double* orow, std::size_t j, std::size_t width,
                      const double* a_base, std::size_t k_stride,
                      const double* b, std::size_t n, std::size_t k) {
  if (width == 8) {
    __m256d c0 = _mm256_loadu_pd(orow + j), c1 = _mm256_loadu_pd(orow + j + 4);
    const double* pa = a_base;
    const double* pb = b + j;
    for (std::size_t kk = 0; kk < k; ++kk, pa += k_stride, pb += n) {
      const __m256d av = _mm256_set1_pd(pa[0]);
      c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(pb), c0);
      c1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(pb + 4), c1);
    }
    _mm256_storeu_pd(orow + j, c0);
    _mm256_storeu_pd(orow + j + 4, c1);
  } else {  // width == 4
    __m256d c0 = _mm256_loadu_pd(orow + j);
    const double* pa = a_base;
    const double* pb = b + j;
    for (std::size_t kk = 0; kk < k; ++kk, pa += k_stride, pb += n) {
      c0 = _mm256_fmadd_pd(_mm256_set1_pd(pa[0]), _mm256_loadu_pd(pb), c0);
    }
    _mm256_storeu_pd(orow + j, c0);
  }
}

void gemm_nnt_avx2(double* out, const double* a, const double* b,
                   std::size_t m, std::size_t k, std::size_t n,
                   std::size_t row_stride, std::size_t k_stride) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* a_base = a + i * row_stride;
    double* o0 = out + i * n;
    double* o1 = o0 + n;
    double* o2 = o1 + n;
    double* o3 = o2 + n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      micro_4x8(o0, o1, o2, o3, j, a_base, row_stride, k_stride, b, n, k);
    }
    for (; j + 4 <= n; j += 4) {
      micro_4x4(o0, o1, o2, o3, j, a_base, row_stride, k_stride, b, n, k);
    }
    for (; j < n; ++j) {
      double s0 = o0[j], s1 = o1[j], s2 = o2[j], s3 = o3[j];
      const double* pa = a_base;
      const double* pb = b + j;
      for (std::size_t kk = 0; kk < k; ++kk, pa += k_stride, pb += n) {
        const double bj = pb[0];
        s0 += pa[0] * bj;
        s1 += pa[row_stride] * bj;
        s2 += pa[2 * row_stride] * bj;
        s3 += pa[3 * row_stride] * bj;
      }
      o0[j] = s0;
      o1[j] = s1;
      o2[j] = s2;
      o3[j] = s3;
    }
  }
  for (; i < m; ++i) {
    const double* a_base = a + i * row_stride;
    double* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      micro_1xw(orow, j, 8, a_base, k_stride, b, n, k);
    }
    for (; j + 4 <= n; j += 4) {
      micro_1xw(orow, j, 4, a_base, k_stride, b, n, k);
    }
    for (; j < n; ++j) {
      double s = orow[j];
      const double* pa = a_base;
      const double* pb = b + j;
      for (std::size_t kk = 0; kk < k; ++kk, pa += k_stride, pb += n) {
        s += pa[0] * pb[0];
      }
      orow[j] = s;
    }
  }
}

void gemm_nn_avx2(double* out, const double* a, const double* b, std::size_t m,
                  std::size_t k, std::size_t n) {
  gemm_nnt_avx2(out, a, b, m, k, n, k, 1);
}

void gemm_tn_avx2(double* out, const double* a, const double* b, std::size_t m,
                  std::size_t k, std::size_t n) {
  gemm_nnt_avx2(out, a, b, m, k, n, 1, m);
}

// Four dot products at a time (4 rows of B share each streamed A vector);
// the lane sums of the 4 accumulators collapse into one vector via hadd.
void gemm_nt_avx2(double* out, const double* a, const double* b, std::size_t m,
                  std::size_t k, std::size_t n) {
  const std::size_t k4 = k & ~std::size_t{3};
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = out + i * n;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double* b0 = b + j * k;
      const double* b1 = b0 + k;
      const double* b2 = b1 + k;
      const double* b3 = b2 + k;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k4; kk += 4) {
        const __m256d av = _mm256_loadu_pd(arow + kk);
        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b0 + kk), acc0);
        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b1 + kk), acc1);
        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b2 + kk), acc2);
        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(b3 + kk), acc3);
      }
      const __m256d t0 = _mm256_hadd_pd(acc0, acc1);
      const __m256d t1 = _mm256_hadd_pd(acc2, acc3);
      __m256d sums = _mm256_add_pd(_mm256_permute2f128_pd(t0, t1, 0x20),
                                   _mm256_permute2f128_pd(t0, t1, 0x31));
      if (k4 != k) {
        alignas(32) double tail[4] = {0.0, 0.0, 0.0, 0.0};
        for (std::size_t kk = k4; kk < k; ++kk) {
          const double av = arow[kk];
          tail[0] += av * b0[kk];
          tail[1] += av * b1[kk];
          tail[2] += av * b2[kk];
          tail[3] += av * b3[kk];
        }
        sums = _mm256_add_pd(sums, _mm256_load_pd(tail));
      }
      _mm256_storeu_pd(orow + j, sums);
    }
    for (; j < n; ++j) {
      const double* bj = b + j * k;
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t kk = 0; kk < k4; kk += 4) {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk),
                              _mm256_loadu_pd(bj + kk), acc);
      }
      double s = hsum_pd(acc);
      for (std::size_t kk = k4; kk < k; ++kk) s += arow[kk] * bj[kk];
      orow[j] = s;
    }
  }
}

// --- SpMM ---------------------------------------------------------------------

inline void axpy_avx2(double* y, const double* x, double v, std::size_t n) {
  const __m256d vv = _mm256_set1_pd(v);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(vv, _mm256_loadu_pd(x + j), _mm256_loadu_pd(y + j)));
    _mm256_storeu_pd(y + j + 4,
                     _mm256_fmadd_pd(vv, _mm256_loadu_pd(x + j + 4),
                                     _mm256_loadu_pd(y + j + 4)));
  }
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        y + j, _mm256_fmadd_pd(vv, _mm256_loadu_pd(x + j), _mm256_loadu_pd(y + j)));
  }
  for (; j < n; ++j) y[j] += v * x[j];
}

void spmm_avx2(const std::size_t* row_ptr, const std::size_t* col_idx,
               const double* values, std::size_t rows, const double* dense,
               std::size_t n, double* out, std::size_t out_stride) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* orow = out + r * out_stride;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      axpy_avx2(orow, dense + col_idx[k] * n, values[k], n);
    }
  }
}

void spmm_cb_avx2(const std::size_t* row_ptr, const std::size_t* col_idx,
                  const double* values, std::size_t rows, const double* dense,
                  std::size_t n, double* out, std::size_t out_stride,
                  const RowDoneFn& row_done) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* orow = out + r * out_stride;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      axpy_avx2(orow, dense + col_idx[k] * n, values[k], n);
    }
    row_done(r, orow);
  }
}

void spmm_t_avx2(const std::size_t* row_ptr, const std::size_t* col_idx,
                 const double* values, std::size_t rows, const double* dense,
                 std::size_t n, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* drow = dense + r * n;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      axpy_avx2(out + col_idx[k] * n, drow, values[k], n);
    }
  }
}

// --- activations --------------------------------------------------------------

void relu_fwd_avx2(double* x, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  map_inplace(x, n, [zero](__m256d v) { return _mm256_max_pd(v, zero); });
}

void relu_bwd_avx2(double* grad, const double* input, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  // Keep the gradient where !(input <= 0) — NLE_UQ matches the scalar
  // kernel's behaviour including NaN inputs.
  map2_inplace(grad, input, n, [zero](__m256d g, __m256d in) {
    return _mm256_and_pd(g, _mm256_cmp_pd(in, zero, _CMP_NLE_UQ));
  });
}

void tanh_fwd_avx2(double* x, std::size_t n) {
  map_inplace(x, n, [](__m256d v) { return tanh_pd(v); });
}

void tanh_bwd_avx2(double* grad, const double* output, std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  map2_inplace(grad, output, n, [one](__m256d g, __m256d y) {
    return _mm256_mul_pd(g, _mm256_fnmadd_pd(y, y, one));
  });
}

void tanh_grad_pre_avx2(double* grad, const double* preact, std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  map2_inplace(grad, preact, n, [one](__m256d g, __m256d p) {
    const __m256d t = tanh_pd(p);
    return _mm256_mul_pd(g, _mm256_fnmadd_pd(t, t, one));
  });
}

void exp_fwd_avx2(double* x, std::size_t n) {
  map_inplace(x, n, [](__m256d v) { return exp_pd(v); });
}

void logsoftmax_fwd_avx2(double* x, std::size_t n) {
  if (n < 8) {  // a handful of classes: vector setup would dominate
    if (n == 0) return;
    double m = x[0];
    for (std::size_t j = 1; j < n; ++j) {
      if (x[j] > m) m = x[j];
    }
    double lse = 0.0;
    for (std::size_t j = 0; j < n; ++j) lse += std::exp(x[j] - m);
    lse = m + std::log(lse);
    for (std::size_t j = 0; j < n; ++j) x[j] -= lse;
    return;
  }
  const std::size_t n4 = n & ~std::size_t{3};
  __m256d vmax = _mm256_loadu_pd(x);
  std::size_t j = 4;
  for (; j + 4 <= n; j += 4) vmax = _mm256_max_pd(vmax, _mm256_loadu_pd(x + j));
  __m128d lo = _mm_max_pd(_mm256_castpd256_pd128(vmax),
                          _mm256_extractf128_pd(vmax, 1));
  lo = _mm_max_sd(lo, _mm_unpackhi_pd(lo, lo));
  double m = _mm_cvtsd_f64(lo);
  for (j = n4; j < n; ++j) {
    if (x[j] > m) m = x[j];
  }

  const __m256d vm = _mm256_set1_pd(m);
  __m256d vsum = _mm256_setzero_pd();
  for (j = 0; j + 4 <= n; j += 4) {
    vsum = _mm256_add_pd(vsum, exp_pd(_mm256_sub_pd(_mm256_loadu_pd(x + j), vm)));
  }
  double lse = hsum_pd(vsum);
  for (j = n4; j < n; ++j) lse += std::exp(x[j] - m);
  lse = m + std::log(lse);

  const __m256d vl = _mm256_set1_pd(lse);
  map_inplace(x, n, [vl](__m256d v) { return _mm256_sub_pd(v, vl); });
}

void logsoftmax_bwd_avx2(double* grad, const double* output, std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  __m256d vsum = _mm256_setzero_pd();
  for (std::size_t j = 0; j + 4 <= n; j += 4) {
    vsum = _mm256_add_pd(vsum, _mm256_loadu_pd(grad + j));
  }
  double gsum = hsum_pd(vsum);
  for (std::size_t j = n4; j < n; ++j) gsum += grad[j];
  const __m256d vg = _mm256_set1_pd(gsum);
  map2_inplace(grad, output, n, [vg](__m256d g, __m256d out) {
    return _mm256_fnmadd_pd(exp_pd(out), vg, g);
  });
}

}  // namespace

const KernelTable* avx2_kernels() noexcept {
  static const KernelTable table = {
      gemm_nn_avx2,       gemm_tn_avx2,    gemm_nt_avx2,
      spmm_avx2,          spmm_cb_avx2,    spmm_t_avx2,
      relu_fwd_avx2,      relu_bwd_avx2,   tanh_fwd_avx2,
      tanh_bwd_avx2,      tanh_grad_pre_avx2,
      exp_fwd_avx2,       logsoftmax_fwd_avx2,
      logsoftmax_bwd_avx2,
  };
  return &table;
}

}  // namespace magic::tensor::simd
