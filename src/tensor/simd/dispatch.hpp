#pragma once
// Runtime ISA dispatch for the math kernels in src/tensor/simd/.
//
// The process resolves one SimdLevel the first time any kernel (or
// active_level()) is used: the CPU is probed once (CPUID-backed
// __builtin_cpu_supports on x86-64; anything else is Scalar) and the result
// can be overridden by the MAGIC_SIMD environment variable or
// programmatically via set_level() — both exist so tests and benches can
// pin a level and CI can exercise the fallback path on AVX2 hardware.
//
// Contract (see DESIGN.md "SIMD kernels & dispatch"):
//   * Within a fixed level every kernel is run-to-run bit-deterministic —
//     the parallel trainer's bitwise loss-trajectory guarantee holds per
//     level, for any thread count.
//   * Across levels results agree to the existing 1e-12 relative GEMM
//     tolerance (AVX2 fuses multiply-adds and splits reductions across
//     lanes, which shifts results by ULPs, never more).

#include <string>

namespace magic::tensor::simd {

/// Instruction-set tiers the kernel table can dispatch to.
enum class SimdLevel {
  Scalar = 0,  ///< portable C++ loops (every platform)
  Avx2 = 1,    ///< AVX2 + FMA double-precision kernels (x86-64)
};

/// Human-readable level name: "scalar" / "avx2".
const char* level_name(SimdLevel level) noexcept;

/// Parses a MAGIC_SIMD value: "scalar", "avx2", or "native"/"auto"/"" (probe
/// the CPU). Throws std::invalid_argument for anything else, and for "avx2"
/// when the CPU (or this build) cannot execute the AVX2 kernels.
SimdLevel parse_level(const std::string& value);

/// True when the AVX2 kernel translation unit was compiled in AND the
/// running CPU reports AVX2+FMA.
bool avx2_available() noexcept;

/// The level the hardware probe alone would pick (ignores overrides).
SimdLevel detected_level() noexcept;

/// The level the kernel table currently dispatches to. First call resolves
/// it: MAGIC_SIMD override if set, hardware probe otherwise; also publishes
/// the obs gauge `tensor.simd_level`.
SimdLevel active_level();

/// Overrides the active level (tests/benches). Throws std::invalid_argument
/// if `level` cannot run on this CPU/build. Not meant to be called
/// concurrently with in-flight kernels — switch levels only at quiescent
/// points (the dispatch itself is a single atomic pointer swap).
void set_level(SimdLevel level);

}  // namespace magic::tensor::simd
