#pragma once
// The kernel table the tensor/nn hot loops dispatch through.
//
// One KernelTable per SimdLevel; kernels() returns the table for the active
// level (resolved once, then a single relaxed atomic load per call — noise
// next to any kernel's actual work). Raw _mm256_* intrinsics live only in
// kernels_avx2.cpp; everything else in the tree calls these function
// pointers (scripts/magic_lint.py rule `simd-intrinsics` enforces the
// confinement).
//
// Semantics shared by both implementations:
//   * GEMM kernels accumulate into a pre-zeroed out (the *_into wrappers in
//     tensor_ops.cpp zero it); per output element the reduction runs in
//     ascending-k order, so each level is bit-deterministic run to run.
//   * SpMM kernels accumulate CSR rows into `out` with a row stride, so the
//     inference fast path can write each layer's slice of a wider matrix;
//     the row_done variant fires a per-row epilogue while the row is hot.
//   * Element kernels operate in place; the *_bwd forms scale/mask an
//     existing gradient buffer.

#include <cstddef>
#include <functional>

namespace magic::tensor::simd {

/// Per-row epilogue for spmm_cb: (row index, pointer to the finished row).
using RowDoneFn = std::function<void(std::size_t, double*)>;

struct KernelTable {
  /// out(m x n) += a(m x k) * b(k x n); out pre-zeroed.
  void (*gemm_nn)(double* out, const double* a, const double* b, std::size_t m,
                  std::size_t k, std::size_t n);
  /// out(m x n) += a(k x m)^T * b(k x n); out pre-zeroed.
  void (*gemm_tn)(double* out, const double* a, const double* b, std::size_t m,
                  std::size_t k, std::size_t n);
  /// out(m x n) = a(m x k) * b(n x k)^T (fully overwritten).
  void (*gemm_nt)(double* out, const double* a, const double* b, std::size_t m,
                  std::size_t k, std::size_t n);

  /// CSR * dense: row r of the product accumulates into out + r*out_stride.
  void (*spmm)(const std::size_t* row_ptr, const std::size_t* col_idx,
               const double* values, std::size_t rows, const double* dense,
               std::size_t n, double* out, std::size_t out_stride);
  /// As spmm, invoking row_done(r, row) right after each row completes.
  void (*spmm_cb)(const std::size_t* row_ptr, const std::size_t* col_idx,
                  const double* values, std::size_t rows, const double* dense,
                  std::size_t n, double* out, std::size_t out_stride,
                  const RowDoneFn& row_done);
  /// CSR^T * dense: scatters v * dense-row r into out row col_idx[k].
  void (*spmm_t)(const std::size_t* row_ptr, const std::size_t* col_idx,
                 const double* values, std::size_t rows, const double* dense,
                 std::size_t n, double* out);

  /// x = max(x, 0) in place.
  void (*relu_fwd)(double* x, std::size_t n);
  /// grad[i] = 0 where input[i] <= 0.
  void (*relu_bwd)(double* grad, const double* input, std::size_t n);
  /// x = tanh(x) in place.
  void (*tanh_fwd)(double* x, std::size_t n);
  /// grad[i] *= 1 - output[i]^2 (output = cached tanh values).
  void (*tanh_bwd)(double* grad, const double* output, std::size_t n);
  /// grad[i] *= 1 - tanh(preact[i])^2 (derivative from the pre-activation).
  void (*tanh_grad_pre)(double* grad, const double* preact, std::size_t n);
  /// x = exp(x) in place.
  void (*exp_fwd)(double* x, std::size_t n);
  /// One row: x[j] -= max(x) + log(sum exp(x - max)) in place.
  void (*logsoftmax_fwd)(double* x, std::size_t n);
  /// grad[j] -= exp(output[j]) * sum(grad) (output = cached log-probs).
  void (*logsoftmax_bwd)(double* grad, const double* output, std::size_t n);
};

/// Portable reference kernels (always available).
const KernelTable& scalar_kernels() noexcept;

/// AVX2+FMA kernels, or nullptr when this build has no AVX2 translation
/// unit (non-x86 target or compiler without -mavx2).
const KernelTable* avx2_kernels() noexcept;

/// The table for the active dispatch level (resolving it on first use).
const KernelTable& kernels();

}  // namespace magic::tensor::simd
