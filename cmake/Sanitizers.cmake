# Sanitizer wiring for the MAGIC_SANITIZE cache option.
#
# MAGIC_SANITIZE is a comma- or semicolon-separated subset of
# {address, undefined, thread}; empty disables instrumentation.
# `thread` cannot be combined with `address` (the runtimes conflict).
#
# Runtime suppression files live in .sanitizers/ and are exported to the
# environment by scripts/check.sh, which drives the canonical
# ASan+UBSan and TSan ctest runs.

macro(magic_enable_sanitizers spec)
  if(NOT "${spec}" STREQUAL "")
    string(REPLACE "," ";" _magic_san_list "${spec}")
    set(_magic_san_flags "")
    set(_magic_san_has_address FALSE)
    set(_magic_san_has_thread FALSE)
    foreach(_magic_san IN LISTS _magic_san_list)
      if(_magic_san STREQUAL "address")
        set(_magic_san_has_address TRUE)
        list(APPEND _magic_san_flags -fsanitize=address)
      elseif(_magic_san STREQUAL "undefined")
        # Recoverable off: any UB report fails the run, matching the
        # zero-findings gate in scripts/check.sh.
        list(APPEND _magic_san_flags -fsanitize=undefined -fno-sanitize-recover=all)
      elseif(_magic_san STREQUAL "thread")
        set(_magic_san_has_thread TRUE)
        list(APPEND _magic_san_flags -fsanitize=thread)
      else()
        message(FATAL_ERROR
          "MAGIC_SANITIZE: unknown sanitizer '${_magic_san}' "
          "(expected address, undefined and/or thread)")
      endif()
    endforeach()
    if(_magic_san_has_address AND _magic_san_has_thread)
      message(FATAL_ERROR "MAGIC_SANITIZE: address and thread cannot be combined")
    endif()
    list(REMOVE_DUPLICATES _magic_san_flags)
    # Frame pointers and debug info keep sanitizer stack traces usable at
    # any optimisation level (check.sh builds RelWithDebInfo).
    list(APPEND _magic_san_flags -fno-omit-frame-pointer -g)
    add_compile_options(${_magic_san_flags})
    add_link_options(${_magic_san_flags})
    message(STATUS "magic: sanitizers enabled: ${spec}")
  endif()
endmacro()
