file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fig10_yancfg_cv.dir/bench_table5_fig10_yancfg_cv.cpp.o"
  "CMakeFiles/bench_table5_fig10_yancfg_cv.dir/bench_table5_fig10_yancfg_cv.cpp.o.d"
  "bench_table5_fig10_yancfg_cv"
  "bench_table5_fig10_yancfg_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fig10_yancfg_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
