# Empty dependencies file for bench_table5_fig10_yancfg_cv.
# This may be replaced when dependencies are built.
