file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fig9_mskcfg_cv.dir/bench_table3_fig9_mskcfg_cv.cpp.o"
  "CMakeFiles/bench_table3_fig9_mskcfg_cv.dir/bench_table3_fig9_mskcfg_cv.cpp.o.d"
  "bench_table3_fig9_mskcfg_cv"
  "bench_table3_fig9_mskcfg_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fig9_mskcfg_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
