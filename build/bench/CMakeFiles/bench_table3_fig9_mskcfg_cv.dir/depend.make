# Empty dependencies file for bench_table3_fig9_mskcfg_cv.
# This may be replaced when dependencies are built.
