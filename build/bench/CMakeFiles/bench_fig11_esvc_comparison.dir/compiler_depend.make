# Empty compiler generated dependencies file for bench_fig11_esvc_comparison.
# This may be replaced when dependencies are built.
