
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_mskcfg_distribution.cpp" "bench/CMakeFiles/bench_fig7_mskcfg_distribution.dir/bench_fig7_mskcfg_distribution.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_mskcfg_distribution.dir/bench_fig7_mskcfg_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/magic_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/magic/CMakeFiles/magic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/magic_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/magic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/magic_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/acfg/CMakeFiles/magic_acfg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/magic_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/magic_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
