# Empty dependencies file for bench_fig7_mskcfg_distribution.
# This may be replaced when dependencies are built.
