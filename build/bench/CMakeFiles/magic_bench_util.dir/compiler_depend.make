# Empty compiler generated dependencies file for magic_bench_util.
# This may be replaced when dependencies are built.
