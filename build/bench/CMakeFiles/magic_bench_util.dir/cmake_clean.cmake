file(REMOVE_RECURSE
  "CMakeFiles/magic_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/magic_bench_util.dir/bench_util.cpp.o.d"
  "libmagic_bench_util.a"
  "libmagic_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
