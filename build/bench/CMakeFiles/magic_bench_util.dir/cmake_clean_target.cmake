file(REMOVE_RECURSE
  "libmagic_bench_util.a"
)
