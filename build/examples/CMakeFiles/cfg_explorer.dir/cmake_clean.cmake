file(REMOVE_RECURSE
  "CMakeFiles/cfg_explorer.dir/cfg_explorer.cpp.o"
  "CMakeFiles/cfg_explorer.dir/cfg_explorer.cpp.o.d"
  "cfg_explorer"
  "cfg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
