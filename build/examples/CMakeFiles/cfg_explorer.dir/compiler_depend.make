# Empty compiler generated dependencies file for cfg_explorer.
# This may be replaced when dependencies are built.
