file(REMOVE_RECURSE
  "CMakeFiles/explain_verdict.dir/explain_verdict.cpp.o"
  "CMakeFiles/explain_verdict.dir/explain_verdict.cpp.o.d"
  "explain_verdict"
  "explain_verdict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_verdict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
