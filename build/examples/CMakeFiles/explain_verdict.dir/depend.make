# Empty dependencies file for explain_verdict.
# This may be replaced when dependencies are built.
