file(REMOVE_RECURSE
  "CMakeFiles/test_frontend.dir/acfg/attributes_test.cpp.o"
  "CMakeFiles/test_frontend.dir/acfg/attributes_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/acfg/extractor_test.cpp.o"
  "CMakeFiles/test_frontend.dir/acfg/extractor_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/acfg/serialization_test.cpp.o"
  "CMakeFiles/test_frontend.dir/acfg/serialization_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/asmx/ida_format_test.cpp.o"
  "CMakeFiles/test_frontend.dir/asmx/ida_format_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/asmx/opcode_test.cpp.o"
  "CMakeFiles/test_frontend.dir/asmx/opcode_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/asmx/parser_robustness_test.cpp.o"
  "CMakeFiles/test_frontend.dir/asmx/parser_robustness_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/asmx/parser_test.cpp.o"
  "CMakeFiles/test_frontend.dir/asmx/parser_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/asmx/tagging_test.cpp.o"
  "CMakeFiles/test_frontend.dir/asmx/tagging_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/cfg/cfg_builder_test.cpp.o"
  "CMakeFiles/test_frontend.dir/cfg/cfg_builder_test.cpp.o.d"
  "CMakeFiles/test_frontend.dir/cfg/graph_algo_test.cpp.o"
  "CMakeFiles/test_frontend.dir/cfg/graph_algo_test.cpp.o.d"
  "test_frontend"
  "test_frontend.pdb"
  "test_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
