file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/magic/classifier_test.cpp.o"
  "CMakeFiles/test_core.dir/magic/classifier_test.cpp.o.d"
  "CMakeFiles/test_core.dir/magic/dgcnn_test.cpp.o"
  "CMakeFiles/test_core.dir/magic/dgcnn_test.cpp.o.d"
  "CMakeFiles/test_core.dir/magic/hyperparam_test.cpp.o"
  "CMakeFiles/test_core.dir/magic/hyperparam_test.cpp.o.d"
  "CMakeFiles/test_core.dir/magic/model_io_test.cpp.o"
  "CMakeFiles/test_core.dir/magic/model_io_test.cpp.o.d"
  "CMakeFiles/test_core.dir/magic/trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/magic/trainer_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
