file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/activations_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/activations_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/conv_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/conv_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/dropout_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/dropout_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/gradcheck_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/graph_conv_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/graph_conv_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/linear_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/linear_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/loss_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/loss_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/optimizer_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/param_sweep_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/param_sweep_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/pooling_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/pooling_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/sequential_reshape_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/sequential_reshape_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/sort_pooling_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/sort_pooling_test.cpp.o.d"
  "CMakeFiles/test_nn.dir/nn/weighted_vertices_test.cpp.o"
  "CMakeFiles/test_nn.dir/nn/weighted_vertices_test.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
