# Empty compiler generated dependencies file for test_data_ml.
# This may be replaced when dependencies are built.
