file(REMOVE_RECURSE
  "CMakeFiles/test_data_ml.dir/data/corpus_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/data/corpus_test.cpp.o.d"
  "CMakeFiles/test_data_ml.dir/data/dataset_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/data/dataset_test.cpp.o.d"
  "CMakeFiles/test_data_ml.dir/data/drift_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/data/drift_test.cpp.o.d"
  "CMakeFiles/test_data_ml.dir/data/family_sweep_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/data/family_sweep_test.cpp.o.d"
  "CMakeFiles/test_data_ml.dir/data/generator_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/data/generator_test.cpp.o.d"
  "CMakeFiles/test_data_ml.dir/ml/features_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/ml/features_test.cpp.o.d"
  "CMakeFiles/test_data_ml.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/test_data_ml.dir/ml/metrics_test.cpp.o.d"
  "test_data_ml"
  "test_data_ml.pdb"
  "test_data_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
