file(REMOVE_RECURSE
  "CMakeFiles/magic_core.dir/classifier.cpp.o"
  "CMakeFiles/magic_core.dir/classifier.cpp.o.d"
  "CMakeFiles/magic_core.dir/cross_validation.cpp.o"
  "CMakeFiles/magic_core.dir/cross_validation.cpp.o.d"
  "CMakeFiles/magic_core.dir/dgcnn.cpp.o"
  "CMakeFiles/magic_core.dir/dgcnn.cpp.o.d"
  "CMakeFiles/magic_core.dir/hyperparam.cpp.o"
  "CMakeFiles/magic_core.dir/hyperparam.cpp.o.d"
  "CMakeFiles/magic_core.dir/model_io.cpp.o"
  "CMakeFiles/magic_core.dir/model_io.cpp.o.d"
  "CMakeFiles/magic_core.dir/trainer.cpp.o"
  "CMakeFiles/magic_core.dir/trainer.cpp.o.d"
  "libmagic_core.a"
  "libmagic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
