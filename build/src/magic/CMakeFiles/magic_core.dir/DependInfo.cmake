
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/magic/classifier.cpp" "src/magic/CMakeFiles/magic_core.dir/classifier.cpp.o" "gcc" "src/magic/CMakeFiles/magic_core.dir/classifier.cpp.o.d"
  "/root/repo/src/magic/cross_validation.cpp" "src/magic/CMakeFiles/magic_core.dir/cross_validation.cpp.o" "gcc" "src/magic/CMakeFiles/magic_core.dir/cross_validation.cpp.o.d"
  "/root/repo/src/magic/dgcnn.cpp" "src/magic/CMakeFiles/magic_core.dir/dgcnn.cpp.o" "gcc" "src/magic/CMakeFiles/magic_core.dir/dgcnn.cpp.o.d"
  "/root/repo/src/magic/hyperparam.cpp" "src/magic/CMakeFiles/magic_core.dir/hyperparam.cpp.o" "gcc" "src/magic/CMakeFiles/magic_core.dir/hyperparam.cpp.o.d"
  "/root/repo/src/magic/model_io.cpp" "src/magic/CMakeFiles/magic_core.dir/model_io.cpp.o" "gcc" "src/magic/CMakeFiles/magic_core.dir/model_io.cpp.o.d"
  "/root/repo/src/magic/trainer.cpp" "src/magic/CMakeFiles/magic_core.dir/trainer.cpp.o" "gcc" "src/magic/CMakeFiles/magic_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/magic_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/acfg/CMakeFiles/magic_acfg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/magic_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/magic_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/magic_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
