# Empty dependencies file for magic_core.
# This may be replaced when dependencies are built.
