file(REMOVE_RECURSE
  "libmagic_core.a"
)
