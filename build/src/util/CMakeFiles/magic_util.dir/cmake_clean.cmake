file(REMOVE_RECURSE
  "CMakeFiles/magic_util.dir/csv.cpp.o"
  "CMakeFiles/magic_util.dir/csv.cpp.o.d"
  "CMakeFiles/magic_util.dir/logging.cpp.o"
  "CMakeFiles/magic_util.dir/logging.cpp.o.d"
  "CMakeFiles/magic_util.dir/rng.cpp.o"
  "CMakeFiles/magic_util.dir/rng.cpp.o.d"
  "CMakeFiles/magic_util.dir/string_util.cpp.o"
  "CMakeFiles/magic_util.dir/string_util.cpp.o.d"
  "CMakeFiles/magic_util.dir/table.cpp.o"
  "CMakeFiles/magic_util.dir/table.cpp.o.d"
  "CMakeFiles/magic_util.dir/thread_pool.cpp.o"
  "CMakeFiles/magic_util.dir/thread_pool.cpp.o.d"
  "libmagic_util.a"
  "libmagic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
