file(REMOVE_RECURSE
  "libmagic_util.a"
)
