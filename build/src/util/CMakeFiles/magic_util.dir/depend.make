# Empty dependencies file for magic_util.
# This may be replaced when dependencies are built.
