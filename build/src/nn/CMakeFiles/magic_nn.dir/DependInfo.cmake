
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/magic_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/adaptive_max_pool.cpp" "src/nn/CMakeFiles/magic_nn.dir/adaptive_max_pool.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/adaptive_max_pool.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/magic_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/magic_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/magic_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/graph_conv.cpp" "src/nn/CMakeFiles/magic_nn.dir/graph_conv.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/graph_conv.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/magic_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/magic_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/magic_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/max_pool1d.cpp" "src/nn/CMakeFiles/magic_nn.dir/max_pool1d.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/max_pool1d.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/magic_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/magic_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/sort_pooling.cpp" "src/nn/CMakeFiles/magic_nn.dir/sort_pooling.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/sort_pooling.cpp.o.d"
  "/root/repo/src/nn/weighted_vertices.cpp" "src/nn/CMakeFiles/magic_nn.dir/weighted_vertices.cpp.o" "gcc" "src/nn/CMakeFiles/magic_nn.dir/weighted_vertices.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
