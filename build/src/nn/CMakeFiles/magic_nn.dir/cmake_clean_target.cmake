file(REMOVE_RECURSE
  "libmagic_nn.a"
)
