file(REMOVE_RECURSE
  "CMakeFiles/magic_nn.dir/activations.cpp.o"
  "CMakeFiles/magic_nn.dir/activations.cpp.o.d"
  "CMakeFiles/magic_nn.dir/adaptive_max_pool.cpp.o"
  "CMakeFiles/magic_nn.dir/adaptive_max_pool.cpp.o.d"
  "CMakeFiles/magic_nn.dir/conv1d.cpp.o"
  "CMakeFiles/magic_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/magic_nn.dir/conv2d.cpp.o"
  "CMakeFiles/magic_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/magic_nn.dir/dropout.cpp.o"
  "CMakeFiles/magic_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/magic_nn.dir/graph_conv.cpp.o"
  "CMakeFiles/magic_nn.dir/graph_conv.cpp.o.d"
  "CMakeFiles/magic_nn.dir/init.cpp.o"
  "CMakeFiles/magic_nn.dir/init.cpp.o.d"
  "CMakeFiles/magic_nn.dir/linear.cpp.o"
  "CMakeFiles/magic_nn.dir/linear.cpp.o.d"
  "CMakeFiles/magic_nn.dir/loss.cpp.o"
  "CMakeFiles/magic_nn.dir/loss.cpp.o.d"
  "CMakeFiles/magic_nn.dir/max_pool1d.cpp.o"
  "CMakeFiles/magic_nn.dir/max_pool1d.cpp.o.d"
  "CMakeFiles/magic_nn.dir/optimizer.cpp.o"
  "CMakeFiles/magic_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/magic_nn.dir/sequential.cpp.o"
  "CMakeFiles/magic_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/magic_nn.dir/sort_pooling.cpp.o"
  "CMakeFiles/magic_nn.dir/sort_pooling.cpp.o.d"
  "CMakeFiles/magic_nn.dir/weighted_vertices.cpp.o"
  "CMakeFiles/magic_nn.dir/weighted_vertices.cpp.o.d"
  "libmagic_nn.a"
  "libmagic_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
