# Empty compiler generated dependencies file for magic_nn.
# This may be replaced when dependencies are built.
