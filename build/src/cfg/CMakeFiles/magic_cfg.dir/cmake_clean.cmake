file(REMOVE_RECURSE
  "CMakeFiles/magic_cfg.dir/cfg.cpp.o"
  "CMakeFiles/magic_cfg.dir/cfg.cpp.o.d"
  "CMakeFiles/magic_cfg.dir/cfg_builder.cpp.o"
  "CMakeFiles/magic_cfg.dir/cfg_builder.cpp.o.d"
  "CMakeFiles/magic_cfg.dir/graph_algo.cpp.o"
  "CMakeFiles/magic_cfg.dir/graph_algo.cpp.o.d"
  "libmagic_cfg.a"
  "libmagic_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
