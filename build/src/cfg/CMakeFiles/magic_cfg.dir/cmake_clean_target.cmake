file(REMOVE_RECURSE
  "libmagic_cfg.a"
)
