# Empty compiler generated dependencies file for magic_cfg.
# This may be replaced when dependencies are built.
