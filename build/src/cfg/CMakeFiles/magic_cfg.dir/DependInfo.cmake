
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg.cpp" "src/cfg/CMakeFiles/magic_cfg.dir/cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/magic_cfg.dir/cfg.cpp.o.d"
  "/root/repo/src/cfg/cfg_builder.cpp" "src/cfg/CMakeFiles/magic_cfg.dir/cfg_builder.cpp.o" "gcc" "src/cfg/CMakeFiles/magic_cfg.dir/cfg_builder.cpp.o.d"
  "/root/repo/src/cfg/graph_algo.cpp" "src/cfg/CMakeFiles/magic_cfg.dir/graph_algo.cpp.o" "gcc" "src/cfg/CMakeFiles/magic_cfg.dir/graph_algo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
