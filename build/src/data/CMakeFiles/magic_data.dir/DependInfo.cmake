
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cpp" "src/data/CMakeFiles/magic_data.dir/corpus.cpp.o" "gcc" "src/data/CMakeFiles/magic_data.dir/corpus.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/magic_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/magic_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/program_generator.cpp" "src/data/CMakeFiles/magic_data.dir/program_generator.cpp.o" "gcc" "src/data/CMakeFiles/magic_data.dir/program_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acfg/CMakeFiles/magic_acfg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/magic_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
