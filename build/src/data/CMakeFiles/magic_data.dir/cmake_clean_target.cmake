file(REMOVE_RECURSE
  "libmagic_data.a"
)
