# Empty dependencies file for magic_data.
# This may be replaced when dependencies are built.
