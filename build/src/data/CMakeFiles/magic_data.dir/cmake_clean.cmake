file(REMOVE_RECURSE
  "CMakeFiles/magic_data.dir/corpus.cpp.o"
  "CMakeFiles/magic_data.dir/corpus.cpp.o.d"
  "CMakeFiles/magic_data.dir/dataset.cpp.o"
  "CMakeFiles/magic_data.dir/dataset.cpp.o.d"
  "CMakeFiles/magic_data.dir/program_generator.cpp.o"
  "CMakeFiles/magic_data.dir/program_generator.cpp.o.d"
  "libmagic_data.a"
  "libmagic_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
