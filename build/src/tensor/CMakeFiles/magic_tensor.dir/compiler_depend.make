# Empty compiler generated dependencies file for magic_tensor.
# This may be replaced when dependencies are built.
