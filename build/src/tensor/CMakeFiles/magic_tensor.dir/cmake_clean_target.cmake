file(REMOVE_RECURSE
  "libmagic_tensor.a"
)
