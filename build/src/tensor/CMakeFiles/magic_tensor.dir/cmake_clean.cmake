file(REMOVE_RECURSE
  "CMakeFiles/magic_tensor.dir/sparse.cpp.o"
  "CMakeFiles/magic_tensor.dir/sparse.cpp.o.d"
  "CMakeFiles/magic_tensor.dir/tensor.cpp.o"
  "CMakeFiles/magic_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/magic_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/magic_tensor.dir/tensor_ops.cpp.o.d"
  "libmagic_tensor.a"
  "libmagic_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
