file(REMOVE_RECURSE
  "libmagic_baselines.a"
)
