
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/autoencoder.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/autoencoder.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/autoencoder.cpp.o.d"
  "/root/repo/src/baselines/gbdt.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/gbdt.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/gbdt.cpp.o.d"
  "/root/repo/src/baselines/ngram.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/ngram.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/ngram.cpp.o.d"
  "/root/repo/src/baselines/random_forest.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/random_forest.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/random_forest.cpp.o.d"
  "/root/repo/src/baselines/scaler.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/scaler.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/scaler.cpp.o.d"
  "/root/repo/src/baselines/svm.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/svm.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/svm.cpp.o.d"
  "/root/repo/src/baselines/tree.cpp" "src/baselines/CMakeFiles/magic_baselines.dir/tree.cpp.o" "gcc" "src/baselines/CMakeFiles/magic_baselines.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/magic_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/magic_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/acfg/CMakeFiles/magic_acfg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/magic_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
