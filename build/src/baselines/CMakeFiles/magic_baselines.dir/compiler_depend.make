# Empty compiler generated dependencies file for magic_baselines.
# This may be replaced when dependencies are built.
