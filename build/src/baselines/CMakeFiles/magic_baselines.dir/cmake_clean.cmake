file(REMOVE_RECURSE
  "CMakeFiles/magic_baselines.dir/autoencoder.cpp.o"
  "CMakeFiles/magic_baselines.dir/autoencoder.cpp.o.d"
  "CMakeFiles/magic_baselines.dir/gbdt.cpp.o"
  "CMakeFiles/magic_baselines.dir/gbdt.cpp.o.d"
  "CMakeFiles/magic_baselines.dir/ngram.cpp.o"
  "CMakeFiles/magic_baselines.dir/ngram.cpp.o.d"
  "CMakeFiles/magic_baselines.dir/random_forest.cpp.o"
  "CMakeFiles/magic_baselines.dir/random_forest.cpp.o.d"
  "CMakeFiles/magic_baselines.dir/scaler.cpp.o"
  "CMakeFiles/magic_baselines.dir/scaler.cpp.o.d"
  "CMakeFiles/magic_baselines.dir/svm.cpp.o"
  "CMakeFiles/magic_baselines.dir/svm.cpp.o.d"
  "CMakeFiles/magic_baselines.dir/tree.cpp.o"
  "CMakeFiles/magic_baselines.dir/tree.cpp.o.d"
  "libmagic_baselines.a"
  "libmagic_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
