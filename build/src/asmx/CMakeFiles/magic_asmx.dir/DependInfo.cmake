
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmx/instruction.cpp" "src/asmx/CMakeFiles/magic_asmx.dir/instruction.cpp.o" "gcc" "src/asmx/CMakeFiles/magic_asmx.dir/instruction.cpp.o.d"
  "/root/repo/src/asmx/opcode_table.cpp" "src/asmx/CMakeFiles/magic_asmx.dir/opcode_table.cpp.o" "gcc" "src/asmx/CMakeFiles/magic_asmx.dir/opcode_table.cpp.o.d"
  "/root/repo/src/asmx/parser.cpp" "src/asmx/CMakeFiles/magic_asmx.dir/parser.cpp.o" "gcc" "src/asmx/CMakeFiles/magic_asmx.dir/parser.cpp.o.d"
  "/root/repo/src/asmx/tagging.cpp" "src/asmx/CMakeFiles/magic_asmx.dir/tagging.cpp.o" "gcc" "src/asmx/CMakeFiles/magic_asmx.dir/tagging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
