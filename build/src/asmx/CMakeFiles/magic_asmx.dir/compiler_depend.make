# Empty compiler generated dependencies file for magic_asmx.
# This may be replaced when dependencies are built.
