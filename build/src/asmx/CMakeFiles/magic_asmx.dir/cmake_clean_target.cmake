file(REMOVE_RECURSE
  "libmagic_asmx.a"
)
