file(REMOVE_RECURSE
  "CMakeFiles/magic_asmx.dir/instruction.cpp.o"
  "CMakeFiles/magic_asmx.dir/instruction.cpp.o.d"
  "CMakeFiles/magic_asmx.dir/opcode_table.cpp.o"
  "CMakeFiles/magic_asmx.dir/opcode_table.cpp.o.d"
  "CMakeFiles/magic_asmx.dir/parser.cpp.o"
  "CMakeFiles/magic_asmx.dir/parser.cpp.o.d"
  "CMakeFiles/magic_asmx.dir/tagging.cpp.o"
  "CMakeFiles/magic_asmx.dir/tagging.cpp.o.d"
  "libmagic_asmx.a"
  "libmagic_asmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_asmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
