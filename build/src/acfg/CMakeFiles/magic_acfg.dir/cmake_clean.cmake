file(REMOVE_RECURSE
  "CMakeFiles/magic_acfg.dir/acfg.cpp.o"
  "CMakeFiles/magic_acfg.dir/acfg.cpp.o.d"
  "CMakeFiles/magic_acfg.dir/attributes.cpp.o"
  "CMakeFiles/magic_acfg.dir/attributes.cpp.o.d"
  "CMakeFiles/magic_acfg.dir/extractor.cpp.o"
  "CMakeFiles/magic_acfg.dir/extractor.cpp.o.d"
  "CMakeFiles/magic_acfg.dir/serialization.cpp.o"
  "CMakeFiles/magic_acfg.dir/serialization.cpp.o.d"
  "libmagic_acfg.a"
  "libmagic_acfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_acfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
