file(REMOVE_RECURSE
  "libmagic_acfg.a"
)
