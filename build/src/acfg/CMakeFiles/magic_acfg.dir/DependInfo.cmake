
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acfg/acfg.cpp" "src/acfg/CMakeFiles/magic_acfg.dir/acfg.cpp.o" "gcc" "src/acfg/CMakeFiles/magic_acfg.dir/acfg.cpp.o.d"
  "/root/repo/src/acfg/attributes.cpp" "src/acfg/CMakeFiles/magic_acfg.dir/attributes.cpp.o" "gcc" "src/acfg/CMakeFiles/magic_acfg.dir/attributes.cpp.o.d"
  "/root/repo/src/acfg/extractor.cpp" "src/acfg/CMakeFiles/magic_acfg.dir/extractor.cpp.o" "gcc" "src/acfg/CMakeFiles/magic_acfg.dir/extractor.cpp.o.d"
  "/root/repo/src/acfg/serialization.cpp" "src/acfg/CMakeFiles/magic_acfg.dir/serialization.cpp.o" "gcc" "src/acfg/CMakeFiles/magic_acfg.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/magic_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
