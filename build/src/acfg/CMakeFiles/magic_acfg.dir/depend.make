# Empty dependencies file for magic_acfg.
# This may be replaced when dependencies are built.
