file(REMOVE_RECURSE
  "libmagic_ml.a"
)
