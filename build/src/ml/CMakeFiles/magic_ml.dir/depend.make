# Empty dependencies file for magic_ml.
# This may be replaced when dependencies are built.
