
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/features.cpp" "src/ml/CMakeFiles/magic_ml.dir/features.cpp.o" "gcc" "src/ml/CMakeFiles/magic_ml.dir/features.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/magic_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/magic_ml.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/acfg/CMakeFiles/magic_acfg.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/magic_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/magic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/magic_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/asmx/CMakeFiles/magic_asmx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
