file(REMOVE_RECURSE
  "CMakeFiles/magic_ml.dir/features.cpp.o"
  "CMakeFiles/magic_ml.dir/features.cpp.o.d"
  "CMakeFiles/magic_ml.dir/metrics.cpp.o"
  "CMakeFiles/magic_ml.dir/metrics.cpp.o.d"
  "libmagic_ml.a"
  "libmagic_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
