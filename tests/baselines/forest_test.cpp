#include "baselines/random_forest.hpp"

#include <gtest/gtest.h>

#include "baselines/baseline_test_util.hpp"

namespace magic::baselines {
namespace {

using testing::holdout_accuracy;
using testing::make_blobs;

TEST(RandomForest, HighAccuracyOnSeparableBlobs) {
  auto data = make_blobs(3, 60, 5, 8.0, 1);
  RandomForest rf({.num_trees = 30,
                   .tree = {.max_depth = 8, .min_samples_leaf = 1, .feature_fraction = 0.7},
                   .bootstrap_fraction = 1.0,
                   .seed = 2});
  EXPECT_GT(holdout_accuracy(rf, data, 3), 0.95);
}

TEST(RandomForest, ProbabilitiesAreValidDistribution) {
  auto data = make_blobs(3, 30, 4, 5.0, 3);
  RandomForest rf({.num_trees = 10, .tree = {}, .bootstrap_fraction = 1.0, .seed = 4});
  rf.fit(data, 3);
  testing::expect_valid_distribution(rf.predict_proba(data.rows[0]));
}

TEST(RandomForest, DeterministicForSeed) {
  auto data = make_blobs(2, 40, 3, 4.0, 5);
  RandomForest a({.num_trees = 8, .tree = {}, .bootstrap_fraction = 1.0, .seed = 6});
  RandomForest b({.num_trees = 8, .tree = {}, .bootstrap_fraction = 1.0, .seed = 6});
  a.fit(data, 2);
  b.fit(data, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.predict_proba(data.rows[i]), b.predict_proba(data.rows[i]));
  }
}

TEST(RandomForest, BuildsRequestedTreeCount) {
  auto data = make_blobs(2, 20, 2, 4.0, 7);
  RandomForest rf({.num_trees = 13, .tree = {}, .bootstrap_fraction = 0.8, .seed = 8});
  rf.fit(data, 2);
  EXPECT_EQ(rf.num_trees(), 13u);
}

TEST(RandomForest, ThrowsBeforeFit) {
  RandomForest rf;
  EXPECT_THROW(rf.predict_proba({1.0}), std::logic_error);
}

TEST(RandomForest, ThrowsOnEmptyData) {
  RandomForest rf;
  ml::FeatureMatrix empty;
  EXPECT_THROW(rf.fit(empty, 2), std::invalid_argument);
}

}  // namespace
}  // namespace magic::baselines
