#include "baselines/tree.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "baselines/baseline_test_util.hpp"

namespace magic::baselines {
namespace {

using testing::make_blobs;

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  return idx;
}

TEST(DecisionTree, FitsSeparableDataPerfectly) {
  auto data = make_blobs(3, 30, 4, 10.0, 1);
  DecisionTree tree({.max_depth = 6, .min_samples_leaf = 1, .feature_fraction = 1.0});
  util::Rng rng(2);
  tree.fit(data, 3, all_indices(data.rows.size()), rng);
  for (std::size_t i = 0; i < data.rows.size(); ++i) {
    const auto p = tree.predict_proba(data.rows[i]);
    std::size_t arg = 0;
    for (std::size_t c = 1; c < 3; ++c) {
      if (p[c] > p[arg]) arg = c;
    }
    EXPECT_EQ(arg, data.labels[i]);
  }
}

TEST(DecisionTree, PureNodeBecomesLeafEarly) {
  ml::FeatureMatrix data;
  for (int i = 0; i < 10; ++i) {
    data.rows.push_back({static_cast<double>(i)});
    data.labels.push_back(0);  // single class
  }
  DecisionTree tree;
  util::Rng rng(3);
  tree.fit(data, 2, all_indices(10), rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict_proba({5.0})[0], 1.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  auto data = make_blobs(2, 100, 3, 3.0, 4);
  DecisionTree stump({.max_depth = 1, .min_samples_leaf = 1, .feature_fraction = 1.0});
  util::Rng rng(5);
  stump.fit(data, 2, all_indices(data.rows.size()), rng);
  EXPECT_LE(stump.node_count(), 3u);  // root + two leaves
}

TEST(DecisionTree, LeafDistributionsSumToOne) {
  auto data = make_blobs(3, 20, 2, 2.0, 6);
  DecisionTree tree;
  util::Rng rng(7);
  tree.fit(data, 3, all_indices(data.rows.size()), rng);
  const auto p = tree.predict_proba(data.rows[0]);
  testing::expect_valid_distribution(p);
}

TEST(DecisionTree, ThrowsOnEmptyFit) {
  DecisionTree tree;
  ml::FeatureMatrix data;
  util::Rng rng(8);
  EXPECT_THROW(tree.fit(data, 2, {}, rng), std::invalid_argument);
}

TEST(DecisionTree, ThrowsOnPredictBeforeFit) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict_proba({1.0}), std::logic_error);
}

TEST(RegressionTree, FitsPiecewiseConstantTarget) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int i = 0; i < 40; ++i) {
    rows.push_back({static_cast<double>(i)});
    targets.push_back(i < 20 ? -3.0 : 5.0);
  }
  RegressionTree tree({.max_depth = 2, .min_samples_leaf = 2, .feature_fraction = 1.0},
                      /*lambda=*/0.0);
  util::Rng rng(9);
  std::vector<std::size_t> idx(40);
  std::iota(idx.begin(), idx.end(), 0u);
  tree.fit(rows, targets, {}, idx, rng);
  EXPECT_NEAR(tree.predict({5.0}), -3.0, 0.3);
  EXPECT_NEAR(tree.predict({35.0}), 5.0, 0.3);
}

TEST(RegressionTree, LambdaShrinksLeaves) {
  std::vector<std::vector<double>> rows = {{0.0}, {1.0}};
  std::vector<double> targets = {4.0, 4.0};
  std::vector<std::size_t> idx = {0, 1};
  util::Rng rng(10);
  RegressionTree no_reg({.max_depth = 0, .min_samples_leaf = 1, .feature_fraction = 1.0}, 0.0);
  no_reg.fit(rows, targets, {}, idx, rng);
  EXPECT_NEAR(no_reg.predict({0.0}), 4.0, 1e-9);  // mean of targets
  RegressionTree reg({.max_depth = 0, .min_samples_leaf = 1, .feature_fraction = 1.0}, 2.0);
  reg.fit(rows, targets, {}, idx, rng);
  EXPECT_NEAR(reg.predict({0.0}), 8.0 / 4.0, 1e-9);  // sum g / (sum h + lambda)
}

TEST(RegressionTree, HessiansWeightLeaves) {
  std::vector<std::vector<double>> rows = {{0.0}, {1.0}};
  std::vector<double> targets = {1.0, 1.0};
  std::vector<double> hess = {0.5, 0.5};
  std::vector<std::size_t> idx = {0, 1};
  util::Rng rng(11);
  RegressionTree tree({.max_depth = 0, .min_samples_leaf = 1, .feature_fraction = 1.0}, 0.0);
  tree.fit(rows, targets, hess, idx, rng);
  EXPECT_NEAR(tree.predict({0.5}), 2.0 / 1.0, 1e-9);
}

}  // namespace
}  // namespace magic::baselines
