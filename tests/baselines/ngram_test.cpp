#include "baselines/ngram.hpp"

#include <gtest/gtest.h>

#include "asmx/parser.hpp"
#include "baselines/baseline_test_util.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"

namespace magic::baselines {
namespace {

TEST(OpcodeNgramHasher, CountsWindowsOnce) {
  OpcodeNgramHasher hasher(2, 64);
  asmx::Program p =
      asmx::parse_listing("401000 mov eax, 1\n401005 add eax, 2\n401008 ret\n")
          .program;
  const auto counts = hasher.extract(p);
  double total = 0.0;
  for (double c : counts) total += c;
  EXPECT_EQ(total, 2.0);  // (mov,add), (add,ret)
}

TEST(OpcodeNgramHasher, ShortProgramsYieldZeroVector) {
  OpcodeNgramHasher hasher(4, 32);
  asmx::Program p = asmx::parse_listing("401000 ret\n").program;
  const auto counts = hasher.extract(p);
  for (double c : counts) EXPECT_EQ(c, 0.0);
}

TEST(OpcodeNgramHasher, SameOpcodeSequenceSameHash) {
  OpcodeNgramHasher hasher(2, 128);
  // Different registers/immediates but identical opcode classes.
  const auto a = hasher.extract_listing("401000 mov eax, 1\n401005 add ebx, 7\n");
  const auto b = hasher.extract_listing("500000 mov ecx, 9\n500004 sub edx, 2\n");
  // mov->arith in both cases (add and sub are both Arithmetic).
  EXPECT_EQ(a, b);
}

TEST(OpcodeNgramHasher, RejectsBadConstruction) {
  EXPECT_THROW(OpcodeNgramHasher(0, 8), std::invalid_argument);
  EXPECT_THROW(OpcodeNgramHasher(2, 0), std::invalid_argument);
}

TEST(MultinomialNaiveBayes, SeparatesDisjointVocabularies) {
  // Class 0 uses features {0,1}; class 1 uses features {2,3}.
  std::vector<std::vector<double>> rows;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({5, 3, 0, 0});
    labels.push_back(0);
    rows.push_back({0, 0, 4, 6});
    labels.push_back(1);
  }
  MultinomialNaiveBayes nb;
  nb.fit(rows, labels, 2);
  EXPECT_EQ(nb.predict({7, 2, 0, 0}), 0u);
  EXPECT_EQ(nb.predict({0, 1, 5, 5}), 1u);
  testing::expect_valid_distribution(nb.predict_proba({1, 1, 1, 1}));
}

TEST(MultinomialNaiveBayes, PriorsMatterForEmptyFeatures) {
  std::vector<std::vector<double>> rows;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 9; ++i) {
    rows.push_back({1.0});
    labels.push_back(0);
  }
  rows.push_back({1.0});
  labels.push_back(1);
  MultinomialNaiveBayes nb;
  nb.fit(rows, labels, 2);
  // A zero-count vector falls back to priors: class 0 dominates.
  EXPECT_EQ(nb.predict({0.0}), 0u);
}

TEST(MultinomialNaiveBayes, ValidatesInputs) {
  MultinomialNaiveBayes nb;
  EXPECT_THROW(nb.fit({}, {}, 2), std::invalid_argument);
  EXPECT_THROW(nb.predict_proba({1.0}), std::logic_error);
  EXPECT_THROW(MultinomialNaiveBayes(0.0), std::invalid_argument);
}

TEST(NgramSequenceClassifier, LearnsFamilyOpcodeTextures) {
  // Arithmetic-heavy vs mov-heavy family profiles produce different opcode
  // sequences; the n-gram model should separate them well above chance.
  auto specs = data::mskcfg_family_specs();
  std::vector<std::string> listings;
  std::vector<std::size_t> labels;
  // Vundo (arith-heavy) vs Lollipop (mov/call-heavy).
  data::ProgramGenerator g0(specs[3], util::Rng(1));
  data::ProgramGenerator g1(specs[1], util::Rng(2));
  for (int i = 0; i < 30; ++i) {
    listings.push_back(g0.generate_listing());
    labels.push_back(0);
    listings.push_back(g1.generate_listing());
    labels.push_back(1);
  }
  NgramSequenceClassifier clf(3, 256);
  std::vector<std::string> train_l;
  std::vector<std::size_t> train_y;
  for (std::size_t i = 0; i < listings.size(); ++i) {
    if (i % 3 != 0) {
      train_l.push_back(listings[i]);
      train_y.push_back(labels[i]);
    }
  }
  clf.fit(train_l, train_y, 2);
  std::size_t correct = 0, total = 0;
  for (std::size_t i = 0; i < listings.size(); i += 3) {
    correct += clf.predict(listings[i]) == labels[i] ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace magic::baselines
