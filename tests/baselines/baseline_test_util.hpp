#pragma once
// Shared fixtures for baseline-classifier tests: separable Gaussian blob
// datasets and a train/holdout accuracy harness.

#include <cstddef>
#include <vector>

#include "baselines/classifier.hpp"
#include "util/rng.hpp"

namespace magic::baselines::testing {

/// K Gaussian blobs in `dims` dimensions with centers spaced `separation`
/// apart along a diagonal; near-perfectly separable when separation >> 1.
inline ml::FeatureMatrix make_blobs(std::size_t classes, std::size_t per_class,
                                    std::size_t dims, double separation,
                                    std::uint64_t seed) {
  ml::FeatureMatrix fm;
  util::Rng rng(seed);
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<double> row(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        row[d] = static_cast<double>(c) * separation * (d % 2 == 0 ? 1.0 : -0.5) +
                 rng.normal();
      }
      fm.rows.push_back(std::move(row));
      fm.labels.push_back(c);
    }
  }
  return fm;
}

/// Splits even rows into train, odd rows into test; returns test accuracy.
inline double holdout_accuracy(Classifier& clf, const ml::FeatureMatrix& data,
                               std::size_t classes) {
  ml::FeatureMatrix train;
  std::vector<std::size_t> test_idx;
  for (std::size_t i = 0; i < data.rows.size(); ++i) {
    if (i % 2 == 0) {
      train.rows.push_back(data.rows[i]);
      train.labels.push_back(data.labels[i]);
    } else {
      test_idx.push_back(i);
    }
  }
  clf.fit(train, classes);
  std::size_t correct = 0;
  for (std::size_t i : test_idx) {
    if (clf.predict(data.rows[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test_idx.size());
}

/// Checks that predict_proba returns a valid distribution.
inline void expect_valid_distribution(const std::vector<double>& p) {
  double total = 0.0;
  for (double v : p) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-9);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

}  // namespace magic::baselines::testing
