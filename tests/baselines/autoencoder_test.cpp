#include "baselines/autoencoder.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/baseline_test_util.hpp"

namespace magic::baselines {
namespace {

using testing::holdout_accuracy;
using testing::make_blobs;

AutoencoderOptions fast_options() {
  AutoencoderOptions opt;
  opt.latent_dim = 4;
  opt.epochs = 15;
  opt.learning_rate = 5e-3;
  opt.gbdt.num_rounds = 15;
  opt.gbdt.learning_rate = 0.3;
  opt.seed = 1;
  return opt;
}

TEST(AutoencoderGbt, ClassifiesSeparableBlobs) {
  auto data = make_blobs(3, 50, 6, 8.0, 2);
  AutoencoderGbt clf(fast_options());
  EXPECT_GT(holdout_accuracy(clf, data, 3), 0.85);
}

TEST(AutoencoderGbt, ReconstructionErrorIsFiniteAndModest) {
  auto data = make_blobs(2, 40, 6, 4.0, 3);
  AutoencoderGbt clf(fast_options());
  clf.fit(data, 2);
  EXPECT_TRUE(std::isfinite(clf.reconstruction_mse()));
  EXPECT_GT(clf.reconstruction_mse(), 0.0);
  EXPECT_LT(clf.reconstruction_mse(), 2.0);  // standardized inputs
}

TEST(AutoencoderGbt, ProbabilitiesAreValidDistribution) {
  auto data = make_blobs(3, 20, 5, 5.0, 4);
  AutoencoderGbt clf(fast_options());
  clf.fit(data, 3);
  testing::expect_valid_distribution(clf.predict_proba(data.rows[0]));
}

TEST(AutoencoderGbt, DeterministicForSeed) {
  auto data = make_blobs(2, 30, 4, 4.0, 5);
  AutoencoderGbt a(fast_options()), b(fast_options());
  a.fit(data, 2);
  b.fit(data, 2);
  EXPECT_EQ(a.predict_proba(data.rows[7]), b.predict_proba(data.rows[7]));
}

TEST(AutoencoderGbt, ThrowsBeforeFitAndOnEmpty) {
  AutoencoderGbt clf(fast_options());
  EXPECT_THROW(clf.predict_proba({1.0}), std::logic_error);
  ml::FeatureMatrix empty;
  EXPECT_THROW(clf.fit(empty, 2), std::invalid_argument);
}

}  // namespace
}  // namespace magic::baselines
