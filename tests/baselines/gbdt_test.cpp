#include "baselines/gbdt.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/baseline_test_util.hpp"
#include "ml/metrics.hpp"

namespace magic::baselines {
namespace {

using testing::holdout_accuracy;
using testing::make_blobs;

TEST(Gbdt, HighAccuracyOnSeparableBlobs) {
  auto data = make_blobs(3, 60, 5, 8.0, 1);
  Gbdt gbdt({.num_rounds = 25, .learning_rate = 0.3, .lambda = 1.0, .subsample = 1.0,
             .tree = {.max_depth = 4, .min_samples_leaf = 1, .feature_fraction = 1.0},
             .seed = 2});
  EXPECT_GT(holdout_accuracy(gbdt, data, 3), 0.95);
}

TEST(Gbdt, LogLossDecreasesWithMoreRounds) {
  auto data = make_blobs(3, 40, 4, 3.0, 3);
  auto loss_for_rounds = [&](std::size_t rounds) {
    Gbdt gbdt({.num_rounds = rounds, .learning_rate = 0.3, .lambda = 1.0,
               .subsample = 1.0,
               .tree = {.max_depth = 3, .min_samples_leaf = 1, .feature_fraction = 1.0},
               .seed = 4});
    gbdt.fit(data, 3);
    std::vector<std::vector<double>> probs;
    for (const auto& row : data.rows) probs.push_back(gbdt.predict_proba(row));
    return ml::mean_log_loss(probs, data.labels);
  };
  EXPECT_LT(loss_for_rounds(20), loss_for_rounds(2));
}

TEST(Gbdt, ProbabilitiesAreValidDistribution) {
  auto data = make_blobs(4, 20, 3, 4.0, 5);
  Gbdt gbdt({.num_rounds = 5, .learning_rate = 0.2, .lambda = 1.0, .subsample = 1.0,
             .tree = {}, .seed = 6});
  gbdt.fit(data, 4);
  testing::expect_valid_distribution(gbdt.predict_proba(data.rows[0]));
}

TEST(Gbdt, RoundsFittedMatchesOptions) {
  auto data = make_blobs(2, 20, 2, 4.0, 7);
  Gbdt gbdt({.num_rounds = 7, .learning_rate = 0.2, .lambda = 1.0, .subsample = 1.0,
             .tree = {}, .seed = 8});
  gbdt.fit(data, 2);
  EXPECT_EQ(gbdt.rounds_fitted(), 7u);
}

TEST(Gbdt, DeterministicForSeed) {
  auto data = make_blobs(2, 30, 3, 3.0, 9);
  GbdtOptions opt{.num_rounds = 6, .learning_rate = 0.2, .lambda = 1.0,
                  .subsample = 0.8, .tree = {}, .seed = 10};
  Gbdt a(opt), b(opt);
  a.fit(data, 2);
  b.fit(data, 2);
  EXPECT_EQ(a.predict_proba(data.rows[3]), b.predict_proba(data.rows[3]));
}

TEST(Gbdt, ThrowsBeforeFitAndOnEmpty) {
  Gbdt gbdt;
  EXPECT_THROW(gbdt.predict_proba({1.0}), std::logic_error);
  ml::FeatureMatrix empty;
  EXPECT_THROW(gbdt.fit(empty, 2), std::invalid_argument);
}

}  // namespace
}  // namespace magic::baselines
