#include "baselines/svm.hpp"

#include <gtest/gtest.h>

#include "baselines/baseline_test_util.hpp"

namespace magic::baselines {
namespace {

using testing::holdout_accuracy;
using testing::make_blobs;

TEST(LinearSvm, SeparatesTwoBlobs) {
  util::Rng rng(1);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 100; ++i) {
    const int y = i % 2 == 0 ? 1 : -1;
    rows.push_back({y * 3.0 + rng.normal(), y * -2.0 + rng.normal()});
    labels.push_back(y);
  }
  LinearSvm svm({.lambda = 1e-3, .epochs = 30, .seed = 2});
  svm.fit(rows, labels);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double margin = svm.decision(rows[i]);
    if ((margin > 0) == (labels[i] > 0)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / rows.size(), 0.95);
}

TEST(LinearSvm, ThrowsOnBadInputs) {
  LinearSvm svm;
  EXPECT_THROW(svm.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(svm.fit({{1.0}}, {1, -1}), std::invalid_argument);
  EXPECT_THROW(svm.decision({1.0}), std::logic_error);
}

TEST(EnsembleSvc, MultiClassAccuracyOnBlobs) {
  auto data = make_blobs(3, 60, 4, 8.0, 3);
  EnsembleSvc svc({.lambda = 1e-3, .epochs = 25, .seed = 4});
  EXPECT_GT(holdout_accuracy(svc, data, 3), 0.9);
}

TEST(EnsembleSvc, ProbabilitiesAreValidDistribution) {
  auto data = make_blobs(3, 20, 3, 4.0, 5);
  EnsembleSvc svc({.lambda = 1e-3, .epochs = 10, .seed = 6});
  svc.fit(data, 3);
  testing::expect_valid_distribution(svc.predict_proba(data.rows[0]));
}

TEST(EnsembleSvc, DeterministicForSeed) {
  auto data = make_blobs(2, 30, 3, 4.0, 7);
  SvmOptions opt{.lambda = 1e-3, .epochs = 8, .seed = 8};
  EnsembleSvc a(opt), b(opt);
  a.fit(data, 2);
  b.fit(data, 2);
  EXPECT_EQ(a.predict_proba(data.rows[5]), b.predict_proba(data.rows[5]));
}

TEST(EnsembleSvc, ThrowsBeforeFit) {
  EnsembleSvc svc;
  EXPECT_THROW(svc.predict_proba({1.0}), std::logic_error);
}

TEST(StandardScaler, NormalizesToZeroMeanUnitVar) {
  StandardScaler scaler;
  std::vector<std::vector<double>> rows;
  util::Rng rng(9);
  for (int i = 0; i < 500; ++i) rows.push_back({rng.normal(5.0, 2.0), rng.normal(-3.0, 0.5)});
  scaler.fit(rows);
  const auto scaled = scaler.transform_all(rows);
  double mean0 = 0.0, var0 = 0.0;
  for (const auto& r : scaled) mean0 += r[0];
  mean0 /= scaled.size();
  for (const auto& r : scaled) var0 += (r[0] - mean0) * (r[0] - mean0);
  var0 /= scaled.size();
  EXPECT_NEAR(mean0, 0.0, 1e-9);
  EXPECT_NEAR(var0, 1.0, 1e-9);
}

TEST(StandardScaler, ConstantFeaturePassesThrough) {
  StandardScaler scaler;
  scaler.fit({{7.0}, {7.0}, {7.0}});
  EXPECT_NEAR(scaler.transform({7.0})[0], 0.0, 1e-12);
  EXPECT_NEAR(scaler.transform({8.0})[0], 1.0, 1e-12);  // unit inv_std
}

TEST(StandardScaler, ThrowsWhenUnfitted) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform({1.0}), std::logic_error);
  EXPECT_THROW(scaler.fit({}), std::invalid_argument);
}

}  // namespace
}  // namespace magic::baselines
