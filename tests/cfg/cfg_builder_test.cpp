#include "cfg/cfg_builder.hpp"

#include <set>

#include <gtest/gtest.h>

#include "cfg/graph_algo.hpp"

namespace magic::cfg {
namespace {

ControlFlowGraph build(const std::string& listing) {
  return CfgBuilder::build_from_listing(listing);
}

TEST(CfgBuilder, StraightLineIsOneBlock) {
  ControlFlowGraph g = build(
      "401000 push ebp\n"
      "401001 mov ebp, esp\n"
      "401003 ret\n");
  EXPECT_EQ(g.num_blocks(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.block(0).instructions.size(), 3u);
}

TEST(CfgBuilder, ConditionalBranchMakesDiamondTop) {
  // if/else head: block0 -> {target, fallthrough}.
  ControlFlowGraph g = build(
      "401000 cmp eax, 0\n"
      "401003 jz 0x401008\n"
      "401005 add eax, 1\n"
      "401008 ret\n");
  ASSERT_EQ(g.num_blocks(), 3u);
  const BlockId head = g.block_at(0x401000);
  const BlockId then_block = g.block_at(0x401008);
  const BlockId fall_block = g.block_at(0x401005);
  ASSERT_NE(head, kInvalidBlock);
  ASSERT_NE(then_block, kInvalidBlock);
  ASSERT_NE(fall_block, kInvalidBlock);
  EXPECT_EQ(g.block(head).successors.size(), 2u);
  // Fall-through block flows into the join/ret block.
  ASSERT_EQ(g.block(fall_block).successors.size(), 1u);
  EXPECT_EQ(g.block(fall_block).successors[0], then_block);
}

TEST(CfgBuilder, LoopCreatesBackEdge) {
  ControlFlowGraph g = build(
      "401000 mov ecx, 10\n"
      "401005 dec ecx\n"
      "401007 jnz 0x401005\n"
      "401009 ret\n");
  const BlockId header = g.block_at(0x401005);
  ASSERT_NE(header, kInvalidBlock);
  // The loop body jumps back to itself -> self edge on the header block.
  bool has_back_edge = false;
  for (BlockId s : g.block(header).successors) has_back_edge |= (s == header);
  EXPECT_TRUE(has_back_edge);
  EXPECT_TRUE(has_cycle(g.adjacency()));
}

TEST(CfgBuilder, UnconditionalJumpSkipsDeadCode) {
  ControlFlowGraph g = build(
      "401000 jmp 0x401004\n"
      "401002 nop\n"            // dead
      "401004 ret\n");
  ASSERT_EQ(g.num_blocks(), 3u);
  const BlockId entry = g.block_at(0x401000);
  const BlockId dead = g.block_at(0x401002);
  ASSERT_NE(dead, kInvalidBlock);
  // Entry jumps only to 0x401004; the dead block is disconnected from entry.
  ASSERT_EQ(g.block(entry).successors.size(), 1u);
  EXPECT_EQ(g.block(entry).successors[0], g.block_at(0x401004));
  const auto reach = reachable_from(g.adjacency(), entry);
  EXPECT_FALSE(reach[dead]);
}

TEST(CfgBuilder, CallEdgeConnectsCallee) {
  ControlFlowGraph g = build(
      "401000 call 0x401006\n"
      "401005 ret\n"
      "401006 ret\n");
  const BlockId entry = g.block_at(0x401000);
  const BlockId callee = g.block_at(0x401006);
  ASSERT_NE(callee, kInvalidBlock);
  bool connected = false;
  for (BlockId s : g.block(entry).successors) connected |= (s == callee);
  EXPECT_TRUE(connected);
}

TEST(CfgBuilder, EveryInstructionInExactlyOneBlock) {
  // DESIGN.md invariant.
  ControlFlowGraph g = build(
      "401000 cmp eax, 0\n"
      "401003 jz 0x40100a\n"
      "401005 add eax, 1\n"
      "401008 jmp 0x40100b\n"
      "40100a nop\n"
      "40100b ret\n");
  std::size_t total = 0;
  std::set<std::uint64_t> seen;
  for (const auto& b : g.blocks()) {
    for (const auto& inst : b.instructions) {
      EXPECT_TRUE(seen.insert(inst.addr).second) << "duplicate addr " << inst.addr;
      ++total;
    }
  }
  EXPECT_EQ(total, 6u);
}

TEST(CfgBuilder, BlockBoundariesAtTaggedStarts) {
  ControlFlowGraph g = build(
      "401000 cmp eax, 0\n"
      "401003 jz 0x401008\n"
      "401005 add eax, 1\n"
      "401008 ret\n");
  for (const auto& b : g.blocks()) {
    ASSERT_FALSE(b.instructions.empty());
    EXPECT_EQ(b.instructions.front().addr, b.start_addr);
  }
}

TEST(CfgBuilder, DuplicateEdgesCollapsed) {
  // Two jumps from the same block to the same target yield one edge entry.
  ControlFlowGraph g = build(
      "401000 jz 0x401004\n"
      "401002 jz 0x401004\n"
      "401004 ret\n");
  for (const auto& b : g.blocks()) {
    std::set<BlockId> uniq(b.successors.begin(), b.successors.end());
    EXPECT_EQ(uniq.size(), b.successors.size());
  }
}

TEST(CfgBuilder, EmptyListingGivesEmptyGraph) {
  ControlFlowGraph g = build("");
  EXPECT_EQ(g.num_blocks(), 0u);
  EXPECT_EQ(g.entry(), kInvalidBlock);
}

TEST(CfgBuilder, EntryIsLowestAddress) {
  ControlFlowGraph g = build(
      "401010 ret\n"
      "401000 jmp 0x401010\n");
  EXPECT_EQ(g.block(g.entry()).start_addr, 0x401000u);
}

TEST(CfgBuilder, SwitchFanHasHighOutDegree) {
  ControlFlowGraph g = build(
      "401000 cmp eax, 0\n"
      "401003 jz 0x401014\n"
      "401005 cmp eax, 1\n"
      "401008 jz 0x401015\n"
      "40100a cmp eax, 2\n"
      "40100d jz 0x401016\n"
      "40100f ret\n"
      "401014 nop\n"
      "401015 nop\n"
      "401016 ret\n");
  // First block ends at the first jz; chains of cmp+jz follow.
  const auto stats = degree_stats(g.adjacency());
  EXPECT_GE(stats.max, 2u);
  EXPECT_GE(g.num_blocks(), 5u);
}

TEST(ControlFlowGraph, DotExportMentionsAllBlocks) {
  ControlFlowGraph g = build(
      "401000 jz 0x401004\n"
      "401002 nop\n"
      "401004 ret\n");
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const auto& b : g.blocks()) {
    EXPECT_NE(dot.find("b" + std::to_string(b.id)), std::string::npos);
  }
}

TEST(ControlFlowGraph, AdjacencyMatchesSuccessors) {
  ControlFlowGraph g = build(
      "401000 jz 0x401004\n"
      "401002 nop\n"
      "401004 ret\n");
  const auto adj = g.adjacency();
  ASSERT_EQ(adj.size(), g.num_blocks());
  for (const auto& b : g.blocks()) {
    EXPECT_EQ(adj[b.id].size(), b.successors.size());
  }
}

}  // namespace
}  // namespace magic::cfg
