#include "cfg/graph_algo.hpp"

#include <gtest/gtest.h>

namespace magic::cfg {
namespace {

TEST(Reachability, FollowsDirectedEdges) {
  AdjacencyList adj = {{1}, {2}, {}, {0}};  // 3 -> 0 -> 1 -> 2
  auto r = reachable_from(adj, 0);
  EXPECT_TRUE(r[0]);
  EXPECT_TRUE(r[1]);
  EXPECT_TRUE(r[2]);
  EXPECT_FALSE(r[3]);  // direction matters
}

TEST(Reachability, OutOfRangeSourceIsEmpty) {
  AdjacencyList adj = {{}};
  auto r = reachable_from(adj, 5);
  EXPECT_FALSE(r[0]);
}

TEST(WeaklyConnected, CountsIslands) {
  AdjacencyList adj = {{1}, {}, {3}, {}, {}};
  EXPECT_EQ(weakly_connected_components(adj), 3u);
}

TEST(WeaklyConnected, DirectionIgnored) {
  AdjacencyList adj = {{}, {0}};
  EXPECT_EQ(weakly_connected_components(adj), 1u);
}

TEST(Scc, DagHasOnePerVertex) {
  AdjacencyList adj = {{1, 2}, {2}, {}};
  EXPECT_EQ(strongly_connected_components(adj), 3u);
}

TEST(Scc, CycleCollapses) {
  AdjacencyList adj = {{1}, {2}, {0}};
  EXPECT_EQ(strongly_connected_components(adj), 1u);
}

TEST(Scc, MixedGraph) {
  // 0 <-> 1 cycle; 2 alone; 3 -> 0.
  AdjacencyList adj = {{1}, {0}, {}, {0}};
  EXPECT_EQ(strongly_connected_components(adj), 3u);
}

TEST(Scc, SelfLoopSingleScc) {
  AdjacencyList adj = {{0}};
  EXPECT_EQ(strongly_connected_components(adj), 1u);
}

TEST(Scc, EmptyGraph) {
  EXPECT_EQ(strongly_connected_components({}), 0u);
}

TEST(DegreeStats, ComputesMeanMaxEdges) {
  AdjacencyList adj = {{1, 2, 3}, {}, {3}, {}};
  auto s = degree_stats(adj);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_NEAR(s.mean, 1.0, 1e-12);
}

TEST(HasCycle, DetectsBackEdge) {
  EXPECT_TRUE(has_cycle({{1}, {2}, {0}}));
  EXPECT_TRUE(has_cycle({{0}}));  // self loop
}

TEST(HasCycle, DagIsAcyclic) {
  EXPECT_FALSE(has_cycle({{1, 2}, {2}, {}}));
  EXPECT_FALSE(has_cycle({}));
}

TEST(HasCycle, DiamondIsAcyclic) {
  EXPECT_FALSE(has_cycle({{1, 2}, {3}, {3}, {}}));
}

TEST(BackEdges, FindsLoopEdge) {
  // 0 -> 1 -> 2 -> 1 (loop on 1..2).
  const auto edges = back_edges({{1}, {2}, {1}});
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].first, 2u);
  EXPECT_EQ(edges[0].second, 1u);
}

TEST(BackEdges, SelfLoopIsBackEdge) {
  const auto edges = back_edges({{0}});
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(BackEdges, DagHasNone) {
  EXPECT_TRUE(back_edges({{1, 2}, {3}, {3}, {}}).empty());
}

TEST(BackEdges, CrossEdgesNotCounted) {
  // Diamond with both arms converging: the second edge into 3 is a cross
  // edge, not a back edge.
  EXPECT_TRUE(back_edges({{1, 2}, {3}, {3}, {}}).empty());
}

TEST(DagDepth, ChainDepth) {
  EXPECT_EQ(dag_depth_from({{1}, {2}, {3}, {}}, 0), 3u);
  EXPECT_EQ(dag_depth_from({{1}, {2}, {3}, {}}, 2), 1u);
}

TEST(DagDepth, CycleCountsOnce) {
  // 0 -> 1 -> 2 -> 0 with 2 -> 3: cycle must not diverge.
  EXPECT_EQ(dag_depth_from({{1}, {2}, {0, 3}, {}}, 0), 3u);
}

TEST(DagDepth, DiamondTakesLongestArm) {
  // 0 -> 1 -> 2 -> 4; 0 -> 3 -> 4.
  EXPECT_EQ(dag_depth_from({{1, 3}, {2}, {4}, {4}, {}}, 0), 3u);
}

TEST(DagDepth, OutOfRangeSourceIsZero) {
  EXPECT_EQ(dag_depth_from({{}}, 9), 0u);
}

}  // namespace
}  // namespace magic::cfg
