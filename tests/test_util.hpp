#pragma once
// Shared test helpers: numerical gradient checking for nn modules and a few
// fixture builders.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace magic::testing {

using nn::Tensor;

/// Central-difference numerical gradient of scalar(x) at x.
inline Tensor numeric_grad(const std::function<double(const Tensor&)>& scalar,
                           const Tensor& x, double eps = 1e-5) {
  Tensor grad = Tensor::zeros(x.shape());
  Tensor probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = probe[i];
    probe[i] = orig + eps;
    const double hi = scalar(probe);
    probe[i] = orig - eps;
    const double lo = scalar(probe);
    probe[i] = orig;
    grad[i] = (hi - lo) / (2.0 * eps);
  }
  return grad;
}

/// Checks a module's input gradient and parameter gradients against
/// numerical differentiation using the scalar loss L = sum(w ⊙ f(x)) for a
/// fixed random weighting w (so every output element participates).
///
/// Requires a *deterministic* module (run dropout in eval mode).
inline void check_module_gradients(nn::Module& module, const Tensor& input,
                                   util::Rng& rng, double tol = 1e-6,
                                   double eps = 1e-5) {
  const Tensor probe_out = module.forward(input);
  const Tensor w = Tensor::uniform(probe_out.shape(), rng, -1.0, 1.0);

  auto loss_for_input = [&](const Tensor& x) {
    const Tensor out = module.forward(x);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };

  // Analytic gradients.
  module.zero_grad();
  module.forward(input);
  const Tensor grad_in = module.backward(w);

  const Tensor num_in = numeric_grad(loss_for_input, input, eps);
  ASSERT_EQ(grad_in.shape(), num_in.shape());
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    EXPECT_NEAR(grad_in[i], num_in[i], tol) << "input grad mismatch at " << i;
  }

  for (nn::Parameter* p : module.parameters()) {
    auto loss_for_param = [&](const Tensor& v) {
      const Tensor saved = p->value;
      p->value = v;
      const double loss = loss_for_input(input);
      p->value = saved;
      return loss;
    };
    const Tensor num_p = numeric_grad(loss_for_param, p->value, eps);
    for (std::size_t i = 0; i < num_p.size(); ++i) {
      EXPECT_NEAR(p->grad[i], num_p[i], tol)
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

}  // namespace magic::testing
