#include "ml/features.hpp"

#include <gtest/gtest.h>

#include "acfg/attributes.hpp"
#include "acfg/extractor.hpp"

namespace magic::ml {
namespace {

acfg::Acfg sample() {
  return acfg::extract_acfg_from_listing(
      "401000 cmp eax, 0\n"
      "401003 jz 0x401008\n"
      "401005 add eax, 1\n"
      "401008 ret\n");
}

TEST(Features, CountAndNamesConsistent) {
  const std::size_t c = acfg::kNumChannels;
  EXPECT_EQ(aggregate_feature_count(c), c * 4 + 6);
  EXPECT_EQ(aggregate_feature_names(c).size(), aggregate_feature_count(c));
}

TEST(Features, VectorLengthMatchesCount) {
  const auto f = aggregate_features(sample());
  EXPECT_EQ(f.size(), aggregate_feature_count(acfg::kNumChannels));
}

TEST(Features, StructuralTailMatchesGraph) {
  acfg::Acfg a = sample();
  const auto f = aggregate_features(a);
  const std::size_t base = acfg::kNumChannels * 4;
  EXPECT_EQ(f[base], static_cast<double>(a.num_vertices()));
  EXPECT_EQ(f[base + 1], static_cast<double>(a.num_edges()));
  EXPECT_NEAR(f[base + 2],
              static_cast<double>(a.num_edges()) / static_cast<double>(a.num_vertices()),
              1e-12);
}

TEST(Features, SumChannelIsSumOverVertices) {
  acfg::Acfg a = sample();
  const auto f = aggregate_features(a);
  // Channel kTotalInsts: sum stat is at offset kTotalInsts * 4 + 0.
  double expected = 0.0;
  for (std::size_t i = 0; i < a.num_vertices(); ++i) {
    expected += a.attributes[i * acfg::kNumChannels + acfg::kTotalInsts];
  }
  EXPECT_NEAR(f[acfg::kTotalInsts * 4], expected, 1e-12);
  EXPECT_EQ(expected, 4.0);  // four instructions in total
}

TEST(Features, MeanMaxStdRelations) {
  const auto f = aggregate_features(sample());
  for (std::size_t ch = 0; ch < acfg::kNumChannels; ++ch) {
    const double mean = f[ch * 4 + 1];
    const double maxv = f[ch * 4 + 2];
    const double stdv = f[ch * 4 + 3];
    EXPECT_LE(mean, maxv + 1e-12);
    EXPECT_GE(stdv, 0.0);
  }
}

TEST(Features, MatrixShapesAndLabels) {
  std::vector<acfg::Acfg> corpus(3, sample());
  corpus[0].label = 2;
  corpus[1].label = 0;
  corpus[2].label = 1;
  const FeatureMatrix fm = aggregate_feature_matrix(corpus);
  ASSERT_EQ(fm.rows.size(), 3u);
  ASSERT_EQ(fm.labels.size(), 3u);
  EXPECT_EQ(fm.labels[0], 2u);
  EXPECT_EQ(fm.labels[2], 1u);
  EXPECT_EQ(fm.rows[0].size(), aggregate_feature_count(acfg::kNumChannels));
}

TEST(Features, DeterministicAcrossCalls) {
  const auto a = aggregate_features(sample());
  const auto b = aggregate_features(sample());
  EXPECT_EQ(a, b);
}

TEST(Features, LeafRatioInUnitRange) {
  const auto f = aggregate_features(sample());
  const double leaf_ratio = f.back();
  EXPECT_GE(leaf_ratio, 0.0);
  EXPECT_LE(leaf_ratio, 1.0);
}

}  // namespace
}  // namespace magic::ml
