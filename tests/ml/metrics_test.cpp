#include "ml/metrics.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace magic::ml {
namespace {

TEST(ConfusionMatrix, PerfectClassifier) {
  ConfusionMatrix cm(3);
  for (std::size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) cm.add(c, c);
  }
  EXPECT_EQ(cm.accuracy(), 1.0);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(cm.precision(c), 1.0);
    EXPECT_EQ(cm.recall(c), 1.0);
    EXPECT_EQ(cm.f1(c), 1.0);
  }
  EXPECT_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrix, HandComputedScores) {
  // Class 0: tp=3, fp=1 (one class-1 predicted 0), fn=2.
  ConfusionMatrix cm(2);
  for (int i = 0; i < 3; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  cm.add(1, 0);
  for (int i = 0; i < 4; ++i) cm.add(1, 1);
  EXPECT_NEAR(cm.precision(0), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 3.0 / 5.0, 1e-12);
  const double p = 0.75, r = 0.6;
  EXPECT_NEAR(cm.f1(0), 2 * p * r / (p + r), 1e-12);
  EXPECT_NEAR(cm.accuracy(), 7.0 / 10.0, 1e-12);
}

TEST(ConfusionMatrix, AbsentClassScoresZero) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_EQ(cm.precision(2), 0.0);
  EXPECT_EQ(cm.recall(2), 0.0);
  EXPECT_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrix, BoundsChecked) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.at(0, 2), std::out_of_range);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(PerClassScores, MatchesIndividualAccessors) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  const auto scores = per_class_scores(cm);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].precision, cm.precision(0));
  EXPECT_EQ(scores[1].recall, cm.recall(1));
  EXPECT_EQ(scores[1].f1, cm.f1(1));
}

TEST(LogLoss, PerfectPredictionIsZero) {
  EXPECT_NEAR(mean_log_loss({{1.0, 0.0}}, {0}), 0.0, 1e-12);
}

TEST(LogLoss, UniformPredictionIsLogK) {
  const double loss = mean_log_loss({{0.25, 0.25, 0.25, 0.25}}, {2});
  EXPECT_NEAR(loss, std::log(4.0), 1e-12);
}

TEST(LogLoss, ClampsZeroProbability) {
  const double loss = mean_log_loss({{0.0, 1.0}}, {0});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, -std::log(1e-15), 1e-6);
}

TEST(LogLoss, AveragesOverSamples) {
  const double loss = mean_log_loss({{1.0, 0.0}, {0.5, 0.5}}, {0, 1});
  EXPECT_NEAR(loss, 0.5 * std::log(2.0), 1e-12);
}

TEST(LogLoss, ValidatesInputs) {
  EXPECT_THROW(mean_log_loss({{1.0}}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(mean_log_loss({{1.0}}, {3}), std::out_of_range);
  EXPECT_EQ(mean_log_loss({}, {}), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, SingleValueZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace magic::ml
