#include "util/bounded_queue.hpp"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace magic::util {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_EQ(q.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // admission control, not blocking
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_TRUE(q.try_push(3));  // space freed
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));  // closed for producers
  int out = 0;
  EXPECT_TRUE(q.pop(out));  // consumers still drain
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));  // closed + empty = shutdown signal
}

TEST(BoundedQueue, CloseAndDrainReturnsQueuedItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_TRUE(q.try_push(8));
  const auto drained = q.close_and_drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 7);
  EXPECT_EQ(drained[1], 8);
  int out = 0;
  EXPECT_FALSE(q.pop(out));
}

TEST(BoundedQueue, PopUntilTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(4);
  int out = 0;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(out, start + 20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
}

TEST(BoundedQueue, PopUntilReturnsItemImmediately) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(42));
  int out = 0;
  EXPECT_TRUE(q.pop_until(out, std::chrono::steady_clock::now() + 10s));
  EXPECT_EQ(out, 42);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(4);
  int out = 0;
  std::thread consumer([&] { EXPECT_TRUE(q.pop(out)); });
  std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(q.try_push(5));
  consumer.join();
  EXPECT_EQ(out, 5);
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::atomic<int> woken{0};
  std::vector<std::thread> consumers;
  consumers.reserve(3);
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      int out = 0;
      if (!q.pop(out)) woken.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(10ms);
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woken.load(), 3);
}

// MPMC stress: every pushed item is popped exactly once, rejects are
// accounted, nothing is lost. Exercised under TSan via scripts/check.sh.
TEST(BoundedQueue, ConcurrentProducersConsumersLoseNothing) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  consumers.reserve(2);
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      int out = 0;
      while (q.pop(out)) popped.fetch_add(1);
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.try_push(p * kPerProducer + i)) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.load(), accepted.load());
}

}  // namespace
}  // namespace magic::util
