#include <sstream>

#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace magic::util {
namespace {

TEST(StringUtil, TrimRemovesBothEnds) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t x\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtil, SplitSingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitWhitespaceSkipsRuns) {
  const auto parts = split_whitespace("  mov   eax,  1 ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "mov");
  EXPECT_EQ(parts[1], "eax,");
  EXPECT_EQ(parts[2], "1");
}

TEST(StringUtil, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("MoV EaX"), "mov eax");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("loc_401000", "loc_"));
  EXPECT_FALSE(starts_with("lo", "loc_"));
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(0.96237848, 6), "0.962378");
  EXPECT_EQ(format_fixed(1.0, 2), "1.00");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Table, RendersAlignedRows) {
  Table t({"Family", "F1"});
  t.add_row({"Ramnit", "0.976"});
  t.add_row({"Kelihos_ver3", "1.000"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Family"), std::string::npos);
  EXPECT_NE(out.find("Kelihos_ver3"), std::string::npos);
  EXPECT_NE(out.find("0.976"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"name", "value"});
  csv.add_row({"with,comma", "with\"quote"});
  const std::string out = csv.to_string();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, PlainFieldsUnquoted) {
  CsvWriter csv({"a"});
  csv.add_row({"plain"});
  EXPECT_EQ(csv.to_string(), "a\nplain\n");
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"x"}), std::invalid_argument);
}

}  // namespace
}  // namespace magic::util
