// Runtime behaviour of the capability-annotated concurrency primitives
// (src/util/mutex.hpp, src/util/join_thread.hpp). The *static* half —
// that the annotations reject bad locking — lives in
// tests/static_analysis/; these tests pin the dynamic semantics the
// wrappers must preserve over the std types they wrap.

#include <atomic>
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "util/join_thread.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

using namespace std::chrono_literals;

// The canonical annotated class: guarded counter behind MutexLock.
class Counter {
 public:
  void bump() MAGIC_EXCLUDES(mutex_) {
    magic::util::MutexLock lock(mutex_);
    ++value_;
  }
  int value() const MAGIC_EXCLUDES(mutex_) {
    magic::util::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable magic::util::Mutex mutex_;
  int value_ MAGIC_GUARDED_BY(mutex_) = 0;
};

TEST(MutexTest, MutualExclusionUnderContention) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kBumps = 2000;
  {
    std::vector<magic::util::JoinThread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&counter] {
        for (int i = 0; i < kBumps; ++i) counter.bump();
      });
    }
  }  // JoinThread destructors join every worker
  EXPECT_EQ(counter.value(), kThreads * kBumps);
}

TEST(MutexTest, TryLockReportsHeldState) {
  magic::util::Mutex mutex;
  ASSERT_TRUE(mutex.try_lock());
  std::atomic<bool> second_acquired{true};
  {
    magic::util::JoinThread prober([&] {
      second_acquired.store(mutex.try_lock());
      if (second_acquired.load()) mutex.unlock();
    });
  }
  EXPECT_FALSE(second_acquired.load());
  mutex.unlock();
}

TEST(CondVarTest, WaitLoopsSeeNotifiedState) {
  magic::util::Mutex mutex;
  magic::util::CondVar cv;
  bool ready = false;  // guarded by mutex (local, so not annotatable)

  magic::util::JoinThread producer([&] {
    {
      magic::util::MutexLock lock(mutex);
      ready = true;
    }
    cv.notify_one();
  });

  magic::util::MutexLock lock(mutex);
  while (!ready) cv.wait(lock);
  EXPECT_TRUE(ready);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  magic::util::Mutex mutex;
  magic::util::CondVar cv;
  magic::util::MutexLock lock(mutex);
  EXPECT_EQ(cv.wait_for(lock, 1ms), std::cv_status::timeout);
}

TEST(JoinThreadTest, DefaultConstructedIsNotJoinable) {
  magic::util::JoinThread thread;
  EXPECT_FALSE(thread.joinable());
}

TEST(JoinThreadTest, DestructorJoins) {
  std::atomic<bool> ran{false};
  {
    magic::util::JoinThread thread([&] { ran.store(true); });
  }
  // If the destructor did not join this would be a race; under TSan (CI)
  // that is a hard failure, here it is at least a flaky EXPECT.
  EXPECT_TRUE(ran.load());
}

TEST(JoinThreadTest, MoveAssignJoinsThePreviousThread) {
  std::atomic<int> finished{0};
  magic::util::JoinThread thread([&] { ++finished; });
  // Assigning over a running thread must join it first, not abandon it.
  thread = magic::util::JoinThread([&] { ++finished; });
  EXPECT_GE(finished.load(), 1);
  thread.join();
  EXPECT_EQ(finished.load(), 2);
  EXPECT_FALSE(thread.joinable());
}

}  // namespace
