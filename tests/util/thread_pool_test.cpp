#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace magic::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyTasksAggregateCorrectly) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    total.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace magic::util
