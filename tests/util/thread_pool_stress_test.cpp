// TSan-exercising regression tests for ThreadPool: concurrent submit /
// parallel_for from many external threads, nested parallel_for, and the
// exception-safety guarantee documented in thread_pool.hpp (a throwing task
// neither deadlocks the call nor drops remaining tasks).
//
// These tests are most valuable under scripts/check.sh tsan, where any
// data race on the queue, completion counter or error slot is fatal, but
// they also assert the functional guarantees in every configuration.

#include "util/thread_pool.hpp"

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace magic::util {
namespace {

TEST(ThreadPoolStress, ConcurrentSubmittersFromManyThreads) {
  ThreadPool pool(4);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 200;
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &executed] {
      std::vector<std::future<void>> futures;
      futures.reserve(kPerThread);
      for (std::size_t i = 0; i < kPerThread; ++i) {
        futures.push_back(pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(executed.load(), kThreads * kPerThread);
}

TEST(ThreadPoolStress, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kIndices = 500;
  std::vector<std::vector<std::atomic<int>>> hits(kThreads);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kIndices);
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    callers.emplace_back([&pool, &hits, t] {
      pool.parallel_for(kIndices, [&hits, t](std::size_t i) {
        hits[t][i].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (const auto& per_caller : hits) {
    for (const auto& h : per_caller) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolStress, NestedParallelForDoesNotDeadlock) {
  // Every worker can be occupied by an outer task that itself calls
  // parallel_for; the caller-participates design must still finish.
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 4u * 8u);
}

TEST(ThreadPoolStress, ThrowingTaskStillRunsEveryOtherIndex) {
  ThreadPool pool(3);
  constexpr std::size_t kIndices = 128;
  std::vector<std::atomic<int>> hits(kIndices);
  try {
    pool.parallel_for(kIndices, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      if (i % 17 == 3) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error&) {
  }
  // The documented guarantee: a throwing task does not drop the completion
  // of any other index.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolStress, FirstExceptionInClaimOrderWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i % 2 == 0) throw std::runtime_error("even " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("even ", 0), 0u);
  }
}

TEST(ThreadPoolStress, PoolUsableAfterParallelForException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(32, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 32u);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolStress, SingleWorkerPoolCompletesNestedWork) {
  ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(3, [&](std::size_t) {
    pool.parallel_for(5, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 15u);
}

}  // namespace
}  // namespace magic::util
