#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace magic::util {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  h.record(1.0);
  h.record(3.0);
  h.record(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantilesBoundedByObservedRange) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Histogram, QuantilesApproximateUniformData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  // Bucket width is 2^(1/4) ~ 19%; allow 25% relative error.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 125.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 240.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 250.0);
}

TEST(Histogram, SingleValueQuantilesAreThatValue) {
  Histogram h;
  h.record(42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, MergeCombinesObservations) {
  Histogram a;
  Histogram b;
  a.record(1.0);
  a.record(2.0);
  b.record(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 103.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.9), 0.0);
}

TEST(Histogram, HugeValuesLandInLastBucketWithoutOverflow) {
  Histogram h;
  h.record(1e30);
  h.record(1.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e30);
  EXPECT_LE(h.quantile(1.0), 1e30);
}

}  // namespace
}  // namespace magic::util
