#include "util/rng.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace magic::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next() != b.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of {2,3,4,5} should appear
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexAllZeroReturnsZero) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(weights), 0u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(37);
  Rng child = parent.split();
  // The child stream should not replay the parent's output.
  Rng parent_copy(37);
  parent_copy.split();
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (child.next() != parent_copy.next());
  // Identical construction path -> identical child; different from parent.
  Rng parent2(37);
  Rng child2 = parent2.split();
  Rng parent3(37);
  Rng child3 = parent3.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child2.next(), child3.next());
  (void)differs;
}

TEST(Rng, PositiveCountAtLeastOne) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.positive_count(4.0), 1);
  // mean <= 1 always returns exactly 1.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.positive_count(0.5), 1);
}

TEST(Rng, PositiveCountMeanRoughlyMatches) {
  // positive_count(m) = 1 + floor(Exp(m - 1)); E[floor(Exp(lambda))] is
  // roughly lambda - 0.5, so the expected mean is about m - 0.5.
  Rng rng(43);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.positive_count(6.0));
  EXPECT_NEAR(total / n, 5.5, 0.3);
}

}  // namespace
}  // namespace magic::util
