// MetricsRegistry: handle semantics, snapshot JSON shape, reset behaviour,
// and concurrent counter bumps (this file is part of the TSan suite).

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace magic::obs {
namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("t.count");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge& g = registry.gauge("t.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  HistogramCell& h = registry.histogram("t.hist");
  h.record(1.0);
  h.record(3.0);
  const util::Histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_DOUBLE_EQ(snap.sum(), 4.0);
}

TEST(Metrics, LookupReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stable");
  // Force rebalancing inserts around it; node-based storage must keep the
  // original reference valid.
  for (int i = 0; i < 100; ++i) {
    registry.counter("stable." + std::to_string(i));
  }
  EXPECT_EQ(&a, &registry.counter("stable"));
  a.add();
  EXPECT_EQ(registry.counter("stable").value(), 1u);
}

TEST(Metrics, ResetValuesKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter& c = registry.counter("r.count");
  Gauge& g = registry.gauge("r.gauge");
  HistogramCell& h = registry.histogram("r.hist");
  c.add(7);
  g.set(1.0);
  h.record(2.0);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count(), 0u);
  // The same handles keep working after the reset.
  c.add();
  EXPECT_EQ(registry.counter("r.count").value(), 1u);
}

TEST(Metrics, SnapshotJsonShape) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("a.gauge").set(1.5);
  registry.histogram("a.hist").record(2.0);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.gauge\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.hist\":{\"count\":1"), std::string::npos) << json;
  for (const char* key : {"\"sum\":", "\"mean\":", "\"min\":", "\"max\":",
                          "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Metrics, SnapshotJsonRendersNonFiniteAsZero) {
  MetricsRegistry registry;
  registry.gauge("bad").set(std::numeric_limits<double>::infinity());
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"bad\":0"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(Metrics, SnapshotJsonEscapesNames) {
  MetricsRegistry registry;
  registry.counter("quote\"back\\slash").add();
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos) << json;
}

TEST(Metrics, EmptyRegistrySnapshotIsValid) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.snapshot_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Metrics, ConcurrentCounterBumps) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kBumps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Lookup inside the thread: exercises the registry mutex under TSan.
      Counter& c = registry.counter("mt.count");
      HistogramCell& h = registry.histogram("mt.hist");
      for (int i = 0; i < kBumps; ++i) {
        c.add();
        if (i % 100 == 0) h.record(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("mt.count").value(),
            static_cast<std::uint64_t>(kThreads) * kBumps);
  EXPECT_EQ(registry.histogram("mt.hist").snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * (kBumps / 100));
}

TEST(Metrics, ConcurrentSnapshotWhileWriting) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Counter& c = registry.counter("snap.count");
    while (!stop.load(std::memory_order_relaxed)) c.add();
  });
  for (int i = 0; i < 50; ++i) {
    const std::string json = registry.snapshot_json();
    EXPECT_FALSE(json.empty());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(Metrics, EnabledFlagDefaultsOffAndToggles) {
  // The harness never enables obs globally, so the default must hold here.
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(Metrics, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace magic::obs
