// Structured-log rendering: both process-wide formats, component handling
// and JSON escaping (render_log_line is the pure core behind log_line).

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace magic::util {
namespace {

constexpr const char* kTs = "2026-01-02T03:04:05.678Z";

TEST(LoggingFormat, TextWithComponent) {
  EXPECT_EQ(render_log_line(LogFormat::Text, LogLevel::Info, "serve",
                            "drained 3 requests", kTs),
            "2026-01-02T03:04:05.678Z [INFO] serve: drained 3 requests");
}

TEST(LoggingFormat, TextWithoutComponent) {
  EXPECT_EQ(render_log_line(LogFormat::Text, LogLevel::Warn, "", "careful", kTs),
            "2026-01-02T03:04:05.678Z [WARN] careful");
}

TEST(LoggingFormat, JsonWithComponent) {
  EXPECT_EQ(render_log_line(LogFormat::Json, LogLevel::Debug, "trace",
                            "stage=extract.parse ms=1.5", kTs),
            "{\"ts\":\"2026-01-02T03:04:05.678Z\",\"level\":\"debug\","
            "\"component\":\"trace\",\"msg\":\"stage=extract.parse ms=1.5\"}");
}

TEST(LoggingFormat, JsonOmitsEmptyComponent) {
  const std::string line =
      render_log_line(LogFormat::Json, LogLevel::Error, "", "boom", kTs);
  EXPECT_EQ(line.find("component"), std::string::npos) << line;
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
}

TEST(LoggingFormat, JsonEscapesMessage) {
  const std::string line = render_log_line(LogFormat::Json, LogLevel::Info, "c",
                                           "say \"hi\"\nback\\slash", kTs);
  EXPECT_NE(line.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos) << line;
}

TEST(LoggingFormat, JsonEscapesControlCharacters) {
  const std::string line =
      render_log_line(LogFormat::Json, LogLevel::Info, "c", std::string(1, '\x01'), kTs);
  EXPECT_NE(line.find("\\u0001"), std::string::npos) << line;
}

TEST(LoggingFormat, TimestampShape) {
  const std::string ts = log_timestamp();
  ASSERT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(LoggingFormat, FormatSettingRoundTrips) {
  const LogFormat before = log_format();
  set_log_format(LogFormat::Json);
  EXPECT_EQ(log_format(), LogFormat::Json);
  set_log_format(before);
}

}  // namespace
}  // namespace magic::util
