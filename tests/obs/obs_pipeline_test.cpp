// End-to-end observability: with tracing enabled the extraction pipeline
// and the training engine populate the global registry with the documented
// metric names — and enabling tracing never perturbs the training math.

#include <string>

#include <gtest/gtest.h>

#include "acfg/extractor.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "magic/core_test_util.hpp"
#include "magic/trainer.hpp"
#include "obs/metrics.hpp"

namespace magic {
namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::global().reset_values();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::MetricsRegistry::global().reset_values();
  }
};

std::string demo_listing() {
  const auto specs = data::yancfg_family_specs();
  data::ProgramGenerator gen(specs[1], util::Rng(7));
  return gen.generate_listing();
}

std::vector<double> train_losses(std::size_t threads) {
  data::Dataset d = core::testing::separable_dataset(8, 21);
  std::vector<std::size_t> train_idx, val_idx;
  for (std::size_t i = 0; i < d.samples.size(); ++i) {
    (i % 4 == 0 ? val_idx : train_idx).push_back(i);
  }
  core::DgcnnConfig cfg;
  cfg.graph_conv_channels = {4, 4};
  cfg.hidden_dim = 8;
  cfg.num_classes = d.num_families();
  core::TrainOptions opt;
  opt.epochs = 3;
  opt.batch_size = 4;
  opt.seed = 99;
  opt.threads = threads;
  util::Rng rng(opt.seed);
  core::DgcnnModel model(cfg, rng, 16);
  const core::TrainResult result =
      core::train_model(model, d, train_idx, val_idx, opt);
  std::vector<double> losses;
  for (const auto& e : result.history) losses.push_back(e.train_loss);
  return losses;
}

TEST_F(ObsPipelineTest, ExtractionPopulatesStageMetrics) {
  acfg::Acfg g = acfg::extract_acfg_from_listing(demo_listing());
  ASSERT_FALSE(g.out_edges.empty());
#ifdef MAGIC_OBS_BUILD
  const std::string json = obs::MetricsRegistry::global().snapshot_json();
  for (const char* key :
       {"\"extract.parse.ms\"", "\"extract.parse.calls\"",
        "\"extract.cfg_build.ms\"", "\"extract.attributes.ms\"",
        "\"extract.pipeline.ms\"", "\"extract.graphs\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in " << json;
  }
#endif
}

TEST_F(ObsPipelineTest, TrainingPopulatesPhaseMetrics) {
  train_losses(2);
#ifdef MAGIC_OBS_BUILD
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  EXPECT_EQ(registry.counter("train.epochs").value(), 3u);
  EXPECT_GT(registry.counter("train.samples").value(), 0u);
  EXPECT_GT(registry.gauge("train.samples_per_sec").value(), 0.0);
  for (const char* name :
       {"train.epoch.forward_ms", "train.epoch.backward_ms",
        "train.epoch.reduce_ms", "train.epoch.optimizer_ms",
        "train.epoch.wall_ms", "train.epoch.validation_ms"}) {
    EXPECT_EQ(registry.histogram(name).snapshot().count(), 3u) << name;
  }
#endif
}

TEST_F(ObsPipelineTest, TracingDoesNotPerturbTraining) {
  // The acceptance bar for "zero measurable overhead": the loss history is
  // bitwise identical whether tracing is on or off.
  obs::set_enabled(true);
  const std::vector<double> traced = train_losses(2);
  obs::set_enabled(false);
  const std::vector<double> untraced = train_losses(2);
  ASSERT_EQ(traced.size(), untraced.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i], untraced[i]) << "epoch " << i;
  }
}

}  // namespace
}  // namespace magic
