// Span / ScopedTimer: record when enabled, stay inert (no registry writes)
// when disabled.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace magic::obs {
namespace {

/// Enables tracing for one test and restores the disabled default + clean
/// registry afterwards (the suite runs one test per process via ctest, but
/// keep the state clean for direct `./test_obs` runs too).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().reset_values();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset_values();
  }
};

TEST_F(TraceTest, SpanRecordsCallsAndMillis) {
  {
    Span span("t.stage");
    EXPECT_TRUE(span.active());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  EXPECT_EQ(registry.counter("t.stage.calls").value(), 1u);
  const util::Histogram h = registry.histogram("t.stage.ms").snapshot();
  ASSERT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
}

TEST_F(TraceTest, SpanInertWhenDisabled) {
  set_enabled(false);
  {
    Span span("t.off");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(MetricsRegistry::global().counter("t.off.calls").value(), 0u);
  EXPECT_EQ(MetricsRegistry::global().histogram("t.off.ms").snapshot().count(), 0u);
}

TEST_F(TraceTest, MacroDeclaresASpan) {
  {
    MAGIC_OBS_SPAN(macro, "t.macro");
  }
#ifdef MAGIC_OBS_BUILD
  EXPECT_EQ(MetricsRegistry::global().counter("t.macro.calls").value(), 1u);
#else
  EXPECT_EQ(MetricsRegistry::global().counter("t.macro.calls").value(), 0u);
#endif
}

TEST_F(TraceTest, ScopedTimerRecordsIntoCell) {
  HistogramCell cell;
  {
    ScopedTimer timer(&cell);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const util::Histogram h = cell.snapshot();
  ASSERT_EQ(h.count(), 1u);
  EXPECT_GT(h.sum(), 0.0);
}

TEST_F(TraceTest, ScopedTimerStopRecordsOnceAndReturnsElapsed) {
  HistogramCell cell;
  ScopedTimer timer(&cell);
  const double first = timer.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(timer.stop(), 0.0);  // second stop is a no-op
  EXPECT_EQ(cell.snapshot().count(), 1u);
}

TEST_F(TraceTest, ScopedTimerNullIsInert) {
  ScopedTimer timer(nullptr);
  EXPECT_EQ(timer.stop(), 0.0);
}

}  // namespace
}  // namespace magic::obs
