// magic_lint fixture: a graph-conv operator whose void-returning fused
// inference entry point has no shape contract. forward-contract cannot see
// it (that rule matches only `Tensor X::forward`); the conv-op-contract
// rule must flag this file.

namespace fixture {

struct Tensor {
  int rows = 0;
};
struct SparseMatrix {};

struct RogueConv {
  void forward_inference_into(const SparseMatrix& prop, const Tensor& z,
                              Tensor& f_scratch, double* out,
                              unsigned long out_stride, Tensor* next_input);
};

void RogueConv::forward_inference_into(const SparseMatrix& /*prop*/,
                                       const Tensor& z, Tensor& f_scratch,
                                       double* out, unsigned long out_stride,
                                       Tensor* next_input) {
  f_scratch.rows = z.rows;
  for (int r = 0; r < z.rows; ++r) out[r * out_stride] = 0.0;
  if (next_input != nullptr) next_input->rows = z.rows;
}

}  // namespace fixture
