// magic_lint fixture: a naked std::thread. The no-naked-thread rule must
// flag the construction (std::this_thread and hardware_concurrency stay
// legal and must NOT be flagged).

#include <thread>

namespace fixture {

void spawn() {
  const unsigned n = std::thread::hardware_concurrency();  // allowed
  std::thread worker([n] { (void)n; });                    // flagged
  worker.detach();
}

}  // namespace fixture
