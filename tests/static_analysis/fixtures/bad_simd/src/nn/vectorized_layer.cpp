// magic_lint fixture: raw AVX2 intrinsics outside src/tensor/simd/. The
// simd-intrinsics rule must flag the include, the register type and the
// intrinsic call (the comment mentions of _mm256_* must NOT count).

#include <immintrin.h>

namespace fixture {

double sum4(const double* p) {
  const __m256d v = _mm256_loadu_pd(p);
  alignas(32) double lanes[4];
  _mm256_storeu_pd(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace fixture
