// magic_lint fixture: std::endl use. The no-endl rule must flag it.

#include <iostream>

namespace fixture {

void greet() { std::cout << "hello" << std::endl; }

}  // namespace fixture
