#pragma once
// magic_lint fixture: a MAGIC_GUARDED_BY whose argument names no mutex in
// this file. The guard-names rule must flag it — the mutex was "renamed"
// to mutex_ but the annotation still says lock_, so the analysis silently
// protects nothing.

namespace util {
class Mutex {};
}  // namespace util

#define MAGIC_GUARDED_BY(x)

namespace fixture {

class Ledger {
 private:
  util::Mutex mutex_;
  int balance_ MAGIC_GUARDED_BY(lock_) = 0;  // lock_ does not exist
};

}  // namespace fixture
