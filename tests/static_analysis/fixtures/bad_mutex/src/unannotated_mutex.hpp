#pragma once
// magic_lint fixture: a util::Mutex whose protected state is not annotated.
// The mutex-annotation rule must flag it — no MAGIC_GUARDED_BY(mutex_)
// field exists in this file and there is no `magic-lint: guards(...)`
// escape comment.

namespace util {
class Mutex {};
}  // namespace util

namespace fixture {

class Registry {
 private:
  util::Mutex mutex_;
  int entries_ = 0;  // missing the guarded-by annotation naming mutex_
};

}  // namespace fixture
