#pragma once
// magic_lint fixture: a raw std::mutex member. The mutex-annotation rule
// must flag it (std::mutex carries no -Wthread-safety capability; members
// must be util::Mutex).

#include <mutex>
#include <string>

namespace fixture {

class Cache {
 public:
  void put(std::string value) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = std::move(value);
  }

 private:
  std::mutex mutex_;
  std::string value_;
};

}  // namespace fixture
