// magic_lint fixture: a forward body with no shape contract. The
// forward-contract rule must flag this file.

namespace fixture {

struct Tensor {
  int rows = 0;
};

struct NakedLayer {
  Tensor forward(const Tensor& input);
};

Tensor NakedLayer::forward(const Tensor& input) {
  Tensor out;
  out.rows = input.rows;
  return out;
}

}  // namespace fixture
