// NEGATIVE case: re-acquiring a non-reentrant capability already held is a
// self-deadlock; the analysis must reject it. This is the deadlock the
// MAGIC_EXCLUDES(pool_->mutex_) annotation on ReplicaPool::Lease::release
// guards against, reduced to a minimum.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump_twice() MAGIC_EXCLUDES(mutex_) {
    magic::util::MutexLock outer(mutex_);
    ++count_;
    // BUG under analysis: mutex_ is already held.
    magic::util::MutexLock inner(mutex_);
    ++count_;
  }

 private:
  magic::util::Mutex mutex_;
  int count_ MAGIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int case_main() {
  Counter counter;
  counter.bump_twice();
  return 0;
}
