// NEGATIVE case: calling a MAGIC_REQUIRES(mutex_) function without holding
// the capability must be rejected. This is the ReplicaPool::Lease shape —
// a private helper that assumes its caller locked — reduced to a minimum.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Table {
 public:
  // BUG under analysis: grow_locked demands the capability; nobody holds it.
  void grow() { grow_locked(); }

 private:
  void grow_locked() MAGIC_REQUIRES(mutex_) { size_ += 1; }

  magic::util::Mutex mutex_;
  int size_ MAGIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int case_main() {
  Table table;
  table.grow();
  return 0;
}
