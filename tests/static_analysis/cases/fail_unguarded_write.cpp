// NEGATIVE case: writing a MAGIC_GUARDED_BY field without holding its mutex
// must be rejected by -Werror=thread-safety-analysis. Compiles fine without
// the analysis (the companion "sanity" test asserts that), so the only
// reason this translation unit can fail is the thread-safety finding.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  // BUG under analysis: no lock around the guarded write.
  void deposit(int amount) { balance_ += amount; }

 private:
  magic::util::Mutex mutex_;
  int balance_ MAGIC_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int case_main() {
  Account account;
  account.deposit(1);
  return 0;
}
