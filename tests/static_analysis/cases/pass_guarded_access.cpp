// POSITIVE case: the canonical annotated-class idiom (util::Mutex +
// MutexLock + MAGIC_GUARDED_BY/MAGIC_EXCLUDES, condition waits as explicit
// while-loops) must compile clean under -Werror=thread-safety-analysis.

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Mailbox {
 public:
  void put(int value) MAGIC_EXCLUDES(mutex_) {
    {
      magic::util::MutexLock lock(mutex_);
      value_ = value;
      full_ = true;
    }
    cv_.notify_one();
  }

  int take() MAGIC_EXCLUDES(mutex_) {
    magic::util::MutexLock lock(mutex_);
    while (!full_) cv_.wait(lock);
    full_ = false;
    return value_;
  }

 private:
  magic::util::Mutex mutex_;
  magic::util::CondVar cv_;
  int value_ MAGIC_GUARDED_BY(mutex_) = 0;
  bool full_ MAGIC_GUARDED_BY(mutex_) = false;
};

}  // namespace

int case_main() {
  Mailbox box;
  box.put(7);
  return box.take() == 7 ? 0 : 1;
}
