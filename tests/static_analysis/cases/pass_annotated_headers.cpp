// POSITIVE case: the real annotated headers of the concurrency surface
// must compile clean under -Werror=thread-safety-analysis. This catches
// annotation regressions in the inline code paths (BoundedQueue and
// VerdictSlot do all their locking in the header) without needing a full
// library build.

#include "magic/replica_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/verdict.hpp"
#include "util/bounded_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

int case_main() {
  magic::util::BoundedQueue<int> queue(4);
  queue.close();
  return 0;
}
