// End-to-end integration: synthetic corpus -> ACFG extraction -> DGCNN
// training -> prediction, plus DGCNN-vs-baseline comparisons on the same
// corpus (the shape of the paper's Table IV / Fig. 11 claims).

#include <sstream>

#include <gtest/gtest.h>

#include "baselines/gbdt.hpp"
#include "data/program_generator.hpp"
#include "baselines/svm.hpp"
#include "data/corpus.hpp"
#include "magic/classifier.hpp"
#include "ml/features.hpp"

namespace magic {
namespace {

// A 3-family slice of the MSKCFG-like generator, small enough to train in
// seconds but produced by the full front-end pipeline.
data::Dataset small_corpus(std::uint64_t seed) {
  auto specs = data::mskcfg_family_specs();
  std::vector<data::FamilySpec> three = {specs[1], specs[3], specs[8]};
  for (auto& s : three) s.corpus_count = 25;
  util::ThreadPool pool(4);
  return data::generate_corpus(three, 1.0, seed, pool, 25);
}

core::DgcnnConfig quick_config() {
  core::DgcnnConfig cfg;
  cfg.graph_conv_channels = {16, 16};
  cfg.pooling = core::PoolingType::AdaptivePooling;
  cfg.pooling_ratio = 0.3;
  cfg.conv2d_channels = 4;
  cfg.hidden_dim = 32;
  cfg.dropout_rate = 0.1;
  return cfg;
}

TEST(Pipeline, EndToEndTrainingReachesHighAccuracy) {
  data::Dataset d = small_corpus(1);
  ASSERT_EQ(d.size(), 75u);

  util::Rng rng(2);
  data::FoldSplit split = data::stratified_holdout(d, 0.8, rng);

  core::TrainOptions train;
  train.epochs = 15;
  train.batch_size = 10;
  train.learning_rate = 3e-3;
  core::MagicClassifier clf(quick_config(), train, 3);
  clf.fit_indices(d, split.train, split.validation);
  core::EvalResult eval = clf.evaluate(d, split.validation);
  EXPECT_GT(eval.confusion.accuracy(), 0.85)
      << "DGCNN should separate structurally distinct families";
}

TEST(Pipeline, DgcnnCompetitiveWithGbdtOnSameCorpus) {
  // Table IV's qualitative claim: MAGIC is comparable to handcrafted-feature
  // GBT. We assert DGCNN reaches at least GBDT accuracy minus a margin.
  data::Dataset d = small_corpus(4);
  util::Rng rng(5);
  data::FoldSplit split = data::stratified_holdout(d, 0.8, rng);

  core::TrainOptions train;
  train.epochs = 15;
  train.batch_size = 10;
  train.learning_rate = 3e-3;
  core::MagicClassifier clf(quick_config(), train, 6);
  clf.fit_indices(d, split.train, split.validation);
  const double dgcnn_acc = clf.evaluate(d, split.validation).confusion.accuracy();

  ml::FeatureMatrix all = ml::aggregate_feature_matrix(d.samples);
  ml::FeatureMatrix train_fm;
  for (std::size_t i : split.train) {
    train_fm.rows.push_back(all.rows[i]);
    train_fm.labels.push_back(all.labels[i]);
  }
  baselines::Gbdt gbdt({.num_rounds = 20, .learning_rate = 0.3, .lambda = 1.0,
                        .subsample = 1.0, .tree = {}, .seed = 7});
  gbdt.fit(train_fm, d.num_families());
  std::size_t correct = 0;
  for (std::size_t i : split.validation) {
    if (gbdt.predict(all.rows[i]) == all.labels[i]) ++correct;
  }
  const double gbdt_acc =
      static_cast<double>(correct) / static_cast<double>(split.validation.size());

  EXPECT_GT(dgcnn_acc, gbdt_acc - 0.15)
      << "DGCNN " << dgcnn_acc << " vs GBDT " << gbdt_acc;
}

TEST(Pipeline, SavedModelClassifiesFreshSamplesIdentically) {
  data::Dataset d = small_corpus(8);
  core::TrainOptions train;
  train.epochs = 8;
  train.learning_rate = 3e-3;
  core::MagicClassifier clf(quick_config(), train, 9);
  clf.fit(d, 0.2);

  std::stringstream ss;
  clf.save(ss);
  core::MagicClassifier restored = core::MagicClassifier::load(ss);

  // Fresh polymorphic variants from the same generator.
  auto specs = data::mskcfg_family_specs();
  data::ProgramGenerator gen(specs[1], util::Rng(10));
  for (int i = 0; i < 3; ++i) {
    const std::string listing = gen.generate_listing();
    EXPECT_EQ(clf.predict_listing(listing).family_index,
              restored.predict_listing(listing).family_index);
  }
}

}  // namespace
}  // namespace magic
