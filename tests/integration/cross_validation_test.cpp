#include "magic/cross_validation.hpp"

#include <gtest/gtest.h>

#include "magic/core_test_util.hpp"
#include "magic/hyperparam.hpp"

namespace magic::core {
namespace {

using testing::separable_dataset;

DgcnnConfig quick_config() {
  DgcnnConfig cfg;
  cfg.graph_conv_channels = {8, 8};
  cfg.pooling = PoolingType::SortPooling;
  cfg.remaining = RemainingLayer::WeightedVertices;
  cfg.hidden_dim = 16;
  cfg.dropout_rate = 0.1;
  return cfg;
}

CvOptions quick_cv(std::size_t folds, std::size_t epochs) {
  CvOptions opt;
  opt.folds = folds;
  opt.train.epochs = epochs;
  opt.train.batch_size = 8;
  opt.train.learning_rate = 3e-3;
  opt.seed = 1;
  return opt;
}

TEST(CrossValidation, FiveFoldPoolsEverySampleOnce) {
  data::Dataset d = separable_dataset(15, 2);  // 30 samples
  util::ThreadPool pool(4);
  CvResult result = cross_validate(quick_config(), d, quick_cv(5, 6), pool);
  EXPECT_EQ(result.confusion.total(), d.size());
  EXPECT_EQ(result.fold_loss.size(), 5u);
  EXPECT_EQ(result.mean_epoch_val_loss.size(), 6u);
  EXPECT_GT(result.score, 0.0);
  EXPECT_LE(result.score,
            *std::max_element(result.mean_epoch_val_loss.begin(),
                              result.mean_epoch_val_loss.end()) + 1e-12);
}

TEST(CrossValidation, HighAccuracyOnSeparableData) {
  data::Dataset d = separable_dataset(20, 3);
  util::ThreadPool pool(4);
  CvResult result = cross_validate(quick_config(), d, quick_cv(3, 25), pool);
  EXPECT_GT(result.accuracy, 0.85);
}

TEST(CrossValidation, RejectsDegenerateOptions) {
  // epochs == 0 used to take min_element of an empty vector (UB) and
  // folds == 0 divided by zero; both must be rejected up front.
  data::Dataset d = separable_dataset(6, 9);
  util::ThreadPool pool(2);
  EXPECT_THROW(cross_validate(quick_config(), d, quick_cv(0, 4), pool),
               std::invalid_argument);
  EXPECT_THROW(cross_validate(quick_config(), d, quick_cv(1, 4), pool),
               std::invalid_argument);
  EXPECT_THROW(cross_validate(quick_config(), d, quick_cv(3, 0), pool),
               std::invalid_argument);
}

TEST(CrossValidation, SerialAndParallelAgree) {
  data::Dataset d = separable_dataset(8, 4);
  util::ThreadPool pool(4);
  CvOptions serial = quick_cv(3, 4);
  serial.parallel_folds = false;
  CvOptions parallel = quick_cv(3, 4);
  parallel.parallel_folds = true;
  CvResult a = cross_validate(quick_config(), d, serial, pool);
  CvResult b = cross_validate(quick_config(), d, parallel, pool);
  EXPECT_NEAR(a.score, b.score, 1e-12);
  EXPECT_EQ(a.accuracy, b.accuracy);
}

TEST(GridSearch, RanksConfigsAndReturnsBest) {
  data::Dataset d = separable_dataset(8, 5);
  util::ThreadPool pool(4);
  // Two grid points: a real model and a deliberately weak one (tiny net,
  // huge dropout); the search must rank the real one first or at least
  // return both scored.
  GridPoint good;
  good.config = quick_config();
  GridPoint weak;
  weak.config = quick_config();
  weak.config.graph_conv_channels = {2};
  weak.config.hidden_dim = 2;
  weak.config.dropout_rate = 0.5;
  CvOptions opt = quick_cv(3, 6);
  SearchResult result = grid_search({good, weak}, d, opt, pool);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_LE(result.entries[0].score, result.entries[1].score);
  EXPECT_EQ(&result.best(), &result.entries[0]);
}

}  // namespace
}  // namespace magic::core
