// Parallel ACFG-extraction determinism: extracting the same corpus with a
// 1-thread pool and an N-thread pool must produce bit-identical ACFGs in
// the same order. Run under scripts/check.sh tsan this also proves the
// extraction fan-out is free of data races.

#include "acfg/extractor.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "data/program_generator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace magic::acfg {
namespace {

// A small but varied corpus: several polymorphic samples from each
// synthetic MSKCFG-like family.
std::vector<std::string> varied_listings(std::size_t per_family) {
  std::vector<std::string> listings;
  const auto specs = data::mskcfg_family_specs();
  for (std::size_t f = 0; f < specs.size(); ++f) {
    data::ProgramGenerator gen(specs[f], util::Rng(1234u + f));
    for (std::size_t s = 0; s < per_family; ++s) {
      listings.push_back(gen.generate_listing());
    }
  }
  return listings;
}

void expect_identical(const Acfg& a, const Acfg& b, std::size_t index) {
  EXPECT_EQ(a.out_edges, b.out_edges) << "sample " << index;
  ASSERT_EQ(a.attributes.shape(), b.attributes.shape()) << "sample " << index;
  EXPECT_TRUE(tensor::allclose(a.attributes, b.attributes, 0.0))
      << "sample " << index;
}

TEST(ParallelExtract, OneThreadAndManyThreadsProduceIdenticalAcfgs) {
  const std::vector<std::string> listings = varied_listings(3);
  ASSERT_GT(listings.size(), 8u);

  util::ThreadPool serial(1);
  util::ThreadPool parallel(8);
  const std::vector<Acfg> base = extract_batch(listings, serial);
  const std::vector<Acfg> par = extract_batch(listings, parallel);

  ASSERT_EQ(base.size(), listings.size());
  ASSERT_EQ(par.size(), listings.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    expect_identical(base[i], par[i], i);
  }
}

TEST(ParallelExtract, RepeatedParallelRunsAreStable) {
  const std::vector<std::string> listings = varied_listings(2);
  util::ThreadPool pool(6);
  const std::vector<Acfg> first = extract_batch(listings, pool);
  for (int run = 0; run < 3; ++run) {
    const std::vector<Acfg> again = extract_batch(listings, pool);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      expect_identical(first[i], again[i], i);
    }
  }
}

}  // namespace
}  // namespace magic::acfg
