#include "acfg/serialization.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "acfg/extractor.hpp"

namespace magic::acfg {
namespace {

Acfg sample_acfg() {
  Acfg a = extract_acfg_from_listing(
      "401000 cmp eax, 0\n"
      "401003 jz 0x401008\n"
      "401005 add eax, 1\n"
      "401008 ret\n");
  a.label = 3;
  a.id = "family/42";
  return a;
}

TEST(Serialization, RoundTripsSingleAcfg) {
  Acfg original = sample_acfg();
  std::stringstream ss;
  write_acfg(ss, original);
  Acfg restored = read_acfg(ss);
  EXPECT_EQ(restored.label, original.label);
  EXPECT_EQ(restored.id, original.id);
  EXPECT_EQ(restored.out_edges, original.out_edges);
  EXPECT_TRUE(tensor::allclose(restored.attributes, original.attributes, 0.0));
}

TEST(Serialization, EmptyIdRoundTrips) {
  Acfg a = sample_acfg();
  a.id.clear();
  std::stringstream ss;
  write_acfg(ss, a);
  EXPECT_TRUE(read_acfg(ss).id.empty());
}

TEST(Serialization, UnlabeledRoundTrips) {
  Acfg a = sample_acfg();
  a.label = -1;
  std::stringstream ss;
  write_acfg(ss, a);
  EXPECT_EQ(read_acfg(ss).label, -1);
}

TEST(Serialization, CorpusRoundTrip) {
  std::vector<Acfg> corpus = {sample_acfg(), sample_acfg(), sample_acfg()};
  corpus[1].label = 7;
  std::stringstream ss;
  write_corpus(ss, corpus);
  auto restored = read_corpus(ss);
  ASSERT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored[1].label, 7);
  EXPECT_TRUE(tensor::allclose(restored[2].attributes, corpus[2].attributes, 0.0));
}

TEST(Serialization, RejectsBadMagic) {
  std::stringstream ss("BOGUS v1\n");
  EXPECT_THROW(read_acfg(ss), std::runtime_error);
}

TEST(Serialization, RejectsTruncatedAttributes) {
  Acfg a = sample_acfg();
  std::stringstream ss;
  write_acfg(ss, a);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(read_acfg(truncated), std::runtime_error);
}

TEST(Serialization, RejectsEdgeOutOfRange) {
  std::stringstream ss(
      "ACFG v1\nid x\nlabel 0\nvertices 1 channels 1\n0\nedges 1\n0 5\n");
  EXPECT_THROW(read_acfg(ss), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  std::vector<Acfg> corpus = {sample_acfg()};
  const std::string path = ::testing::TempDir() + "/corpus_test.acfg";
  save_corpus(path, corpus);
  auto restored = load_corpus(path);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].label, corpus[0].label);
}

TEST(Serialization, LoadMissingFileThrows) {
  EXPECT_THROW(load_corpus("/nonexistent/path/x.acfg"), std::runtime_error);
}

}  // namespace
}  // namespace magic::acfg
