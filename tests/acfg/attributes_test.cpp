#include "acfg/attributes.hpp"

#include <gtest/gtest.h>

#include "asmx/parser.hpp"

namespace magic::acfg {
namespace {

cfg::BasicBlock block_from(const std::string& listing) {
  asmx::ParseResult r = asmx::parse_listing(listing);
  cfg::BasicBlock b;
  b.instructions = std::move(r.program.instructions);
  return b;
}

TEST(Attributes, TableOneCountsPerBucket) {
  cfg::BasicBlock b = block_from(
      "401000 mov eax, 5\n"     // mov + 1 numeric const
      "401005 add eax, 2\n"     // arith + 1 numeric const
      "401008 cmp eax, 7\n"     // compare + 1 numeric const
      "40100b jz 0x401010\n"    // transfer (target, not an immediate)
      "40100d call 0x77000000\n" // call
      "401012 db 0x90\n"        // data declaration + 1 numeric const
      "401013 ret\n");          // termination
  const auto a = block_attributes(b, 2);
  EXPECT_EQ(a[kMovInsts], 1.0);
  EXPECT_EQ(a[kArithmeticInsts], 1.0);
  EXPECT_EQ(a[kCompareInsts], 1.0);
  EXPECT_EQ(a[kTransferInsts], 1.0);
  EXPECT_EQ(a[kCallInsts], 1.0);
  EXPECT_EQ(a[kDataDeclInsts], 1.0);
  EXPECT_EQ(a[kTerminationInsts], 1.0);
  EXPECT_EQ(a[kTotalInsts], 7.0);
  EXPECT_EQ(a[kVertexInsts], 7.0);
  EXPECT_EQ(a[kOffspring], 2.0);
  // Numeric constants: mov/add/cmp/db immediates = 4 (jump/call targets are
  // Target operands, not immediates).
  EXPECT_EQ(a[kNumericConstants], 4.0);
}

TEST(Attributes, EmptyBlockAllZeroExceptOffspring) {
  cfg::BasicBlock b;
  const auto a = block_attributes(b, 3);
  for (std::size_t c = 0; c < kNumChannels; ++c) {
    if (c == kOffspring) {
      EXPECT_EQ(a[c], 3.0);
    } else {
      EXPECT_EQ(a[c], 0.0);
    }
  }
}

TEST(Attributes, ChannelCountMatchesTableOne) {
  // 9 code-sequence attributes + 2 vertex-structure attributes.
  EXPECT_EQ(static_cast<int>(kNumChannels), 11);
}

TEST(Attributes, ChannelNamesAreDistinct) {
  std::set<std::string_view> names;
  for (std::size_t c = 0; c < kNumChannels; ++c) {
    EXPECT_TRUE(names.insert(channel_name(c)).second);
  }
  EXPECT_EQ(channel_name(kNumChannels), "?");
}

TEST(Attributes, UnknownMnemonicsCountOnlyInTotals) {
  cfg::BasicBlock b = block_from("401000 frobnicate eax\n");
  const auto a = block_attributes(b, 0);
  EXPECT_EQ(a[kTotalInsts], 1.0);
  EXPECT_EQ(a[kMovInsts], 0.0);
  EXPECT_EQ(a[kArithmeticInsts], 0.0);
}

}  // namespace
}  // namespace magic::acfg
