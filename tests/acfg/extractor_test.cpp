#include "acfg/extractor.hpp"

#include <gtest/gtest.h>

#include "acfg/attributes.hpp"
#include "cfg/cfg_builder.hpp"

namespace magic::acfg {
namespace {

constexpr const char* kBranchy =
    "401000 cmp eax, 0\n"
    "401003 jz 0x401008\n"
    "401005 add eax, 1\n"
    "401008 ret\n";

TEST(Extractor, VertexCountMatchesCfgBlocks) {
  cfg::ControlFlowGraph g = cfg::CfgBuilder::build_from_listing(kBranchy);
  Acfg a = extract_acfg(g);
  EXPECT_EQ(a.num_vertices(), g.num_blocks());
  EXPECT_EQ(a.num_edges(), g.num_edges());
  EXPECT_EQ(a.num_channels(), static_cast<std::size_t>(kNumChannels));
}

TEST(Extractor, OffspringChannelEqualsOutDegree) {
  Acfg a = extract_acfg_from_listing(kBranchy);
  for (std::size_t i = 0; i < a.num_vertices(); ++i) {
    EXPECT_EQ(a.attributes[i * kNumChannels + kOffspring],
              static_cast<double>(a.out_edges[i].size()));
  }
}

TEST(Extractor, TotalInstructionsSumMatchesProgram) {
  Acfg a = extract_acfg_from_listing(kBranchy);
  double total = 0.0;
  for (std::size_t i = 0; i < a.num_vertices(); ++i) {
    total += a.attributes[i * kNumChannels + kTotalInsts];
  }
  EXPECT_EQ(total, 4.0);
}

TEST(Extractor, Deterministic) {
  Acfg a = extract_acfg_from_listing(kBranchy);
  Acfg b = extract_acfg_from_listing(kBranchy);
  EXPECT_TRUE(tensor::allclose(a.attributes, b.attributes, 0.0));
  EXPECT_EQ(a.out_edges, b.out_edges);
}

TEST(Extractor, BatchMatchesSingle) {
  util::ThreadPool pool(4);
  std::vector<std::string> listings(8, kBranchy);
  auto batch = extract_batch(listings, pool);
  ASSERT_EQ(batch.size(), 8u);
  Acfg single = extract_acfg_from_listing(kBranchy);
  for (const auto& a : batch) {
    EXPECT_TRUE(tensor::allclose(a.attributes, single.attributes, 0.0));
  }
}

TEST(Acfg, ValidateCatchesRowMismatch) {
  Acfg a;
  a.out_edges = {{}, {}};
  a.attributes = tensor::Tensor({1, 11});
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Acfg, ValidateCatchesDanglingEdge) {
  Acfg a;
  a.out_edges = {{5}};
  a.attributes = tensor::Tensor({1, 11});
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Acfg, PropagationOperatorMatchesTopology) {
  Acfg a = extract_acfg_from_listing(kBranchy);
  auto p = a.propagation_operator();
  EXPECT_EQ(p.rows(), a.num_vertices());
  // Rows are stochastic.
  auto dense = p.to_dense();
  for (std::size_t i = 0; i < a.num_vertices(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.num_vertices(); ++j) s += dense.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace magic::acfg
