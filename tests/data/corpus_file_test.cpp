// Packed mmap corpus format: bit-exact round trip, zero-copy views,
// content hashes, and the integrity discipline (bad magic / version /
// truncation / tamper must all be rejected at open, with descriptive
// errors, never by serving garbage).

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/acfg_hash.hpp"
#include "data/corpus_file.hpp"
#include "data/dataset.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace magic::data {
namespace {

class CorpusFileTest : public ::testing::Test {
 protected:
  std::string temp_path() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string path = ::testing::TempDir() + "corpus_file_" + info->name() +
                       "_" + std::to_string(paths_.size()) + ".mgc";
    paths_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }
  std::vector<std::string> paths_;
};

/// Small deterministic labelled corpus with irregular shapes: empty edge
/// lists, self loops, duplicate edges, non-ASCII-ish ids and negative /
/// fractional attributes, so the round trip is exercised beyond the happy
/// path.
Dataset make_corpus(std::size_t samples = 7, std::size_t channels = 5) {
  util::Rng rng(4242);
  Dataset out;
  out.family_names = {"Benign", "Hupigon", "Swizzor"};
  for (std::size_t s = 0; s < samples; ++s) {
    acfg::Acfg g;
    const std::size_t n = 1 + (s * 3) % 9;
    std::vector<double> attrs(n * channels);
    for (double& a : attrs) a = rng.normal() * 1e3;
    attrs[0] = -0.0;  // signed zero must survive bit-exactly
    g.attributes = tensor::Tensor({n, channels}, std::move(attrs));
    g.out_edges.resize(n);
    for (std::size_t u = 0; u < n; ++u) {
      for (std::size_t v = 0; v < n; ++v) {
        if (rng.bernoulli(0.3)) g.out_edges[u].push_back(v);
      }
    }
    if (n > 1) g.out_edges[0].push_back(0);  // self loop
    g.label = static_cast<int>(s % out.family_names.size());
    g.id = "sample-" + std::to_string(s) + "_x";
    out.samples.push_back(std::move(g));
  }
  return out;
}

TEST_F(CorpusFileTest, RoundTripIsBitExact) {
  const Dataset original = make_corpus();
  const std::string path = temp_path();
  pack_corpus(original, path);

  const Dataset loaded = load_packed_corpus(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.family_names, original.family_names);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const acfg::Acfg& a = original.samples[i];
    const acfg::Acfg& b = loaded.samples[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.out_edges, b.out_edges);
    ASSERT_EQ(a.attributes.shape(), b.attributes.shape());
    // Bit-exact, not allclose: the format stores raw double bit patterns.
    const auto& av = a.attributes.storage();
    const auto& bv = b.attributes.storage();
    for (std::size_t j = 0; j < av.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(av[j]),
                std::bit_cast<std::uint64_t>(bv[j]))
          << "sample " << i << " attr " << j;
    }
  }
}

TEST_F(CorpusFileTest, ViewsAreZeroCopyAndConsistent) {
  const Dataset original = make_corpus();
  const std::string path = temp_path();
  pack_corpus(original, path);

  PackedCorpus corpus(path);
  EXPECT_EQ(corpus.size(), original.size());
  EXPECT_EQ(corpus.channels(), 5u);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const PackedCorpus::SampleView v = corpus.view(i);
    const acfg::Acfg& a = original.samples[i];
    EXPECT_EQ(v.vertices, a.num_vertices());
    EXPECT_EQ(v.edges, a.num_edges());
    EXPECT_EQ(v.label, a.label);
    EXPECT_EQ(v.id, a.id);
    ASSERT_EQ(v.row_ptr.size(), v.vertices + 1);
    EXPECT_EQ(v.row_ptr.front(), 0u);
    EXPECT_EQ(v.row_ptr.back(), v.edges);
    EXPECT_EQ(v.col_idx.size(), v.edges);
    EXPECT_EQ(v.attributes.size(), v.vertices * corpus.channels());
    // The stored content hash matches a fresh hash of the materialized
    // sample — the scan queue relies on this to hit the verdict cache
    // without rehashing.
    EXPECT_EQ(v.content_hash, cache::acfg_content_hash(a));
    EXPECT_EQ(v.content_hash, cache::acfg_content_hash(corpus.materialize(i)));
  }
  EXPECT_THROW(corpus.view(corpus.size()), std::out_of_range);
}

TEST_F(CorpusFileTest, EmptyCorpusRoundTrips) {
  Dataset empty;
  empty.family_names = {"OnlyFamily"};
  const std::string path = temp_path();
  pack_corpus(empty, path);
  const PackedCorpus corpus(path);
  EXPECT_EQ(corpus.size(), 0u);
  EXPECT_EQ(corpus.family_names(), std::vector<std::string>{"OnlyFamily"});
  EXPECT_EQ(corpus.to_dataset().size(), 0u);
}

TEST_F(CorpusFileTest, RejectsBadMagic) {
  const std::string path = temp_path();
  pack_corpus(make_corpus(), path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.write("NOTMAGIC", 8);
  }
  EXPECT_THROW(
      {
        try {
          PackedCorpus corpus(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(CorpusFileTest, RejectsUnsupportedVersion) {
  const std::string path = temp_path();
  pack_corpus(make_corpus(), path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // version field is the first u64 after the magic
    const std::uint64_t bogus = 999;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW(
      {
        try {
          PackedCorpus corpus(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(CorpusFileTest, RejectsTruncation) {
  const std::string path = temp_path();
  pack_corpus(make_corpus(), path);
  std::uintmax_t size;
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    size = static_cast<std::uintmax_t>(f.tellg());
  }
  // Chop the last 100 bytes: file_size in the header no longer matches.
  std::string contents;
  {
    std::ifstream f(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(f), {});
  }
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(contents.data(), static_cast<std::streamsize>(size - 100));
  }
  EXPECT_THROW(
      {
        try {
          PackedCorpus corpus(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("size mismatch"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(CorpusFileTest, RejectsTamperedPayload) {
  const std::string path = temp_path();
  pack_corpus(make_corpus(), path);
  {
    // Flip one bit deep inside the payload; the file size stays right, so
    // only the payload hash can catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekg(size / 2);
    char byte;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  EXPECT_THROW(
      {
        try {
          PackedCorpus corpus(path);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("payload hash"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(CorpusFileTest, RejectsFileSmallerThanHeader) {
  const std::string path = temp_path();
  {
    std::ofstream f(path, std::ios::binary);
    f << "MGCCORP\ntiny";
  }
  EXPECT_THROW(PackedCorpus{path}, std::runtime_error);
}

TEST_F(CorpusFileTest, RejectsMissingFile) {
  EXPECT_THROW(PackedCorpus{"/nonexistent/nope.mgc"}, std::runtime_error);
}

TEST_F(CorpusFileTest, PackRejectsMixedChannelWidths) {
  Dataset corpus = make_corpus(2, 4);
  corpus.samples[1].attributes =
      tensor::Tensor({corpus.samples[1].num_vertices(), std::size_t{6}});
  EXPECT_THROW(pack_corpus(corpus, temp_path()), std::invalid_argument);
}

TEST_F(CorpusFileTest, MoveTransfersOwnership) {
  const std::string path = temp_path();
  const Dataset original = make_corpus();
  pack_corpus(original, path);
  PackedCorpus first(path);
  PackedCorpus second(std::move(first));
  EXPECT_EQ(second.size(), original.size());
  const PackedCorpus::SampleView v = second.view(0);
  EXPECT_EQ(v.id, original.samples[0].id);
}

}  // namespace
}  // namespace magic::data
