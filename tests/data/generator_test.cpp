#include "data/program_generator.hpp"

#include <gtest/gtest.h>

#include "acfg/extractor.hpp"
#include "asmx/parser.hpp"
#include "asmx/tagging.hpp"
#include "cfg/cfg_builder.hpp"
#include "cfg/graph_algo.hpp"
#include "data/corpus.hpp"

namespace magic::data {
namespace {

FamilySpec test_spec() {
  FamilySpec s;
  s.name = "test";
  s.functions_mean = 4.0;
  s.blocks_per_function = 6.0;
  s.block_length_mean = 5.0;
  return s;
}

TEST(ProgramGenerator, ListingParsesCleanly) {
  // Sizes are heavy-tailed (a single sample can be one tiny function), so
  // assert over a handful of variants.
  ProgramGenerator gen(test_spec(), util::Rng(1));
  std::size_t total_instructions = 0;
  for (int i = 0; i < 5; ++i) {
    const std::string listing = gen.generate_listing();
    EXPECT_FALSE(listing.empty());
    asmx::ParseResult r = asmx::parse_listing(listing);
    total_instructions += r.program.instructions.size();
    // The generator must never produce duplicate addresses or unresolvable
    // labels.
    EXPECT_TRUE(r.diagnostics.empty());
  }
  EXPECT_GT(total_instructions, 100u);
}

TEST(ProgramGenerator, DeterministicGivenSeed) {
  ProgramGenerator a(test_spec(), util::Rng(42));
  ProgramGenerator b(test_spec(), util::Rng(42));
  EXPECT_EQ(a.generate_listing(), b.generate_listing());
}

TEST(ProgramGenerator, VariantsDifferAcrossCalls) {
  ProgramGenerator gen(test_spec(), util::Rng(7));
  EXPECT_NE(gen.generate_listing(), gen.generate_listing());
}

TEST(ProgramGenerator, AddressesStrictlyIncrease) {
  ProgramGenerator gen(test_spec(), util::Rng(3));
  asmx::ParseResult r = asmx::parse_listing(gen.generate_listing());
  for (std::size_t i = 1; i < r.program.instructions.size(); ++i) {
    EXPECT_GT(r.program.instructions[i].addr, r.program.instructions[i - 1].addr);
  }
}

TEST(ProgramGenerator, InternalTargetsResolve) {
  ProgramGenerator gen(test_spec(), util::Rng(4));
  asmx::ParseResult r = asmx::parse_listing(gen.generate_listing());
  asmx::TaggingPass pass;
  pass.run(r.program);
  // Only external (0x77e80000-style) call targets may be unresolved; every
  // jump target must land on a real instruction. Count jumps with no
  // branch_to: should be zero.
  for (const auto& inst : r.program.instructions) {
    if (inst.opclass == asmx::OpcodeClass::ConditionalJump ||
        inst.opclass == asmx::OpcodeClass::UnconditionalJump) {
      EXPECT_TRUE(inst.branch_to.has_value())
          << "unresolved jump at 0x" << std::hex << inst.addr;
    }
  }
}

TEST(ProgramGenerator, ProducesNontrivialCfg) {
  ProgramGenerator gen(test_spec(), util::Rng(5));
  auto acfg = acfg::extract_acfg_from_listing(gen.generate_listing());
  EXPECT_GE(acfg.num_vertices(), 8u);
  EXPECT_GE(acfg.num_edges(), 6u);
}

TEST(ProgramGenerator, LoopProbabilityCreatesCycles) {
  FamilySpec loopy = test_spec();
  loopy.branch_prob = 0.9;
  loopy.loop_prob = 0.9;
  ProgramGenerator gen(loopy, util::Rng(6));
  int cyclic = 0;
  for (int i = 0; i < 5; ++i) {
    auto g = cfg::CfgBuilder::build_from_listing(gen.generate_listing());
    if (cfg::has_cycle(g.adjacency())) ++cyclic;
  }
  EXPECT_GE(cyclic, 4);
}

TEST(ProgramGenerator, OverlapBlendsTowardGeneric) {
  FamilySpec far = test_spec();
  far.block_length_mean = 50.0;
  far.overlap = 1.0;
  FamilySpec blended = blend_with_generic(far);
  EXPECT_NEAR(blended.block_length_mean,
              ProgramGenerator::generic_profile().block_length_mean, 1e-9);
  far.overlap = 0.0;
  EXPECT_NEAR(blend_with_generic(far).block_length_mean, 50.0, 1e-9);
}

TEST(ProgramGenerator, FamilySpecsShiftAttributeDistributions) {
  // An arithmetic-heavy profile should produce more arithmetic instructions
  // than a mov-heavy profile - the signal the classifier learns.
  FamilySpec arith = test_spec();
  arith.arith_weight = 5.0;
  arith.mov_weight = 0.1;
  FamilySpec movy = test_spec();
  movy.arith_weight = 0.1;
  movy.mov_weight = 5.0;
  auto count_class = [](const std::string& listing, asmx::OpcodeClass cls) {
    asmx::ParseResult r = asmx::parse_listing(listing);
    std::size_t n = 0;
    for (const auto& inst : r.program.instructions) {
      if (inst.opclass == cls) ++n;
    }
    return n;
  };
  ProgramGenerator ga(arith, util::Rng(8));
  ProgramGenerator gm(movy, util::Rng(8));
  std::size_t arith_in_a = 0, arith_in_m = 0;
  for (int i = 0; i < 3; ++i) {
    arith_in_a += count_class(ga.generate_listing(), asmx::OpcodeClass::Arithmetic);
    arith_in_m += count_class(gm.generate_listing(), asmx::OpcodeClass::Arithmetic);
  }
  EXPECT_GT(arith_in_a, 2 * arith_in_m);
}

TEST(FamilySpecs, MskcfgMatchesPaperCounts) {
  const auto specs = mskcfg_family_specs();
  ASSERT_EQ(specs.size(), 9u);
  std::size_t total = 0;
  for (const auto& s : specs) total += s.corpus_count;
  EXPECT_EQ(total, 10868u);  // the Kaggle training set size (Fig. 7)
  EXPECT_EQ(specs[0].name, "Ramnit");
  EXPECT_EQ(specs[2].name, "Kelihos_ver3");
  EXPECT_EQ(specs[2].corpus_count, 2942u);
  EXPECT_EQ(specs[4].name, "Simda");
  EXPECT_EQ(specs[4].corpus_count, 42u);
}

TEST(FamilySpecs, YancfgMatchesPaperShape) {
  const auto specs = yancfg_family_specs();
  ASSERT_EQ(specs.size(), 13u);
  std::size_t total = 0;
  for (const auto& s : specs) total += s.corpus_count;
  EXPECT_EQ(total, 16351u);  // Fig. 8 total
  // The hard families carry high overlap (the mechanism behind their low F1).
  for (const auto& s : specs) {
    if (s.name == "Ldpinch" || s.name == "Sdbot" || s.name == "Rbot") {
      EXPECT_GE(s.overlap, 0.45) << s.name;
    }
    if (s.name == "Koobface" || s.name == "Swizzor") {
      EXPECT_LE(s.overlap, 0.05) << s.name;
    }
  }
}

}  // namespace
}  // namespace magic::data
