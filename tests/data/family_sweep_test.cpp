// Parameterized sweep over all 22 family profiles (9 MSKCFG + 13 YANCFG):
// every family's generator must produce parseable, CFG-valid, deterministic
// samples whose structure scales with its spec.

#include <tuple>

#include <gtest/gtest.h>

#include "acfg/attributes.hpp"
#include "acfg/extractor.hpp"
#include "asmx/parser.hpp"
#include "cfg/cfg_builder.hpp"
#include "cfg/graph_algo.hpp"
#include "data/corpus.hpp"
#include "data/program_generator.hpp"

namespace magic::data {
namespace {

std::vector<FamilySpec> all_family_specs() {
  auto specs = mskcfg_family_specs();
  const auto yan = yancfg_family_specs();
  specs.insert(specs.end(), yan.begin(), yan.end());
  return specs;
}

class FamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(FamilySweep, GeneratesValidParseableSamples) {
  const auto specs = all_family_specs();
  const auto& spec = specs[static_cast<std::size_t>(GetParam())];
  ProgramGenerator gen(spec, util::Rng(1000 + GetParam()));
  for (int v = 0; v < 3; ++v) {
    const std::string listing = gen.generate_listing();
    asmx::ParseResult r = asmx::parse_listing(listing);
    EXPECT_TRUE(r.diagnostics.empty()) << spec.name;
    EXPECT_GT(r.program.instructions.size(), 5u) << spec.name;
  }
}

TEST_P(FamilySweep, AcfgIsStructurallyValid) {
  const auto specs = all_family_specs();
  const auto& spec = specs[static_cast<std::size_t>(GetParam())];
  ProgramGenerator gen(spec, util::Rng(2000 + GetParam()));
  acfg::Acfg a = acfg::extract_acfg_from_listing(gen.generate_listing());
  EXPECT_NO_THROW(a.validate());
  EXPECT_GT(a.num_vertices(), 1u) << spec.name;
  EXPECT_GT(a.num_edges(), 0u) << spec.name;
  // Every vertex's offspring channel equals its out-degree.
  for (std::size_t i = 0; i < a.num_vertices(); ++i) {
    EXPECT_EQ(a.attributes[i * acfg::kNumChannels + acfg::kOffspring],
              static_cast<double>(a.out_edges[i].size()));
  }
}

TEST_P(FamilySweep, DeterministicPerSeed) {
  const auto specs = all_family_specs();
  const auto& spec = specs[static_cast<std::size_t>(GetParam())];
  ProgramGenerator a(spec, util::Rng(42));
  ProgramGenerator b(spec, util::Rng(42));
  EXPECT_EQ(a.generate_listing(), b.generate_listing());
}

TEST_P(FamilySweep, StructureTracksProfileScale) {
  // The mean block count over a few samples should be in the right
  // ballpark of functions_mean x blocks_per_function (post-overlap blend),
  // confirming the concentrated count distributions hold per family.
  const auto specs = all_family_specs();
  const FamilySpec spec = specs[static_cast<std::size_t>(GetParam())];
  const FamilySpec eff = blend_with_generic(spec);
  ProgramGenerator gen(spec, util::Rng(3000 + GetParam()));
  double total_blocks = 0.0;
  const int samples = 5;
  for (int v = 0; v < samples; ++v) {
    auto g = cfg::CfgBuilder::build_from_listing(gen.generate_listing());
    total_blocks += static_cast<double>(g.num_blocks());
  }
  const double mean_blocks = total_blocks / samples;
  const double planned = eff.functions_mean * std::max(2.0, eff.blocks_per_function);
  // CFG blocks differ from planned blocks (merging of fall-through runs,
  // splitting at branch targets), so allow a generous factor.
  EXPECT_GT(mean_blocks, 0.3 * planned) << spec.name;
  EXPECT_LT(mean_blocks, 3.0 * planned) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep, ::testing::Range(0, 22),
                         [](const ::testing::TestParamInfo<int>& info) {
                           const auto specs = all_family_specs();
                           std::string name =
                               specs[static_cast<std::size_t>(info.param)].name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name + "_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace magic::data
