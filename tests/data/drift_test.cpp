#include <gtest/gtest.h>

#include "data/corpus.hpp"

namespace magic::data {
namespace {

TEST(Drift, ZeroDriftIsIdentity) {
  const auto base = mskcfg_family_specs();
  const auto drifted = drift_family_specs(base, 0.0);
  ASSERT_EQ(drifted.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(drifted[i].jitter, base[i].jitter);
    EXPECT_EQ(drifted[i].junk_prob, base[i].junk_prob);
    EXPECT_EQ(drifted[i].overlap, base[i].overlap);
    EXPECT_EQ(drifted[i].functions_mean, base[i].functions_mean);
  }
}

TEST(Drift, IncreasesPolymorphismKnobs) {
  const auto base = yancfg_family_specs();
  const auto drifted = drift_family_specs(base, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_GT(drifted[i].jitter, base[i].jitter) << base[i].name;
    EXPECT_GT(drifted[i].junk_prob, base[i].junk_prob) << base[i].name;
    EXPECT_GE(drifted[i].overlap, base[i].overlap) << base[i].name;
    EXPECT_GT(drifted[i].functions_mean, base[i].functions_mean) << base[i].name;
  }
}

TEST(Drift, MonotoneInDriftLevel) {
  const auto base = mskcfg_family_specs();
  const auto half = drift_family_specs(base, 0.5);
  const auto full = drift_family_specs(base, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_LE(half[i].junk_prob, full[i].junk_prob);
    EXPECT_LE(half[i].jitter, full[i].jitter);
  }
}

TEST(Drift, ClampsOutOfRangeInput) {
  const auto base = mskcfg_family_specs();
  const auto over = drift_family_specs(base, 5.0);
  const auto exact = drift_family_specs(base, 1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(over[i].junk_prob, exact[i].junk_prob);
  }
  const auto under = drift_family_specs(base, -1.0);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(under[i].jitter, base[i].jitter);
  }
}

TEST(Drift, RespectsCaps) {
  auto base = mskcfg_family_specs();
  for (auto& s : base) {
    s.junk_prob = 0.59;
    s.overlap = 0.9;
    s.jitter = 0.49;
  }
  const auto drifted = drift_family_specs(base, 1.0);
  for (const auto& s : drifted) {
    EXPECT_LE(s.junk_prob, 0.6);
    EXPECT_LE(s.overlap, 1.0);
    EXPECT_LE(s.jitter, 0.5);
  }
}

TEST(Drift, DriftedCorpusStillGeneratesValidSamples) {
  util::ThreadPool pool(2);
  const auto drifted = drift_family_specs(mskcfg_family_specs(), 1.0);
  Dataset d = generate_corpus(drifted, 0.002, 99, pool);
  EXPECT_GE(d.size(), 90u);
  for (const auto& s : d.samples) {
    EXPECT_NO_THROW(s.validate());
    EXPECT_GT(s.num_vertices(), 0u);
  }
}

}  // namespace
}  // namespace magic::data
