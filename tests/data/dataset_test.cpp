#include "data/dataset.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace magic::data {
namespace {

// A synthetic dataset with trivial one-vertex ACFGs and a given label plan.
Dataset tiny_dataset(const std::vector<int>& labels, std::size_t families) {
  Dataset d;
  for (std::size_t f = 0; f < families; ++f) {
    d.family_names.push_back("fam" + std::to_string(f));
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    acfg::Acfg a;
    a.out_edges = {{}};
    a.attributes = tensor::Tensor({1, 2});
    a.attributes[0] = static_cast<double>(i);
    a.label = labels[i];
    d.samples.push_back(std::move(a));
  }
  return d;
}

TEST(Dataset, FamilyCounts) {
  Dataset d = tiny_dataset({0, 1, 1, 2, 2, 2}, 3);
  const auto counts = d.family_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);
}

TEST(Dataset, SubsetCopiesSelected) {
  Dataset d = tiny_dataset({0, 1, 0, 1}, 2);
  Dataset s = d.subset({1, 3});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.samples[0].label, 1);
  EXPECT_EQ(s.family_names, d.family_names);
}

TEST(Dataset, VertexPercentiles) {
  Dataset d;
  d.family_names = {"a"};
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    acfg::Acfg a;
    a.out_edges.assign(n, {});
    a.attributes = tensor::Tensor({n, 1});
    a.label = 0;
    d.samples.push_back(std::move(a));
  }
  EXPECT_EQ(d.vertex_count_percentile(0.0), 1u);
  EXPECT_EQ(d.vertex_count_percentile(100.0), 10u);
  const std::size_t median = d.vertex_count_percentile(50.0);
  EXPECT_GE(median, 5u);
  EXPECT_LE(median, 6u);
  EXPECT_NEAR(d.mean_vertices(), 5.5, 1e-12);
}

TEST(StratifiedKFold, PartitionsAreDisjointAndComplete) {
  Dataset d = tiny_dataset(std::vector<int>(50, 0), 1);
  for (std::size_t i = 0; i < 50; ++i) d.samples[i].label = static_cast<int>(i % 5);
  for (auto& name : d.family_names) (void)name;
  d.family_names = {"a", "b", "c", "d", "e"};
  util::Rng rng(1);
  const auto folds = stratified_k_fold(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all_validation;
  for (const auto& f : folds) {
    for (std::size_t i : f.validation) {
      EXPECT_TRUE(all_validation.insert(i).second) << "index in two folds";
    }
    // Train and validation are disjoint and together cover the dataset.
    std::set<std::size_t> train(f.train.begin(), f.train.end());
    for (std::size_t i : f.validation) EXPECT_EQ(train.count(i), 0u);
    EXPECT_EQ(f.train.size() + f.validation.size(), d.size());
  }
  EXPECT_EQ(all_validation.size(), d.size());
}

TEST(StratifiedKFold, PreservesFamilyRatios) {
  // 40 of family 0, 10 of family 1 -> each of 5 folds gets 8 + 2.
  std::vector<int> labels(50, 0);
  std::fill(labels.begin() + 40, labels.end(), 1);
  Dataset d = tiny_dataset(labels, 2);
  util::Rng rng(2);
  const auto folds = stratified_k_fold(d, 5, rng);
  for (const auto& f : folds) {
    std::size_t fam0 = 0, fam1 = 0;
    for (std::size_t i : f.validation) {
      (d.samples[i].label == 0 ? fam0 : fam1) += 1;
    }
    EXPECT_EQ(fam0, 8u);
    EXPECT_EQ(fam1, 2u);
  }
}

TEST(StratifiedKFold, SmallFamiliesRepresentedSomewhere) {
  std::vector<int> labels(20, 0);
  labels[7] = 1;  // a single-sample family
  Dataset d = tiny_dataset(labels, 2);
  util::Rng rng(3);
  const auto folds = stratified_k_fold(d, 5, rng);
  std::size_t seen = 0;
  for (const auto& f : folds) {
    for (std::size_t i : f.validation) {
      if (d.samples[i].label == 1) ++seen;
    }
  }
  EXPECT_EQ(seen, 1u);
}

TEST(StratifiedKFold, RejectsBadK) {
  Dataset d = tiny_dataset({0, 0}, 1);
  util::Rng rng(4);
  EXPECT_THROW(stratified_k_fold(d, 1, rng), std::invalid_argument);
}

TEST(StratifiedKFold, RejectsInvalidLabel) {
  Dataset d = tiny_dataset({0, 5}, 2);  // label 5 out of range
  util::Rng rng(5);
  EXPECT_THROW(stratified_k_fold(d, 2, rng), std::invalid_argument);
}

TEST(StratifiedHoldout, SplitsByFraction) {
  std::vector<int> labels(100, 0);
  std::fill(labels.begin() + 60, labels.end(), 1);
  Dataset d = tiny_dataset(labels, 2);
  util::Rng rng(6);
  const FoldSplit split = stratified_holdout(d, 0.8, rng);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.validation.size(), 20u);
  std::size_t fam1_train = 0;
  for (std::size_t i : split.train) {
    if (d.samples[i].label == 1) ++fam1_train;
  }
  EXPECT_EQ(fam1_train, 32u);  // 80% of 40
}

TEST(StratifiedHoldout, RejectsDegenerateFraction) {
  Dataset d = tiny_dataset({0, 0}, 1);
  util::Rng rng(7);
  EXPECT_THROW(stratified_holdout(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(stratified_holdout(d, 1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace magic::data
