#include "data/corpus.hpp"

#include <gtest/gtest.h>

namespace magic::data {
namespace {

TEST(Corpus, GeneratesScaledFamilySizes) {
  util::ThreadPool pool(4);
  Dataset d = mskcfg_like_corpus(0.01, 1, pool);
  EXPECT_EQ(d.num_families(), 9u);
  const auto counts = d.family_counts();
  // scale 0.01: Kelihos_ver3 2942 -> ~29; Simda 42 -> min floor of 10.
  EXPECT_NEAR(static_cast<double>(counts[2]), 29.0, 2.0);
  EXPECT_EQ(counts[4], 10u);
  EXPECT_EQ(d.size(), d.samples.size());
}

TEST(Corpus, AllSamplesLabeledAndValid) {
  util::ThreadPool pool(4);
  Dataset d = yancfg_like_corpus(0.005, 2, pool);
  EXPECT_EQ(d.num_families(), 13u);
  for (const auto& s : d.samples) {
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 13);
    EXPECT_GT(s.num_vertices(), 0u);
    EXPECT_NO_THROW(s.validate());
    EXPECT_FALSE(s.id.empty());
  }
}

TEST(Corpus, DeterministicForSeed) {
  util::ThreadPool pool(2);
  Dataset a = mskcfg_like_corpus(0.005, 99, pool);
  Dataset b = mskcfg_like_corpus(0.005, 99, pool);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].label, b.samples[i].label);
    EXPECT_TRUE(tensor::allclose(a.samples[i].attributes, b.samples[i].attributes, 0.0));
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  util::ThreadPool pool(2);
  Dataset a = mskcfg_like_corpus(0.005, 1, pool);
  Dataset b = mskcfg_like_corpus(0.005, 2, pool);
  ASSERT_EQ(a.size(), b.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = !a.samples[i].attributes.same_shape(b.samples[i].attributes) ||
               !tensor::allclose(a.samples[i].attributes, b.samples[i].attributes, 0.0);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Corpus, ListingsCarryLabels) {
  const auto listings = generate_listings(mskcfg_family_specs(), 0.002, 3);
  EXPECT_GE(listings.size(), 9u * 10u);  // min 10 per family
  for (const auto& [text, label] : listings) {
    EXPECT_FALSE(text.empty());
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 9);
  }
}

}  // namespace
}  // namespace magic::data
