#include "tensor/sparse.hpp"

#include <gtest/gtest.h>

namespace magic::tensor {
namespace {

TEST(SparseMatrix, ToDenseMatchesTriplets) {
  SparseMatrix m(2, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {1, 2, 4.0}});
  Tensor d = m.to_dense();
  EXPECT_EQ(d.at(0, 1), 2.0);
  EXPECT_EQ(d.at(1, 0), -1.0);
  EXPECT_EQ(d.at(1, 2), 4.0);
  EXPECT_EQ(d.at(0, 0), 0.0);
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(SparseMatrix, DuplicateTripletsAccumulate) {
  SparseMatrix m(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.at(0, 0), 4.0);
}

TEST(SparseMatrix, OutOfRangeTripletThrows) {
  EXPECT_THROW(SparseMatrix(2, 2, {{2, 0, 1.0}}), std::out_of_range);
  EXPECT_THROW(SparseMatrix(2, 2, {{0, 2, 1.0}}), std::out_of_range);
}

TEST(SparseMatrix, EmptyRowsHandled) {
  SparseMatrix m(4, 4, {{3, 3, 1.0}});
  Tensor x = Tensor::ones({4, 2});
  Tensor y = m.multiply(x);
  EXPECT_EQ(y.at(0, 0), 0.0);
  EXPECT_EQ(y.at(3, 1), 1.0);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  util::Rng rng(2);
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < 6; ++i) {
    triplets.push_back({static_cast<std::size_t>(rng.uniform_int(0, 4)),
                        static_cast<std::size_t>(rng.uniform_int(0, 4)),
                        rng.uniform(-1.0, 1.0)});
  }
  SparseMatrix m(5, 5, triplets);
  Tensor x = Tensor::uniform({5, 3}, rng, -1, 1);
  EXPECT_TRUE(allclose(m.multiply(x), matmul(m.to_dense(), x), 1e-12));
}

TEST(SparseMatrix, MultiplyTransposedMatchesDense) {
  util::Rng rng(9);
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < 8; ++i) {
    triplets.push_back({static_cast<std::size_t>(rng.uniform_int(0, 3)),
                        static_cast<std::size_t>(rng.uniform_int(0, 5)),
                        rng.uniform(-1.0, 1.0)});
  }
  SparseMatrix m(4, 6, triplets);
  Tensor x = Tensor::uniform({4, 2}, rng, -1, 1);
  EXPECT_TRUE(allclose(m.multiply_transposed(x),
                       matmul(transpose(m.to_dense()), x), 1e-12));
}

TEST(SparseMatrix, MultiplyRejectsShapeMismatch) {
  SparseMatrix m(2, 3, {});
  EXPECT_THROW(m.multiply(Tensor::zeros({2, 1})), std::invalid_argument);
  EXPECT_THROW(m.multiply_transposed(Tensor::zeros({3, 1})), std::invalid_argument);
}

TEST(SparseMatrix, AtLookup) {
  SparseMatrix m(2, 2, {{0, 1, 3.0}});
  EXPECT_EQ(m.at(0, 1), 3.0);
  EXPECT_EQ(m.at(1, 1), 0.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

// --- propagation operator D^-1 (A + I) ------------------------------------

TEST(PropagationOperator, RowsSumToOne) {
  // Graph: 0 -> {1, 2}, 1 -> {2}, 2 -> {}.
  std::vector<std::vector<std::size_t>> adj = {{1, 2}, {2}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  Tensor d = p.to_dense();
  for (std::size_t i = 0; i < 3; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < 3; ++j) row_sum += d.at(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-12);
  }
}

TEST(PropagationOperator, WeightsAreInverseAugmentedDegree) {
  std::vector<std::vector<std::size_t>> adj = {{1, 2}, {2}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  // Vertex 0: degree_hat = 3 -> each weight 1/3 (self + 2 neighbors).
  EXPECT_NEAR(p.at(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p.at(0, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p.at(0, 2), 1.0 / 3.0, 1e-12);
  // Vertex 2: isolated sink -> self weight 1.
  EXPECT_NEAR(p.at(2, 2), 1.0, 1e-12);
}

TEST(PropagationOperator, ConstantChannelIsFixedPoint) {
  // Row-stochasticity implies P * 1 = 1: a constant attribute channel stays
  // constant before weight mixing (DESIGN.md invariant).
  std::vector<std::vector<std::size_t>> adj = {{1}, {2, 3}, {0}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  Tensor ones = Tensor::ones({4, 1});
  EXPECT_TRUE(allclose(p.multiply(ones), ones, 1e-12));
}

TEST(PropagationOperator, SelfLoopGraphIdentityRows) {
  std::vector<std::vector<std::size_t>> adj = {{}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  EXPECT_TRUE(allclose(p.to_dense(), Tensor::from_rows({{1, 0}, {0, 1}}), 1e-12));
}

TEST(PropagationOperator, RejectsOutOfRangeEdge) {
  std::vector<std::vector<std::size_t>> adj = {{5}};
  EXPECT_THROW(SparseMatrix::propagation_operator(adj), std::out_of_range);
}

TEST(AugmentedAdjacency, UnnormalizedEntriesAreOnes) {
  std::vector<std::vector<std::size_t>> adj = {{1, 2}, {2}, {}};
  SparseMatrix a = SparseMatrix::augmented_adjacency(adj);
  EXPECT_EQ(a.at(0, 0), 1.0);
  EXPECT_EQ(a.at(0, 1), 1.0);
  EXPECT_EQ(a.at(0, 2), 1.0);
  EXPECT_EQ(a.at(1, 0), 0.0);
  EXPECT_EQ(a.at(2, 2), 1.0);
  EXPECT_THROW(SparseMatrix::augmented_adjacency({{9}}), std::out_of_range);
}

TEST(AugmentedAdjacency, RelatesToPropagationByDegreeScaling) {
  std::vector<std::vector<std::size_t>> adj = {{1}, {0, 1}};
  // Vertex 1 has a self-edge in the graph plus the augmentation self-loop.
  SparseMatrix a = SparseMatrix::augmented_adjacency(adj);
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  EXPECT_NEAR(p.at(0, 1) * 2.0, a.at(0, 1), 1e-12);   // deg_hat(0) = 2
  EXPECT_NEAR(p.at(1, 0) * 3.0, a.at(1, 0), 1e-12);   // deg_hat(1) = 3
}

TEST(PropagationOperator, ParallelEdgesIncreaseWeight) {
  // Two parallel edges 0 -> 1: A_hat row = [1, 2], deg_hat = 3.
  std::vector<std::vector<std::size_t>> adj = {{1, 1}, {}};
  SparseMatrix p = SparseMatrix::propagation_operator(adj);
  EXPECT_NEAR(p.at(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(p.at(0, 1), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace magic::tensor
