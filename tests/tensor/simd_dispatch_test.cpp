// Dispatch-layer tests: level naming/parsing, hardware-probe consistency,
// explicit overrides (including the published obs gauge), and the MAGIC_SIMD
// environment override. The env test only asserts when MAGIC_SIMD is set; a
// dedicated ctest entry (tests/CMakeLists.txt) runs it with
// MAGIC_SIMD=scalar so the forced-fallback path is exercised on every run.

#include "tensor/simd/dispatch.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "tensor/simd/kernels.hpp"

namespace magic::tensor::simd {
namespace {

double simd_gauge() {
  return obs::MetricsRegistry::global().gauge("tensor.simd_level").value();
}

TEST(SimdDispatch, LevelNamesRoundTripThroughParse) {
  EXPECT_STREQ(level_name(SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(level_name(SimdLevel::Avx2), "avx2");
  EXPECT_EQ(parse_level("scalar"), SimdLevel::Scalar);
  if (avx2_available()) {
    EXPECT_EQ(parse_level("avx2"), SimdLevel::Avx2);
  } else {
    EXPECT_THROW(parse_level("avx2"), std::invalid_argument);
  }
}

TEST(SimdDispatch, EmptyNativeAndAutoResolveToTheProbe) {
  EXPECT_EQ(parse_level(""), detected_level());
  EXPECT_EQ(parse_level("native"), detected_level());
  EXPECT_EQ(parse_level("auto"), detected_level());
}

TEST(SimdDispatch, UnknownLevelIsRejected) {
  EXPECT_THROW(parse_level("avx512"), std::invalid_argument);
  EXPECT_THROW(parse_level("SCALAR"), std::invalid_argument);
  EXPECT_THROW(parse_level("fastest"), std::invalid_argument);
}

TEST(SimdDispatch, ProbeAndAvailabilityAgree) {
  // detected_level() is Avx2 exactly when the AVX2 table exists AND the CPU
  // reports the ISA; the table pointer must be consistent with that.
  EXPECT_EQ(detected_level() == SimdLevel::Avx2, avx2_available());
  if (avx2_available()) {
    EXPECT_NE(avx2_kernels(), nullptr);
  }
}

TEST(SimdDispatch, SetLevelSwitchesTableAndPublishesGauge) {
  const SimdLevel original = active_level();

  set_level(SimdLevel::Scalar);
  EXPECT_EQ(active_level(), SimdLevel::Scalar);
  EXPECT_EQ(&kernels(), &scalar_kernels());
  EXPECT_EQ(simd_gauge(), 0.0);

  if (avx2_available()) {
    set_level(SimdLevel::Avx2);
    EXPECT_EQ(active_level(), SimdLevel::Avx2);
    EXPECT_EQ(&kernels(), avx2_kernels());
    EXPECT_EQ(simd_gauge(), 1.0);
  }

  set_level(original);
  EXPECT_EQ(active_level(), original);
}

TEST(SimdDispatch, SetLevelRejectsAvx2WhenUnavailable) {
  if (avx2_available()) {
    GTEST_SKIP() << "AVX2 is available here; rejection path not reachable";
  }
  EXPECT_THROW(set_level(SimdLevel::Avx2), std::invalid_argument);
  EXPECT_EQ(&kernels(), &scalar_kernels());
}

TEST(SimdDispatch, EnvOverridePinsTheLevel) {
  // Asserts only when MAGIC_SIMD is set in the environment (the dedicated
  // simd_forced_scalar ctest entry sets MAGIC_SIMD=scalar and filters to
  // this test, so active_level()'s first resolution sees the override).
  const char* env = std::getenv("MAGIC_SIMD");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "MAGIC_SIMD not set; run via the simd_forced_scalar "
                    "ctest entry to exercise the override";
  }
  const SimdLevel want = parse_level(env);
  EXPECT_EQ(active_level(), want);
  if (want == SimdLevel::Scalar) {
    EXPECT_EQ(&kernels(), &scalar_kernels());
    EXPECT_EQ(simd_gauge(), 0.0);
  }
}

}  // namespace
}  // namespace magic::tensor::simd
