#include <cmath>

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace magic::tensor {
namespace {

TEST(TensorOps, MatmulMatchesHandComputation) {
  Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor b = Tensor::from_rows({{5, 6}, {7, 8}});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0);
  EXPECT_EQ(c.at(0, 1), 22.0);
  EXPECT_EQ(c.at(1, 0), 43.0);
  EXPECT_EQ(c.at(1, 1), 50.0);
}

TEST(TensorOps, MatmulNonSquare) {
  Tensor a = Tensor::from_rows({{1, 0, 2}});       // 1x3
  Tensor b = Tensor::from_rows({{1}, {2}, {3}});   // 3x1
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.dim(0), 1u);
  EXPECT_EQ(c.dim(1), 1u);
  EXPECT_EQ(c[0], 7.0);
}

TEST(TensorOps, MatmulRejectsBadShapes) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({2, 3});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  EXPECT_THROW(matmul(a.reshape({6}), a), std::invalid_argument);
}

TEST(TensorOps, MatmulIdentity) {
  util::Rng rng(3);
  Tensor a = Tensor::uniform({4, 4}, rng, -1, 1);
  Tensor eye = Tensor::zeros({4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0;
  EXPECT_TRUE(allclose(matmul(a, eye), a, 1e-12));
  EXPECT_TRUE(allclose(matmul(eye, a), a, 1e-12));
}

TEST(TensorOps, TransposeInvolution) {
  util::Rng rng(4);
  Tensor a = Tensor::uniform({3, 5}, rng, -1, 1);
  EXPECT_TRUE(allclose(transpose(transpose(a)), a, 0.0));
  EXPECT_EQ(transpose(a).dim(0), 5u);
  EXPECT_EQ(transpose(a).at(4, 2), a.at(2, 4));
}

TEST(TensorOps, SumMeanMaxArgmaxNorm) {
  Tensor t = Tensor::from_rows({{1, -2}, {3, 0}});
  EXPECT_EQ(sum(t), 2.0);
  EXPECT_EQ(mean(t), 0.5);
  EXPECT_EQ(max(t), 3.0);
  EXPECT_EQ(argmax(t), 2u);
  EXPECT_NEAR(norm(t), std::sqrt(14.0), 1e-12);
}

TEST(TensorOps, ArgmaxFirstOnTies) {
  Tensor t(Shape{3}, {5.0, 5.0, 1.0});
  EXPECT_EQ(argmax(t), 0u);
}

TEST(TensorOps, RowExtraction) {
  Tensor t = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor r = row(t, 1);
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_EQ(r.at(1), 4.0);
  EXPECT_THROW(row(t, 2), std::out_of_range);
}

TEST(TensorOps, ConcatCols) {
  Tensor a = Tensor::from_rows({{1}, {2}});
  Tensor b = Tensor::from_rows({{3, 4}, {5, 6}});
  Tensor c = concat_cols({a, b});
  EXPECT_EQ(c.dim(0), 2u);
  EXPECT_EQ(c.dim(1), 3u);
  EXPECT_EQ(c.at(0, 0), 1.0);
  EXPECT_EQ(c.at(0, 2), 4.0);
  EXPECT_EQ(c.at(1, 1), 5.0);
}

TEST(TensorOps, ConcatColsRejectsRowMismatch) {
  EXPECT_THROW(concat_cols({Tensor::zeros({2, 1}), Tensor::zeros({3, 1})}),
               std::invalid_argument);
}

TEST(TensorOps, ConcatRows) {
  Tensor a = Tensor::from_rows({{1, 2}});
  Tensor b = Tensor::from_rows({{3, 4}, {5, 6}});
  Tensor c = concat_rows({a, b});
  EXPECT_EQ(c.dim(0), 3u);
  EXPECT_EQ(c.at(2, 1), 6.0);
}

TEST(TensorOps, MapAppliesElementwise) {
  Tensor t = Tensor::from_rows({{1, 4}});
  Tensor sq = map(t, [](double x) { return x * x; });
  EXPECT_EQ(sq[1], 16.0);
}

TEST(TensorOps, AllcloseToleranceBehaviour) {
  Tensor a = Tensor::from_rows({{1.0}});
  Tensor b = Tensor::from_rows({{1.0 + 1e-10}});
  EXPECT_TRUE(allclose(a, b, 1e-9));
  EXPECT_FALSE(allclose(a, b, 1e-11));
  EXPECT_FALSE(allclose(a, Tensor::zeros({2, 1})));
}

TEST(TensorOps, BinaryOperators) {
  Tensor a = Tensor::from_rows({{1, 2}});
  Tensor b = Tensor::from_rows({{3, 5}});
  EXPECT_EQ((a + b)[1], 7.0);
  EXPECT_EQ((b - a)[0], 2.0);
  EXPECT_EQ((a * 3.0)[1], 6.0);
  EXPECT_EQ((2.0 * b)[0], 6.0);
  EXPECT_EQ(hadamard(a, b)[1], 10.0);
}

}  // namespace
}  // namespace magic::tensor
