// Kernel-equivalence tests for the blocked GEMM family: the tiled matmul and
// the transpose-free matmul_tn / matmul_nt variants must match a naive
// reference (and each other through tensor::transpose) over edge shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace magic::tensor {
namespace {

// Naive ikj reference: ascending-k accumulation, the order the blocked
// kernels are required to preserve.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out = Tensor::zeros({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double av = a[i * k + kk];
      for (std::size_t j = 0; j < n; ++j) out[i * n + j] += av * b[kk * n + j];
    }
  }
  return out;
}

Tensor random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed,
                     double zero_fraction = 0.0) {
  util::Rng rng(seed);
  Tensor t({rows, cols});
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.uniform() < zero_fraction ? 0.0 : rng.uniform(-2.0, 2.0);
  }
  return t;
}

// Tight relative tolerance rather than bitwise: with -ffp-contract the
// compiler may fuse multiply-adds differently per loop shape, which shifts
// results by a few ULPs between kernels. (Run-to-run determinism of each
// kernel -- what the parallel trainer relies on -- is exact regardless.)
void expect_equal(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_TRUE(got.same_shape(want)) << what << ": shape " << got.describe()
                                    << " vs " << want.describe();
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << what << " at flat index " << i;
  }
}

// Shapes chosen to hit every tail path: 1xN / Nx1, dims that are not
// multiples of the 4-row register block or the 64-wide k tile, and sizes
// straddling one tile boundary.
struct Dims {
  std::size_t m, k, n;
};
const Dims kShapes[] = {{1, 1, 1},  {1, 7, 5},   {5, 1, 7},   {7, 5, 1},
                        {3, 3, 3},  {4, 64, 4},  {5, 65, 3},  {9, 130, 2},
                        {8, 16, 8}, {13, 21, 17}};

TEST(Gemm, TiledMatmulMatchesNaiveReference) {
  for (const auto& d : kShapes) {
    const Tensor a = random_matrix(d.m, d.k, 11 * d.m + d.k);
    const Tensor b = random_matrix(d.k, d.n, 13 * d.k + d.n);
    expect_equal(matmul(a, b), naive_matmul(a, b), "matmul");
  }
}

TEST(Gemm, TiledMatmulMatchesNaiveOnZeroHeavyRows) {
  // Post-ReLU activations are ~half zeros; the zero-skip must not change
  // results. Includes fully-zero rows (the 4-row skip fast path).
  for (const auto& d : kShapes) {
    Tensor a = random_matrix(d.m, d.k, 3 * d.m + d.k, 0.6);
    for (std::size_t j = 0; j < d.k; ++j) a[0 * d.k + j] = 0.0;
    const Tensor b = random_matrix(d.k, d.n, 17 * d.k + d.n, 0.3);
    expect_equal(matmul(a, b), naive_matmul(a, b), "matmul zero-heavy");
  }
}

TEST(Gemm, MatmulTnMatchesTransposeThenMatmul) {
  for (const auto& d : kShapes) {
    // a is (k x m): matmul_tn(a, b) == matmul(a^T, b).
    const Tensor a = random_matrix(d.k, d.m, 5 * d.m + d.k, 0.4);
    const Tensor b = random_matrix(d.k, d.n, 7 * d.k + d.n);
    expect_equal(matmul_tn(a, b), matmul(transpose(a), b), "matmul_tn");
  }
}

TEST(Gemm, MatmulNtMatchesMatmulThenTranspose) {
  for (const auto& d : kShapes) {
    // b is (n x k): matmul_nt(a, b) == matmul(a, b^T).
    const Tensor a = random_matrix(d.m, d.k, 23 * d.m + d.k, 0.4);
    const Tensor b = random_matrix(d.n, d.k, 29 * d.k + d.n);
    expect_equal(matmul_nt(a, b), matmul(a, transpose(b)), "matmul_nt");
  }
}

TEST(Gemm, IntoVariantsReuseOutputStorage) {
  Tensor out;
  const Tensor a = random_matrix(6, 9, 41);
  const Tensor b = random_matrix(9, 4, 42);
  matmul_into(out, a, b);
  expect_equal(out, naive_matmul(a, b), "matmul_into");
  const double* storage = out.data();
  // Same result shape: the buffer must be reused, not reallocated.
  matmul_into(out, a, b);
  EXPECT_EQ(out.data(), storage);
  expect_equal(out, naive_matmul(a, b), "matmul_into reuse");
  // Shape change (6x4 -> 9x9 via tn) still yields a correct result.
  matmul_tn_into(out, a, a);
  expect_equal(out, matmul(transpose(a), a), "matmul_tn_into");
}

TEST(Gemm, RejectsBadShapes) {
  const Tensor a = random_matrix(3, 4, 1);
  const Tensor b = random_matrix(5, 6, 2);
  const Tensor v({4});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);     // inner mismatch
  EXPECT_THROW(matmul(a, v), std::invalid_argument);     // rank-1 operand
  EXPECT_THROW(matmul_tn(a, b), std::invalid_argument);  // a.dim(0) != b.dim(0)
  EXPECT_THROW(matmul_nt(a, b), std::invalid_argument);  // a.dim(1) != b.dim(1)
}

}  // namespace
}  // namespace magic::tensor
