// Cross-ISA kernel equivalence: every entry of the AVX2+FMA kernel table
// must agree with the portable scalar table to the repo's 1e-12 relative
// GEMM tolerance (AVX2 fuses multiply-adds and splits reductions across
// lanes, which shifts results by ULPs, never more). Shapes are deliberately
// ragged/odd so every vector-tail path runs. All AVX2 legs GTEST_SKIP on
// hardware (or builds) without the AVX2 table.
//
// The tests call scalar_kernels() / avx2_kernels() directly instead of
// flipping set_level(), so they cannot perturb the process-wide dispatch.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/simd/dispatch.hpp"
#include "tensor/simd/kernels.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace magic::tensor::simd {
namespace {

// 64-byte-aligned buffers, same guarantee Tensor storage gives the kernels.
using Buffer = magic::tensor::AlignedVector;

Buffer random_buffer(std::size_t n, std::uint64_t seed, double lo = -2.0,
                     double hi = 2.0) {
  util::Rng rng(seed);
  Buffer b(n);
  for (double& v : b) v = rng.uniform(lo, hi);
  return b;
}

// Same relative tolerance as tests/tensor/gemm_test.cpp.
void expect_close(const Buffer& got, const Buffer& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << what << " at flat index " << i;
      continue;
    }
    const double tol = 1e-12 * std::max(1.0, std::abs(want[i]));
    EXPECT_NEAR(got[i], want[i], tol) << what << " at flat index " << i;
  }
}

void expect_bitwise(const Buffer& got, const Buffer& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << what << " at flat index " << i;
      continue;
    }
    EXPECT_EQ(got[i], want[i]) << what << " at flat index " << i;
  }
}

bool require_avx2() {
  if (!avx2_available()) return false;
  return true;
}

#define SKIP_WITHOUT_AVX2()                                             \
  do {                                                                  \
    if (!require_avx2()) {                                              \
      GTEST_SKIP() << "AVX2 kernels unavailable on this CPU/build";     \
    }                                                                   \
  } while (false)

// Ragged/odd shapes: 1-wide edges, widths straddling the 8-, 4- and 1-lane
// tails, dims off every block multiple.
struct Dims {
  std::size_t m, k, n;
};
const Dims kGemmShapes[] = {{1, 1, 1},   {2, 3, 1},    {1, 7, 5},
                            {3, 5, 7},   {5, 9, 13},   {4, 8, 8},
                            {7, 1, 9},   {13, 21, 17}, {8, 64, 12},
                            {33, 17, 29}, {16, 16, 16}, {9, 130, 31}};

// Element-kernel lengths hitting the 4-lane tail (1..3), exactly one vector,
// vector+tail, and a long run.
const std::size_t kElementSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 31, 64, 257};

TEST(SimdKernels, GemmNnMatchesScalarWithin1e12) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const auto& d : kGemmShapes) {
    const Buffer a = random_buffer(d.m * d.k, 11 * d.m + d.k);
    const Buffer b = random_buffer(d.k * d.n, 13 * d.k + d.n);
    Buffer want(d.m * d.n, 0.0), got(d.m * d.n, 0.0);
    scalar.gemm_nn(want.data(), a.data(), b.data(), d.m, d.k, d.n);
    avx2.gemm_nn(got.data(), a.data(), b.data(), d.m, d.k, d.n);
    expect_close(got, want, "gemm_nn");
  }
}

TEST(SimdKernels, GemmTnMatchesScalarWithin1e12) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const auto& d : kGemmShapes) {
    // a is (k x m): the kernel reads it column-major as a^T.
    const Buffer a = random_buffer(d.k * d.m, 5 * d.m + d.k);
    const Buffer b = random_buffer(d.k * d.n, 7 * d.k + d.n);
    Buffer want(d.m * d.n, 0.0), got(d.m * d.n, 0.0);
    scalar.gemm_tn(want.data(), a.data(), b.data(), d.m, d.k, d.n);
    avx2.gemm_tn(got.data(), a.data(), b.data(), d.m, d.k, d.n);
    expect_close(got, want, "gemm_tn");
  }
}

TEST(SimdKernels, GemmNtMatchesScalarAndFullyOverwrites) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const auto& d : kGemmShapes) {
    const Buffer a = random_buffer(d.m * d.k, 23 * d.m + d.k);
    // b is (n x k): the kernel multiplies by b^T.
    const Buffer b = random_buffer(d.n * d.k, 29 * d.k + d.n);
    // Sentinel prefill: gemm_nt promises a full overwrite, so any surviving
    // sentinel is a bug in either implementation.
    Buffer want(d.m * d.n, 777.0), got(d.m * d.n, -777.0);
    scalar.gemm_nt(want.data(), a.data(), b.data(), d.m, d.k, d.n);
    avx2.gemm_nt(got.data(), a.data(), b.data(), d.m, d.k, d.n);
    for (double v : want) ASSERT_NE(v, 777.0);
    expect_close(got, want, "gemm_nt");
  }
}

// Random CSR over (rows x cols) with ~40% density and some all-zero rows.
struct Csr {
  std::vector<std::size_t> row_ptr, col_idx;
  Buffer values;
  std::size_t rows, cols;
};

Csr random_csr(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Csr m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    const bool empty_row = rng.uniform() < 0.15;  // exercises nnz == 0 rows
    for (std::size_t c = 0; c < cols; ++c) {
      if (!empty_row && rng.uniform() < 0.4) {
        m.col_idx.push_back(c);
        m.values.push_back(rng.uniform(-2.0, 2.0));
      }
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

const Dims kSpmmShapes[] = {  // m = CSR rows, k = CSR cols, n = dense width
    {1, 1, 1}, {3, 5, 7}, {5, 9, 4}, {7, 13, 1}, {9, 6, 19}, {16, 16, 12}};

TEST(SimdKernels, SpmmMatchesScalarIncludingOutStride) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const auto& d : kSpmmShapes) {
    const Csr m = random_csr(d.m, d.k, 31 * d.m + d.n);
    const Buffer dense = random_buffer(d.k * d.n, 37 * d.k + d.n);
    // stride > n: the inference fast path writes a slice of a wider matrix.
    const std::size_t stride = d.n + 3;
    Buffer want(d.m * stride, 0.0), got(d.m * stride, 0.0);
    // Mark the inter-row gap; accumulation must never touch it.
    for (std::size_t r = 0; r < d.m; ++r) {
      for (std::size_t j = d.n; j < stride; ++j) {
        want[r * stride + j] = 555.0;
        got[r * stride + j] = 555.0;
      }
    }
    scalar.spmm(m.row_ptr.data(), m.col_idx.data(), m.values.data(), d.m,
                dense.data(), d.n, want.data(), stride);
    avx2.spmm(m.row_ptr.data(), m.col_idx.data(), m.values.data(), d.m,
              dense.data(), d.n, got.data(), stride);
    for (std::size_t r = 0; r < d.m; ++r) {
      for (std::size_t j = d.n; j < stride; ++j) {
        ASSERT_EQ(got[r * stride + j], 555.0) << "stride gap clobbered";
      }
    }
    expect_close(got, want, "spmm");
  }
}

TEST(SimdKernels, SpmmCallbackFiresPerRowInOrderAndMatchesSpmm) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const auto& d : kSpmmShapes) {
    const Csr m = random_csr(d.m, d.k, 41 * d.m + d.n);
    const Buffer dense = random_buffer(d.k * d.n, 43 * d.k + d.n);
    Buffer plain(d.m * d.n, 0.0);
    scalar.spmm(m.row_ptr.data(), m.col_idx.data(), m.values.data(), d.m,
                dense.data(), d.n, plain.data(), d.n);
    for (const KernelTable* table : {&scalar, &avx2}) {
      Buffer out(d.m * d.n, 0.0);
      std::vector<std::size_t> seen;
      table->spmm_cb(m.row_ptr.data(), m.col_idx.data(), m.values.data(), d.m,
                     dense.data(), d.n, out.data(), d.n,
                     [&](std::size_t row, double* row_data) {
                       EXPECT_EQ(row_data, out.data() + row * d.n);
                       seen.push_back(row);
                     });
      ASSERT_EQ(seen.size(), d.m);
      for (std::size_t r = 0; r < d.m; ++r) EXPECT_EQ(seen[r], r);
      expect_close(out, plain, "spmm_cb");
    }
  }
}

TEST(SimdKernels, SpmmTransposeMatchesScalar) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const auto& d : kSpmmShapes) {
    const Csr m = random_csr(d.m, d.k, 47 * d.m + d.n);
    // dense has one row per CSR row; out has one row per CSR column.
    const Buffer dense = random_buffer(d.m * d.n, 53 * d.k + d.n);
    Buffer want(d.k * d.n, 0.0), got(d.k * d.n, 0.0);
    scalar.spmm_t(m.row_ptr.data(), m.col_idx.data(), m.values.data(), d.m,
                  dense.data(), d.n, want.data());
    avx2.spmm_t(m.row_ptr.data(), m.col_idx.data(), m.values.data(), d.m,
                dense.data(), d.n, got.data());
    expect_close(got, want, "spmm_t");
  }
}

TEST(SimdKernels, ReluForwardAndBackwardAreBitwiseIdentical) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const std::size_t n : kElementSizes) {
    Buffer input = random_buffer(n, 61 * n, -3.0, 3.0);
    input[0] = 0.0;                       // boundary: relu(0) == 0
    if (n > 2) input[1] = -0.0;           // signed zero
    if (n > 4) input[3] = std::numeric_limits<double>::quiet_NaN();

    Buffer want = input, got = input;
    scalar.relu_fwd(want.data(), n);
    avx2.relu_fwd(got.data(), n);
    expect_bitwise(got, want, "relu_fwd");

    // Backward: masking is by sign of the ORIGINAL input; grad through a NaN
    // input must behave identically in both implementations.
    Buffer grad_want = random_buffer(n, 67 * n), grad_got = grad_want;
    scalar.relu_bwd(grad_want.data(), input.data(), n);
    avx2.relu_bwd(grad_got.data(), input.data(), n);
    expect_bitwise(grad_got, grad_want, "relu_bwd");
  }
}

TEST(SimdKernels, TanhFamilyMatchesScalarWithin1e12) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const std::size_t n : kElementSizes) {
    // Mix of the three ranges: tiny (odd-polynomial path), mid (exp
    // identity), saturated (|x| > 19 clamps to +/-1), plus exact zero.
    Buffer input = random_buffer(n, 71 * n, -4.0, 4.0);
    util::Rng rng(73 * n);
    for (std::size_t i = 0; i < n; ++i) {
      const double pick = rng.uniform();
      if (pick < 0.25) input[i] = rng.uniform(-0.009, 0.009);
      else if (pick < 0.4) input[i] = rng.uniform(19.5, 25.0) * (rng.uniform() < 0.5 ? -1.0 : 1.0);
    }
    input[0] = 0.0;

    Buffer want = input, got = input;
    scalar.tanh_fwd(want.data(), n);
    avx2.tanh_fwd(got.data(), n);
    expect_close(got, want, "tanh_fwd");

    // tanh_bwd scales grad by 1 - y^2 from the cached outputs.
    Buffer grad_want = random_buffer(n, 79 * n), grad_got = grad_want;
    scalar.tanh_bwd(grad_want.data(), want.data(), n);
    avx2.tanh_bwd(grad_got.data(), want.data(), n);
    expect_close(grad_got, grad_want, "tanh_bwd");

    // tanh_grad_pre recomputes tanh from the pre-activation.
    Buffer pre_want = random_buffer(n, 83 * n), pre_got = pre_want;
    scalar.tanh_grad_pre(pre_want.data(), input.data(), n);
    avx2.tanh_grad_pre(pre_got.data(), input.data(), n);
    expect_close(pre_got, pre_want, "tanh_grad_pre");
  }
}

TEST(SimdKernels, ExpMatchesScalarWithin1e12) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  for (const std::size_t n : kElementSizes) {
    // exp_fwd's production input is log-probabilities (<= 0); cover those
    // plus moderate positives. (Extreme magnitudes beyond +-700 are
    // implementation-defined at the subnormal edge and never occur here.)
    Buffer input = random_buffer(n, 89 * n, -30.0, 3.0);
    input[0] = 0.0;  // exp(0) == 1 exactly in both
    Buffer want = input, got = input;
    scalar.exp_fwd(want.data(), n);
    avx2.exp_fwd(got.data(), n);
    expect_close(got, want, "exp_fwd");
  }
}

TEST(SimdKernels, LogSoftmaxMatchesScalarWithin1e12) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& scalar = scalar_kernels();
  const KernelTable& avx2 = *avx2_kernels();
  // Class counts below one vector (scalar fallback inside the AVX2 table)
  // and above, with odd tails.
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{7},
                              std::size_t{8}, std::size_t{9}, std::size_t{13},
                              std::size_t{23}, std::size_t{64}}) {
    Buffer logits = random_buffer(n, 97 * n, -6.0, 6.0);
    Buffer want = logits, got = logits;
    scalar.logsoftmax_fwd(want.data(), n);
    avx2.logsoftmax_fwd(got.data(), n);
    expect_close(got, want, "logsoftmax_fwd");

    Buffer grad_want = random_buffer(n, 101 * n), grad_got = grad_want;
    scalar.logsoftmax_bwd(grad_want.data(), want.data(), n);
    avx2.logsoftmax_bwd(grad_got.data(), got.data(), n);
    expect_close(grad_got, grad_want, "logsoftmax_bwd");
  }
}

TEST(SimdKernels, Avx2GemmIsRunToRunBitwiseDeterministic) {
  SKIP_WITHOUT_AVX2();
  const KernelTable& avx2 = *avx2_kernels();
  const Dims d{13, 21, 17};
  const Buffer a = random_buffer(d.m * d.k, 103);
  const Buffer b = random_buffer(d.k * d.n, 107);
  Buffer first(d.m * d.n, 0.0), second(d.m * d.n, 0.0);
  avx2.gemm_nn(first.data(), a.data(), b.data(), d.m, d.k, d.n);
  avx2.gemm_nn(second.data(), a.data(), b.data(), d.m, d.k, d.n);
  expect_bitwise(second, first, "gemm_nn repeat");
}

}  // namespace
}  // namespace magic::tensor::simd
