#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace magic::tensor {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0], 0.0);
}

TEST(Tensor, ZerosShapeAndContents) {
  Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0);
}

TEST(Tensor, FullAndOnes) {
  EXPECT_EQ(Tensor::ones({4})[3], 1.0);
  EXPECT_EQ(Tensor::full({2, 2}, -2.5)[0], -2.5);
}

TEST(Tensor, FromRows) {
  Tensor t = Tensor::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.at(1, 2), 6.0);
}

TEST(Tensor, FromRowsRejectsRagged) {
  EXPECT_THROW(Tensor::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Tensor, RejectsRankAboveFour) {
  EXPECT_THROW(Tensor(Shape{1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Tensor, DataSizeMustMatchShape) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Tensor, CheckedAccessors) {
  Tensor t3 = Tensor::zeros({2, 3, 4});
  t3.at(1, 2, 3) = 9.0;
  EXPECT_EQ(t3.at(1, 2, 3), 9.0);
  EXPECT_THROW(t3.at(2, 0, 0), std::out_of_range);
  EXPECT_THROW(t3.at(0, 0), std::out_of_range);  // wrong rank

  Tensor t4 = Tensor::zeros({2, 2, 2, 2});
  t4.at(1, 1, 1, 1) = 5.0;
  EXPECT_EQ(t4.at(1, 1, 1, 1), 5.0);
}

TEST(Tensor, RowMajorLayout) {
  Tensor t = Tensor::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(t[0], 1.0);
  EXPECT_EQ(t[1], 2.0);
  EXPECT_EQ(t[2], 3.0);
  EXPECT_EQ(t[3], 4.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_rows({{1, 2, 3}, {4, 5, 6}});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0);
  EXPECT_THROW(t.reshape({5}), std::invalid_argument);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from_rows({{1, 2}});
  Tensor b = Tensor::from_rows({{3, 4}});
  a += b;
  EXPECT_EQ(a[0], 4.0);
  a -= b;
  EXPECT_EQ(a[1], 2.0);
  a *= 2.0;
  EXPECT_EQ(a[0], 2.0);
  a.mul_(b);  // {2,4} ⊙ {3,4} = {6,16}
  EXPECT_EQ(a[0], 6.0);
  a.add_scaled_(b, 0.5);  // {6+1.5, 16+2}
  EXPECT_EQ(a[0], 7.5);
  EXPECT_EQ(a[1], 18.0);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2});
  Tensor b = Tensor::zeros({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.mul_(b), std::invalid_argument);
}

TEST(Tensor, UniformFactoryBounds) {
  util::Rng rng(5);
  Tensor t = Tensor::uniform({100}, rng, -1.0, 1.0);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GE(t[i], -1.0);
    EXPECT_LT(t[i], 1.0);
  }
}

TEST(Tensor, DescribeFormatsShape) {
  EXPECT_EQ(Tensor::zeros({3, 4}).describe(), "Tensor[3x4]");
}

}  // namespace
}  // namespace magic::tensor
