// Sanity checks of the numerical-gradient harness itself.

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(NumericGrad, QuadraticGradientIsLinear) {
  // f(x) = sum(x^2) -> df/dx_i = 2 x_i.
  Tensor x(tensor::Shape{3}, {1.0, -2.0, 0.5});
  Tensor g = numeric_grad(
      [](const Tensor& t) {
        double s = 0.0;
        for (std::size_t i = 0; i < t.size(); ++i) s += t[i] * t[i];
        return s;
      },
      x);
  EXPECT_NEAR(g[0], 2.0, 1e-7);
  EXPECT_NEAR(g[1], -4.0, 1e-7);
  EXPECT_NEAR(g[2], 1.0, 1e-7);
}

TEST(NumericGrad, LinearFunctionConstantGradient) {
  Tensor x(tensor::Shape{2}, {3.0, 4.0});
  Tensor g = numeric_grad([](const Tensor& t) { return 5.0 * t[0] - 2.0 * t[1]; }, x);
  EXPECT_NEAR(g[0], 5.0, 1e-8);
  EXPECT_NEAR(g[1], -2.0, 1e-8);
}

}  // namespace
}  // namespace magic::testing
