#include "nn/adaptive_max_pool.hpp"
#include "nn/max_pool1d.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(MaxPool1D, ForwardPicksWindowMaxima) {
  nn::MaxPool1D pool(2, 2);
  Tensor x(tensor::Shape{1, 6}, {1, 5, 2, 2, 9, 0});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.dim(1), 3u);
  EXPECT_EQ(y[0], 5.0);
  EXPECT_EQ(y[1], 2.0);
  EXPECT_EQ(y[2], 9.0);
}

TEST(MaxPool1D, BackwardRoutesToArgmax) {
  nn::MaxPool1D pool(2, 2);
  Tensor x(tensor::Shape{1, 4}, {1, 5, 7, 2});
  pool.forward(x);
  Tensor g = pool.backward(Tensor(tensor::Shape{1, 2}, {10.0, 20.0}));
  EXPECT_EQ(g[0], 0.0);
  EXPECT_EQ(g[1], 10.0);
  EXPECT_EQ(g[2], 20.0);
  EXPECT_EQ(g[3], 0.0);
}

TEST(MaxPool1D, GradientsMatchNumeric) {
  util::Rng rng(1);
  nn::MaxPool1D pool(3, 2);
  check_module_gradients(pool, Tensor::uniform({2, 9}, rng, -1, 1), rng);
}

TEST(MaxPool1D, RejectsShortInput) {
  nn::MaxPool1D pool(4, 1);
  EXPECT_THROW(pool.forward(Tensor::zeros({1, 3})), std::invalid_argument);
}

// --- AdaptiveMaxPool2D (§III-C, Fig. 6) ------------------------------------

TEST(AdaptiveMaxPool, OutputShapeIsFixedRegardlessOfInput) {
  nn::AdaptiveMaxPool2D pool(3, 3);
  util::Rng rng(2);
  for (std::size_t h : {3u, 4u, 5u, 9u, 17u}) {
    for (std::size_t w : {3u, 7u, 12u}) {
      Tensor y = pool.forward(Tensor::uniform({2, h, w}, rng, -1, 1));
      EXPECT_EQ(y.dim(0), 2u);
      EXPECT_EQ(y.dim(1), 3u);
      EXPECT_EQ(y.dim(2), 3u);
    }
  }
}

TEST(AdaptiveMaxPool, PaperFigureSixKernelBehaviour) {
  // Fig. 6: a 5 x 7 input pooled by a 3 x 3 adaptive layer. Check that each
  // output equals the max of its adaptive window.
  nn::AdaptiveMaxPool2D pool(3, 3);
  util::Rng rng(3);
  Tensor x = Tensor::uniform({1, 5, 7}, rng, -1, 1);
  Tensor y = pool.forward(x);
  auto win = [](std::size_t i, std::size_t in, std::size_t out) {
    const std::size_t lo = (i * in) / out;
    const std::size_t hi = ((i + 1) * in + out - 1) / out;
    return std::make_pair(lo, hi);
  };
  for (std::size_t oy = 0; oy < 3; ++oy) {
    for (std::size_t ox = 0; ox < 3; ++ox) {
      auto [y0, y1] = win(oy, 5, 3);
      auto [x0, x1] = win(ox, 7, 3);
      double expected = -1e9;
      for (std::size_t yy = y0; yy < y1; ++yy) {
        for (std::size_t xx = x0; xx < x1; ++xx) {
          expected = std::max(expected, x.at(0, yy, xx));
        }
      }
      EXPECT_NEAR(y.at(0, oy, ox), expected, 1e-12);
    }
  }
}

TEST(AdaptiveMaxPool, IdentityWhenGridMatchesInput) {
  nn::AdaptiveMaxPool2D pool(2, 2);
  util::Rng rng(4);
  Tensor x = Tensor::uniform({1, 2, 2}, rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(pool.forward(x), x, 0.0));
}

TEST(AdaptiveMaxPool, InputSmallerThanGrid) {
  // A 1-vertex graph can give a 1 x C "image": windows repeat values.
  nn::AdaptiveMaxPool2D pool(3, 3);
  Tensor x(tensor::Shape{1, 1, 2}, {7.0, 9.0});
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.dim(1), 3u);
  // Every output must be one of the input values.
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(y[i] == 7.0 || y[i] == 9.0);
  }
}

TEST(AdaptiveMaxPool, BackwardAccumulatesToSources) {
  nn::AdaptiveMaxPool2D pool(1, 1);
  Tensor x(tensor::Shape{1, 2, 2}, {1.0, 4.0, 2.0, 3.0});
  pool.forward(x);
  Tensor g = pool.backward(Tensor(tensor::Shape{1, 1, 1}, {5.0}));
  EXPECT_EQ(g[1], 5.0);  // max was at index 1
  EXPECT_EQ(g[0], 0.0);
}

TEST(AdaptiveMaxPool, GradientsMatchNumeric) {
  util::Rng rng(5);
  nn::AdaptiveMaxPool2D pool(3, 3);
  check_module_gradients(pool, Tensor::uniform({2, 5, 7}, rng, -1, 1), rng);
}

TEST(AdaptiveMaxPool, GradientsMatchNumericWhenInputSmall) {
  util::Rng rng(6);
  nn::AdaptiveMaxPool2D pool(4, 4);
  check_module_gradients(pool, Tensor::uniform({1, 2, 3}, rng, -1, 1), rng);
}

TEST(AdaptiveMaxPool, RejectsBadConstruction) {
  EXPECT_THROW(nn::AdaptiveMaxPool2D(0, 3), std::invalid_argument);
}

TEST(AdaptiveMaxPool, RejectsNonRank3) {
  nn::AdaptiveMaxPool2D pool(2, 2);
  EXPECT_THROW(pool.forward(Tensor::zeros({4, 4})), std::invalid_argument);
}

}  // namespace
}  // namespace magic::testing
