#include "nn/weighted_vertices.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(WeightedVertices, ForwardIsWeightedRowSum) {
  // Fig. 5 of the paper: E = f(W x Zsp) with W = [0.4, 0.1, 0.5] and ReLU.
  util::Rng rng(1);
  nn::WeightedVertices wv(3, nn::Activation::ReLU, rng);
  wv.weight().value = Tensor(tensor::Shape{3}, {0.4, 0.1, 0.5});
  Tensor zsp = Tensor::from_rows({{1, -2}, {3, 4}, {5, 6}});
  Tensor e = wv.forward(zsp);
  ASSERT_EQ(e.rank(), 1u);
  ASSERT_EQ(e.dim(0), 2u);
  // channel 0: 0.4*1 + 0.1*3 + 0.5*5 = 3.2; channel 1: -0.8 + 0.4 + 3 = 2.6.
  EXPECT_NEAR(e[0], 3.2, 1e-12);
  EXPECT_NEAR(e[1], 2.6, 1e-12);
}

TEST(WeightedVertices, ReluZeroesNegativeEmbedding) {
  util::Rng rng(2);
  nn::WeightedVertices wv(2, nn::Activation::ReLU, rng);
  wv.weight().value = Tensor(tensor::Shape{2}, {1.0, 1.0});
  Tensor zsp = Tensor::from_rows({{-5.0}, {2.0}});
  EXPECT_EQ(wv.forward(zsp)[0], 0.0);
}

TEST(WeightedVertices, InitializesNearMeanPooling) {
  util::Rng rng(3);
  nn::WeightedVertices wv(4, nn::Activation::ReLU, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(wv.weight().value[i], 0.25, 0.25 * 0.11);
  }
}

TEST(WeightedVertices, EquivalentToConv1dWithKernelK) {
  // §III-B: the layer is "a single channel Conv1D layer ... of kernel size
  // k, stride size k" applied to the transposed Zsp. Verify the algebra:
  // E_c = f(sum_i W_i Zsp[i][c]).
  util::Rng rng(4);
  const std::size_t k = 3, c = 5;
  nn::WeightedVertices wv(k, nn::Activation::Identity, rng);
  Tensor zsp = Tensor::uniform({k, c}, rng, -1, 1);
  Tensor e = wv.forward(zsp);
  for (std::size_t ch = 0; ch < c; ++ch) {
    double manual = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      manual += wv.weight().value[i] * zsp.at(i, ch);
    }
    EXPECT_NEAR(e[ch], manual, 1e-12);
  }
}

TEST(WeightedVertices, GradientsMatchNumeric) {
  util::Rng rng(5);
  nn::WeightedVertices wv(4, nn::Activation::Tanh, rng);
  check_module_gradients(wv, Tensor::uniform({4, 6}, rng, -1, 1), rng);
}

TEST(WeightedVertices, RejectsWrongRowCount) {
  util::Rng rng(6);
  nn::WeightedVertices wv(3, nn::Activation::ReLU, rng);
  EXPECT_THROW(wv.forward(Tensor::zeros({4, 2})), std::invalid_argument);
}

TEST(WeightedVertices, RejectsZeroK) {
  util::Rng rng(7);
  EXPECT_THROW(nn::WeightedVertices(0, nn::Activation::ReLU, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace magic::testing
