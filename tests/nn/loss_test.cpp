#include "nn/loss.hpp"

#include <cmath>

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(LogSoftmax, OutputsAreLogProbabilities) {
  nn::LogSoftmax ls;
  Tensor y = ls.forward(Tensor(tensor::Shape{3}, {1.0, 2.0, 3.0}));
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(y[i], 0.0);
    total += std::exp(y[i]);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(LogSoftmax, ShiftInvariance) {
  nn::LogSoftmax ls;
  Tensor a = ls.forward(Tensor(tensor::Shape{3}, {1.0, 2.0, 3.0}));
  Tensor b = ls.forward(Tensor(tensor::Shape{3}, {101.0, 102.0, 103.0}));
  EXPECT_TRUE(tensor::allclose(a, b, 1e-9));
}

TEST(LogSoftmax, NumericallyStableForLargeInputs) {
  nn::LogSoftmax ls;
  Tensor y = ls.forward(Tensor(tensor::Shape{2}, {1000.0, 0.0}));
  EXPECT_NEAR(y[0], 0.0, 1e-9);
  EXPECT_TRUE(std::isfinite(y[1]));
}

TEST(LogSoftmax, GradientMatchesNumeric) {
  util::Rng rng(1);
  nn::LogSoftmax ls;
  check_module_gradients(ls, Tensor::uniform({5}, rng, -2, 2), rng);
}

TEST(LogSoftmax, RejectsRank2) {
  nn::LogSoftmax ls;
  EXPECT_THROW(ls.forward(Tensor::zeros({2, 2})), std::invalid_argument);
}

TEST(NllLoss, PicksTargetLogProb) {
  nn::NllLoss loss;
  Tensor lp(tensor::Shape{3}, {-0.1, -2.0, -3.0});
  EXPECT_NEAR(loss.forward(lp, 1), 2.0, 1e-12);
}

TEST(NllLoss, BackwardIsMinusOneHot) {
  nn::NllLoss loss;
  Tensor lp(tensor::Shape{3}, {-1.0, -1.0, -1.0});
  loss.forward(lp, 2);
  Tensor g = loss.backward();
  EXPECT_EQ(g[0], 0.0);
  EXPECT_EQ(g[1], 0.0);
  EXPECT_EQ(g[2], -1.0);
}

TEST(NllLoss, RejectsBadTarget) {
  nn::NllLoss loss;
  Tensor lp(tensor::Shape{2}, {-1.0, -1.0});
  EXPECT_THROW(loss.forward(lp, 2), std::invalid_argument);
}

TEST(CrossEntropy, CombinedGradientIsSoftmaxMinusOneHot) {
  // The canonical identity d(NLL ∘ LogSoftmax)/dlogits = p - onehot(y).
  nn::LogSoftmax ls;
  nn::NllLoss loss;
  Tensor logits(tensor::Shape{3}, {0.5, -1.0, 2.0});
  Tensor lp = ls.forward(logits);
  loss.forward(lp, 0);
  Tensor g = ls.backward(loss.backward());
  Tensor p = nn::exp_probs(lp);
  EXPECT_NEAR(g[0], p[0] - 1.0, 1e-12);
  EXPECT_NEAR(g[1], p[1], 1e-12);
  EXPECT_NEAR(g[2], p[2], 1e-12);
}

TEST(ExpProbs, InvertsLog) {
  Tensor lp(tensor::Shape{2}, {std::log(0.25), std::log(0.75)});
  Tensor p = nn::exp_probs(lp);
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

}  // namespace
}  // namespace magic::testing
