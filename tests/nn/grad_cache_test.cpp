// Grad-cache gating: with set_grad_enabled(false) a layer's forward must
// skip its backward caches (inference mode), backward must throw a clear
// std::logic_error, and the forward outputs must be unchanged.

#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"
#include "nn/graph_conv.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "nn/weighted_vertices.hpp"
#include "util/rng.hpp"

namespace magic::nn {
namespace {

Tensor random_tensor(tensor::Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = rng.uniform(-1.5, 1.5);
  return t;
}

void expect_same(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// Deterministic module: eval forward must equal train forward, and
// backward after an eval forward must throw.
void check_module(Module& m, const Tensor& input, const Tensor& grad) {
  m.set_grad_enabled(true);
  const Tensor train_out = m.forward(input);
  m.set_grad_enabled(false);
  const Tensor eval_out = m.forward(input);
  expect_same(eval_out, train_out);
  EXPECT_THROW(m.backward(grad), std::logic_error);
  // Re-enabling restores the backward path.
  m.set_grad_enabled(true);
  m.forward(input);
  EXPECT_NO_THROW(m.backward(grad));
}

TEST(GradCache, ActivationsGateTheirCaches) {
  const Tensor x = random_tensor({3, 4}, 1);
  const Tensor g = random_tensor({3, 4}, 2);
  ReLU relu;
  Tanh tanh;
  Sigmoid sigmoid;
  check_module(relu, x, g);
  check_module(tanh, x, g);
  check_module(sigmoid, x, g);
}

TEST(GradCache, LinearGatesItsCache) {
  util::Rng rng(3);
  Linear lin(4, 5, rng);
  check_module(lin, random_tensor({3, 4}, 4), random_tensor({3, 5}, 5));
}

TEST(GradCache, Conv1dGatesItsCache) {
  util::Rng rng(6);
  Conv1D conv(2, 3, 3, 1, rng);
  check_module(conv, random_tensor({2, 8}, 7), random_tensor({3, 6}, 8));
}

TEST(GradCache, Conv2dGatesItsCache) {
  util::Rng rng(9);
  Conv2D conv(1, 2, 3, 3, 1, rng);
  check_module(conv, random_tensor({1, 5, 5}, 10), random_tensor({2, 5, 5}, 11));
}

TEST(GradCache, WeightedVerticesGatesItsCache) {
  util::Rng rng(12);
  WeightedVertices wv(4, Activation::ReLU, rng);
  check_module(wv, random_tensor({4, 6}, 13), random_tensor({6}, 14));
}

TEST(GradCache, LogSoftmaxGatesItsCache) {
  LogSoftmax ls;
  check_module(ls, random_tensor({5}, 15), random_tensor({5}, 16));
}

TEST(GradCache, GraphConvLayerGatesItsCache) {
  util::Rng rng(17);
  GraphConvLayer layer(3, 4, Activation::Tanh, rng);
  // 5-vertex self-loop graph: the propagation operator is the identity.
  SparseMatrix prop = SparseMatrix::propagation_operator({{}, {}, {}, {}, {}});
  const Tensor x = random_tensor({5, 3}, 18);
  const Tensor g = random_tensor({5, 4}, 19);

  layer.set_grad_enabled(true);
  const Tensor train_out = layer.forward(prop, x);
  layer.set_grad_enabled(false);
  const Tensor eval_out = layer.forward(prop, x);
  expect_same(eval_out, train_out);
  EXPECT_THROW(layer.backward(g), std::logic_error);
  layer.set_grad_enabled(true);
  layer.forward(prop, x);
  EXPECT_NO_THROW(layer.backward(g));
}

TEST(GradCache, SequentialPropagatesToChildren) {
  util::Rng rng(20);
  Sequential seq;
  seq.emplace<Linear>(4, 3, rng);
  seq.emplace<ReLU>();
  seq.emplace<LogSoftmax>();
  const Tensor x = random_tensor({4}, 21);
  const Tensor g = random_tensor({3}, 22);
  seq.set_grad_enabled(false);
  seq.forward(x);
  EXPECT_THROW(seq.backward(g), std::logic_error);
  seq.set_grad_enabled(true);
  seq.forward(x);
  EXPECT_NO_THROW(seq.backward(g));
}

}  // namespace
}  // namespace magic::nn
