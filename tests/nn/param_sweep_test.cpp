// Parameterized property sweeps: gradient correctness and shape invariants
// across layer-configuration grids (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <tuple>

#include "nn/adaptive_max_pool.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"
#include "nn/graph_conv.hpp"
#include "nn/linear.hpp"
#include "nn/sort_pooling.hpp"
#include "test_util.hpp"

namespace magic::testing {
namespace {

// --- Linear sweep -----------------------------------------------------------

class LinearSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LinearSweep, GradientsMatchNumeric) {
  const auto [in, out, rows] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(in * 131 + out * 17 + rows));
  nn::Linear lin(static_cast<std::size_t>(in), static_cast<std::size_t>(out), rng);
  Tensor x = Tensor::uniform({static_cast<std::size_t>(rows),
                              static_cast<std::size_t>(in)}, rng, -1, 1);
  check_module_gradients(lin, x, rng);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearSweep,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 5),
                                            ::testing::Values(1, 4)));

// --- Conv1D sweep -----------------------------------------------------------

class Conv1dSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Conv1dSweep, GradientsMatchNumeric) {
  const auto [ic, oc, kernel, stride, length] = GetParam();
  if (length < kernel) GTEST_SKIP();
  util::Rng rng(static_cast<std::uint64_t>(ic + oc * 7 + kernel * 31 + stride * 97 +
                                           length * 151));
  nn::Conv1D conv(static_cast<std::size_t>(ic), static_cast<std::size_t>(oc),
                  static_cast<std::size_t>(kernel), static_cast<std::size_t>(stride),
                  rng);
  Tensor x = Tensor::uniform({static_cast<std::size_t>(ic),
                              static_cast<std::size_t>(length)}, rng, -1, 1);
  check_module_gradients(conv, x, rng, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Conv1dSweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(3, 7)));

// --- Conv2D sweep -----------------------------------------------------------

class Conv2dSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Conv2dSweep, GradientsMatchNumeric) {
  const auto [ic, oc, h, w, pad] = GetParam();
  if (static_cast<std::size_t>(h) + 2 * static_cast<std::size_t>(pad) < 3 ||
      static_cast<std::size_t>(w) + 2 * static_cast<std::size_t>(pad) < 3) {
    GTEST_SKIP();
  }
  util::Rng rng(static_cast<std::uint64_t>(ic * 3 + oc * 11 + h * 29 + w * 71 + pad));
  nn::Conv2D conv(static_cast<std::size_t>(ic), static_cast<std::size_t>(oc), 3, 3,
                  static_cast<std::size_t>(pad), rng);
  Tensor x = Tensor::uniform({static_cast<std::size_t>(ic),
                              static_cast<std::size_t>(h),
                              static_cast<std::size_t>(w)}, rng, -1, 1);
  check_module_gradients(conv, x, rng, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Conv2dSweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 4),
                                            ::testing::Values(1, 3, 6),
                                            ::testing::Values(3, 5),
                                            ::testing::Values(0, 1)));

// --- AdaptiveMaxPool invariants across input sizes ---------------------------

class AmpSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AmpSweep, OutputShapeFixedAndValuesFromInput) {
  const auto [grid, h, w] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(grid * 5 + h * 13 + w * 37));
  nn::AdaptiveMaxPool2D pool(static_cast<std::size_t>(grid),
                             static_cast<std::size_t>(grid));
  Tensor x = Tensor::uniform({2, static_cast<std::size_t>(h),
                              static_cast<std::size_t>(w)}, rng, -1, 1);
  Tensor y = pool.forward(x);
  EXPECT_EQ(y.dim(1), static_cast<std::size_t>(grid));
  EXPECT_EQ(y.dim(2), static_cast<std::size_t>(grid));
  // Every pooled value must exist in the corresponding input channel.
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < y.dim(1) * y.dim(2); ++i) {
      const double v = y[c * y.dim(1) * y.dim(2) + i];
      bool found = false;
      for (std::size_t j = 0; j < x.dim(1) * x.dim(2) && !found; ++j) {
        found = (x[c * x.dim(1) * x.dim(2) + j] == v);
      }
      EXPECT_TRUE(found);
    }
  }
  // The global per-channel maximum always survives pooling (some window
  // contains it).
  for (std::size_t c = 0; c < 2; ++c) {
    double in_max = -1e18, out_max = -1e18;
    for (std::size_t j = 0; j < x.dim(1) * x.dim(2); ++j) {
      in_max = std::max(in_max, x[c * x.dim(1) * x.dim(2) + j]);
    }
    for (std::size_t j = 0; j < y.dim(1) * y.dim(2); ++j) {
      out_max = std::max(out_max, y[c * y.dim(1) * y.dim(2) + j]);
    }
    EXPECT_EQ(in_max, out_max);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, AmpSweep,
                         ::testing::Combine(::testing::Values(2, 3, 6),
                                            ::testing::Values(1, 4, 9, 17),
                                            ::testing::Values(1, 7, 12)));

// --- SortPooling invariants over n/k combinations -----------------------------

class SortPoolSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SortPoolSweep, SortedDescendingAndShapeCorrect) {
  const auto [n, k] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 19 + k));
  nn::SortPooling pool(static_cast<std::size_t>(k));
  Tensor z = Tensor::uniform({static_cast<std::size_t>(n), 3}, rng, -1, 1);
  Tensor out = pool.forward(z);
  EXPECT_EQ(out.dim(0), static_cast<std::size_t>(k));
  EXPECT_EQ(out.dim(1), 3u);
  const std::size_t filled = std::min<std::size_t>(n, k);
  for (std::size_t i = 1; i < filled; ++i) {
    EXPECT_GE(out.at(i - 1, 2), out.at(i, 2));  // last channel descending
  }
  for (std::size_t i = filled; i < static_cast<std::size_t>(k); ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(out.at(i, j), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SortPoolSweep,
                         ::testing::Combine(::testing::Values(1, 3, 8, 20),
                                            ::testing::Values(1, 4, 10)));

// --- GraphConv gradcheck across graph shapes and activations -----------------

struct GraphCase {
  std::vector<std::vector<std::size_t>> edges;
  const char* name;
};

class GraphConvSweep
    : public ::testing::TestWithParam<std::tuple<int, nn::Activation>> {};

TEST_P(GraphConvSweep, GradientsMatchNumeric) {
  const auto [which, act] = GetParam();
  static const std::vector<GraphCase> cases = {
      {{{}}, "single vertex"},
      {{{1}, {2}, {}}, "chain"},
      {{{1, 2, 3}, {}, {}, {}}, "star"},
      {{{1}, {2}, {0}}, "cycle"},
      {{{1, 1}, {}}, "parallel edges"},
  };
  const auto& graph = cases[static_cast<std::size_t>(which)];
  util::Rng rng(static_cast<std::uint64_t>(which * 83 + static_cast<int>(act)));
  nn::GraphConvLayer layer(2, 3, act, rng);
  tensor::SparseMatrix p = tensor::SparseMatrix::propagation_operator(graph.edges);
  // Shift inputs away from zero so ReLU kinks do not break the numeric
  // gradient comparison.
  Tensor z = Tensor::uniform({graph.edges.size(), 2}, rng, 0.3, 1.5);

  const Tensor probe = layer.forward(p, z);
  Tensor w = Tensor::uniform(probe.shape(), rng, 0.2, 1.0);
  auto loss = [&](const Tensor& input) {
    Tensor out = layer.forward(p, input);
    double total = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) total += w[i] * out[i];
    return total;
  };
  layer.weight().zero_grad();
  layer.forward(p, z);
  Tensor din = layer.backward(w);
  Tensor num = numeric_grad(loss, z);
  for (std::size_t i = 0; i < din.size(); ++i) {
    EXPECT_NEAR(din[i], num[i], 1e-5) << graph.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GraphConvSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(nn::Activation::Tanh,
                                         nn::Activation::Identity)));

}  // namespace
}  // namespace magic::testing
