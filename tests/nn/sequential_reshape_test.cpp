#include "nn/sequential.hpp"

#include "nn/activations.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"
#include "nn/reshape.hpp"
#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(Sequential, ChainsForward) {
  util::Rng rng(1);
  nn::Sequential seq;
  auto& lin = seq.emplace<nn::Linear>(3, 2, rng);
  seq.emplace<nn::ReLU>();
  lin.weight().value = Tensor::from_rows({{1, 0}, {0, 1}, {0, 0}});
  lin.bias().value = Tensor(tensor::Shape{2}, {0.0, -10.0});
  Tensor y = seq.forward(Tensor(tensor::Shape{3}, {2.0, 3.0, 4.0}));
  EXPECT_EQ(y[0], 2.0);
  EXPECT_EQ(y[1], 0.0);  // 3 - 10 clamped by ReLU
}

TEST(Sequential, GradientsMatchNumericThroughChain) {
  util::Rng rng(2);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(4, 6, rng);
  seq.emplace<nn::Tanh>();
  seq.emplace<nn::Linear>(6, 3, rng);
  Tensor x = Tensor::uniform({4}, rng, -1, 1);
  check_module_gradients(seq, x, rng);
}

TEST(Sequential, CollectsAllParameters) {
  util::Rng rng(3);
  nn::Sequential seq;
  seq.emplace<nn::Linear>(2, 2, rng);
  seq.emplace<nn::ReLU>();
  seq.emplace<nn::Linear>(2, 2, rng);
  EXPECT_EQ(seq.parameters().size(), 4u);  // 2x (weight + bias)
  EXPECT_EQ(seq.size(), 3u);
}

TEST(Sequential, PropagatesTrainingMode) {
  util::Rng rng(4);
  nn::Sequential seq;
  auto& drop = seq.emplace<nn::Dropout>(0.5, rng);
  seq.set_training(false);
  EXPECT_FALSE(drop.training());
  seq.set_training(true);
  EXPECT_TRUE(drop.training());
}

TEST(Flatten, RoundTripsShape) {
  nn::Flatten flat;
  util::Rng rng(5);
  Tensor x = Tensor::uniform({2, 3, 4}, rng, -1, 1);
  Tensor y = flat.forward(x);
  EXPECT_EQ(y.rank(), 1u);
  EXPECT_EQ(y.dim(0), 24u);
  Tensor g = flat.backward(Tensor::ones({24}));
  EXPECT_EQ(g.rank(), 3u);
  EXPECT_EQ(g.dim(2), 4u);
}

TEST(FixedReshape, ReshapesAndRestores) {
  nn::FixedReshape rs({2, 6});
  util::Rng rng(6);
  Tensor x = Tensor::uniform({3, 4}, rng, -1, 1);
  Tensor y = rs.forward(x);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 6u);
  EXPECT_EQ(y[5], x[5]);  // data order unchanged
  Tensor g = rs.backward(Tensor::ones({2, 6}));
  EXPECT_EQ(g.dim(0), 3u);
}

TEST(FixedReshape, RejectsSizeMismatch) {
  nn::FixedReshape rs({5});
  EXPECT_THROW(rs.forward(Tensor::zeros({2, 3})), std::invalid_argument);
}

}  // namespace
}  // namespace magic::testing
