#include "nn/sort_pooling.hpp"

#include <algorithm>

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(SortPooling, SortsByLastChannelDescending) {
  nn::SortPooling pool(3);
  Tensor z = Tensor::from_rows({{1, 0.2}, {2, 0.9}, {3, 0.5}});
  Tensor out = pool.forward(z);
  EXPECT_EQ(out.at(0, 1), 0.9);
  EXPECT_EQ(out.at(1, 1), 0.5);
  EXPECT_EQ(out.at(2, 1), 0.2);
  // First channel follows its row.
  EXPECT_EQ(out.at(0, 0), 2.0);
}

TEST(SortPooling, TiesBrokenByEarlierChannels) {
  // Paper §III-A3: "If there are ties on the last layer's output, sorting
  // continues by using the second last layer's output".
  nn::SortPooling pool(3);
  Tensor z = Tensor::from_rows({{1, 5}, {9, 5}, {4, 5}});
  Tensor out = pool.forward(z);
  EXPECT_EQ(out.at(0, 0), 9.0);
  EXPECT_EQ(out.at(1, 0), 4.0);
  EXPECT_EQ(out.at(2, 0), 1.0);
}

TEST(SortPooling, TruncatesLargeGraphs) {
  // Fig. 4: k = 3 on a 5-vertex graph discards the two smallest rows.
  nn::SortPooling pool(3);
  Tensor z = Tensor::from_rows({{0, 1}, {0, 5}, {0, 3}, {0, 2}, {0, 4}});
  Tensor out = pool.forward(z);
  EXPECT_EQ(out.dim(0), 3u);
  EXPECT_EQ(out.at(0, 1), 5.0);
  EXPECT_EQ(out.at(1, 1), 4.0);
  EXPECT_EQ(out.at(2, 1), 3.0);
}

TEST(SortPooling, PadsSmallGraphsWithZeros) {
  nn::SortPooling pool(4);
  Tensor z = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor out = pool.forward(z);
  EXPECT_EQ(out.dim(0), 4u);
  EXPECT_EQ(out.at(2, 0), 0.0);
  EXPECT_EQ(out.at(3, 1), 0.0);
}

TEST(SortPooling, PermutationInvariance) {
  // Row order of the input must not affect the pooled output (DESIGN.md
  // invariant; this is what makes the representation graph-isomorphic
  // under vertex reordering).
  nn::SortPooling pool(3);
  util::Rng rng(1);
  Tensor z = Tensor::uniform({6, 4}, rng, -1, 1);
  Tensor out1 = pool.forward(z);

  std::vector<std::size_t> perm = {3, 0, 5, 1, 4, 2};
  Tensor shuffled({6, 4});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) shuffled.at(i, j) = z.at(perm[i], j);
  }
  Tensor out2 = pool.forward(shuffled);
  EXPECT_TRUE(tensor::allclose(out1, out2, 0.0));
}

TEST(SortPooling, BackwardRoutesToKeptRows) {
  nn::SortPooling pool(2);
  Tensor z = Tensor::from_rows({{0, 1}, {0, 9}, {0, 5}});
  pool.forward(z);
  Tensor g = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor gin = pool.backward(g);
  // Row 1 (value 9) got the first output row; row 2 (value 5) the second.
  EXPECT_EQ(gin.at(1, 0), 1.0);
  EXPECT_EQ(gin.at(1, 1), 2.0);
  EXPECT_EQ(gin.at(2, 0), 3.0);
  EXPECT_EQ(gin.at(0, 0), 0.0);  // truncated row receives nothing
}

TEST(SortPooling, GradientsMatchNumeric) {
  util::Rng rng(2);
  nn::SortPooling pool(3);
  check_module_gradients(pool, Tensor::uniform({5, 3}, rng, -1, 1), rng);
}

TEST(SortPooling, GradientsMatchNumericWithPadding) {
  util::Rng rng(3);
  nn::SortPooling pool(6);
  check_module_gradients(pool, Tensor::uniform({3, 2}, rng, -1, 1), rng);
}

TEST(SortPooling, RejectsZeroK) {
  EXPECT_THROW(nn::SortPooling(0), std::invalid_argument);
}

TEST(SortPooling, OrderExposesChosenPermutation) {
  nn::SortPooling pool(2);
  Tensor z = Tensor::from_rows({{0, 1}, {0, 3}, {0, 2}});
  pool.forward(z);
  ASSERT_GE(pool.order().size(), 2u);
  EXPECT_EQ(pool.order()[0], 1u);
  EXPECT_EQ(pool.order()[1], 2u);
}

}  // namespace
}  // namespace magic::testing
