#include "nn/dropout.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(Dropout, EvalModeIsIdentity) {
  util::Rng rng(1);
  nn::Dropout drop(0.5, rng);
  drop.set_training(false);
  Tensor x = Tensor::uniform({100}, rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(drop.forward(x), x, 0.0));
}

TEST(Dropout, ZeroRateIsIdentityEvenInTraining) {
  util::Rng rng(2);
  nn::Dropout drop(0.0, rng);
  drop.set_training(true);
  Tensor x = Tensor::uniform({50}, rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(drop.forward(x), x, 0.0));
}

TEST(Dropout, TrainingZeroesRoughlyRateFraction) {
  util::Rng rng(3);
  nn::Dropout drop(0.3, rng);
  drop.set_training(true);
  Tensor x = Tensor::ones({20000});
  Tensor y = drop.forward(x);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.size()), 0.3, 0.02);
}

TEST(Dropout, SurvivorsScaledByInverseKeep) {
  util::Rng rng(4);
  nn::Dropout drop(0.5, rng);
  drop.set_training(true);
  Tensor x = Tensor::ones({1000});
  Tensor y = drop.forward(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(y[i] == 0.0 || std::abs(y[i] - 2.0) < 1e-12);
  }
}

TEST(Dropout, ExpectationPreserved) {
  util::Rng rng(5);
  nn::Dropout drop(0.4, rng);
  drop.set_training(true);
  Tensor x = Tensor::ones({50000});
  Tensor y = drop.forward(x);
  EXPECT_NEAR(tensor::mean(y), 1.0, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  util::Rng rng(6);
  nn::Dropout drop(0.5, rng);
  drop.set_training(true);
  Tensor x = Tensor::ones({200});
  Tensor y = drop.forward(x);
  Tensor g = drop.backward(Tensor::ones({200}));
  // Gradient passes exactly where the forward survived, with the same scale.
  EXPECT_TRUE(tensor::allclose(g, y, 1e-12));
}

TEST(Dropout, EvalBackwardIsIdentity) {
  util::Rng rng(7);
  nn::Dropout drop(0.5, rng);
  drop.set_training(false);
  drop.forward(Tensor::ones({10}));
  Tensor g = Tensor::uniform({10}, rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(drop.backward(g), g, 0.0));
}

TEST(Dropout, RejectsInvalidRate) {
  util::Rng rng(8);
  EXPECT_THROW(nn::Dropout(-0.1, rng), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace magic::testing
