#include "nn/optimizer.hpp"

#include <cmath>

#include "test_util.hpp"

namespace magic::testing {
namespace {

// Minimizes f(w) = ||w - target||^2 with the given optimizer; returns the
// final distance to the optimum.
template <typename MakeOpt>
double optimize_quadratic(MakeOpt make_opt, std::size_t steps) {
  nn::Parameter w("w", Tensor(tensor::Shape{3}, {5.0, -4.0, 2.0}));
  const Tensor target(tensor::Shape{3}, {1.0, 2.0, -1.0});
  auto opt = make_opt(std::vector<nn::Parameter*>{&w});
  for (std::size_t s = 0; s < steps; ++s) {
    opt->zero_grad();
    for (std::size_t i = 0; i < 3; ++i) {
      w.grad[i] = 2.0 * (w.value[i] - target[i]);
    }
    opt->step();
  }
  double dist = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    dist += (w.value[i] - target[i]) * (w.value[i] - target[i]);
  }
  return std::sqrt(dist);
}

TEST(Sgd, ConvergesOnQuadratic) {
  const double d = optimize_quadratic(
      [](std::vector<nn::Parameter*> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.1);
      },
      200);
  EXPECT_LT(d, 1e-6);
}

TEST(Sgd, MomentumConvergesOnQuadratic) {
  const double d = optimize_quadratic(
      [](std::vector<nn::Parameter*> p) {
        return std::make_unique<nn::Sgd>(std::move(p), 0.05, 0.9);
      },
      300);
  EXPECT_LT(d, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  const double d = optimize_quadratic(
      [](std::vector<nn::Parameter*> p) {
        return std::make_unique<nn::Adam>(std::move(p), 0.1);
      },
      500);
  EXPECT_LT(d, 1e-4);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step has magnitude ~lr.
  nn::Parameter w("w", Tensor(tensor::Shape{1}, {0.0}));
  nn::Adam adam({&w}, 0.01);
  w.grad[0] = 123.0;  // any positive gradient
  adam.step();
  EXPECT_NEAR(w.value[0], -0.01, 1e-6);
}

TEST(Optimizer, WeightDecayPullsTowardZero) {
  nn::Parameter w("w", Tensor(tensor::Shape{1}, {10.0}));
  nn::Sgd sgd({&w}, 0.1, 0.0, /*weight_decay=*/0.5);
  for (int i = 0; i < 50; ++i) {
    sgd.zero_grad();  // zero loss gradient; only decay acts
    sgd.step();
  }
  EXPECT_LT(std::abs(w.value[0]), 1.0);
}

TEST(Optimizer, ZeroGradClearsAccumulation) {
  nn::Parameter w("w", Tensor(tensor::Shape{2}, {1.0, 1.0}));
  nn::Sgd sgd({&w}, 0.1);
  w.grad[0] = 5.0;
  sgd.zero_grad();
  EXPECT_EQ(w.grad[0], 0.0);
}

TEST(ReduceLrOnPlateau, DecaysAfterTwoConsecutiveIncreases) {
  // §V-B: "Once the validation loss increases for two continuous epochs, we
  // decrease the learning rate by a factor of ten".
  nn::Parameter w("w", Tensor(tensor::Shape{1}, {0.0}));
  nn::Adam adam({&w}, 1e-3);
  nn::ReduceLrOnPlateau sched(adam, 2, 0.1);
  EXPECT_FALSE(sched.observe(1.0));
  EXPECT_FALSE(sched.observe(0.9));   // improving
  EXPECT_FALSE(sched.observe(0.95));  // first increase
  EXPECT_TRUE(sched.observe(1.05));   // second increase -> decay
  EXPECT_NEAR(adam.lr(), 1e-4, 1e-12);
}

TEST(ReduceLrOnPlateau, ImprovementResetsCounter) {
  nn::Parameter w("w", Tensor(tensor::Shape{1}, {0.0}));
  nn::Adam adam({&w}, 1e-3);
  nn::ReduceLrOnPlateau sched(adam, 2, 0.1);
  sched.observe(1.0);
  sched.observe(1.1);   // increase #1
  sched.observe(0.5);   // improvement resets
  sched.observe(0.6);   // increase #1 again
  EXPECT_FALSE(sched.observe(0.55));  // improvement again
  EXPECT_NEAR(adam.lr(), 1e-3, 1e-12);
}

TEST(ReduceLrOnPlateau, RespectsMinLr) {
  nn::Parameter w("w", Tensor(tensor::Shape{1}, {0.0}));
  nn::Adam adam({&w}, 1e-6);
  nn::ReduceLrOnPlateau sched(adam, 1, 0.1, /*min_lr=*/1e-7);
  sched.observe(1.0);
  sched.observe(2.0);  // would decay to 1e-7 (allowed)
  EXPECT_NEAR(adam.lr(), 1e-7, 1e-15);
  sched.observe(3.0);  // further decay to 1e-8 refused
  EXPECT_NEAR(adam.lr(), 1e-7, 1e-15);
}

}  // namespace
}  // namespace magic::testing
