// Negative tests for the checked-mode contract layer: every violation must
// fail with a message naming the layer and the expected-vs-actual shape, and
// out-of-range Tensor::at must name the index and the actual shape.
//
// Tests are always built with MAGIC_CHECKED_BUILD (CMake forces it on when
// MAGIC_BUILD_TESTS=ON), so the contracts are guaranteed live here.

#include "nn/shape_contract.hpp"

#include <string>

#include <gtest/gtest.h>

#include "nn/conv1d.hpp"
#include "nn/graph_conv.hpp"
#include "nn/linear.hpp"
#include "nn/sort_pooling.hpp"
#include "nn/weighted_vertices.hpp"
#include "tensor/sparse.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace magic::nn {
namespace {

using tensor::SparseMatrix;
using tensor::Tensor;

#ifndef MAGIC_CHECKED_BUILD
#error "shape_contract_test requires a checked build (MAGIC_CHECKED_BUILD)"
#endif

// Runs `fn`, requires a ShapeContractError whose message contains every
// fragment in `expected_fragments`.
template <typename Fn>
void expect_contract_violation(Fn&& fn,
                               std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected ShapeContractError";
  } catch (const ShapeContractError& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message missing \"" << fragment << "\": " << what;
    }
  }
}

TEST(ShapeContract, GraphConvLayerNamesLayerAndShapes) {
  util::Rng rng(7);
  GraphConvLayer layer(4, 8, Activation::ReLU, rng);
  const auto prop = SparseMatrix::propagation_operator({{1}, {0}, {}});
  // 5 channels instead of the declared 4. GraphConvLayer is the alias for
  // the paper operator since the PR-10 zoo, so the contract names the
  // concrete class.
  expect_contract_violation(
      [&] { layer.forward(prop, Tensor::zeros({3, 5})); },
      {"PaperGraphConv::forward", "(n x 4)", "Tensor[3x5]"});
}

TEST(ShapeContract, GraphConvStackChecksFirstLayerWidth) {
  util::Rng rng(7);
  GraphConvStack stack(11, {32, 32}, Activation::ReLU, rng);
  const auto prop = SparseMatrix::propagation_operator({{}, {}});
  expect_contract_violation(
      [&] { stack.forward(prop, Tensor::zeros({2, 7})); },
      {"GraphConvStack::forward", "(n x 11)", "Tensor[2x7]"});
}

TEST(ShapeContract, GraphConvOperatorSizeMismatchIsCheckError) {
  util::Rng rng(7);
  GraphConvLayer layer(4, 8, Activation::ReLU, rng);
  const auto prop = SparseMatrix::propagation_operator({{1}, {0}});  // 2x2
  EXPECT_THROW(layer.forward(prop, Tensor::zeros({3, 4})), util::CheckError);
}

TEST(ShapeContract, SortPoolingRejectsWrongRank) {
  SortPooling pool(8);
  expect_contract_violation([&] { pool.forward(Tensor::zeros({6})); },
                            {"SortPooling::forward", "(n x C)", "Tensor[6]"});
}

TEST(ShapeContract, Conv1dNamesChannelsAndKernelBound) {
  util::Rng rng(7);
  Conv1D conv(16, 32, 5, 1, rng);
  // Wrong channel count.
  expect_contract_violation(
      [&] { conv.forward(Tensor::zeros({3, 40})); },
      {"Conv1D::forward", "(16 x L>=5)", "Tensor[3x40]"});
  // Right channels, input shorter than the kernel.
  expect_contract_violation(
      [&] { conv.forward(Tensor::zeros({16, 4})); },
      {"Conv1D::forward", "(16 x L>=5)", "Tensor[16x4]"});
}

TEST(ShapeContract, LinearNamesExpectedWidth) {
  util::Rng rng(7);
  Linear lin(3, 2, rng);
  expect_contract_violation([&] { lin.forward(Tensor::zeros({4})); },
                            {"Linear::forward", "(3)", "Tensor[4]"});
  expect_contract_violation([&] { lin.forward(Tensor::zeros({5, 4})); },
                            {"Linear::forward", "(rows x 3)", "Tensor[5x4]"});
}

TEST(ShapeContract, WeightedVerticesNamesK) {
  util::Rng rng(7);
  WeightedVertices wv(8, Activation::ReLU, rng);
  expect_contract_violation([&] { wv.forward(Tensor::zeros({4, 2})); },
                            {"WeightedVertices::forward", "(8 x C)", "Tensor[4x2]"});
}

TEST(ShapeContract, ViolationIsStillInvalidArgument) {
  // Pre-contract callers catch std::invalid_argument; the contract error
  // must remain substitutable.
  SortPooling pool(4);
  EXPECT_THROW(pool.forward(Tensor::zeros({6})), std::invalid_argument);
}

TEST(ShapeContract, TensorAtNamesIndexAndShape) {
  Tensor t = Tensor::zeros({3, 4});
  try {
    t.at(5, 7);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("at(i,j)"), std::string::npos) << what;
    EXPECT_NE(what.find("(5, 7)"), std::string::npos) << what;
    EXPECT_NE(what.find("Tensor[3x4]"), std::string::npos) << what;
  }
}

TEST(ShapeContract, TensorAtNamesRankMismatch) {
  Tensor t = Tensor::zeros({2, 3, 4});
  try {
    t.at(0, 0);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank-2 accessor"), std::string::npos) << what;
    EXPECT_NE(what.find("Tensor[2x3x4]"), std::string::npos) << what;
  }
}

TEST(ShapeContract, MagicCheckFormatsStreamedMessage) {
  const int got = 7;
  try {
    MAGIC_CHECK(got == 3, "expected 3, got " << got);
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expected 3, got 7"), std::string::npos) << what;
    EXPECT_NE(what.find("got == 3"), std::string::npos) << what;
  }
}

TEST(ShapeContract, FormatContractRendersSymbolsAndBounds) {
  EXPECT_EQ(format_contract({shape::eq(16), shape::at_least("L", 5)}),
            "(16 x L>=5)");
  EXPECT_EQ(format_contract({shape::any("n"), shape::any("C")}), "(n x C)");
  EXPECT_EQ(format_contract({}), "scalar");
}

}  // namespace
}  // namespace magic::nn
