#include "nn/linear.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(Linear, ForwardMatchesManualAffine) {
  util::Rng rng(1);
  nn::Linear lin(2, 3, rng);
  lin.weight().value = Tensor::from_rows({{1, 2, 3}, {4, 5, 6}});
  lin.bias().value = Tensor(tensor::Shape{3}, {0.5, -0.5, 1.0});
  Tensor x(tensor::Shape{2}, {1.0, 2.0});
  Tensor y = lin.forward(x);
  EXPECT_NEAR(y[0], 1 + 8 + 0.5, 1e-12);
  EXPECT_NEAR(y[1], 2 + 10 - 0.5, 1e-12);
  EXPECT_NEAR(y[2], 3 + 12 + 1.0, 1e-12);
}

TEST(Linear, BatchedForwardShape) {
  util::Rng rng(2);
  nn::Linear lin(4, 2, rng);
  Tensor x = Tensor::uniform({5, 4}, rng, -1, 1);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 2u);
}

TEST(Linear, Rank1OutputIsRank1) {
  util::Rng rng(3);
  nn::Linear lin(3, 4, rng);
  Tensor y = lin.forward(Tensor::uniform({3}, rng, -1, 1));
  EXPECT_EQ(y.rank(), 1u);
  EXPECT_EQ(y.dim(0), 4u);
}

TEST(Linear, RejectsWrongWidth) {
  util::Rng rng(4);
  nn::Linear lin(3, 2, rng);
  EXPECT_THROW(lin.forward(Tensor::zeros({4})), std::invalid_argument);
}

TEST(Linear, GradientsMatchNumeric) {
  util::Rng rng(5);
  nn::Linear lin(3, 2, rng);
  Tensor x = Tensor::uniform({4, 3}, rng, -1, 1);
  check_module_gradients(lin, x, rng);
}

TEST(Linear, GradientsMatchNumericRank1) {
  util::Rng rng(6);
  nn::Linear lin(5, 3, rng);
  Tensor x = Tensor::uniform({5}, rng, -1, 1);
  check_module_gradients(lin, x, rng);
}

TEST(Linear, NoBiasVariantHasSingleParameter) {
  util::Rng rng(7);
  nn::Linear lin(2, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  Tensor x = Tensor::uniform({2}, rng, -1, 1);
  check_module_gradients(lin, x, rng);
}

TEST(Linear, GradAccumulatesAcrossBackwardCalls) {
  util::Rng rng(8);
  nn::Linear lin(2, 2, rng);
  Tensor x = Tensor::uniform({2}, rng, -1, 1);
  Tensor g = Tensor::ones({2});
  lin.zero_grad();
  lin.forward(x);
  lin.backward(g);
  Tensor after_one = lin.weight().grad;
  lin.forward(x);
  lin.backward(g);
  EXPECT_TRUE(tensor::allclose(lin.weight().grad, after_one * 2.0, 1e-12));
}

}  // namespace
}  // namespace magic::testing
