#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"

#include "test_util.hpp"

namespace magic::testing {
namespace {

TEST(Conv1D, ForwardMatchesHandComputation) {
  util::Rng rng(1);
  nn::Conv1D conv(1, 1, 2, 1, rng);
  auto params = conv.parameters();
  params[0]->value = Tensor(tensor::Shape{1, 1, 2}, {1.0, -1.0});  // weight
  params[1]->value = Tensor(tensor::Shape{1}, {0.5});              // bias
  Tensor x(tensor::Shape{1, 4}, {1.0, 3.0, 2.0, 5.0});
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(1), 3u);
  EXPECT_NEAR(y[0], 1 - 3 + 0.5, 1e-12);
  EXPECT_NEAR(y[1], 3 - 2 + 0.5, 1e-12);
  EXPECT_NEAR(y[2], 2 - 5 + 0.5, 1e-12);
}

TEST(Conv1D, StrideEqualsKernelIsBlockwise) {
  // The DGCNN head's first Conv1D uses kernel = stride = descriptor width.
  util::Rng rng(2);
  nn::Conv1D conv(1, 1, 3, 3, rng);
  auto params = conv.parameters();
  params[0]->value = Tensor(tensor::Shape{1, 1, 3}, {1.0, 1.0, 1.0});
  params[1]->value = Tensor(tensor::Shape{1}, {0.0});
  Tensor x(tensor::Shape{1, 6}, {1, 2, 3, 4, 5, 6});
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(1), 2u);
  EXPECT_NEAR(y[0], 6.0, 1e-12);
  EXPECT_NEAR(y[1], 15.0, 1e-12);
}

TEST(Conv1D, OutLengthFormula) {
  util::Rng rng(3);
  nn::Conv1D conv(2, 4, 5, 2, rng);
  EXPECT_EQ(conv.out_length(11), 4u);
  EXPECT_THROW(conv.out_length(4), std::invalid_argument);
}

TEST(Conv1D, MultiChannelShapes) {
  util::Rng rng(4);
  nn::Conv1D conv(3, 5, 2, 1, rng);
  Tensor y = conv.forward(Tensor::uniform({3, 7}, rng, -1, 1));
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 6u);
}

TEST(Conv1D, GradientsMatchNumeric) {
  util::Rng rng(5);
  nn::Conv1D conv(2, 3, 3, 2, rng);
  check_module_gradients(conv, Tensor::uniform({2, 9}, rng, -1, 1), rng, 1e-5);
}

TEST(Conv1D, RejectsWrongChannelCount) {
  util::Rng rng(6);
  nn::Conv1D conv(2, 1, 2, 1, rng);
  EXPECT_THROW(conv.forward(Tensor::zeros({3, 5})), std::invalid_argument);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  util::Rng rng(7);
  nn::Conv2D conv(1, 1, 1, 1, 0, rng);
  auto params = conv.parameters();
  params[0]->value = Tensor(tensor::Shape{1, 1, 1, 1}, {1.0});
  params[1]->value = Tensor(tensor::Shape{1}, {0.0});
  Tensor x = Tensor::uniform({1, 3, 4}, rng, -1, 1);
  EXPECT_TRUE(tensor::allclose(conv.forward(x), x, 1e-12));
}

TEST(Conv2D, PaddingPreservesSpatialDims) {
  util::Rng rng(8);
  nn::Conv2D conv(1, 4, 3, 3, 1, rng);
  Tensor y = conv.forward(Tensor::uniform({1, 5, 6}, rng, -1, 1));
  EXPECT_EQ(y.dim(0), 4u);
  EXPECT_EQ(y.dim(1), 5u);
  EXPECT_EQ(y.dim(2), 6u);
}

TEST(Conv2D, SumKernelComputesWindowSums) {
  util::Rng rng(9);
  nn::Conv2D conv(1, 1, 2, 2, 0, rng);
  auto params = conv.parameters();
  params[0]->value = Tensor::ones({1, 1, 2, 2});
  params[1]->value = Tensor::zeros({1});
  Tensor x(tensor::Shape{1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.dim(1), 1u);
  EXPECT_EQ(y.dim(2), 2u);
  EXPECT_NEAR(y[0], 1 + 2 + 4 + 5, 1e-12);
  EXPECT_NEAR(y[1], 2 + 3 + 5 + 6, 1e-12);
}

TEST(Conv2D, GradientsMatchNumeric) {
  util::Rng rng(10);
  nn::Conv2D conv(2, 3, 3, 3, 1, rng);
  check_module_gradients(conv, Tensor::uniform({2, 4, 5}, rng, -1, 1), rng, 1e-5);
}

TEST(Conv2D, GradientsMatchNumericNoPadding) {
  util::Rng rng(11);
  nn::Conv2D conv(1, 2, 2, 2, 0, rng);
  check_module_gradients(conv, Tensor::uniform({1, 4, 4}, rng, -1, 1), rng, 1e-5);
}

TEST(Conv2D, RejectsTooSmallInput) {
  util::Rng rng(12);
  nn::Conv2D conv(1, 1, 3, 3, 0, rng);
  EXPECT_THROW(conv.forward(Tensor::zeros({1, 2, 2})), std::invalid_argument);
}

TEST(Conv2D, MinimalInputWithPaddingWorks) {
  // The AMP path can see single-vertex graphs: (1 x 1 x C) images.
  util::Rng rng(13);
  nn::Conv2D conv(1, 2, 3, 3, 1, rng);
  Tensor y = conv.forward(Tensor::uniform({1, 1, 4}, rng, -1, 1));
  EXPECT_EQ(y.dim(1), 1u);
  EXPECT_EQ(y.dim(2), 4u);
}

}  // namespace
}  // namespace magic::testing
